module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Caps = Crusade_resource.Caps
module Clustering = Crusade_cluster.Clustering
module Vec = Crusade_util.Vec

let used = Arch.pe_in_use

let to_dot ?(title = "architecture") (clustering : Clustering.t) ~t_arch:(arch : Arch.t)
    =
  ignore clustering;
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "graph %S {\n" title;
  out "  graph [rankdir=LR, fontname=\"Helvetica\"];\n";
  out "  node [shape=record, fontname=\"Helvetica\", fontsize=10];\n";
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      if used pe then begin
        let modes =
          Vec.to_list pe.Arch.modes
          |> List.filter (fun (m : Arch.mode) -> m.Arch.m_clusters <> [])
          |> List.map (fun (m : Arch.mode) ->
                 Printf.sprintf "mode %d: C%s" m.Arch.m_id
                   (String.concat ",C"
                      (List.map string_of_int (List.rev m.Arch.m_clusters))))
          |> String.concat "|"
        in
        let kind =
          match pe.Arch.ptype.Pe.pe_class with
          | Pe.General_purpose _ -> "CPU"
          | Pe.Asic_pe _ -> "ASIC"
          | Pe.Programmable { kind = Pe.Fpga; _ } -> "FPGA"
          | Pe.Programmable { kind = Pe.Cpld; _ } -> "CPLD"
        in
        out "  pe%d [label=\"{%s %s (pe%d)|%s}\"];\n" pe.Arch.p_id kind
          pe.Arch.ptype.Pe.name pe.Arch.p_id modes
      end)
    arch.Arch.pes;
  Vec.iter
    (fun (l : Arch.link_inst) ->
      if List.length l.Arch.attached >= 2 then begin
        out "  link%d [shape=ellipse, label=\"%s\"];\n" l.Arch.l_id l.ltype.Link.name;
        List.iter
          (fun pe_id -> out "  pe%d -- link%d;\n" pe_id l.Arch.l_id)
          l.Arch.attached
      end)
    arch.Arch.links;
  out "}\n";
  Buffer.contents buf

let inventory (arch : Arch.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      if used pe then begin
        match pe.Arch.ptype.Pe.pe_class with
        | Pe.General_purpose cpu ->
            out "pe%-3d %-14s CPU   %d DRAM bank(s), %d KB used\n" pe.Arch.p_id
              pe.Arch.ptype.Pe.name (Arch.memory_banks pe) (pe.Arch.used_memory / 1024);
            ignore cpu
        | Pe.Asic_pe a ->
            let mode = Vec.get pe.Arch.modes 0 in
            out "pe%-3d %-14s ASIC  %d/%d area units, %d/%d pins\n" pe.Arch.p_id
              pe.Arch.ptype.Pe.name mode.Arch.m_gates a.Pe.gates mode.Arch.m_pins
              a.Pe.pins
        | Pe.Programmable _ ->
            let images = Arch.n_images pe in
            let cap = Caps.usable_pfus pe.Arch.ptype in
            Vec.iter
              (fun (m : Arch.mode) ->
                if m.Arch.m_clusters <> [] then
                  out "pe%-3d %-14s %s image %d: %d/%d PFUs, %d pins (%d images total)\n"
                    pe.Arch.p_id pe.Arch.ptype.Pe.name
                    (match pe.Arch.ptype.Pe.pe_class with
                    | Pe.Programmable { kind = Pe.Cpld; _ } -> "CPLD"
                    | _ -> "FPGA")
                    m.Arch.m_id m.Arch.m_gates cap m.Arch.m_pins images)
              pe.Arch.modes
      end)
    arch.Arch.pes;
  Vec.iter
    (fun (l : Arch.link_inst) ->
      if List.length l.Arch.attached >= 2 then
        out "link%-2d %-12s %d port(s): %s\n" l.Arch.l_id l.ltype.Link.name
          (List.length l.Arch.attached)
          (String.concat ", "
             (List.map (Printf.sprintf "pe%d") (List.rev l.Arch.attached))))
    arch.Arch.links;
  Buffer.contents buf
