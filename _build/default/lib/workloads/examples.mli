(** Hand-built specifications mirroring the paper's illustrative figures,
    plus the Table 1 circuit set. *)

val figure2 : Crusade_resource.Library.t -> Crusade_taskgraph.Spec.t
(** The Section 3 motivation example: three FPGA-bound task graphs T1,
    T2, T3 with non-overlapping execution slots.  Without dynamic
    reconfiguration two devices are needed (F2 holds two graphs, F1 one);
    with it a single F2 suffices, time-shared through modes.  Use with
    {!Crusade_resource.Library.small}. *)

val figure4 : Crusade_resource.Library.t -> Crusade_taskgraph.Spec.t
(** The Section 4.2 allocation walk-through: a software cluster C0 and
    hardware clusters C1, C2, C3 where C1/C2 are compatible but C3
    overlaps C1.  The expected architecture is a CPU plus one FPGA with
    two modes: mode 1 holding C1 and C3, mode 2 holding C2.  Use with
    {!Crusade_resource.Library.small}. *)

val multirate : Crusade_resource.Library.t -> Crusade_taskgraph.Spec.t
(** A SONET/ATM-flavoured example with the paper's full rate spread
    (25 us cell processing up to a 1-minute provisioning scan), whose
    hyperperiod forces the association-array extrapolation path. *)

type table1_circuit = {
  circuit_name : string;
  pfus : int;
  pins : int;
  cross_fraction : float;
      (** interconnect richness; the three paper-unroutable circuits
          (r2d2p, cv46, wamxp) are the dense ones *)
}

val table1_circuits : table1_circuit list
(** The ten functional blocks of Table 1 (cvs1 ... pewxfm) with their PFU
    counts from the paper. *)

val table1_netlist : table1_circuit -> Crusade_pnr.Circuit.t
(** Deterministic netlist for a Table 1 circuit. *)

val upgrade_scenario :
  Crusade_resource.Library.t -> Crusade_taskgraph.Spec.t * int list
(** A field-upgrade case study (Section 3, motivation 2): a deployed
    line card (framer, policer, monitor) plus two later feature graphs
    (an encryption offload and an extra traffic class) that fit the idle
    slots of the deployed FPGAs.  Returns the spec and the ids of the
    upgrade graphs. *)
