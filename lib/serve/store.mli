(** The job store: every job's lifecycle as an explicit, auditable
    state machine.

    {v
      Queued ──► Running ──► Done
        │           │  └───► Failed
        │           └──────► Cancelled
        ├──────────────────► Cancelled   (cancelled before starting)
        └──────────────────► Done        (served from the result cache)
    v}

    Any other transition is rejected by {!transition} — process
    management is never ad hoc; every state change is validated and
    timestamped in the job's transition log.  All accessors lock the
    store, so HTTP handler threads, the queue pump and pool worker
    domains share it safely. *)

type state = Queued | Running | Done | Failed | Cancelled

val state_name : state -> string

type job = {
  id : string;
  seq : int;  (** arrival order, the FIFO key *)
  spec_text : string;  (** canonical [Dsl.print] of the parsed spec *)
  cache_key : string;
  cacheable : bool;  (** false for budgeted (anytime) jobs *)
  submitted_at : float;
  mutable state : state;
  mutable cache_hit : bool;
  mutable payload : string option;  (** result JSON once [Done] *)
  mutable error : string option;  (** diagnostic once [Failed] *)
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable log : (float * state) list;  (** newest first; the audit trail *)
  mutable events : string list;  (** NDJSON phase-event lines, newest first *)
  mutable n_events : int;
  cancel_requested : bool Atomic.t;
      (** polled by the running flow's [options.cancel] hook *)
}

type t

val create : unit -> t

val add : t -> spec_text:string -> cache_key:string -> cacheable:bool -> job
(** Registers a fresh [Queued] job and returns it (ids are ["j1"],
    ["j2"], ... in arrival order). *)

val find : t -> string -> job option

val transition : t -> job -> state -> (unit, string) result
(** Validated state change; [Error] names the illegal edge and leaves
    the job untouched.  Legal edges are exactly the diagram above.
    Timestamps [started_at]/[finished_at] as a side effect. *)

val append_event : t -> job -> string -> unit
(** Appends one NDJSON line to the job's event stream. *)

val events_since : t -> job -> int -> string list * int
(** [events_since t job n] returns the event lines after the first [n],
    oldest first, plus the new total — the long-poll cursor for
    [GET /jobs/:id/events?since=n]. *)

val log_of : t -> job -> (float * state) list
(** The transition log, oldest first. *)

val count_in : t -> state -> int
val n_jobs : t -> int
