examples/sonet_atm.mli:
