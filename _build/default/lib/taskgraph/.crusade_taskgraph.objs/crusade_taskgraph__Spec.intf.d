lib/taskgraph/spec.mli: Edge Graph Task
