module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec

type violation = { rule : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.rule v.detail

let check (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t)
    (sched : Schedule.t) =
  let violations = ref [] in
  let fail rule detail = violations := { rule; detail } :: !violations in
  let instances = sched.Schedule.instances in
  (* Index instances by (task, copy) for precedence lookups. *)
  let table = Hashtbl.create (Array.length instances) in
  Array.iter
    (fun (i : Schedule.instance) ->
      Hashtbl.replace table (i.Schedule.i_task, i.Schedule.i_copy) i)
    instances;
  let scheduled (i : Schedule.instance) = i.Schedule.start >= 0 in
  let site_of task_id = Arch.task_site arch clustering task_id in
  (* Per-instance checks. *)
  Array.iter
    (fun (i : Schedule.instance) ->
      if scheduled i then begin
        let task = Spec.task spec i.Schedule.i_task in
        (match site_of task.id with
        | None ->
            fail "placement"
              (Printf.sprintf "scheduled task %s has no placed cluster" task.name)
        | Some site ->
            let pe = Vec.get arch.Arch.pes site.Arch.s_pe in
            (match Task.exec_on task pe.Arch.ptype.Pe.id with
            | None ->
                fail "placement"
                  (Printf.sprintf "task %s cannot execute on %s" task.name
                     pe.Arch.ptype.Pe.name)
            | Some exec ->
                if i.Schedule.finish - i.Schedule.start < exec then
                  fail "execution-time"
                    (Printf.sprintf "%s copy %d occupies %d us < its %d us WCET"
                       task.name i.Schedule.i_copy
                       (i.Schedule.finish - i.Schedule.start)
                       exec)));
        if i.Schedule.start < i.Schedule.arrival then
          fail "arrival"
            (Printf.sprintf "%s copy %d starts %d before arrival %d" task.name
               i.Schedule.i_copy i.Schedule.start i.Schedule.arrival)
      end)
    instances;
  (* Precedence. *)
  Array.iter
    (fun (e : Edge.t) ->
      Array.iter
        (fun (i : Schedule.instance) ->
          if i.Schedule.i_task = e.dst && scheduled i then begin
            match Hashtbl.find_opt table (e.src, i.Schedule.i_copy) with
            | Some src when scheduled src ->
                if i.Schedule.start < src.Schedule.finish then
                  fail "precedence"
                    (Printf.sprintf "edge %d->%d copy %d: start %d < producer finish %d"
                       e.src e.dst i.Schedule.i_copy i.Schedule.start
                       src.Schedule.finish)
            | Some _ | None -> ()
          end)
        instances)
    spec.Spec.edges;
  (* Processor capacity: explicit work per CPU fits the explicit horizon. *)
  let cpu_work = Hashtbl.create 8 in
  Array.iter
    (fun (i : Schedule.instance) ->
      if scheduled i then begin
        match site_of i.Schedule.i_task with
        | Some site when Pe.is_cpu (Vec.get arch.Arch.pes site.Arch.s_pe).Arch.ptype ->
            (* Count pure execution time: spans of preempted instances
               overlap each other, so spans would double-count. *)
            let task = Spec.task spec i.Schedule.i_task in
            let pe = Vec.get arch.Arch.pes site.Arch.s_pe in
            let exec = Option.value ~default:0 (Task.exec_on task pe.Arch.ptype.Pe.id) in
            let cur = Option.value ~default:0 (Hashtbl.find_opt cpu_work site.Arch.s_pe) in
            Hashtbl.replace cpu_work site.Arch.s_pe (cur + exec)
        | Some _ | None -> ()
      end)
    instances;
  let horizon =
    Array.fold_left
      (fun acc (i : Schedule.instance) -> max acc i.Schedule.finish)
      sched.Schedule.hyperperiod instances
  in
  Hashtbl.iter
    (fun pe_id work ->
      if work > horizon then
        fail "cpu-capacity"
          (Printf.sprintf "CPU %d packs %d us of work into a %d us horizon" pe_id work
             horizon))
    cpu_work;
  (* Mode exclusivity and boot gaps on programmable devices. *)
  let mode_windows = Hashtbl.create 8 in
  Array.iter
    (fun (i : Schedule.instance) ->
      if scheduled i then begin
        match site_of i.Schedule.i_task with
        | Some site when Pe.is_programmable (Vec.get arch.Arch.pes site.Arch.s_pe).Arch.ptype ->
            let key = (site.Arch.s_pe, site.Arch.s_mode) in
            let cur = Option.value ~default:[] (Hashtbl.find_opt mode_windows key) in
            Hashtbl.replace mode_windows key
              ((i.Schedule.start, i.Schedule.finish) :: cur)
        | Some _ | None -> ()
      end)
    instances;
  let by_pe = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (pe_id, mode_id) windows ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_pe pe_id) in
      Hashtbl.replace by_pe pe_id ((mode_id, Crusade_util.Intervals.of_list windows) :: cur))
    mode_windows;
  Hashtbl.iter
    (fun pe_id modes ->
      let pe = Vec.get arch.Arch.pes pe_id in
      let rec pairs = function
        | [] -> ()
        | (ma, wa) :: rest ->
            List.iter
              (fun (mb, wb) ->
                if Crusade_util.Intervals.overlaps wa wb then
                  fail "mode-exclusivity"
                    (Printf.sprintf "device %d: modes %d and %d execute simultaneously"
                       pe_id ma mb)
                else begin
                  (* boot gap between consecutive windows of different modes *)
                  let boot m =
                    if m >= 0 && m < Vec.length pe.Arch.modes then
                      Arch.mode_boot_us pe (Vec.get pe.Arch.modes m)
                    else 0
                  in
                  List.iter
                    (fun (sa, ea) ->
                      List.iter
                        (fun (sb, eb) ->
                          (* wb follows wa: gap must cover booting mb *)
                          if sb >= ea && sb - ea < boot mb then
                            fail "boot-gap"
                              (Printf.sprintf
                                 "device %d: mode %d at %d follows mode %d ending %d \
                                  with gap %d < boot %d"
                                 pe_id mb sb ma ea (sb - ea) (boot mb))
                          else if sa >= eb && sa - eb < boot ma then
                            fail "boot-gap"
                              (Printf.sprintf
                                 "device %d: mode %d at %d follows mode %d ending %d \
                                  with gap %d < boot %d"
                                 pe_id ma sa mb eb (sa - eb) (boot ma)))
                        (Crusade_util.Intervals.to_list wb))
                    (Crusade_util.Intervals.to_list wa)
                end)
              rest;
            pairs rest
      in
      pairs modes)
    by_pe;
  (* Deadline verdict consistency. *)
  let tardiness =
    Array.fold_left
      (fun acc (i : Schedule.instance) ->
        if scheduled i then acc + max 0 (i.Schedule.finish - i.Schedule.abs_deadline)
        else acc)
      0 instances
  in
  if tardiness <> sched.Schedule.total_tardiness then
    fail "verdict"
      (Printf.sprintf "recomputed tardiness %d <> reported %d" tardiness
         sched.Schedule.total_tardiness);
  if sched.Schedule.deadlines_met <> (tardiness = 0) then
    fail "verdict" "deadlines_met flag disagrees with the instance table";
  List.rev !violations
