lib/util/stats.ml: Arith List
