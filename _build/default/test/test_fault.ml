module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Transform = Crusade_fault.Transform
module Dependability = Crusade_fault.Dependability
module Ft = Crusade_fault.Ft

let check = Alcotest.check
let lib = Helpers.small_lib

let assertion ?(coverage = 0.95) name =
  {
    Task.assertion_name = name;
    coverage;
    check_exec = Helpers.cpu_exec 50;
    check_bytes = 16;
  }

let protected_chain ~assertions ~transparent n =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"g" ~period:20_000 ~deadline:10_000 () in
  let ft =
    { Task.assertions; error_transparent = transparent; required_coverage = 0.9 }
  in
  let ids =
    List.init n (fun i ->
        Spec.Builder.add_task b ~graph:g
          ~name:(Printf.sprintf "t%d" i)
          ~exec:(Helpers.cpu_exec 300) ~ft ())
  in
  let rec link = function
    | a :: (b' :: _ as rest) ->
        Spec.Builder.add_edge b ~src:a ~dst:b' ~bytes:32;
        link rest
    | [ _ ] | [] -> ()
  in
  link ids;
  Spec.Builder.finish_exn b ~name:"prot" ()

(* --- Transform --- *)

let transform_assertion_added () =
  let spec = protected_chain ~assertions:[ assertion "parity" ] ~transparent:false 1 in
  let out, stats = Transform.apply spec in
  check Alcotest.int "one assertion task" 1 stats.Transform.assertion_tasks;
  check Alcotest.int "no duplicates" 0 stats.Transform.duplicate_tasks;
  check Alcotest.int "task count" 2 (Spec.n_tasks out);
  check Alcotest.int "check edge" 1 (Spec.n_edges out)

let transform_duplicate_when_no_assertion () =
  let spec = protected_chain ~assertions:[] ~transparent:false 1 in
  let out, stats = Transform.apply spec in
  check Alcotest.int "duplicate" 1 stats.Transform.duplicate_tasks;
  check Alcotest.int "compare" 1 stats.Transform.compare_tasks;
  check Alcotest.int "tasks: orig + dup + cmp" 3 (Spec.n_tasks out);
  (* the duplicate must exclude its original *)
  let dup =
    Array.to_list out.Spec.tasks
    |> List.find (fun (t : Task.t) -> t.name = "t0.dup")
  in
  let orig =
    Array.to_list out.Spec.tasks |> List.find (fun (t : Task.t) -> t.name = "t0")
  in
  check Alcotest.bool "exclusion" true (Task.excludes dup orig)

let transform_insufficient_coverage_duplicates () =
  (* one weak assertion cannot reach 0.9 -> fall back to duplication *)
  let spec =
    protected_chain ~assertions:[ assertion ~coverage:0.5 "weak" ] ~transparent:false 1
  in
  let _, stats = Transform.apply spec in
  check Alcotest.int "duplicated instead" 1 stats.Transform.duplicate_tasks;
  check Alcotest.int "no assertion" 0 stats.Transform.assertion_tasks

let transform_assertion_group () =
  (* two 0.7-coverage assertions combine to 0.91 >= 0.9 *)
  let spec =
    protected_chain
      ~assertions:[ assertion ~coverage:0.7 "a"; assertion ~coverage:0.7 "b" ]
      ~transparent:false 1
  in
  let _, stats = Transform.apply spec in
  check Alcotest.int "group of two" 2 stats.Transform.assertion_tasks

let transform_transparency_shares () =
  (* chain of 3 transparent tasks: only the sink needs its own check *)
  let spec = protected_chain ~assertions:[ assertion "crc" ] ~transparent:true 3 in
  let out, stats = Transform.apply spec in
  check Alcotest.int "two covered upstream" 2 stats.Transform.shared_by_transparency;
  check Alcotest.int "one check" 1 stats.Transform.assertion_tasks;
  check Alcotest.int "tasks" 4 (Spec.n_tasks out)

let transform_opaque_chain_checks_everyone () =
  let spec = protected_chain ~assertions:[ assertion "crc" ] ~transparent:false 3 in
  let _, stats = Transform.apply spec in
  check Alcotest.int "no sharing" 0 stats.Transform.shared_by_transparency;
  check Alcotest.int "three checks" 3 stats.Transform.assertion_tasks

let transform_chain_cap () =
  (* long transparent chain: the cap forces intermediate checks *)
  let spec = protected_chain ~assertions:[ assertion "crc" ] ~transparent:true 8 in
  let _, stats = Transform.apply spec ~max_transparent_chain:3 in
  check Alcotest.bool "more than one check" true (stats.Transform.assertion_tasks >= 2)

let transform_unprotected_untouched () =
  let spec, _ = Helpers.sw_chain 3 in
  let out, stats = Transform.apply spec in
  check Alcotest.int "no checks" 0
    (stats.Transform.assertion_tasks + stats.Transform.duplicate_tasks);
  check Alcotest.int "same size" (Spec.n_tasks spec) (Spec.n_tasks out)

let transform_check_deadline_budget () =
  let spec = protected_chain ~assertions:[ assertion "crc" ] ~transparent:false 1 in
  let out, _ = Transform.apply spec in
  let chk =
    Array.to_list out.Spec.tasks
    |> List.find (fun (t : Task.t) -> t.name <> "t0")
  in
  (* deadline = graph deadline + period/5 *)
  check Alcotest.(option int) "detection latency budget" (Some 14_000) chk.Task.deadline

let transform_valid_spec () =
  let spec = protected_chain ~assertions:[] ~transparent:false 4 in
  let out, _ = Transform.apply spec in
  (* Transformed spec revalidates (acyclic, ids consistent). *)
  check Alcotest.bool "ids permutation" true
    (Array.for_all
       (fun (t : Task.t) -> out.Spec.tasks.(t.id).Task.id = t.id)
       out.Spec.tasks)

(* --- Dependability --- *)

let pool_unavailability_basics () =
  let u0 = Dependability.pool_unavailability ~n_active:10 ~spares:0 ~fit:500.0 () in
  let u1 = Dependability.pool_unavailability ~n_active:10 ~spares:1 ~fit:500.0 () in
  let u2 = Dependability.pool_unavailability ~n_active:10 ~spares:2 ~fit:500.0 () in
  check Alcotest.bool "positive" true (u0 > 0.0);
  check Alcotest.bool "spares monotone" true (u1 < u0 && u2 < u1);
  check (Alcotest.float 1e-12) "empty pool perfect" 0.0
    (Dependability.pool_unavailability ~n_active:0 ~spares:0 ~fit:500.0 ())

let pool_more_units_less_available () =
  let u_small = Dependability.pool_unavailability ~n_active:5 ~spares:0 ~fit:500.0 () in
  let u_big = Dependability.pool_unavailability ~n_active:50 ~spares:0 ~fit:500.0 () in
  check Alcotest.bool "bigger pool fails more" true (u_big > u_small)

let minutes_per_year_scale () =
  check (Alcotest.float 1.0) "1e-5 is about 5 min/yr" 5.2
    (Dependability.minutes_per_year 1e-5)

let fit_rates_by_class () =
  check (Alcotest.float 1e-9) "cpu" 500.0
    (Dependability.fit_rate (Crusade_resource.Library.pe lib 0));
  check (Alcotest.float 1e-9) "asic" 200.0
    (Dependability.fit_rate (Crusade_resource.Library.pe lib 2));
  check (Alcotest.float 1e-9) "fpga" 350.0
    (Dependability.fit_rate (Crusade_resource.Library.pe lib 3))

let provision_meets_budget () =
  (* synthesize a small FT spec and provision *)
  let b = Spec.Builder.create () in
  let g =
    Spec.Builder.add_graph b ~name:"critical" ~period:20_000 ~deadline:10_000
      ~unavailability_budget:4.0 ()
  in
  ignore (Spec.Builder.add_task b ~graph:g ~name:"t" ~exec:(Helpers.cpu_exec 500) ());
  let spec = Spec.Builder.finish_exn b ~name:"avail" () in
  let r = Helpers.synthesize ~reconfig:false spec in
  let p =
    Dependability.provision spec r.Crusade.Crusade_core.clustering
      r.Crusade.Crusade_core.arch
  in
  List.iter
    (fun (name, u) ->
      check Alcotest.bool (name ^ " within budget") true (u <= 4.0))
    p.Dependability.graph_unavailability

(* --- Ft driver --- *)

let ft_end_to_end () =
  let spec = protected_chain ~assertions:[ assertion "crc" ] ~transparent:false 3 in
  match Ft.synthesize spec lib with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check Alcotest.bool "deadlines met" true r.Ft.core.Crusade.Crusade_core.deadlines_met;
      check Alcotest.bool "spare cost accounted" true
        (r.Ft.total_cost >= r.Ft.core.Crusade.Crusade_core.cost);
      check Alcotest.int "checks synthesized" 3
        r.Ft.transform_stats.Transform.assertion_tasks

let ft_costs_more_than_plain () =
  let spec = protected_chain ~assertions:[] ~transparent:false 3 in
  let plain = Helpers.synthesize ~reconfig:false spec in
  match
    Ft.synthesize
      ~options:
        { Crusade.Crusade_core.default_options with dynamic_reconfiguration = false }
      spec lib
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check Alcotest.bool "fault tolerance costs" true
        (r.Ft.total_cost > plain.Crusade.Crusade_core.cost)

let suite =
  [
    Alcotest.test_case "assertion added" `Quick transform_assertion_added;
    Alcotest.test_case "duplicate-and-compare" `Quick transform_duplicate_when_no_assertion;
    Alcotest.test_case "weak assertion falls back" `Quick transform_insufficient_coverage_duplicates;
    Alcotest.test_case "assertion group" `Quick transform_assertion_group;
    Alcotest.test_case "transparency shares checks" `Quick transform_transparency_shares;
    Alcotest.test_case "opaque chain all checked" `Quick transform_opaque_chain_checks_everyone;
    Alcotest.test_case "transparent chain cap" `Quick transform_chain_cap;
    Alcotest.test_case "unprotected untouched" `Quick transform_unprotected_untouched;
    Alcotest.test_case "check deadline budget" `Quick transform_check_deadline_budget;
    Alcotest.test_case "transformed spec valid" `Quick transform_valid_spec;
    Alcotest.test_case "pool unavailability" `Quick pool_unavailability_basics;
    Alcotest.test_case "pool size effect" `Quick pool_more_units_less_available;
    Alcotest.test_case "minutes per year" `Quick minutes_per_year_scale;
    Alcotest.test_case "fit rates" `Quick fit_rates_by_class;
    Alcotest.test_case "provision meets budget" `Quick provision_meets_budget;
    Alcotest.test_case "ft end to end" `Quick ft_end_to_end;
    Alcotest.test_case "ft costs more" `Quick ft_costs_more_than_plain;
  ]
