test/test_alloc.ml: Alcotest Array Crusade_alloc Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util Helpers List Result
