(* End-to-end tests of the CRUSADE co-synthesis flow (Fig. 5). *)

module C = Crusade.Crusade_core
module Spec = Crusade_taskgraph.Spec
module Arch = Crusade_alloc.Arch
module Pe = Crusade_resource.Pe
module Schedule = Crusade_sched.Schedule
module W = Crusade_workloads.Comm_system
module Ex = Crusade_workloads.Examples
module Vec = Crusade_util.Vec

let check = Alcotest.check
let lib = Helpers.small_lib
let stock = Helpers.stock_lib

let figure2_without_reconfiguration () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize ~reconfig:false spec in
  check Alcotest.bool "deadlines met" true r.C.deadlines_met;
  check Alcotest.int "one FPGA per graph" 3 r.C.n_pes;
  check Alcotest.bool "no merging phase ran" true (r.C.merge_stats = None)

let figure2_with_reconfiguration () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize ~reconfig:true spec in
  check Alcotest.bool "deadlines met" true r.C.deadlines_met;
  check Alcotest.int "a single shared device" 1 r.C.n_pes;
  check Alcotest.int "three configuration images" 3 r.C.n_modes;
  let plain = Helpers.synthesize ~reconfig:false spec in
  check Alcotest.bool "reconfiguration is cheaper" true (r.C.cost < plain.C.cost);
  let savings = (plain.C.cost -. r.C.cost) /. plain.C.cost *. 100.0 in
  check Alcotest.bool "large savings on fig2" true (savings > 30.0)

let figure4_expected_architecture () =
  let spec = Ex.figure4 lib in
  let r = Helpers.synthesize ~reconfig:true spec in
  check Alcotest.bool "deadlines met" true r.C.deadlines_met;
  (* expected: one CPU + one FPGA with two modes (Fig. 4(e)) *)
  check Alcotest.int "two PEs" 2 r.C.n_pes;
  check Alcotest.int "two images" 2 r.C.n_modes;
  let kinds =
    Vec.fold
      (fun acc (pe : Arch.pe_inst) ->
        if Arch.n_images pe > 0 || pe.Arch.used_memory > 0 then
          (if Pe.is_cpu pe.Arch.ptype then `Cpu else `Hw) :: acc
        else acc)
      [] r.C.arch.Arch.pes
  in
  check Alcotest.bool "cpu present" true (List.mem `Cpu kinds);
  check Alcotest.bool "hw present" true (List.mem `Hw kinds)

let multirate_association_array () =
  let spec = Ex.multirate stock in
  let r = Helpers.synthesize ~lib:stock ~reconfig:true spec in
  check Alcotest.bool "deadlines met across 25us..60s rates" true r.C.deadlines_met

let synthesis_deterministic () =
  let spec = W.generate stock (W.scaled (W.preset "A1TR") 16.0) in
  let a = Helpers.synthesize ~lib:stock spec in
  let b = Helpers.synthesize ~lib:stock spec in
  check (Alcotest.float 1e-9) "same cost" a.C.cost b.C.cost;
  check Alcotest.int "same PEs" a.C.n_pes b.C.n_pes;
  check Alcotest.int "same links" a.C.n_links b.C.n_links

(* The domain pool must be an invisible optimization: synthesizing with
   4 domains commits exactly the candidates the sequential search would
   have committed (lowest-index-wins batching), so every architectural
   figure of merit matches bit for bit. *)
let parallel_jobs_deterministic () =
  List.iter
    (fun preset ->
      let spec = W.generate stock (W.scaled (W.preset preset) 16.0) in
      let run jobs =
        match
          C.synthesize ~options:{ C.default_options with C.jobs } spec stock
        with
        | Ok r -> r
        | Error m -> Alcotest.fail m
      in
      let seq = run 1 in
      let par = run 4 in
      check (Alcotest.float 1e-9) (preset ^ ": same cost") seq.C.cost par.C.cost;
      check Alcotest.int (preset ^ ": same PEs") seq.C.n_pes par.C.n_pes;
      check Alcotest.int (preset ^ ": same links") seq.C.n_links par.C.n_links;
      check Alcotest.int (preset ^ ": same images") seq.C.n_modes par.C.n_modes;
      check Alcotest.int
        (preset ^ ": same tardiness")
        seq.C.schedule.Schedule.total_tardiness
        par.C.schedule.Schedule.total_tardiness;
      check Alcotest.bool
        (preset ^ ": same verdict")
        seq.C.deadlines_met par.C.deadlines_met)
    [ "A1TR"; "VDRTX" ]

(* The reconfiguration-saves spot check moved to test_presets.ml, which
   pins all eight presets' costs for both variants exactly. *)

let clustering_ablation () =
  (* singleton clustering must still produce a feasible architecture, and
     critical-path clustering should not be drastically more expensive *)
  let spec = W.generate stock (W.scaled (W.preset "A1TR") 16.0) in
  let clustered = Helpers.synthesize ~lib:stock spec in
  let options = { C.default_options with use_clustering = false } in
  match C.synthesize ~options spec stock with
  | Error m -> Alcotest.fail m
  | Ok singleton ->
      check Alcotest.bool "singletons feasible" true singleton.C.deadlines_met;
      check Alcotest.bool "clustering within 25% of singleton cost" true
        (clustered.C.cost < singleton.C.cost *. 1.25)

let interface_always_synthesized () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize ~reconfig:true spec in
  check Alcotest.bool "interface chosen" true (r.C.chosen_interface <> None);
  check Alcotest.bool "interface cost recorded" true
    (r.C.arch.Arch.interface_cost <> None)

let merge_stats_reported () =
  let spec = W.generate stock (W.scaled (W.preset "A1TR") 16.0) in
  let r = Helpers.synthesize ~lib:stock ~reconfig:true spec in
  match r.C.merge_stats with
  | None -> Alcotest.fail "merge phase must run with reconfiguration"
  | Some _ -> ()

let schedule_consistent_with_arch () =
  let spec = W.generate stock (W.scaled (W.preset "A1TR") 16.0) in
  let r = Helpers.synthesize ~lib:stock spec in
  (* re-running the scheduler on the final architecture reproduces the
     deadline verdict *)
  match Schedule.run spec r.C.clustering r.C.arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      check Alcotest.bool "same verdict" r.C.deadlines_met sched.Schedule.deadlines_met

let impossible_task_rejected () =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"g" ~period:1000 ~deadline:900 () in
  (* runs nowhere *)
  ignore
    (Spec.Builder.add_task b ~graph:g ~name:"ghost"
       ~exec:(Array.make (Crusade_resource.Library.n_pe_types lib) (-1))
       ());
  let spec = Spec.Builder.finish_exn b ~name:"ghost" () in
  match C.synthesize spec lib with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unmappable task must be rejected"

let cost_includes_all_parts () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize ~reconfig:true spec in
  check (Alcotest.float 0.001) "result cost = arch cost" (Arch.cost r.C.arch) r.C.cost

let report_renders () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  let text = Format.asprintf "%a" C.pp_report r in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "mentions spec name" true (contains "figure2" text)

let suite =
  [
    Alcotest.test_case "figure2 without reconfiguration" `Quick figure2_without_reconfiguration;
    Alcotest.test_case "figure2 with reconfiguration" `Quick figure2_with_reconfiguration;
    Alcotest.test_case "figure4 architecture" `Quick figure4_expected_architecture;
    Alcotest.test_case "multirate association array" `Quick multirate_association_array;
    Alcotest.test_case "synthesis deterministic" `Quick synthesis_deterministic;
    Alcotest.test_case "parallel jobs deterministic" `Quick parallel_jobs_deterministic;
    Alcotest.test_case "clustering ablation" `Slow clustering_ablation;
    Alcotest.test_case "interface synthesized" `Quick interface_always_synthesized;
    Alcotest.test_case "merge stats reported" `Quick merge_stats_reported;
    Alcotest.test_case "schedule consistent" `Quick schedule_consistent_with_arch;
    Alcotest.test_case "impossible task rejected" `Quick impossible_task_rejected;
    Alcotest.test_case "cost consistent" `Quick cost_includes_all_parts;
    Alcotest.test_case "report renders" `Quick report_renders;
  ]
