(** Deadline-based priority levels (Section 5, after COSYN).

    The priority level of a task is the length of the longest path from
    the task to a task with a specified deadline, in computation and
    communication cost, minus that deadline: tasks on tight long paths get
    high levels and are clustered/allocated first.  Levels are recomputed
    after each allocation and clustering step by passing time providers
    reflecting the current architecture. *)

val compute :
  ?rev_orders:Crusade_taskgraph.Task.t list array ->
  Crusade_taskgraph.Spec.t ->
  exec_time:(Crusade_taskgraph.Task.t -> int) ->
  comm_time:(Crusade_taskgraph.Edge.t -> int) ->
  int array
(** [compute spec ~exec_time ~comm_time] returns the priority level of
    every task, indexed by global task id.

    [rev_orders], indexed by graph id, supplies each graph's
    reverse-topological order when the caller already holds it — levels
    are recomputed once per candidate architecture, and re-sorting the
    (fixed) graphs each time was measurable.

    [exec_time] should give the worst execution time still possible for
    the task (its allocated time once allocated, the maximum over feasible
    PE types before), and [comm_time] the matching communication time
    (zero for intra-cluster or intra-PE edges). *)

val unallocated_exec : Crusade_taskgraph.Task.t -> int
(** Time provider for the pre-allocation phase: worst feasible execution
    time over the PE library. *)

val unallocated_comm :
  Crusade_resource.Library.t -> Crusade_taskgraph.Edge.t -> int
(** Worst communication time over the link library at the average port
    count. *)
