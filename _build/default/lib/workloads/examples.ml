module Spec = Crusade_taskgraph.Spec
module Pe = Crusade_resource.Pe
module Library = Crusade_resource.Library
module Rng = Crusade_util.Rng

(* Execution-time vector: [time] on every PE type satisfying [eligible],
   infeasible elsewhere. *)
let exec_where lib ~eligible ~time =
  Array.init (Library.n_pe_types lib) (fun p ->
      let pe = Library.pe lib p in
      if eligible pe then
        let speed =
          match pe.Pe.pe_class with
          | Pe.General_purpose cpu -> cpu.speed_factor
          | Pe.Programmable info -> info.speed_factor
          | Pe.Asic_pe _ -> 1.0
        in
        max 1 (int_of_float (float_of_int time /. speed))
      else -1)

let fpga_only lib time =
  exec_where lib ~time ~eligible:(fun pe ->
      match pe.Pe.pe_class with
      | Pe.Programmable { kind = Pe.Fpga; _ } -> true
      | Pe.Programmable { kind = Pe.Cpld; _ } | Pe.General_purpose _ | Pe.Asic_pe _ ->
          false)

let cpu_only lib time = exec_where lib ~time ~eligible:Pe.is_cpu

let figure2 lib =
  let builder = Spec.Builder.create () in
  let add_graph ~name ~est =
    Spec.Builder.add_graph builder ~name ~period:50_000 ~est ~deadline:10_000 ()
  in
  let add_hw_task gid name =
    Spec.Builder.add_task builder ~graph:gid ~name ~exec:(fpga_only lib 8_000)
      ~gates:90 ~pins:10 ()
  in
  let g1 = add_graph ~name:"T1" ~est:0 in
  let _ = add_hw_task g1 "t1" in
  let g2 = add_graph ~name:"T2" ~est:15_000 in
  let _ = add_hw_task g2 "t2" in
  let g3 = add_graph ~name:"T3" ~est:30_000 in
  let _ = add_hw_task g3 "t3" in
  Spec.Builder.finish_exn builder ~name:"figure2" ()

let figure4 lib =
  let builder = Spec.Builder.create () in
  (* C0: a software pipeline; C1-C3: hardware blocks.  C1 and C2 occupy
     disjoint slots; C3 overlaps C1. *)
  let g0 =
    Spec.Builder.add_graph builder ~name:"C0" ~period:50_000 ~est:0 ~deadline:30_000 ()
  in
  let sw0 =
    Spec.Builder.add_task builder ~graph:g0 ~name:"c0_in" ~exec:(cpu_only lib 2_000)
      ~memory:{ Crusade_taskgraph.Task.program_bytes = 32_768; data_bytes = 16_384; stack_bytes = 4_096 }
      ()
  in
  let sw1 =
    Spec.Builder.add_task builder ~graph:g0 ~name:"c0_out" ~exec:(cpu_only lib 2_500)
      ~memory:{ Crusade_taskgraph.Task.program_bytes = 24_576; data_bytes = 8_192; stack_bytes = 4_096 }
      ()
  in
  Spec.Builder.add_edge builder ~src:sw0 ~dst:sw1 ~bytes:128;
  let add_hw ~name ~est ~gates_a ~gates_b =
    let gid =
      Spec.Builder.add_graph builder ~name ~period:50_000 ~est ~deadline:8_000 ()
    in
    let a =
      Spec.Builder.add_task builder ~graph:gid ~name:(name ^ "_a")
        ~exec:(fpga_only lib 2_500) ~gates:gates_a ~pins:6 ()
    in
    let b =
      Spec.Builder.add_task builder ~graph:gid ~name:(name ^ "_b")
        ~exec:(fpga_only lib 2_500) ~gates:gates_b ~pins:6 ()
    in
    Spec.Builder.add_edge builder ~src:a ~dst:b ~bytes:64;
    gid
  in
  let _c1 = add_hw ~name:"C1" ~est:0 ~gates_a:50 ~gates_b:50 in
  let _c2 = add_hw ~name:"C2" ~est:10_000 ~gates_a:50 ~gates_b:50 in
  let _c3 = add_hw ~name:"C3" ~est:2_000 ~gates_a:15 ~gates_b:15 in
  Spec.Builder.finish_exn builder ~name:"figure4" ()

let multirate lib =
  let builder = Spec.Builder.create () in
  let chain gid names time_us exec_of =
    let ids = List.map (fun n -> exec_of gid n time_us) names in
    let rec link = function
      | a :: (b :: _ as rest) ->
          Spec.Builder.add_edge builder ~src:a ~dst:b ~bytes:64;
          link rest
      | [ _ ] | [] -> ()
    in
    link ids
  in
  let hw_task gid name time =
    Spec.Builder.add_task builder ~graph:gid ~name ~exec:(fpga_only lib time)
      ~gates:30 ~pins:5 ()
  in
  let sw_task gid name time =
    Spec.Builder.add_task builder ~graph:gid ~name ~exec:(cpu_only lib time)
      ~memory:{ Crusade_taskgraph.Task.program_bytes = 16_384; data_bytes = 8_192; stack_bytes = 2_048 }
      ()
  in
  (* ATM cell processing: 25 us period, a few microseconds of hardware
     pipeline per cell. *)
  let cell =
    Spec.Builder.add_graph builder ~name:"atm-cell" ~period:25 ~est:0 ~deadline:20 ()
  in
  chain cell [ "hec"; "vpi"; "police"; "queue" ] 3 hw_task;
  (* SONET framing at 125 us. *)
  let frame =
    Spec.Builder.add_graph builder ~name:"sonet-frame" ~period:125 ~est:0 ~deadline:100
      ()
  in
  chain frame [ "a1a2"; "b1"; "pointer"; "spe"; "descr" ] 12 hw_task;
  (* Performance monitoring at 1 ms (software). *)
  let pm =
    Spec.Builder.add_graph builder ~name:"perf-mon" ~period:1_000 ~est:0 ~deadline:900 ()
  in
  chain pm [ "collect"; "threshold" ] 120 sw_task;
  (* Protection switching at 10 ms (hardware). *)
  let ps =
    Spec.Builder.add_graph builder ~name:"protection" ~period:10_000 ~est:0
      ~deadline:5_000 ()
  in
  chain ps [ "detect"; "vote"; "switch" ] 600 hw_task;
  (* Provisioning scan: one minute period, long software chain. *)
  let prov =
    Spec.Builder.add_graph builder ~name:"provisioning" ~period:60_000_000 ~est:0
      ~deadline:30_000_000 ~unavailability_budget:12.0 ()
  in
  chain prov
    [ "parse"; "validate"; "apply"; "audit"; "commit"; "report" ]
    5_000 sw_task;
  Spec.Builder.finish_exn builder ~name:"multirate-sonet-atm" ()

type table1_circuit = {
  circuit_name : string;
  pfus : int;
  pins : int;
  cross_fraction : float;
}

let table1_circuits =
  [
    { circuit_name = "cvs1"; pfus = 18; pins = 20; cross_fraction = 0.0 };
    { circuit_name = "cvs2"; pfus = 20; pins = 22; cross_fraction = 0.0 };
    { circuit_name = "xtrs1"; pfus = 36; pins = 28; cross_fraction = 0.0 };
    { circuit_name = "xtrs2"; pfus = 40; pins = 30; cross_fraction = 0.0 };
    { circuit_name = "rnvk"; pfus = 48; pins = 30; cross_fraction = 0.0 };
    { circuit_name = "fcsdp"; pfus = 35; pins = 26; cross_fraction = 0.12 };
    { circuit_name = "r2d2p"; pfus = 46; pins = 34; cross_fraction = 0.6 };
    { circuit_name = "cv46"; pfus = 74; pins = 40; cross_fraction = 0.6 };
    { circuit_name = "wamxp"; pfus = 84; pins = 46; cross_fraction = 0.6 };
    { circuit_name = "pewxfm"; pfus = 47; pins = 32; cross_fraction = 0.12 };
  ]

let table1_netlist c =
  let rng = Rng.create 42 in
  Crusade_pnr.Circuit.generate ~cross_fraction:c.cross_fraction rng
    ~name:c.circuit_name ~pfus:c.pfus ~pins:c.pins

let upgrade_scenario lib =
  let builder = Spec.Builder.create () in
  let hw_task gid name time gates =
    Spec.Builder.add_task builder ~graph:gid ~name ~exec:(fpga_only lib time)
      ~gates ~pins:5 ()
  in
  let sw_task gid name time =
    Spec.Builder.add_task builder ~graph:gid ~name ~exec:(cpu_only lib time)
      ~memory:
        { Crusade_taskgraph.Task.program_bytes = 24_576; data_bytes = 8_192; stack_bytes = 2_048 }
      ()
  in
  let edge src dst = Spec.Builder.add_edge builder ~src ~dst ~bytes:64 in
  (* Initial release: framing in slot [0, 12ms), policing in [12, 24ms),
     and a software monitor. *)
  let framer =
    Spec.Builder.add_graph builder ~name:"framer" ~period:48_000 ~est:0
      ~deadline:12_000 ()
  in
  let f1 = hw_task framer "align" 3_000 60 in
  let f2 = hw_task framer "descramble" 3_000 60 in
  edge f1 f2;
  let policer =
    Spec.Builder.add_graph builder ~name:"policer" ~period:48_000 ~est:12_000
      ~deadline:12_000 ()
  in
  let p1 = hw_task policer "meter" 3_000 60 in
  let p2 = hw_task policer "mark" 3_000 50 in
  edge p1 p2;
  let monitor =
    Spec.Builder.add_graph builder ~name:"monitor" ~period:48_000 ~est:0
      ~deadline:40_000 ()
  in
  let m1 = sw_task monitor "collect" 2_000 in
  let m2 = sw_task monitor "report" 1_500 in
  edge m1 m2;
  (* Feature release: encryption offload in the idle slot [24, 36ms) and
     an extra traffic class in [36, 48ms). *)
  let crypto =
    Spec.Builder.add_graph builder ~name:"crypto-offload" ~period:48_000 ~est:24_000
      ~deadline:12_000 ()
  in
  let c1 = hw_task crypto "keyexp" 2_500 55 in
  let c2 = hw_task crypto "cipher" 3_500 70 in
  edge c1 c2;
  let tclass =
    Spec.Builder.add_graph builder ~name:"traffic-class" ~period:48_000 ~est:36_000
      ~deadline:12_000 ()
  in
  let t1 = hw_task tclass "classify" 3_000 65 in
  let t2 = hw_task tclass "queue" 2_500 50 in
  edge t1 t2;
  let spec = Spec.Builder.finish_exn builder ~name:"field-upgrade" () in
  (spec, [ crypto; tclass ])
