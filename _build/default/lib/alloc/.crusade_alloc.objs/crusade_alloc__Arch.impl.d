lib/alloc/arch.ml: Array Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util Format Hashtbl List Option Printf
