(* Incremental rescheduling: the replay engine's exactness contract.

   Every test records a full scheduler run on a base architecture,
   perturbs the placement (the way candidate evaluation does: one
   cluster moves), and asserts that replaying the recording against the
   perturbed architecture is bit-identical — schedule and verdict — to
   a fresh [Schedule.run] on it.  Micro-specs pin the structurally
   interesting cases (single PE, a shared link, a mode-window boundary,
   the copy-cap extrapolation edge); a qcheck property sweeps random
   workloads under random single-cluster perturbations. *)

module Spec = Crusade_taskgraph.Spec
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Options = Crusade_alloc.Options
module Schedule = Crusade_sched.Schedule
module W = Crusade_workloads.Comm_system

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* First-fit placement: options are ordered by incremental cost, so
   non-overlapping clusters naturally share devices through new modes
   when reconfiguration-style placements are allowed. *)
let place_all spec clustering arch =
  Array.iter
    (fun (c : Clustering.cluster) ->
      let options =
        Options.enumerate arch spec clustering c ~allow_new_modes:true ()
      in
      let rec attempt = function
        | [] -> Alcotest.failf "cluster %d: no applicable option" c.Clustering.cid
        | o :: rest -> (
            match Options.apply arch spec clustering c o with
            | Ok () -> ()
            | Error _ -> attempt rest)
      in
      attempt options)
    clustering.Clustering.clusters

(* Move one cluster somewhere else: unplace it and apply the first
   applicable option that targets a different PE (a fresh instance if
   nothing else moves it).  Falls back to leaving it unplaced — also a
   legal candidate state for the scheduler. *)
let move_cluster spec clustering arch cid =
  let c = clustering.Clustering.clusters.(cid) in
  let old_pe =
    match Arch.site_of_cluster arch cid with
    | Some s -> s.Arch.s_pe
    | None -> -1
  in
  Arch.unplace_cluster arch clustering c;
  let moves (o : Options.t) =
    match o.Options.kind with
    | Options.Existing_site s -> s.Arch.s_pe <> old_pe
    | Options.New_mode pe_id -> pe_id <> old_pe
    | Options.New_pe _ -> true
  in
  let rec attempt = function
    | [] -> ()
    | o :: rest -> (
        match Options.apply arch spec clustering c o with
        | Ok () -> ()
        | Error _ -> attempt rest)
  in
  attempt
    (List.filter moves
       (Options.enumerate arch spec clustering c ~allow_new_modes:true ()))

let scheds_equal (a : Schedule.t) (b : Schedule.t) =
  a.Schedule.instances = b.Schedule.instances
  && a.Schedule.deadlines_met = b.Schedule.deadlines_met
  && a.Schedule.total_tardiness = b.Schedule.total_tardiness
  && a.Schedule.scheduled_tasks = b.Schedule.scheduled_tasks
  && a.Schedule.mode_switches = b.Schedule.mode_switches

(* The exactness check: replay of [recording] against [arch] must agree
   bit-for-bit with a fresh run — both the full schedule and the
   verdict-only path — including agreeing on failure. *)
let assert_replay_exact ?(copy_cap = Schedule.default_copy_cap) name spec
    clustering arch recording =
  if not (Schedule.Replay.compatible recording ~copy_cap spec clustering) then
    Alcotest.failf "%s: recording not compatible with its own inputs" name;
  let prep = Schedule.Replay.prepare recording spec clustering arch in
  match
    ( Schedule.run ~copy_cap spec clustering arch,
      Schedule.Replay.replay_run prep,
      Schedule.Replay.replay_verdict prep )
  with
  | Ok fresh, Ok replayed, Ok verdict ->
      check Alcotest.bool (name ^ ": schedule bit-identical") true
        (scheds_equal fresh replayed);
      check Alcotest.bool (name ^ ": verdict bit-identical") true
        (verdict.Schedule.v_tardiness = fresh.Schedule.total_tardiness
        && verdict.Schedule.v_met = fresh.Schedule.deadlines_met
        && verdict.Schedule.v_scheduled = fresh.Schedule.scheduled_tasks)
  | Error e_fresh, Error e_run, Error e_verdict ->
      check Alcotest.string (name ^ ": replay_run fails identically") e_fresh e_run;
      check Alcotest.string (name ^ ": replay_verdict fails identically") e_fresh e_verdict
  | Ok _, _, _ | Error _, _, _ ->
      Alcotest.failf "%s: replay and fresh run disagree on success" name

(* Record on the base placement, apply [perturb], check exactness on the
   perturbed architecture (and, first, on the unperturbed one: a cut at
   the full recording must still replay exactly). *)
let record_perturb_check ?(copy_cap = Schedule.default_copy_cap) name spec
    clustering arch perturb =
  let recording =
    match Schedule.Replay.record ~copy_cap spec clustering arch with
    | Ok (_, r) -> r
    | Error msg -> Alcotest.failf "%s: record failed: %s" name msg
  in
  assert_replay_exact ~copy_cap (name ^ " (identity)") spec clustering arch
    recording;
  perturb ();
  assert_replay_exact ~copy_cap name spec clustering arch recording

let clustering_of ?(max_cluster_size = 2) spec lib =
  Clustering.run ~max_cluster_size spec lib

(* --- Micro-spec: every task on one CPU ------------------------------- *)

let single_pe () =
  let lib = Helpers.small_lib in
  let spec, _ = Helpers.sw_chain ~lib 4 in
  let clustering = clustering_of spec lib in
  let arch = Arch.create lib in
  place_all spec clustering arch;
  record_perturb_check "single-pe" spec clustering arch (fun () ->
      move_cluster spec clustering arch
        clustering.Clustering.clusters.(0).Clustering.cid)

(* --- Micro-spec: two PEs communicating over a shared link ------------ *)

let shared_link () =
  let lib = Helpers.small_lib in
  let spec, _ = Helpers.sw_chain ~lib 4 in
  let clustering = clustering_of ~max_cluster_size:1 spec lib in
  let arch = Arch.create lib in
  place_all spec clustering arch;
  (* Split the chain across PEs so at least one edge crosses a link. *)
  let nc = Array.length clustering.Clustering.clusters in
  move_cluster spec clustering arch (nc - 1);
  record_perturb_check "shared-link" spec clustering arch (fun () ->
      move_cluster spec clustering arch (nc - 2))

(* --- Micro-spec: reconfiguration mode-window boundary ---------------- *)

let mode_window () =
  let lib = Helpers.small_lib in
  let spec, _, _ = Helpers.two_hw_graphs ~lib ~overlap:false () in
  let clustering = clustering_of spec lib in
  let arch = Arch.create lib in
  (* First-fit placement shares one programmable device through a second
     mode (the graphs do not overlap), so the recording carries a mode
     switch whose boot window the replay must reproduce exactly. *)
  place_all spec clustering arch;
  record_perturb_check "mode-window" spec clustering arch (fun () ->
      move_cluster spec clustering arch
        clustering.Clustering.clusters.(1).Clustering.cid)

(* --- Micro-spec: copy-cap extrapolation edge ------------------------- *)

let copy_cap_edge () =
  let lib = Helpers.small_lib in
  let b = Spec.Builder.create () in
  let fast = Spec.Builder.add_graph b ~name:"fast" ~period:2_000 ~deadline:1_800 () in
  let slow = Spec.Builder.add_graph b ~name:"slow" ~period:16_000 ~deadline:12_000 () in
  let f1 =
    Spec.Builder.add_task b ~graph:fast ~name:"f1" ~exec:(Helpers.cpu_exec ~lib 300) ()
  in
  let f2 =
    Spec.Builder.add_task b ~graph:fast ~name:"f2" ~exec:(Helpers.cpu_exec ~lib 300) ()
  in
  Spec.Builder.add_edge b ~src:f1 ~dst:f2 ~bytes:32;
  let s1 =
    Spec.Builder.add_task b ~graph:slow ~name:"s1" ~exec:(Helpers.cpu_exec ~lib 900) ()
  in
  let s2 =
    Spec.Builder.add_task b ~graph:slow ~name:"s2" ~exec:(Helpers.cpu_exec ~lib 900) ()
  in
  Spec.Builder.add_edge b ~src:s1 ~dst:s2 ~bytes:32;
  let spec = Spec.Builder.finish_exn b ~name:"copy-cap-edge" () in
  (* hyperperiod/period = 8 copies of the fast graph against a cap of 2:
     the recording covers only the explicit window and the verdict
     extrapolates the rest — the replay must land on the same numbers. *)
  let clustering = clustering_of spec lib in
  let arch = Arch.create lib in
  place_all spec clustering arch;
  record_perturb_check ~copy_cap:2 "copy-cap-edge" spec clustering arch
    (fun () ->
      move_cluster spec clustering arch
        clustering.Clustering.clusters.(0).Clustering.cid)

(* --- Property: random single-cluster perturbations ------------------- *)

let tiny_params seed =
  {
    W.name = Printf.sprintf "inc%d" seed;
    n_tasks = 40;
    seed;
    hw_fraction = 0.5;
    family_slots = 3;
    asic_fraction = 0.1;
    cpld_fraction = 0.1;
  }

let replay_exact_under_perturbation =
  QCheck.Test.make
    ~name:"replay is bit-identical under random single-cluster moves" ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let lib = Helpers.stock_lib in
      let spec = W.generate lib (tiny_params ((seed mod 997) + 1)) in
      let clustering = Clustering.run ~max_cluster_size:4 spec lib in
      let arch = Arch.create lib in
      place_all spec clustering arch;
      let recording =
        match Schedule.Replay.record spec clustering arch with
        | Ok (_, r) -> r
        | Error msg -> QCheck.Test.fail_reportf "record failed: %s" msg
      in
      let rng = Random.State.make [| seed |] in
      let nc = Array.length clustering.Clustering.clusters in
      (* A handful of successive moves against one recording: the diff
         is against the snapshot, so later moves exercise wider cuts. *)
      List.for_all
        (fun (_ : int) ->
          move_cluster spec clustering arch (Random.State.int rng nc);
          let prep = Schedule.Replay.prepare recording spec clustering arch in
          match
            (Schedule.run spec clustering arch, Schedule.Replay.replay_run prep)
          with
          | Ok fresh, Ok replayed -> scheds_equal fresh replayed
          | Error a, Error b -> a = b
          | Ok _, Error _ | Error _, Ok _ -> false)
        [ 1; 2; 3 ])

(* Keyed recording slots: evaluating clustering A, then B, then A again
   must replay A from its retained basis — a single-slot engine would
   have evicted it and paid a cold rebuild.  This is what lets a
   portfolio trajectory that restarts from a clustering seen earlier
   reuse its scheduling basis. *)
let keyed_slots () =
  let module I = Crusade_sched.Incremental in
  let lib = Helpers.stock_lib in
  let spec = W.generate lib (tiny_params 3) in
  let cl_a = Clustering.run ~max_cluster_size:4 spec lib in
  let cl_b = Clustering.run ~max_cluster_size:2 spec lib in
  let arch_a = Arch.create lib in
  place_all spec cl_a arch_a;
  let arch_b = Arch.create lib in
  place_all spec cl_b arch_b;
  let eng = I.create () in
  let expect what = function
    | `Ran (Ok _) when what = `Ran -> ()
    | `Replayed (Ok _) when what = `Replayed -> ()
    | `Ran (Error msg) | `Replayed (Error msg) ->
        Alcotest.failf "evaluation failed: %s" msg
    | `Ran (Ok _) -> Alcotest.fail "expected a replay, got a cold rebuild"
    | `Replayed (Ok _) -> Alcotest.fail "expected a rebuild, got a replay"
  in
  expect `Ran (I.evaluate eng spec cl_a arch_a);
  expect `Ran (I.evaluate eng spec cl_b arch_b);
  expect `Replayed (I.evaluate eng spec cl_a arch_a);
  expect `Replayed (I.evaluate eng spec cl_b arch_b);
  check Alcotest.int "rebuilds" 2 (I.rebuilds eng);
  check Alcotest.int "replays" 2 (I.replays eng)

let suite =
  [
    ("single PE", `Quick, single_pe);
    ("shared link", `Quick, shared_link);
    ("mode-window boundary", `Quick, mode_window);
    ("copy-cap extrapolation edge", `Quick, copy_cap_edge);
    ("keyed recording slots", `Quick, keyed_slots);
    qcheck replay_exact_under_perturbation;
  ]
