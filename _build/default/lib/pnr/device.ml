type t = {
  rows : int;
  cols : int;
  wires_per_channel : int;
  io_pins : int;
  pfu_delay_ns : float;
  segment_delay_ns : float;
}

let pfus t = t.rows * t.cols

let make ~rows ~cols ?(wires_per_channel = 6) ?(io_pins = 60) () =
  {
    rows;
    cols;
    wires_per_channel;
    io_pins;
    pfu_delay_ns = 4.5;
    segment_delay_ns = 1.2;
  }

let table1_device = make ~rows:10 ~cols:10 ~wires_per_channel:6 ~io_pins:60 ()
