module Resynth = Crusade_core.Resynth

type verdict =
  | Reprogramming_only of { result : Crusade_core.result; added_images : int }
  | Needs_hardware of {
      result : Crusade_core.result;
      added_pes : int;
      added_cost : float;
    }
  | Infeasible of string

type report = {
  base : Crusade_core.result;
  verdict : verdict;
  reprogram_attempt : Resynth.attempt_outcome;
  hardware_attempt : Resynth.attempt_outcome option;
  resynth : Resynth.report;
}

let describe_outcome = function
  | Resynth.Met -> "deadlines met"
  | Resynth.Tardy t -> Printf.sprintf "deadlines missed by %d us" t
  | Resynth.Failed msg -> msg

let analyze ?(options = Crusade_core.default_options) spec lib ~upgrade_graphs =
  let is_upgrade g = List.mem g upgrade_graphs in
  match
    Crusade_core.synthesize ~options ~include_graph:(fun g -> not (is_upgrade g)) spec
      lib
  with
  | Error msg -> Error msg
  | Ok base -> (
      match Resynth.apply ~options base (Resynth.Upgrade upgrade_graphs) with
      | Error msg -> Error msg
      | Ok rep ->
          let verdict =
            match rep.Resynth.verdict with
            | Resynth.Images_only { result; added_images } ->
                Reprogramming_only { result; added_images }
            | Resynth.Needs_hardware { result; added_pes; added_cost } ->
                Needs_hardware { result; added_pes; added_cost }
            | Resynth.Infeasible ->
                (* Both attempts' outcomes, not just the last one: why
                   reprogramming alone failed, and why (or whether) new
                   hardware could not rescue it either. *)
                Infeasible
                  (match rep.Resynth.hardware_attempt with
                  | Some hw ->
                      Printf.sprintf
                        "reprogramming-only: %s; with new hardware: %s"
                        (describe_outcome rep.Resynth.reprogram_attempt)
                        (describe_outcome hw)
                  | None ->
                      Printf.sprintf "reprogramming-only: %s"
                        (describe_outcome rep.Resynth.reprogram_attempt))
          in
          Ok
            {
              base;
              verdict;
              reprogram_attempt = rep.Resynth.reprogram_attempt;
              hardware_attempt = rep.Resynth.hardware_attempt;
              resynth = rep;
            })

let audit (r : report) =
  let base_violations =
    Crusade_core.audit
      ~include_graph:(Resynth.expected_graphs r.base (Resynth.Upgrade []))
      r.base
  in
  base_violations @ Resynth.audit_report r.resynth
