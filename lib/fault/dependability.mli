(** Dependability analysis and standby-spare provisioning (Section 6).

    Every hardware module carries a failure-in-time (FIT) rate — expected
    failures per 10^9 hours — and a mean time to repair (MTTR, two hours
    in the paper's experiments).  Error recovery switches to standby
    spares; spares are provisioned per PE type, shared across the
    architecture, until every task graph's unavailability budget
    (minutes/year) is met.  Availability of each pool is evaluated with
    the classic machine-repairman Markov chain (warm spares, one repair
    crew). *)

val fit_rate : Crusade_resource.Pe.t -> float
(** FIT rate by PE class: 500 (CPU), 200 (ASIC), 350 (FPGA), 250 (CPLD);
    values in the ranges Bellcore TR-NWT-000418 implies. *)

val link_fit_rate : float
(** 100 FIT per link instance. *)

val default_mttr_hours : float
(** 2.0 *)

val pool_unavailability :
  ?mttr_hours:float -> n_active:int -> spares:int -> fit:float -> unit -> float
(** Steady-state probability that more units are failed than there are
    spares, i.e. an active slot is unfilled.  [fit] is per unit. *)

val minutes_per_year : float -> float
(** Converts an unavailability probability to expected minutes/year. *)

type provisioning = {
  spares : (Crusade_resource.Pe.t * int) list;  (** spare count per PE type *)
  link_spares : int;  (** warm spares added to the shared link pool *)
  spare_cost : float;
  graph_unavailability : (string * float) list;
      (** achieved minutes/year per task graph with a budget *)
}

val spare_link_cost : float
(** Dollars per spare link (a transceiver set at the cheapest link type
    cost): 12.0. *)

val provision :
  ?mttr_hours:float ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  provisioning
(** Adds spares greedily (largest unavailability contributor first) until
    every graph with an [unavailability_budget] meets it.  A graph's
    unavailability sums the pool unavailabilities of the PE types its
    clusters use plus the shared link pool. *)

val achieved_unavailability :
  ?mttr_hours:float ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  provisioning ->
  (string * float * float) list
(** [(graph name, budget, achieved minutes/year)] for every budgeted
    graph, re-derived from the architecture and the provisioning's spare
    counts alone — the independent recomputation behind [Ft.audit]'s
    availability check.  Follows {!provision}'s pool construction and
    fold order exactly, so on an untampered result the achieved values
    are bit-identical to [graph_unavailability]. *)
