(** Small descriptive-statistics helpers used when reporting experiments. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method.
    @raise Invalid_argument on the empty list. *)
