type memory = { program_bytes : int; data_bytes : int; stack_bytes : int }

let no_memory = { program_bytes = 0; data_bytes = 0; stack_bytes = 0 }
let total_bytes m = m.program_bytes + m.data_bytes + m.stack_bytes

type assertion_spec = {
  assertion_name : string;
  coverage : float;
  check_exec : int array;
  check_bytes : int;
}

type ft_info = {
  assertions : assertion_spec list;
  error_transparent : bool;
  required_coverage : float;
}

let default_ft = { assertions = []; error_transparent = false; required_coverage = 0.0 }

type t = {
  id : int;
  name : string;
  graph : int;
  exec : int array;
  preference : int array option;
  exclusion : int list;
  memory : memory;
  gates : int;
  pins : int;
  deadline : int option;
  ft : ft_info;
}

let exec_on t pe_type =
  if pe_type < 0 || pe_type >= Array.length t.exec then None
  else begin
    let time = t.exec.(pe_type) in
    let preferred =
      match t.preference with None -> true | Some pref -> pref.(pe_type) <> 0
    in
    if time < 0 || not preferred then None else Some time
  end

(* Allocation-free [exec_on] for the scheduler's per-candidate loops:
   -1 means "cannot run there" instead of [None], so the probe stays off
   the minor heap. *)
let exec_us_on t pe_type =
  if pe_type < 0 || pe_type >= Array.length t.exec then -1
  else begin
    let time = t.exec.(pe_type) in
    let preferred =
      match t.preference with None -> true | Some pref -> pref.(pe_type) <> 0
    in
    if time < 0 || not preferred then -1 else time
  end

let can_run_on t pe_type = exec_on t pe_type <> None

let fold_feasible f init t =
  let acc = ref init in
  Array.iteri
    (fun pe_type _ ->
      match exec_on t pe_type with
      | Some time -> acc := f !acc time
      | None -> ())
    t.exec;
  !acc

let max_exec t =
  match fold_feasible (fun acc x -> Some (match acc with None -> x | Some a -> max a x)) None t with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Task.max_exec: task %s runs nowhere" t.name)

let min_exec t =
  match fold_feasible (fun acc x -> Some (match acc with None -> x | Some a -> min a x)) None t with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Task.min_exec: task %s runs nowhere" t.name)

let excludes a b = List.mem b.id a.exclusion || List.mem a.id b.exclusion
