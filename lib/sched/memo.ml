module Spec = Crusade_taskgraph.Spec
module Clustering = Crusade_cluster.Clustering
module Library = Crusade_resource.Library
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec
module Trace = Crusade_util.Trace

(* Structural fingerprint of every [Schedule.run] input.

   The scheduler reads, besides the spec/clustering/library (guarded by
   physical identity below) and the copy cap:
   - per PE: the type (exec times, CPU preemption and communication
     properties), the full-device boot time (interface synthesis mutates
     it), and each mode's PFU usage (partial reconfiguration scales the
     boot time by it);
   - per link: the type and the attached PE set (connectivity and the
     port count in the transfer-time model);
   - the placement map (cluster -> PE/mode).
   Mode occupancy lists, memory accounting and costs do not influence
   the schedule, so they stay out of the key. *)
type key = {
  k_copy_cap : int;
  k_pes : (int * int * int list) array;  (* (type id, boot_full_us, m_gates) *)
  k_links : (int * int list) array;  (* (type id, sorted attached) *)
  k_sites : (int * int * int) list;  (* (cluster, pe, mode), by cluster *)
}

(* Candidate architectures from one synthesis share long common
   prefixes, and the default [Hashtbl.hash] samples only a few nodes of
   a value — keying the store on the raw key would collapse most keys
   into a handful of buckets and turn every probe into a deep structural
   comparison along the chain.  So the full-depth hash is computed once
   at fingerprint time and stored with the key; equality short-circuits
   on it. *)
type hashed_key = { kh : int; kd : key }

module Key = struct
  type t = hashed_key

  let equal a b = a.kh = b.kh && a.kd = b.kd
  let hash a = a.kh
end

module Store = Hashtbl.Make (Key)

type entry = {
  e_spec : Spec.t;
  e_clustering : Clustering.t;
  e_lib : Library.t;
  e_result : (Schedule.t, string) result;
  mutable e_stamp : int;
}

(* Small on purpose: an entry retains a full schedule (instance arrays
   grow with tasks x copies), and the hits come from the short-range
   revisits of repair, merge and interface synthesis, not from the
   essentially unique allocation candidates. *)
let capacity = 64

type t = {
  enabled : bool;
  engine : Incremental.t option;
  trace : Trace.t option;
  mutable tick : int;
  store : entry Store.t;
  lock : Mutex.t;
  hit_counter : Trace.Counter.t;
  miss_counter : Trace.Counter.t;
  prune_counter : Trace.Counter.t;
  bypass_counter : Trace.Counter.t;
}

let create ?(enabled = true) ?(incremental = true) ?basis_store ?trace
    ?metrics () =
  let counter name =
    match metrics with
    | Some m -> Trace.Metrics.counter m name
    | None -> Trace.Counter.make ()
  in
  {
    enabled;
    engine =
      (if incremental then
         Some (Incremental.create ?store:basis_store ?trace ?metrics ())
       else None);
    trace;
    tick = 0;
    store = Store.create capacity;
    lock = Mutex.create ();
    hit_counter = counter "eval.memo_hits";
    miss_counter = counter "eval.memo_misses";
    prune_counter = counter "eval.pruned";
    bypass_counter = counter "eval.memo_bypassed";
  }

let hits t = Trace.Counter.get t.hit_counter
let misses t = Trace.Counter.get t.miss_counter
let prunes t = Trace.Counter.get t.prune_counter
let bypasses t = Trace.Counter.get t.bypass_counter
let note_prune t = Trace.Counter.incr t.prune_counter
let replays t = match t.engine with Some e -> Incremental.replays e | None -> 0
let rebuilds t = match t.engine with Some e -> Incremental.rebuilds e | None -> 0

let adoptions t =
  match t.engine with Some e -> Incremental.adoptions e | None -> 0

let basis_cuts t =
  match t.engine with Some e -> Incremental.basis_cuts e | None -> 0

let fingerprint ~copy_cap (clustering : Clustering.t) (arch : Arch.t) =
  let k_pes =
    Array.init (Vec.length arch.Arch.pes) (fun i ->
        let pe = Vec.get arch.Arch.pes i in
        let gates =
          List.rev
            (Vec.fold (fun acc (m : Arch.mode) -> m.Arch.m_gates :: acc) []
               pe.Arch.modes)
        in
        (pe.Arch.ptype.Crusade_resource.Pe.id, pe.Arch.boot_full_us, gates))
  in
  let k_links =
    Array.init (Vec.length arch.Arch.links) (fun i ->
        let l = Vec.get arch.Arch.links i in
        ( l.Arch.ltype.Crusade_resource.Link.id,
          List.sort_uniq Int.compare l.Arch.attached ))
  in
  let k_sites =
    let all = ref [] in
    Array.iter
      (fun (c : Clustering.cluster) ->
        match Arch.site_of_cluster arch c.Clustering.cid with
        | Some site ->
            all := (c.Clustering.cid, site.Arch.s_pe, site.Arch.s_mode) :: !all
        | None -> ())
      clustering.Clustering.clusters;
    List.rev !all
  in
  let kd = { k_copy_cap = copy_cap; k_pes; k_links; k_sites } in
  (* Traversal limits far above any real key size: the hash must see the
     whole structure or same-prefix keys collide. *)
  { kh = Hashtbl.hash_param 4096 65536 kd; kd }

let evict_lru t =
  (* Called with the lock held, only when full: a linear scan of the
     bounded store is noise next to the [Schedule.run] it avoids. *)
  let victim = ref None in
  Store.iter
    (fun key entry ->
      match !victim with
      | Some (_, stamp) when stamp <= entry.e_stamp -> ()
      | _ -> victim := Some (key, entry.e_stamp))
    t.store;
  match !victim with
  | Some (key, _) -> Store.remove t.store key
  | None -> ()

let lookup t key spec clustering lib =
  Mutex.lock t.lock;
  let found =
    match Store.find_opt t.store key with
    | Some e when e.e_spec == spec && e.e_clustering == clustering && e.e_lib == lib
      ->
        t.tick <- t.tick + 1;
        e.e_stamp <- t.tick;
        Some e.e_result
    | Some _ | None -> None
  in
  Mutex.unlock t.lock;
  found

let insert t key spec clustering lib result =
  Mutex.lock t.lock;
  (match Store.find_opt t.store key with
  | Some _ -> Store.remove t.store key
  | None -> if Store.length t.store >= capacity then evict_lru t);
  t.tick <- t.tick + 1;
  Store.replace t.store key
    {
      e_spec = spec;
      e_clustering = clustering;
      e_lib = lib;
      e_result = result;
      e_stamp = t.tick;
    };
  Mutex.unlock t.lock

(* Full (materializing) scheduler runs go through the incremental
   engine's [record] when one is attached: the run costs the same but
   refreshes the recording that serves subsequent {!evaluate} calls.
   [Incremental.record] emits its own ["schedule.run"] span. *)
let traced_run t ~copy_cap spec clustering arch =
  match t.engine with
  | Some eng -> Incremental.record eng ~copy_cap spec clustering arch
  | None ->
      Trace.span t.trace "schedule.run" (fun () ->
          Schedule.run ~copy_cap spec clustering arch)

let run t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  if not t.enabled then traced_run t ~copy_cap spec clustering arch
  else begin
    let key = fingerprint ~copy_cap clustering arch in
    match lookup t key spec clustering arch.Arch.lib with
    | Some result ->
        Trace.Counter.incr t.hit_counter;
        Trace.instant t.trace "memo.hit";
        result
    | None ->
        Trace.Counter.incr t.miss_counter;
        let result = traced_run t ~copy_cap spec clustering arch in
        insert t key spec clustering arch.Arch.lib result;
        result
  end

(* Commit-point refresh of the replay basis: a record-only scheduler
   run (no schedule materialization, no memo-table traffic).  A no-op
   without an engine — the memo table needs no refreshing. *)
let refresh t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  match t.engine with
  | Some eng -> Incremental.refresh eng ~copy_cap spec clustering arch
  | None -> ()

let verdict_of (sched : Schedule.t) =
  {
    Schedule.v_tardiness = sched.Schedule.total_tardiness;
    v_met = sched.Schedule.deadlines_met;
    v_scheduled = sched.Schedule.scheduled_tasks;
  }

let verdict_result = function
  | Ok sched -> Ok (verdict_of sched)
  | Error e -> Error e

(* Verdict-only candidate evaluation.  With an incremental engine the
   memo table is bypassed entirely: candidate trials are essentially
   unique, so the table's hit rate on this path was a handful out of
   thousands, while the deep structural fingerprint it required cost
   more per trial than the replay it occasionally saved — the replay
   engine *is* the cache here.  Without an engine the table answers
   first, as [run] does. *)
let evaluate t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  match t.engine with
  | Some eng -> (
      (* Count the bypass so the LRU's hit/miss columns read honestly:
         with an engine attached, evaluations never consult the table,
         and a frozen [memo_hits] would otherwise look like a broken
         cache rather than a deliberate detour. *)
      Trace.Counter.incr t.bypass_counter;
      match Incremental.evaluate eng ~copy_cap spec clustering arch with
      | `Replayed v -> v
      | `Ran result -> verdict_result result)
  | None ->
      if not t.enabled then
        verdict_result (traced_run t ~copy_cap spec clustering arch)
      else begin
        let key = fingerprint ~copy_cap clustering arch in
        match lookup t key spec clustering arch.Arch.lib with
        | Some result ->
            Trace.Counter.incr t.hit_counter;
            Trace.instant t.trace "memo.hit";
            verdict_result result
        | None ->
            Trace.Counter.incr t.miss_counter;
            let result = traced_run t ~copy_cap spec clustering arch in
            insert t key spec clustering arch.Arch.lib result;
            verdict_result result
      end

let estimate t ?(copy_cap = Schedule.default_copy_cap) spec clustering arch =
  Trace.span t.trace "schedule.estimate" (fun () ->
      Schedule.estimate ~copy_cap spec clustering arch)

let clear t =
  Mutex.lock t.lock;
  Store.reset t.store;
  t.tick <- 0;
  Mutex.unlock t.lock
