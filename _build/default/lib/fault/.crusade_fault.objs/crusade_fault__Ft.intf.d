lib/fault/ft.mli: Crusade Crusade_resource Crusade_taskgraph Dependability Stdlib Transform
