lib/resource/pe.ml: Format
