lib/cluster/priority.mli: Crusade_resource Crusade_taskgraph
