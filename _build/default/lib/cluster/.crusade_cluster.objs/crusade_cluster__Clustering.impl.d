lib/cluster/clustering.ml: Array Crusade_resource Crusade_taskgraph List Priority
