(** First-principles architecture auditor: re-derives, from the
    specification, the clustering and the placement map alone, every
    invariant the synthesizer is supposed to maintain on an accepted
    {!Arch.t} — and cross-checks the summary numbers a synthesis run
    reports against an independent recomputation.

    The auditor deliberately shares no bookkeeping with the synthesizer:
    occupancy, capacity, connectivity and cost are all recomputed from
    the [sites] placement map (the single source of truth), so a bug in
    the incremental accounting of [place_cluster]/[unplace_cluster] or
    in the undo journal shows up as a violation here even when the
    synthesizer's own numbers agree with each other.

    Schedule-level invariants (precedence, mode exclusivity on the
    timeline, boot gaps) are the scheduler-side validator's job
    ({!Crusade_sched.Validate}); the composed checker over a full
    synthesis result lives in [Crusade.Crusade_core.audit], which runs
    both and merges the findings. *)

type violation = { rule : string; detail : string }
(** One broken invariant.  [rule] is a stable identifier (see {!rules});
    [detail] is a human-readable description naming the offending
    cluster/PE/mode. *)

val pp_violation : Format.formatter -> violation -> unit

val rules : string list
(** The architecture-level invariant catalogue, one identifier per rule:
    - ["placement"]: every site references a live PE instance and mode,
      the cluster's feasibility mask admits the PE type, and every
      member task has an execution time on it;
    - ["site-bijection"]: the [sites] map and the per-mode occupancy
      lists describe exactly the same placement (no ghost or orphan
      clusters, no duplicates);
    - ["mode-accounting"]: recorded per-mode gates/pins equal the sums
      over the clusters actually placed there;
    - ["memory-accounting"]: recorded per-PE memory equals the sum over
      resident clusters;
    - ["capacity"]: recomputed occupancy respects CPU DRAM limits, ASIC
      gate/pin limits and the ERUF/EPUF caps of programmable devices
      (and the recorded numbers do too);
    - ["mode-discipline"]: non-programmable PEs never hold more than one
      configuration image;
    - ["exclusion"]: no two tasks of an exclusion pair share a PE,
      whatever the mode;
    - ["same-graph-mode"]: clusters of one task graph on one device
      share a single mode unless the caller's predicate sanctions the
      split ([compat g g]; the default static predicate never does,
      while a schedule-aware caller can accept a split the schedule
      demonstrably serializes — the merge phase produces such splits
      when two devices hosting the same graph merge);
    - ["mode-compatibility"]: graphs resident in different modes of one
      device are pairwise compatible under the caller's predicate;
    - ["link-ports"]: link port lists are duplicate-free, reference live
      PEs and respect the link type's port limit;
    - ["connectivity"]: every inter-PE edge between placed clusters has
      a link joining the two PEs (recomputed by direct scan, not via the
      memoized [links_between]);
    - ["cost-accounting"] / ["count-accounting"]: reported summary
      numbers match the independent recomputation ({!check_reported}). *)

val check_arch :
  ?compat:(int -> int -> bool) ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Arch.t ->
  violation list
(** Audits the architecture-level rules above.  [compat a b] tells
    whether graphs [a] and [b] may time-share a device in different
    modes; it defaults to {!Crusade_taskgraph.Spec.static_compatible},
    which is sound for architectures built without a schedule — callers
    auditing a scheduled result should pass the schedule-discovered
    compatibility (see [Crusade.Crusade_core.audit]), which is strictly
    more permissive. *)

type reported = {
  r_cost : float;
  r_n_pes : int;
  r_n_links : int;
  r_n_modes : int;  (** configuration images across programmable PEs *)
}
(** The summary numbers a synthesis result claims for an architecture. *)

val recompute_cost : Crusade_cluster.Clustering.t -> Arch.t -> float
(** Re-derives the total dollar cost from the placement map: per-PE base
    cost, DRAM banks, PROM image estimate, per-link cost and ports, plus
    the interface cost — using the same fold order and float operation
    association as {!Arch.cost}, so on a consistently-accounted
    architecture the recomputation is bit-identical. *)

val check_reported : Crusade_cluster.Clustering.t -> Arch.t -> reported -> violation list
(** ["cost-accounting"]: [r_cost] equals {!recompute_cost} bit-exactly;
    ["count-accounting"]: PE/link/image counts equal the recomputation
    from the placement map. *)

val check :
  ?compat:(int -> int -> bool) ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Arch.t ->
  reported ->
  violation list
(** {!check_arch} followed by {!check_reported}. *)

(** Seeded corruption of an accepted architecture: the auditor's own
    test harness.  Each {!Mutate.kind} breaks exactly one invariant
    class; applying it to a sound (architecture, reported) pair and
    re-running {!check} must produce a violation whose rule is
    {!Mutate.expected_rule} — otherwise the oracle itself is broken. *)
module Mutate : sig
  type kind =
    | Overfill_mode  (** raise a mode's recorded gates above the device cap *)
    | Deflate_mode_pins  (** under-count a mode's recorded pin usage *)
    | Shrink_cpu_memory  (** under-count a CPU's recorded memory usage *)
    | Ghost_site  (** placement map entry without mode occupancy *)
    | Orphan_cluster  (** mode occupancy without a placement map entry *)
    | Drop_link_port  (** sever the link serving a communicating PE pair *)
    | Colocate_exclusion  (** move a task onto the PE of its exclusion partner *)
    | Share_incompatible_mode
        (** give an incompatible graph its own mode on an occupied device *)
    | Split_graph_across_modes
        (** spread one graph's clusters over two modes of one device *)
    | Underreport_cost  (** shave a dollar off the reported cost *)
    | Overcount_pes  (** report one PE more than the architecture has *)

  val all : kind list

  val name : kind -> string

  val expected_rule : kind -> string
  (** The {!rules} identifier the corruption must trigger. *)

  val apply :
    ?compat:(int -> int -> bool) ->
    ?overlaps:(int -> int -> bool) ->
    Crusade_taskgraph.Spec.t ->
    Crusade_cluster.Clustering.t ->
    Arch.t ->
    reported ->
    kind ->
    (reported, string) result
  (** Corrupts the architecture in place (callers pass an {!Arch.copy})
    and returns the possibly-adjusted reported numbers, or [Error]
    when the architecture lacks the structure the corruption needs
    (e.g. no CPU in use for [Shrink_cpu_memory]).  [compat] must be
    the same predicate later given to {!check}; [overlaps c c']
    refines [Share_incompatible_mode]'s victim choice to cluster pairs
    whose scheduled instances actually overlap in time (default:
    accept any pair). *)
end
