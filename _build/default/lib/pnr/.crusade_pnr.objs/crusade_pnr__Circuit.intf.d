lib/pnr/circuit.mli: Crusade_util
