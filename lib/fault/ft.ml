module Trace = Crusade_util.Trace
module Audit = Crusade_alloc.Audit
module Arch = Crusade_alloc.Arch
module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Pe = Crusade_resource.Pe

type result = {
  core : Crusade.Crusade_core.result;
  transform_stats : Transform.stats;
  provisioning : Dependability.provisioning;
  total_cost : float;
  n_pes_with_spares : int;
}

let synthesize ?options spec lib =
  let trace =
    Option.bind options (fun (o : Crusade.Crusade_core.options) ->
        o.Crusade.Crusade_core.trace)
  in
  let augmented, transform_stats =
    Trace.span trace "ft.transform" (fun () -> Transform.apply spec)
  in
  match Crusade.Crusade_core.synthesize ?options augmented lib with
  | Error msg -> Error msg
  | Ok core ->
      let provisioning =
        Trace.span trace "ft.provision" (fun () ->
            Dependability.provision augmented core.Crusade.Crusade_core.clustering
              core.Crusade.Crusade_core.arch)
      in
      let n_spares =
        List.fold_left (fun acc (_, count) -> acc + count) 0
          provisioning.Dependability.spares
      in
      Ok
        {
          core;
          transform_stats;
          provisioning;
          total_cost = core.Crusade.Crusade_core.cost +. provisioning.Dependability.spare_cost;
          n_pes_with_spares = core.Crusade.Crusade_core.n_pes + n_spares;
        }

(* Warm restart after a field PE failure: repair the core architecture
   with {!Crusade.Crusade_core.Resynth} (rip up only the failed PE's
   residents, replay the untouched schedule prefix), then re-provision
   the standby spares against the repaired architecture — a failure
   changes the per-type PE pools, so yesterday's spare counts no longer
   meet the availability budgets. *)
let resynth_pe_failure ?options (r : result) ~pe =
  let trace =
    Option.bind options (fun (o : Crusade.Crusade_core.options) ->
        o.Crusade.Crusade_core.trace)
  in
  match
    Crusade.Crusade_core.Resynth.apply ?options r.core
      (Crusade.Crusade_core.Resynth.Pe_failure pe)
  with
  | Error msg -> Error msg
  | Ok rep ->
      let repaired =
        match Crusade.Crusade_core.Resynth.final_result rep with
        | Some core -> (
            let spec = core.Crusade.Crusade_core.spec in
            let provisioning =
              Trace.span trace "ft.reprovision" (fun () ->
                  Dependability.provision spec
                    core.Crusade.Crusade_core.clustering
                    core.Crusade.Crusade_core.arch)
            in
            let n_spares =
              List.fold_left (fun acc (_, count) -> acc + count) 0
                provisioning.Dependability.spares
            in
            Some
              {
                core;
                transform_stats = r.transform_stats;
                provisioning;
                total_cost =
                  core.Crusade.Crusade_core.cost
                  +. provisioning.Dependability.spare_cost;
                n_pes_with_spares = core.Crusade.Crusade_core.n_pes + n_spares;
              })
        | None -> None
      in
      Ok (rep, repaired)

let is_duplicate_task (task : Task.t) =
  String.length task.Task.name > 4
  && String.sub task.Task.name (String.length task.Task.name - 4) 4 = ".dup"

let audit (r : result) =
  let core = r.core in
  let spec = core.Crusade.Crusade_core.spec in
  let clustering = core.Crusade.Crusade_core.clustering in
  let arch = core.Crusade.Crusade_core.arch in
  let p = r.provisioning in
  let acc = ref [] in
  let add rule fmt =
    Format.kasprintf (fun detail -> acc := { Audit.rule; detail } :: !acc) fmt
  in
  (* ft-cost: the FT total is the core architecture plus the spares,
     bit-exact. *)
  let expected_total = core.Crusade.Crusade_core.cost +. p.Dependability.spare_cost in
  if not (Float.equal r.total_cost expected_total) then
    add "ft-cost" "total cost $%.6f, core + spares is $%.6f" r.total_cost
      expected_total;
  (* ft-spare-cost: the spare bill recomputes from the spare counts. *)
  let recomputed_spare_cost =
    List.fold_left
      (fun cost ((pe : Pe.t), count) -> cost +. (pe.Pe.cost *. float_of_int count))
      0.0 p.Dependability.spares
    +. (float_of_int p.Dependability.link_spares *. Dependability.spare_link_cost)
  in
  if not (Float.equal p.Dependability.spare_cost recomputed_spare_cost) then
    add "ft-spare-cost" "spare cost $%.6f, spare counts say $%.6f"
      p.Dependability.spare_cost recomputed_spare_cost;
  (* ft-spares: the PE headcount includes every provisioned spare. *)
  let n_spares =
    List.fold_left (fun acc (_, count) -> acc + count) 0 p.Dependability.spares
  in
  if r.n_pes_with_spares <> core.Crusade.Crusade_core.n_pes + n_spares then
    add "ft-spares" "%d PEs with spares reported, core %d + spares %d"
      r.n_pes_with_spares core.Crusade.Crusade_core.n_pes n_spares;
  (* ft-separation: a duplicate protects against its original's PE
     failing, so the pair must carry an exclusion and live apart. *)
  Array.iter
    (fun (task : Task.t) ->
      if is_duplicate_task task then
        if task.Task.exclusion = [] then
          add "ft-separation" "duplicate %s has no exclusion vector" task.Task.name
        else
          List.iter
            (fun original ->
              match
                ( Arch.task_site arch clustering task.Task.id,
                  Arch.task_site arch clustering original )
              with
              | Some a, Some b when a.Arch.s_pe = b.Arch.s_pe ->
                  add "ft-separation" "duplicate %s shares PE %d with %s"
                    task.Task.name a.Arch.s_pe
                    (Spec.task spec original).Task.name
              | (Some _ | None), (Some _ | None) -> ())
            task.Task.exclusion)
    spec.Spec.tasks;
  (* ft-availability: the recorded minutes/year recompute from the spare
     counts and the architecture, and every budget is met. *)
  let achieved = Dependability.achieved_unavailability spec clustering arch p in
  List.iter
    (fun (name, budget, minutes) ->
      (match List.assoc_opt name p.Dependability.graph_unavailability with
      | Some recorded when not (Float.equal recorded minutes) ->
          add "ft-availability" "graph %s records %.6f min/year, spares say %.6f"
            name recorded minutes
      | Some _ -> ()
      | None ->
          add "ft-availability" "graph %s has a budget but no recorded availability"
            name);
      if minutes > budget then
        add "ft-budget" "graph %s achieves %.2f min/year, budget %.2f" name minutes
          budget)
    achieved;
  List.rev !acc @ Crusade.Crusade_core.audit core
