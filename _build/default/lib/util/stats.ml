let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left max x xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let idx = Arith.clamp ~lo:0 ~hi:(n - 1) (rank - 1) in
      List.nth sorted idx
