(* Busy intervals as a pair of sorted int arrays (starts/stops, disjoint,
   non-adjacent).  The scheduler inserts tens of thousands of intervals
   per run and mostly near the end of a timeline; keeping the intervals
   unboxed with in-place shifts replaces the former list representation,
   whose prefix-rebuilding insert allocated O(n) cells per insertion and
   dominated the scheduler's GC load. *)
type t = {
  mutable starts : int array;
  mutable stops : int array;
  mutable n : int;
}

let create () = { starts = [||]; stops = [||]; n = 0 }

let busy t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((t.starts.(i), t.stops.(i)) :: acc)
  in
  build (t.n - 1) []

let busy_until t = if t.n = 0 then 0 else t.stops.(t.n - 1)

(* First index whose interval ends after [time]; earlier intervals can
   neither host nor delay work that is ready at [time]. *)
let first_active t time =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.stops.(mid) > time then hi := mid else lo := mid + 1
  done;
  !lo

(* Earliest gap of length [duration] starting at or after [ready]. *)
let find_gap t ~ready ~duration =
  let pos = ref ready in
  let i = ref (first_active t ready) in
  let found = ref false in
  while (not !found) && !i < t.n do
    if !pos + duration <= t.starts.(!i) then found := true
    else begin
      if t.stops.(!i) > !pos then pos := t.stops.(!i);
      incr i
    end
  done;
  !pos

let ensure_capacity t =
  let cap = Array.length t.starts in
  if t.n = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ns = Array.make ncap 0 and ne = Array.make ncap 0 in
    Array.blit t.starts 0 ns 0 t.n;
    Array.blit t.stops 0 ne 0 t.n;
    t.starts <- ns;
    t.stops <- ne
  end

(* Insert [start, stop), coalescing touching neighbours. *)
let add t start stop =
  (* First index that may touch the new interval (stop >= start). *)
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.stops.(mid) >= start then hi := mid else lo := mid + 1
  done;
  let lo = !lo in
  let s = ref start and e = ref stop in
  let j = ref lo in
  while !j < t.n && t.starts.(!j) <= !e do
    if t.starts.(!j) < !s then s := t.starts.(!j);
    if t.stops.(!j) > !e then e := t.stops.(!j);
    incr j
  done;
  let absorbed = !j - lo in
  if absorbed = 0 then begin
    ensure_capacity t;
    Array.blit t.starts lo t.starts (lo + 1) (t.n - lo);
    Array.blit t.stops lo t.stops (lo + 1) (t.n - lo);
    t.starts.(lo) <- !s;
    t.stops.(lo) <- !e;
    t.n <- t.n + 1
  end
  else begin
    t.starts.(lo) <- !s;
    t.stops.(lo) <- !e;
    if !j < t.n then begin
      Array.blit t.starts !j t.starts (lo + 1) (t.n - !j);
      Array.blit t.stops !j t.stops (lo + 1) (t.n - !j)
    end;
    t.n <- t.n - absorbed + 1
  end

let insert t ~ready ~duration =
  let start = find_gap t ~ready ~duration in
  let finish = start + duration in
  if duration > 0 then add t start finish;
  (start, finish)

(* Append [start, stop) known to begin at or after every existing
   interval's start, coalescing with the last one when touching.  Feeding
   a timeline's committed intervals back in start order reproduces the
   normalized (sorted, disjoint, coalesced) arrays [add] maintains —
   normalization is canonical, so the rebuilt state is bit-identical no
   matter what order the intervals were originally committed in.  Used by
   the incremental engine's prefix replay. *)
let append t start stop =
  if t.n > 0 && start <= t.stops.(t.n - 1) then begin
    if stop > t.stops.(t.n - 1) then t.stops.(t.n - 1) <- stop
  end
  else begin
    ensure_capacity t;
    t.starts.(t.n) <- start;
    t.stops.(t.n) <- stop;
    t.n <- t.n + 1
  end

let insert_preemptible ?on_commit t ~ready ~duration ~max_chunks ~chunk_penalty =
  if duration <= 0 then begin
    let start = find_gap t ~ready ~duration:0 in
    (start, start)
  end
  else begin
    let min_chunk = max 1 (duration / 4) in
    (* Walk the gaps from [ready], filling as much work as allowed; the
       chunks are only committed at the end, so the gap scan sees the
       pre-insertion timeline throughout (the resident work is what
       preempts the newcomer, never its own earlier chunks). *)
    let placed = ref [] in
    let chunks = ref 0 in
    let cursor = ref ready in
    let remaining = ref duration in
    let first_start = ref None in
    let note_first s = if !first_start = None then first_start := Some s in
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      if !chunks = max_chunks - 1 || !remaining <= 0 || !i >= t.n then stop := true
      else begin
        let s = t.starts.(!i) and e = t.stops.(!i) in
        if !cursor >= s then begin
          if e > !cursor then cursor := e;
          incr i
        end
        else begin
          let gap = s - !cursor in
          if gap >= !remaining then begin
            placed := (!cursor, !cursor + !remaining) :: !placed;
            note_first !cursor;
            cursor := !cursor + !remaining;
            remaining := 0
          end
          else if gap >= min_chunk then begin
            placed := (!cursor, !cursor + gap) :: !placed;
            note_first !cursor;
            remaining := !remaining - gap + chunk_penalty;
            incr chunks;
            cursor := e;
            incr i
          end
          else begin
            cursor := e;
            incr i
          end
        end
      end
    done;
    let finish =
      if !remaining > 0 then begin
        (* Tail (or whole) of the work runs after the scanned gaps. *)
        let start = find_gap t ~ready:!cursor ~duration:!remaining in
        placed := (start, start + !remaining) :: !placed;
        note_first start;
        start + !remaining
      end
      else !cursor
    in
    List.iter
      (fun (s, e) ->
        add t s e;
        match on_commit with Some f -> f s e | None -> ())
      (List.rev !placed);
    (Option.value ~default:finish !first_start, finish)
  end

let probe t ~ready ~duration =
  let start = find_gap t ~ready ~duration in
  (start, start + duration)
