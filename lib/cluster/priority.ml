module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph

(* Longest path to a deadline, computed in one reverse-topological sweep
   per graph.  pi(t) = exec(t) + max over outgoing edges of
   (comm(e) + pi(dst)), with the deadline subtracted at every task that
   carries one (sinks inherit the graph deadline). *)
let compute ?rev_orders (spec : Spec.t) ~exec_time ~comm_time =
  let n = Spec.n_tasks spec in
  let levels = Array.make n min_int in
  let process (g : Graph.t) =
    let order =
      match rev_orders with
      | Some orders -> orders.(g.Graph.id)
      | None -> List.rev (Graph.topological_order g)
    in
    let compute_level (task : Task.t) =
      let own = exec_time task in
      let downstream =
        List.fold_left
          (fun acc (e : Edge.t) ->
            max acc (comm_time e + levels.(e.dst)))
          min_int spec.succs.(task.id)
      in
      let base = if downstream = min_int then own else own + downstream in
      (* A task with a deadline contributes (own path - deadline); a task
         that both has a deadline and successors takes the worse of the
         two obligations. *)
      match task.deadline with
      | Some d -> max (own - d) base
      | None ->
          if spec.succs.(task.id) = [] then own - Graph.task_deadline g task else base
    in
    List.iter (fun task -> levels.(task.Task.id) <- compute_level task) order
  in
  Array.iter process spec.graphs;
  levels

let unallocated_exec (task : Task.t) = Task.max_exec task

let unallocated_comm lib (e : Edge.t) =
  let worst = ref 0 in
  for link_type = 0 to Crusade_resource.Library.n_link_types lib - 1 do
    let link = Crusade_resource.Library.link lib link_type in
    let time =
      Crusade_resource.Link.comm_time link ~ports:Crusade_resource.Link.average_ports
        ~bytes:e.bytes
    in
    worst := max !worst time
  done;
  !worst
