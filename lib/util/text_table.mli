(** Plain-text table rendering for the benchmark harness and CLI reports. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out a table with one separator line under
    the header.  Columns default to left alignment; [align] overrides
    per-column (missing entries pad with [Left]).  Rows shorter than the
    header pad with empty cells.
    @raise Invalid_argument on a row wider than the header, which would
    otherwise silently misalign the whole table. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 1 decimal. *)

val fmt_dollars : float -> string
(** Thousands-separated integer dollars, e.g. [26,245].  Non-finite
    inputs (a division by zero upstream, say) render as ["n/a"] instead
    of an unspecified integer. *)
