lib/workloads/comm_system.ml: Array Crusade_resource Crusade_taskgraph Crusade_util Hashtbl List Option Printf
