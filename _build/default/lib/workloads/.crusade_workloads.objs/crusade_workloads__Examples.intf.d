lib/workloads/examples.mli: Crusade_pnr Crusade_resource Crusade_taskgraph
