(* SONET/ATM telecom line card with the paper's full rate spread.

   ATM cell processing every 25 us, SONET framing at 125 us, performance
   monitoring at 1 ms, protection switching at 10 ms and a one-minute
   provisioning scan: the hyperperiod holds 2.4 million copies of the
   cell-processing graph, which is exactly what the association array
   (Section 5) exists for — the scheduler keeps 64 explicit copies per
   graph and extrapolates the rest.

   The run also shows reconfiguration-controller interface synthesis
   picking a programming interface that meets the boot-time requirement.

     dune exec examples/sonet_atm.exe *)

module C = Crusade.Crusade_core
module Spec = Crusade_taskgraph.Spec
module Graph = Crusade_taskgraph.Graph

let () =
  let lib = Crusade_resource.Library.stock () in
  let spec = Crusade_workloads.Examples.multirate lib in
  Format.printf "Rate spread:@.";
  Array.iter
    (fun (g : Graph.t) ->
      Format.printf "  %-12s period %9d us -> %d copies in the hyperperiod@."
        g.name g.period (Spec.copies spec g))
    spec.Spec.graphs;
  Format.printf "@.";
  match C.synthesize spec lib with
  | Error msg ->
      Format.printf "failed: %s@." msg;
      exit 1
  | Ok r ->
      Format.printf "%a@.@." C.pp_report r;
      (match r.C.chosen_interface with
      | Some option ->
          Format.printf
            "Interface synthesis chose '%s' within the %d us boot-time budget.@."
            (Crusade_reconfig.Interface.describe option)
            spec.Spec.boot_time_requirement
      | None -> Format.printf "No programmable devices to configure.@.")
