module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Caps = Crusade_resource.Caps
module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Clustering = Crusade_cluster.Clustering
module Arith = Crusade_util.Arith
module Vec = Crusade_util.Vec

type violation = { rule : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.rule v.detail

let rules =
  [
    "placement";
    "site-bijection";
    "mode-accounting";
    "memory-accounting";
    "capacity";
    "mode-discipline";
    "exclusion";
    "same-graph-mode";
    "mode-compatibility";
    "link-ports";
    "connectivity";
    "cost-accounting";
    "count-accounting";
  ]

(* Violations are accumulated in a ref and sorted before being returned:
   several rules walk the [sites] hash table, whose iteration order is
   unspecified, and the auditor's output must be deterministic (the fuzz
   harness diffs it across evaluator configurations). *)
type acc = violation list ref

let add (acc : acc) rule fmt =
  Format.kasprintf (fun detail -> acc := { rule; detail } :: !acc) fmt

let finish (acc : acc) = List.sort_uniq compare !acc

(* (PE id, mode id) -> resident cluster ids, re-derived from the
   placement map alone.  The per-mode occupancy lists are deliberately
   not consulted: they are one of the things under audit. *)
let occupancy_of_sites (arch : Arch.t) =
  let occ = Hashtbl.create 64 in
  Hashtbl.iter
    (fun cid (site : Arch.site) ->
      let key = (site.Arch.s_pe, site.Arch.s_mode) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt occ key) in
      Hashtbl.replace occ key (cid :: prev))
    arch.Arch.sites;
  occ

let residents occ pe_id mode_id =
  Option.value ~default:[] (Hashtbl.find_opt occ (pe_id, mode_id))

let valid_cid (clustering : Clustering.t) cid =
  cid >= 0 && cid < Array.length clustering.clusters

let cluster_gates (clustering : Clustering.t) cid =
  if valid_cid clustering cid then clustering.clusters.(cid).Clustering.gates else 0

let cluster_pins (clustering : Clustering.t) cid =
  if valid_cid clustering cid then clustering.clusters.(cid).Clustering.pins else 0

let cluster_memory (clustering : Clustering.t) cid =
  if valid_cid clustering cid then clustering.clusters.(cid).Clustering.memory_bytes
  else 0

let cluster_graph (clustering : Clustering.t) cid =
  if valid_cid clustering cid then Some clustering.clusters.(cid).Clustering.graph
  else None

(* Per-mode capacity of a hardware PE under the same limits
   [Arch.place_cluster] enforces; [None] for CPUs (their capacity is
   per-device memory, not per-mode area). *)
let hw_caps (ptype : Pe.t) =
  match ptype.Pe.pe_class with
  | Pe.General_purpose _ -> None
  | Pe.Asic_pe a -> Some (a.Pe.gates, a.Pe.pins)
  | Pe.Programmable _ -> Some (Caps.usable_pfus ptype, Caps.usable_pins ptype)

let check_arch ?compat (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let compat =
    match compat with Some f -> f | None -> Spec.static_compatible spec
  in
  let acc : acc = ref [] in
  let occ = occupancy_of_sites arch in
  let n_pes = Vec.length arch.Arch.pes in

  (* placement: every site references live structure and a feasible,
     executable mapping. *)
  Hashtbl.iter
    (fun cid (site : Arch.site) ->
      if not (valid_cid clustering cid) then
        add acc "placement" "site for unknown cluster %d" cid
      else if site.Arch.s_pe < 0 || site.Arch.s_pe >= n_pes then
        add acc "placement" "cluster %d placed on unknown PE %d" cid site.Arch.s_pe
      else begin
        let pe = Vec.get arch.Arch.pes site.Arch.s_pe in
        if site.Arch.s_mode < 0 || site.Arch.s_mode >= Vec.length pe.Arch.modes then
          add acc "placement" "cluster %d placed in unknown mode %d of PE %d" cid
            site.Arch.s_mode pe.Arch.p_id
        else begin
          let c = clustering.clusters.(cid) in
          let pt = pe.Arch.ptype.Pe.id in
          if pe.Arch.p_failed then
            add acc "placement" "cluster %d placed on failed PE %d" cid
              pe.Arch.p_id;
          if c.Clustering.feasible_mask land (1 lsl pt) = 0 then
            add acc "placement" "cluster %d infeasible on PE type %s" cid
              pe.Arch.ptype.Pe.name;
          List.iter
            (fun member ->
              let task = Spec.task spec member in
              if Task.exec_on task pt = None then
                add acc "placement" "task %s of cluster %d cannot execute on %s"
                  task.Task.name cid pe.Arch.ptype.Pe.name)
            c.Clustering.members
        end
      end)
    arch.Arch.sites;

  (* site-bijection: the placement map and the per-mode occupancy lists
     must describe exactly the same placement. *)
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      Vec.iter
        (fun (m : Arch.mode) ->
          let recorded = List.sort_uniq compare m.Arch.m_clusters in
          if List.length recorded <> List.length m.Arch.m_clusters then
            add acc "site-bijection" "duplicate occupants in PE %d mode %d"
              pe.Arch.p_id m.Arch.m_id;
          let derived =
            List.sort_uniq compare (residents occ pe.Arch.p_id m.Arch.m_id)
          in
          List.iter
            (fun cid ->
              if not (List.mem cid derived) then
                add acc "site-bijection"
                  "cluster %d occupies PE %d mode %d without a placement entry" cid
                  pe.Arch.p_id m.Arch.m_id)
            recorded;
          List.iter
            (fun cid ->
              if not (List.mem cid recorded) then
                add acc "site-bijection"
                  "cluster %d is mapped to PE %d mode %d but absent from its occupants"
                  cid pe.Arch.p_id m.Arch.m_id)
            derived)
        pe.Arch.modes)
    arch.Arch.pes;

  (* mode-accounting / memory-accounting / capacity / mode-discipline:
     recompute occupancy sums from the placement map and compare both
     against the recorded numbers and against the device limits. *)
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      let pe_memory = ref 0 in
      let images = ref 0 in
      Vec.iter
        (fun (m : Arch.mode) ->
          let rs = residents occ pe.Arch.p_id m.Arch.m_id in
          if rs <> [] then incr images;
          let gates = List.fold_left (fun s c -> s + cluster_gates clustering c) 0 rs in
          let pins = List.fold_left (fun s c -> s + cluster_pins clustering c) 0 rs in
          pe_memory :=
            !pe_memory
            + List.fold_left (fun s c -> s + cluster_memory clustering c) 0 rs;
          if m.Arch.m_gates <> gates then
            add acc "mode-accounting" "PE %d mode %d records %d gates, placements say %d"
              pe.Arch.p_id m.Arch.m_id m.Arch.m_gates gates;
          if m.Arch.m_pins <> pins then
            add acc "mode-accounting" "PE %d mode %d records %d pins, placements say %d"
              pe.Arch.p_id m.Arch.m_id m.Arch.m_pins pins;
          match hw_caps pe.Arch.ptype with
          | Some (max_gates, max_pins) ->
              if gates > max_gates || m.Arch.m_gates > max_gates then
                add acc "capacity" "PE %d mode %d uses %d/%d gates (recorded %d)"
                  pe.Arch.p_id m.Arch.m_id gates max_gates m.Arch.m_gates;
              if pins > max_pins || m.Arch.m_pins > max_pins then
                add acc "capacity" "PE %d mode %d uses %d/%d pins (recorded %d)"
                  pe.Arch.p_id m.Arch.m_id pins max_pins m.Arch.m_pins
          | None -> ())
        pe.Arch.modes;
      if pe.Arch.used_memory <> !pe_memory then
        add acc "memory-accounting" "PE %d records %d memory bytes, placements say %d"
          pe.Arch.p_id pe.Arch.used_memory !pe_memory;
      (match pe.Arch.ptype.Pe.pe_class with
      | Pe.General_purpose cpu ->
          let limit = cpu.Pe.memory_bank_bytes * cpu.Pe.max_memory_banks in
          if !pe_memory > limit || pe.Arch.used_memory > limit then
            add acc "capacity" "CPU %d uses %d/%d memory bytes (recorded %d)"
              pe.Arch.p_id !pe_memory limit pe.Arch.used_memory
      | Pe.Asic_pe _ | Pe.Programmable _ -> ());
      if (not (Pe.is_programmable pe.Arch.ptype)) && !images > 1 then
        add acc "mode-discipline" "non-programmable PE %d holds %d configuration images"
          pe.Arch.p_id !images)
    arch.Arch.pes;

  (* exclusion: no two tasks of an exclusion pair share a PE, whatever
     the mode.  Pairs are deduplicated on (min, max) so a mutual
     exclusion is reported once. *)
  let seen_pairs = Hashtbl.create 16 in
  Array.iter
    (fun (task : Task.t) ->
      List.iter
        (fun other_id ->
          let key = (min task.Task.id other_id, max task.Task.id other_id) in
          if not (Hashtbl.mem seen_pairs key) then begin
            Hashtbl.replace seen_pairs key ();
            match
              ( Arch.task_site arch clustering task.Task.id,
                Arch.task_site arch clustering other_id )
            with
            | Some a, Some b when a.Arch.s_pe = b.Arch.s_pe ->
                add acc "exclusion" "tasks %s and %s share PE %d despite exclusion"
                  task.Task.name
                  (Spec.task spec other_id).Task.name
                  a.Arch.s_pe
            | Some _, Some _ | Some _, None | None, Some _ | None, None -> ()
          end)
        task.Task.exclusion)
    spec.Spec.tasks;

  (* same-graph-mode / mode-compatibility: graphs sharing a device must
     keep each of their own clusters in one mode, and distinct graphs in
     distinct modes must be compatible under [compat]. *)
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      let graph_modes = Hashtbl.create 8 in
      Vec.iter
        (fun (m : Arch.mode) ->
          List.iter
            (fun cid ->
              match cluster_graph clustering cid with
              | Some g ->
                  let ms =
                    Option.value ~default:[] (Hashtbl.find_opt graph_modes g)
                  in
                  if not (List.mem m.Arch.m_id ms) then
                    Hashtbl.replace graph_modes g (m.Arch.m_id :: ms)
              | None -> ())
            (residents occ pe.Arch.p_id m.Arch.m_id))
        pe.Arch.modes;
      let graphs = Hashtbl.fold (fun g ms l -> (g, ms) :: l) graph_modes [] in
      let graphs = List.sort compare graphs in
      List.iter
        (fun (g, ms) ->
          (* A graph split across modes of one device is a reconfiguration
             of the device *during* the graph's execution.  The allocator
             never produces it, but the merge phase legally can (two
             devices hosting the same graph merge; the schedule serializes
             the modes).  [compat g g] decides: the default static
             predicate answers [false] — strict, no split tolerated —
             while a schedule-aware caller may sanction serialized
             splits. *)
          if List.length ms > 1 && not (compat g g) then
            add acc "same-graph-mode" "graph %d spans %d modes of PE %d" g
              (List.length ms) pe.Arch.p_id)
        graphs;
      let rec pairs = function
        | [] -> ()
        | (g, ms) :: rest ->
            List.iter
              (fun (g', ms') ->
                (* Sharing a mode is legal for any two graphs (the device
                   holds one image for both); only time-sharing through
                   distinct modes needs compatibility. *)
                let distinct_modes =
                  List.exists (fun m -> not (List.mem m ms')) ms
                  || List.exists (fun m -> not (List.mem m ms)) ms'
                in
                if distinct_modes && not (compat g g') then
                  add acc "mode-compatibility"
                    "incompatible graphs %d and %d time-share PE %d" g g'
                    pe.Arch.p_id)
              rest;
            pairs rest
      in
      pairs graphs)
    arch.Arch.pes;

  (* link-ports: port lists reference live PEs, without duplicates,
     within the link type's limit. *)
  Vec.iter
    (fun (l : Arch.link_inst) ->
      let ports = List.length l.Arch.attached in
      if ports > l.Arch.ltype.Link.max_ports then
        add acc "link-ports" "link %d has %d ports, type %s allows %d" l.Arch.l_id
          ports l.Arch.ltype.Link.name l.Arch.ltype.Link.max_ports;
      if List.length (List.sort_uniq compare l.Arch.attached) <> ports then
        add acc "link-ports" "link %d attaches a PE twice" l.Arch.l_id;
      List.iter
        (fun pe_id ->
          if pe_id < 0 || pe_id >= n_pes then
            add acc "link-ports" "link %d attaches unknown PE %d" l.Arch.l_id pe_id)
        l.Arch.attached)
    arch.Arch.links;

  (* connectivity: every inter-PE edge between placed clusters has a link
     joining the two PEs.  Recomputed by direct scan over the link table,
     not via the memoized [links_between]. *)
  let joined a b =
    Vec.exists
      (fun (l : Arch.link_inst) ->
        List.mem a l.Arch.attached && List.mem b l.Arch.attached)
      arch.Arch.links
  in
  let seen_pe_pairs = Hashtbl.create 16 in
  Array.iter
    (fun (e : Edge.t) ->
      match
        ( Arch.task_site arch clustering e.Edge.src,
          Arch.task_site arch clustering e.Edge.dst )
      with
      | Some a, Some b when a.Arch.s_pe <> b.Arch.s_pe ->
          let key = (min a.Arch.s_pe b.Arch.s_pe, max a.Arch.s_pe b.Arch.s_pe) in
          if not (Hashtbl.mem seen_pe_pairs key) then begin
            Hashtbl.replace seen_pe_pairs key ();
            if not (joined a.Arch.s_pe b.Arch.s_pe) then
              add acc "connectivity" "no link joins PEs %d and %d (edge %s -> %s)"
                a.Arch.s_pe b.Arch.s_pe
                (Spec.task spec e.Edge.src).Task.name
                (Spec.task spec e.Edge.dst).Task.name
          end
      | Some _, Some _ | Some _, None | None, Some _ | None, None -> ())
    spec.Spec.edges;

  finish acc

type reported = {
  r_cost : float;
  r_n_pes : int;
  r_n_links : int;
  r_n_modes : int;
}

let recompute_cost (clustering : Clustering.t) (arch : Arch.t) =
  (* Mirror of [Arch.cost] with occupancy, image counts and memory
     re-derived from the placement map.  The fold order and the float
     operation association are kept identical, so a consistently
     accounted architecture recomputes bit-for-bit. *)
  let occ = occupancy_of_sites arch in
  let pe_cost acc (pe : Arch.pe_inst) =
    let images = ref 0 in
    let memory_bytes = ref 0 in
    Vec.iter
      (fun (m : Arch.mode) ->
        let rs = residents occ pe.Arch.p_id m.Arch.m_id in
        if rs <> [] then incr images;
        memory_bytes :=
          !memory_bytes
          + List.fold_left (fun s c -> s + cluster_memory clustering c) 0 rs)
      pe.Arch.modes;
    if !images = 0 then acc
    else begin
      let base = pe.Arch.ptype.Pe.cost in
      let memory =
        match pe.Arch.ptype.Pe.pe_class with
        | Pe.General_purpose cpu ->
            let banks =
              if !memory_bytes = 0 then 1
              else Arith.ceil_div !memory_bytes cpu.Pe.memory_bank_bytes
            in
            float_of_int banks *. cpu.Pe.memory_bank_cost
        | Pe.Asic_pe _ | Pe.Programmable _ -> 0.0
      in
      let prom =
        match (arch.Arch.interface_cost, pe.Arch.ptype.Pe.pe_class) with
        | None, Pe.Programmable info ->
            float_of_int (!images * info.Pe.boot_memory_bytes)
            /. 1024.0 *. Arch.prom_dollars_per_kbyte
        | Some _, _ | _, (Pe.General_purpose _ | Pe.Asic_pe _) -> 0.0
      in
      acc +. base +. memory +. prom
    end
  in
  let link_cost acc (l : Arch.link_inst) =
    if List.length l.Arch.attached < 2 then acc
    else
      acc +. l.Arch.ltype.Link.cost
      +. (float_of_int (List.length l.Arch.attached) *. l.Arch.ltype.Link.port_cost)
  in
  Vec.fold pe_cost 0.0 arch.Arch.pes
  +. Vec.fold link_cost 0.0 arch.Arch.links
  +. Option.value ~default:0.0 arch.Arch.interface_cost

(* Used-PE, used-link and configuration-image counts, re-derived from the
   placement map and the link table. *)
let derived_counts (arch : Arch.t) =
  let occ = occupancy_of_sites arch in
  let n_pes = ref 0 in
  let n_modes = ref 0 in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      let images = ref 0 in
      Vec.iter
        (fun (m : Arch.mode) ->
          if residents occ pe.Arch.p_id m.Arch.m_id <> [] then incr images)
        pe.Arch.modes;
      if !images > 0 then incr n_pes;
      if Pe.is_programmable pe.Arch.ptype then n_modes := !n_modes + !images)
    arch.Arch.pes;
  let n_links =
    Vec.fold
      (fun acc (l : Arch.link_inst) ->
        if List.length l.Arch.attached >= 2 then acc + 1 else acc)
      0 arch.Arch.links
  in
  (!n_pes, n_links, !n_modes)

let check_reported (clustering : Clustering.t) (arch : Arch.t) (r : reported) =
  let acc : acc = ref [] in
  let cost = recompute_cost clustering arch in
  if not (Float.equal cost r.r_cost) then
    add acc "cost-accounting" "reported cost $%.6f, recomputed $%.6f" r.r_cost cost;
  let n_pes, n_links, n_modes = derived_counts arch in
  if r.r_n_pes <> n_pes then
    add acc "count-accounting" "reported %d PEs, recomputed %d" r.r_n_pes n_pes;
  if r.r_n_links <> n_links then
    add acc "count-accounting" "reported %d links, recomputed %d" r.r_n_links n_links;
  if r.r_n_modes <> n_modes then
    add acc "count-accounting" "reported %d configuration images, recomputed %d"
      r.r_n_modes n_modes;
  finish acc

let check ?compat spec clustering arch reported =
  check_arch ?compat spec clustering arch @ check_reported clustering arch reported

module Mutate = struct
  type kind =
    | Overfill_mode
    | Deflate_mode_pins
    | Shrink_cpu_memory
    | Ghost_site
    | Orphan_cluster
    | Drop_link_port
    | Colocate_exclusion
    | Share_incompatible_mode
    | Split_graph_across_modes
    | Underreport_cost
    | Overcount_pes

  let all =
    [
      Overfill_mode;
      Deflate_mode_pins;
      Shrink_cpu_memory;
      Ghost_site;
      Orphan_cluster;
      Drop_link_port;
      Colocate_exclusion;
      Share_incompatible_mode;
      Split_graph_across_modes;
      Underreport_cost;
      Overcount_pes;
    ]

  let name = function
    | Overfill_mode -> "overfill-mode"
    | Deflate_mode_pins -> "deflate-mode-pins"
    | Shrink_cpu_memory -> "shrink-cpu-memory"
    | Ghost_site -> "ghost-site"
    | Orphan_cluster -> "orphan-cluster"
    | Drop_link_port -> "drop-link-port"
    | Colocate_exclusion -> "colocate-exclusion"
    | Share_incompatible_mode -> "share-incompatible-mode"
    | Split_graph_across_modes -> "split-graph-across-modes"
    | Underreport_cost -> "underreport-cost"
    | Overcount_pes -> "overcount-pes"

  let expected_rule = function
    | Overfill_mode -> "capacity"
    | Deflate_mode_pins -> "mode-accounting"
    | Shrink_cpu_memory -> "memory-accounting"
    | Ghost_site -> "site-bijection"
    | Orphan_cluster -> "site-bijection"
    | Drop_link_port -> "connectivity"
    | Colocate_exclusion -> "exclusion"
    | Share_incompatible_mode -> "mode-compatibility"
    | Split_graph_across_modes -> "same-graph-mode"
    | Underreport_cost -> "cost-accounting"
    | Overcount_pes -> "count-accounting"

  (* First (PE, mode) pair satisfying [f], scanning in instantiation
     order so the choice is deterministic. *)
  let find_mode (arch : Arch.t) f =
    let found = ref None in
    Vec.iter
      (fun (pe : Arch.pe_inst) ->
        Vec.iter
          (fun (m : Arch.mode) ->
            if !found = None && f pe m then found := Some (pe, m))
          pe.Arch.modes)
      arch.Arch.pes;
    !found

  (* Move a cluster between sites while keeping every occupancy sum
     consistent — bypasses [Arch.place_cluster]'s admission checks so the
     move can be illegal, but leaves the bookkeeping clean, so only the
     semantic rule the corruption targets fires. *)
  let raw_move (arch : Arch.t) (clustering : Clustering.t) cid
      (dst_pe : Arch.pe_inst) (dst_mode : Arch.mode) =
    let site = Hashtbl.find arch.Arch.sites cid in
    let src_pe = Vec.get arch.Arch.pes site.Arch.s_pe in
    let src_mode = Vec.get src_pe.Arch.modes site.Arch.s_mode in
    let c = clustering.clusters.(cid) in
    src_mode.Arch.m_clusters <-
      List.filter (fun id -> id <> cid) src_mode.Arch.m_clusters;
    src_mode.Arch.m_gates <- src_mode.Arch.m_gates - c.Clustering.gates;
    src_mode.Arch.m_pins <- src_mode.Arch.m_pins - c.Clustering.pins;
    src_pe.Arch.used_memory <- src_pe.Arch.used_memory - c.Clustering.memory_bytes;
    dst_mode.Arch.m_clusters <- cid :: dst_mode.Arch.m_clusters;
    dst_mode.Arch.m_gates <- dst_mode.Arch.m_gates + c.Clustering.gates;
    dst_mode.Arch.m_pins <- dst_mode.Arch.m_pins + c.Clustering.pins;
    dst_pe.Arch.used_memory <- dst_pe.Arch.used_memory + c.Clustering.memory_bytes;
    Hashtbl.replace arch.Arch.sites cid
      { Arch.s_pe = dst_pe.Arch.p_id; s_mode = dst_mode.Arch.m_id }

  (* After a placement-moving corruption, re-derive the summary numbers
     so the report stays self-consistent: only the broken structural
     invariant betrays the mutation, which is the harder test for the
     auditor. *)
  let rederived (clustering : Clustering.t) (arch : Arch.t) (_ : reported) =
    let n_pes, n_links, n_modes = derived_counts arch in
    {
      r_cost = recompute_cost clustering arch;
      r_n_pes = n_pes;
      r_n_links = n_links;
      r_n_modes = n_modes;
    }

  let apply ?compat ?(overlaps = fun _ _ -> true) (spec : Spec.t)
      (clustering : Clustering.t) (arch : Arch.t) (r : reported) kind =
    let compat =
      match compat with Some f -> f | None -> Spec.static_compatible spec
    in
    let occ = occupancy_of_sites arch in
    match kind with
    | Overfill_mode -> (
        match
          find_mode arch (fun pe m ->
              hw_caps pe.Arch.ptype <> None && m.Arch.m_clusters <> [])
        with
        | Some (pe, m) ->
            let max_gates, _ = Option.get (hw_caps pe.Arch.ptype) in
            m.Arch.m_gates <- max_gates + 1;
            Ok r
        | None -> Error "no occupied hardware mode")
    | Deflate_mode_pins -> (
        match find_mode arch (fun _ m -> m.Arch.m_pins > 0) with
        | Some (_, m) ->
            m.Arch.m_pins <- m.Arch.m_pins - 1;
            Ok r
        | None -> Error "no occupied mode uses pins")
    | Shrink_cpu_memory -> (
        let found = ref None in
        Vec.iter
          (fun (pe : Arch.pe_inst) ->
            if
              !found = None
              && Pe.is_cpu pe.Arch.ptype
              && pe.Arch.used_memory > 0
            then found := Some pe)
          arch.Arch.pes;
        match !found with
        | Some pe ->
            pe.Arch.used_memory <- pe.Arch.used_memory - 1;
            Ok r
        | None -> Error "no CPU with resident memory")
    | Ghost_site -> (
        (* Keep the placement-map entry but drop the cluster from its
           mode's occupancy list (gates/pins stay, so only the structural
           mismatch is visible). *)
        match
          find_mode arch (fun _ m -> m.Arch.m_clusters <> [])
        with
        | Some (_, m) ->
            m.Arch.m_clusters <- List.tl m.Arch.m_clusters;
            Ok r
        | None -> Error "no occupied mode")
    | Orphan_cluster -> (
        match find_mode arch (fun _ m -> m.Arch.m_clusters <> []) with
        | Some (_, m) ->
            Hashtbl.remove arch.Arch.sites (List.hd m.Arch.m_clusters);
            Ok r
        | None -> Error "no occupied mode")
    | Drop_link_port -> (
        (* Sever a PE pair that an inter-PE edge actually uses, removing
           one endpoint from every link joining the pair. *)
        let pair = ref None in
        Array.iter
          (fun (e : Edge.t) ->
            if !pair = None then
              match
                ( Arch.task_site arch clustering e.Edge.src,
                  Arch.task_site arch clustering e.Edge.dst )
              with
              | Some a, Some b when a.Arch.s_pe <> b.Arch.s_pe ->
                  pair := Some (a.Arch.s_pe, b.Arch.s_pe)
              | Some _, Some _ | Some _, None | None, Some _ | None, None -> ())
          spec.Spec.edges;
        match !pair with
        | Some (a, b) ->
            Vec.iter
              (fun (l : Arch.link_inst) ->
                if List.mem a l.Arch.attached && List.mem b l.Arch.attached then
                  l.Arch.attached <-
                    List.filter (fun pe_id -> pe_id <> a) l.Arch.attached)
              arch.Arch.links;
            Ok (rederived clustering arch r)
        | None -> Error "no inter-PE edge to sever")
    | Colocate_exclusion -> (
        (* Move the cluster of one excluded task into the exact site of
           its exclusion partner. *)
        let found = ref None in
        Array.iter
          (fun (task : Task.t) ->
            List.iter
              (fun other_id ->
                if !found = None then
                  match
                    ( Arch.task_site arch clustering task.Task.id,
                      Arch.task_site arch clustering other_id )
                  with
                  | Some a, Some b when a.Arch.s_pe <> b.Arch.s_pe ->
                      found := Some (clustering.of_task.(task.Task.id), b)
                  | Some _, Some _ | Some _, None | None, Some _ | None, None ->
                      ())
              task.Task.exclusion)
          spec.Spec.tasks;
        match !found with
        | Some (cid, dst) ->
            let dst_pe = Vec.get arch.Arch.pes dst.Arch.s_pe in
            let dst_mode = Vec.get dst_pe.Arch.modes dst.Arch.s_mode in
            raw_move arch clustering cid dst_pe dst_mode;
            Ok (rederived clustering arch r)
        | None -> Error "no exclusion pair placed on distinct PEs")
    | Share_incompatible_mode -> (
        (* Give an incompatible graph's cluster its own fresh mode on an
           occupied programmable device. *)
        let found = ref None in
        Vec.iter
          (fun (pe : Arch.pe_inst) ->
            if !found = None && Pe.is_programmable pe.Arch.ptype then
              Vec.iter
                (fun (m : Arch.mode) ->
                  List.iter
                    (fun resident ->
                      if !found = None then
                        match cluster_graph clustering resident with
                        | None -> ()
                        | Some g ->
                            (* Victim: a cluster of an incompatible graph,
                               hardware-feasible here, placed elsewhere,
                               whose graph has no cluster on this device
                               (that would trip same-graph-mode instead). *)
                            Hashtbl.iter
                              (fun cid (site : Arch.site) ->
                                if !found = None && site.Arch.s_pe <> pe.Arch.p_id
                                then
                                  match cluster_graph clustering cid with
                                  | Some g'
                                    when g' <> g
                                         && (not (compat g g'))
                                         && overlaps resident cid
                                         && clustering.clusters.(cid)
                                              .Clustering.feasible_mask
                                            land (1 lsl pe.Arch.ptype.Pe.id)
                                            <> 0
                                         && not
                                              (Hashtbl.fold
                                                 (fun cid2 (s2 : Arch.site) any ->
                                                   any
                                                   || s2.Arch.s_pe = pe.Arch.p_id
                                                      && cluster_graph clustering
                                                           cid2
                                                         = Some g')
                                                 arch.Arch.sites false) ->
                                      found := Some (cid, pe)
                                  | Some _ | None -> ())
                              arch.Arch.sites)
                    (residents occ pe.Arch.p_id m.Arch.m_id))
                pe.Arch.modes)
          arch.Arch.pes;
        match !found with
        | Some (cid, pe) ->
            let fresh = Arch.add_mode arch pe in
            raw_move arch clustering cid pe fresh;
            Ok (rederived clustering arch r)
        | None -> Error "no incompatible graph pair can share a device")
    | Split_graph_across_modes -> (
        (* Spread one graph's clusters over two modes of one device. *)
        match
          find_mode arch (fun pe m ->
              Pe.is_programmable pe.Arch.ptype
              &&
              let rs = residents occ pe.Arch.p_id m.Arch.m_id in
              List.exists
                (fun cid ->
                  List.exists
                    (fun cid' ->
                      cid <> cid'
                      && cluster_graph clustering cid
                         = cluster_graph clustering cid')
                    rs)
                rs)
        with
        | Some (pe, m) ->
            let rs = residents occ pe.Arch.p_id m.Arch.m_id in
            let cid =
              List.find
                (fun c ->
                  List.exists
                    (fun c' ->
                      c <> c'
                      && cluster_graph clustering c = cluster_graph clustering c')
                    rs)
                rs
            in
            let fresh = Arch.add_mode arch pe in
            raw_move arch clustering cid pe fresh;
            Ok (rederived clustering arch r)
        | None -> Error "no device holds two clusters of one graph in one mode")
    | Underreport_cost -> Ok { r with r_cost = r.r_cost -. 1.0 }
    | Overcount_pes -> Ok { r with r_n_pes = r.r_n_pes + 1 }
end
