(** Synthetic netlists for the place-and-route substrate.

    A circuit is a set of PFUs organized in logic levels, a set of
    internal nets (driver PFU plus sinks on later levels) and a number of
    I/O pins.  Generation is deterministic given the seed, so the Table 1
    circuits are stable artefacts. *)

type net = {
  driver : int;  (** PFU index within the circuit *)
  sinks : int list;  (** PFU indices *)
  level : int;  (** logic level of the driver, [0 .. depth-1] *)
}

type t = {
  name : string;
  pfu_count : int;
  pin_count : int;
  depth : int;  (** logic depth: PFU stages on the critical path *)
  nets : net array;
}

val generate :
  ?cross_fraction:float ->
  Crusade_util.Rng.t ->
  name:string ->
  pfus:int ->
  pins:int ->
  t
(** Generates a layered netlist: PFUs are spread over
    [max 3 (ceil (pfus/8))] levels capped at 8; each non-first-level PFU
    is driven by a net from the previous level with fanout 1-3.
    [cross_fraction] (default 0) adds that fraction of [pfus] extra
    long-range two-pin nets between random PFUs, modelling
    interconnect-rich designs that are hard to route at full device
    utilization. *)
