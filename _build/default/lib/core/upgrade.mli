(** Field-upgrade analysis (Section 3, motivation 2).

    Embedded systems ship with an initial feature set; later feature
    releases should, ideally, be delivered by reprogramming the FPGAs and
    CPLDs already in the field rather than by replacing hardware.  This
    module answers the question for a concrete upgrade: synthesize the
    base architecture from the initially released task graphs, then try
    to accommodate the upgrade graphs

    - first by reprogramming alone (new configuration modes on the
      deployed devices, spare CPU/ASIC capacity, no new parts),
    - and failing that, with new hardware, reporting the added cost. *)

type verdict =
  | Reprogramming_only of {
      result : Crusade_core.result;  (** the upgraded system *)
      added_images : int;  (** new configuration images shipped *)
    }
      (** the upgrade deploys as a pure software/bitstream update *)
  | Needs_hardware of {
      result : Crusade_core.result;
      added_pes : int;
      added_cost : float;  (** dollars over the base architecture *)
    }
  | Infeasible of string

type report = { base : Crusade_core.result; verdict : verdict }

val analyze :
  ?options:Crusade_core.options ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  upgrade_graphs:int list ->
  (report, string) result
(** [analyze spec lib ~upgrade_graphs] treats the listed graph ids as the
    future feature release and the rest as the initial product. *)
