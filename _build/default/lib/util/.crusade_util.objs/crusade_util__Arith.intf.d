lib/util/arith.mli:
