type net = { driver : int; sinks : int list; level : int }

type t = {
  name : string;
  pfu_count : int;
  pin_count : int;
  depth : int;
  nets : net array;
}

(* Assign each PFU a logic level, then connect consecutive levels so that
   the critical path really has [depth] stages. *)
let generate ?(cross_fraction = 0.0) rng ~name ~pfus ~pins =
  assert (pfus >= 2);
  let depth = Crusade_util.Arith.clamp ~lo:3 ~hi:8 ((pfus + 7) / 8) in
  let level_of = Array.init pfus (fun i -> i * depth / pfus) in
  let members level =
    let acc = ref [] in
    for i = pfus - 1 downto 0 do
      if level_of.(i) = level then acc := i :: !acc
    done;
    !acc
  in
  let nets = ref [] in
  for level = 0 to depth - 2 do
    let drivers = Array.of_list (members level) in
    let next = Array.of_list (members (level + 1)) in
    if Array.length drivers > 0 && Array.length next > 0 then begin
      (* Every next-level PFU is a sink of exactly one net; drivers may
         fan out to up to 3 sinks. *)
      let by_driver = Hashtbl.create 8 in
      Array.iter
        (fun sink ->
          let d = Crusade_util.Rng.pick rng drivers in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_driver d) in
          Hashtbl.replace by_driver d (sink :: cur))
        next;
      Hashtbl.iter
        (fun driver sinks ->
          let rec chunks = function
            | [] -> ()
            | s ->
                let take = min 3 (List.length s) in
                let rec split i acc rest =
                  if i = 0 then (List.rev acc, rest)
                  else begin
                    match rest with
                    | [] -> (List.rev acc, [])
                    | x :: xs -> split (i - 1) (x :: acc) xs
                  end
                in
                let head, tail = split take [] s in
                nets := { driver; sinks = head; level } :: !nets;
                chunks tail
          in
          chunks sinks)
        by_driver
    end
  done;
  let extra = int_of_float (cross_fraction *. float_of_int pfus) in
  for _ = 1 to extra do
    let a = Crusade_util.Rng.int rng pfus and b = Crusade_util.Rng.int rng pfus in
    if a <> b then
      nets := { driver = a; sinks = [ b ]; level = level_of.(a) } :: !nets
  done;
  { name; pfu_count = pfus; pin_count = pins; depth; nets = Array.of_list !nets }
