(** The allocation array (Sections 4.2 / 5): the candidate allocations
    for one cluster at the current point of co-synthesis, ordered by
    increasing incremental dollar cost.

    For programmable devices the array carries multiple *versions* of
    each device — one per configuration mode — plus a fresh-mode version
    when dynamic reconfiguration is enabled, so that a non-overlapping
    cluster can time-share the device instead of forcing a new one. *)

type kind =
  | Existing_site of Arch.site  (** reuse capacity on an allocated PE *)
  | New_mode of int  (** new configuration mode on PPE instance [pe_id] *)
  | New_pe of int  (** instantiate PE type [pe_type] *)

type t = {
  kind : kind;
  delta_cost : float;  (** estimated incremental dollar cost *)
  affinity : int;  (** placed neighbour clusters on the target PE *)
}

val enumerate :
  Arch.t ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_cluster.Clustering.cluster ->
  allow_new_modes:bool ->
  ?max_existing:int ->
  ?max_new_pe:int ->
  unit ->
  t list
(** Candidates ordered by (delta cost, communication affinity desc).
    Existing sites are pre-filtered for capacity and execution
    feasibility; at most [max_existing] (default 8) existing sites and
    [max_new_pe] (default 16) new-PE types are returned to bound the
    inner-loop evaluations. *)

val apply :
  Arch.t ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_cluster.Clustering.cluster ->
  t ->
  (unit, string) result
(** Materializes the option on (a copy of) the architecture: creates the
    PE/mode if needed, places the cluster and ensures link connectivity
    to its placed neighbours. *)
