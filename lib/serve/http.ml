type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type error =
  | Eof
  | Truncated
  | Too_large of string
  | Bad of string

(* Buffered reader: [buf.[lo..hi)] holds bytes read but not yet
   consumed; [fill] appends more.  A connection outlives many requests
   (keep-alive), so leftover bytes of a pipelined next request persist
   between [read_request] calls. *)
type conn = {
  read : bytes -> int -> int -> int;
  mutable buf : Bytes.t;
  mutable lo : int;
  mutable hi : int;
  mutable at_eof : bool;
}

let conn_of_read read =
  { read; buf = Bytes.create 4096; lo = 0; hi = 0; at_eof = false }

let conn_of_fd fd =
  conn_of_read (fun b off len ->
      try Unix.read fd b off len with
      | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0)

let conn_of_string s =
  let pos = ref 0 in
  conn_of_read (fun b off len ->
      let n = min len (String.length s - !pos) in
      Bytes.blit_string s !pos b off n;
      pos := !pos + n;
      n)

let available c = c.hi - c.lo

(* Pull more bytes in; returns false at end of stream. *)
let refill c =
  if c.at_eof then false
  else begin
    (* Compact, then grow if still full. *)
    if c.lo > 0 then begin
      Bytes.blit c.buf c.lo c.buf 0 (available c);
      c.hi <- available c;
      c.lo <- 0
    end;
    if c.hi = Bytes.length c.buf then begin
      let bigger = Bytes.create (2 * Bytes.length c.buf) in
      Bytes.blit c.buf 0 bigger 0 c.hi;
      c.buf <- bigger
    end;
    let n = c.read c.buf c.hi (Bytes.length c.buf - c.hi) in
    if n <= 0 then begin
      c.at_eof <- true;
      false
    end
    else begin
      c.hi <- c.hi + n;
      true
    end
  end

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code ->
              Buffer.add_char buf (Char.chr (code land 0xFF));
              go (i + 3)
          | None ->
              Buffer.add_char buf '%';
              go (i + 1))
      | '+' ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let split_query target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let pairs =
        String.split_on_char '&' qs
        |> List.filter (fun s -> s <> "")
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | None -> (percent_decode kv, "")
               | Some j ->
                   ( percent_decode (String.sub kv 0 j),
                     percent_decode
                       (String.sub kv (j + 1) (String.length kv - j - 1)) ))
      in
      (percent_decode path, pairs)

(* Find "\r\n\r\n" (or "\n\n") in the buffered bytes; returns the offset
   one past the terminator, relative to [c.lo]. *)
let find_header_end c =
  let b = c.buf in
  let rec go i =
    if i >= c.hi then None
    else if Bytes.get b i = '\n' then
      if i + 1 < c.hi && Bytes.get b (i + 1) = '\n' then Some (i + 2 - c.lo)
      else if
        i + 2 < c.hi && Bytes.get b (i + 1) = '\r' && Bytes.get b (i + 2) = '\n'
      then Some (i + 3 - c.lo)
      else go (i + 1)
    else go (i + 1)
  in
  go c.lo

let trim = String.trim

let parse_header_block block =
  let lines =
    String.split_on_char '\n' block
    |> List.map (fun l ->
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error (Bad "empty request")
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line |> List.filter (( <> ) "") with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let headers =
            List.fold_left
              (fun acc line ->
                match acc with
                | Error _ -> acc
                | Ok hs -> (
                    match String.index_opt line ':' with
                    | None -> Error (Bad ("malformed header: " ^ line))
                    | Some i ->
                        let name =
                          String.lowercase_ascii (trim (String.sub line 0 i))
                        in
                        let value =
                          trim
                            (String.sub line (i + 1) (String.length line - i - 1))
                        in
                        Ok ((name, value) :: hs)))
              (Ok []) header_lines
          in
          Result.map
            (fun hs ->
              let path, query = split_query target in
              (meth, path, query, List.rev hs))
            headers
      | _ -> Error (Bad ("malformed request line: " ^ request_line)))

let read_request ?(max_header = 16 * 1024) ?(max_body = 8 * 1024 * 1024) c =
  (* Accumulate until the blank line, within the header limit. *)
  let rec headers_loop () =
    match find_header_end c with
    | Some ofs -> Ok ofs
    | None ->
        if available c > max_header then Error (Too_large "header block")
        else if refill c then headers_loop ()
        else if available c = 0 then Error Eof
        else Error Truncated
  in
  match headers_loop () with
  | Error _ as e -> e
  | Ok header_len -> (
      let block = Bytes.sub_string c.buf c.lo header_len in
      c.lo <- c.lo + header_len;
      match parse_header_block block with
      | Error _ as e -> e
      | Ok (meth, path, query, headers) -> (
          let content_length =
            match List.assoc_opt "content-length" headers with
            | None -> Ok 0
            | Some v -> (
                match int_of_string_opt (trim v) with
                | Some n when n >= 0 -> Ok n
                | Some _ | None -> Error (Bad ("bad content-length: " ^ v)))
          in
          match content_length with
          | Error _ as e -> e
          | Ok len ->
              if len > max_body then Error (Too_large "body")
              else begin
                let rec body_loop () =
                  if available c >= len then begin
                    let body = Bytes.sub_string c.buf c.lo len in
                    c.lo <- c.lo + len;
                    Ok { meth; path; query; headers; body }
                  end
                  else if refill c then body_loop ()
                  else Error Truncated
                in
                body_loop ()
              end))

let header r name =
  List.assoc_opt (String.lowercase_ascii name) r.headers

let query_param r name = List.assoc_opt name r.query

let wants_close r =
  match header r "connection" with
  | Some v -> String.lowercase_ascii (trim v) = "close"
  | None -> false

type response = { status : int; reason : string; content_type : string; body : string }

let reason_of = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ?(content_type = "application/json") status body =
  { status; reason = reason_of status; content_type; body }

let to_bytes ?(close = false) r =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%s\r\n%s"
    r.status r.reason r.content_type (String.length r.body)
    (if close then "Connection: close\r\n" else "")
    r.body
