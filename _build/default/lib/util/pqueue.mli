(** Mutable binary-heap priority queue.

    The element with the smallest key (per the comparison supplied at
    creation) is served first.  Used by the scheduler's ready list and by
    the router's wavefront expansion. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty queue ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, or [None] when empty. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when the queue is empty. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order, not sorted). *)
