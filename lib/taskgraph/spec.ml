type t = {
  name : string;
  graphs : Graph.t array;
  tasks : Task.t array;
  edges : Edge.t array;
  succs : Edge.t list array;
  preds : Edge.t list array;
  boot_time_requirement : int;
}

let default_boot_requirement = 50_000 (* 50 ms *)

let build ~name ?(boot_time_requirement = default_boot_requirement) graph_list =
  let graphs = Array.of_list graph_list in
  let rec first_error i =
    if i >= Array.length graphs then None
    else begin
      match Graph.validate graphs.(i) with
      | Ok () -> first_error (i + 1)
      | Error msg -> Some msg
    end
  in
  match first_error 0 with
  | Some msg -> Error msg
  | None ->
      let tasks =
        Array.concat (Array.to_list (Array.map (fun (g : Graph.t) -> g.tasks) graphs))
      in
      let edges =
        Array.concat (Array.to_list (Array.map (fun (g : Graph.t) -> g.edges) graphs))
      in
      let n = Array.length tasks in
      let ids_ok =
        Array.for_all (fun (task : Task.t) -> task.id >= 0 && task.id < n) tasks
      in
      let distinct =
        let seen = Array.make n false in
        Array.for_all
          (fun (task : Task.t) ->
            if task.id < 0 || task.id >= n || seen.(task.id) then false
            else begin
              seen.(task.id) <- true;
              true
            end)
          tasks
      in
      let graph_ids_ok =
        Array.for_all
          (fun (g : Graph.t) ->
            g.id >= 0 && g.id < Array.length graphs && graphs.(g.id) == g)
          graphs
      in
      if not (ids_ok && distinct) then Error (name ^ ": task ids are not a permutation")
      else if not graph_ids_ok then Error (name ^ ": graph ids must equal indices")
      else begin
        (* Re-order the flat task table so that [tasks.(i).id = i]. *)
        let by_id = Array.make n tasks.(0) in
        Array.iter (fun (task : Task.t) -> by_id.(task.id) <- task) tasks;
        (* Exclusion ("may not share a PE") is inherently symmetric, but
           callers typically declare it on one side only — the DSL's
           [exclude], CRUSADE-FT's duplicate-and-compare tasks.  Close
           the relation here so every consumer (clustering,
           [Arch.place_cluster]'s conflict check, the auditor) sees both
           directions without scanning the whole task table. *)
        let extra = Array.make n [] in
        Array.iter
          (fun (task : Task.t) ->
            List.iter
              (fun other ->
                if
                  other >= 0 && other < n
                  && (not (List.mem task.id by_id.(other).Task.exclusion))
                  && not (List.mem task.id extra.(other))
                then extra.(other) <- task.id :: extra.(other))
              task.exclusion)
          by_id;
        let by_id =
          Array.map
            (fun (task : Task.t) ->
              match extra.(task.id) with
              | [] -> task
              | xs -> { task with Task.exclusion = task.exclusion @ List.rev xs })
            by_id
        in
        let graphs =
          Array.map
            (fun (g : Graph.t) ->
              {
                g with
                Graph.tasks =
                  Array.map (fun (t : Task.t) -> by_id.(t.Task.id)) g.tasks;
              })
            graphs
        in
        let edges = Array.mapi (fun i (e : Edge.t) -> { e with id = i }) edges in
        let succs = Array.make n [] and preds = Array.make n [] in
        Array.iter
          (fun (e : Edge.t) ->
            succs.(e.src) <- e :: succs.(e.src);
            preds.(e.dst) <- e :: preds.(e.dst))
          edges;
        Ok { name; graphs; tasks = by_id; edges; succs; preds; boot_time_requirement }
      end

let build_exn ~name ?boot_time_requirement graph_list =
  match build ~name ?boot_time_requirement graph_list with
  | Ok t -> t
  | Error msg -> failwith ("Spec.build: " ^ msg)

let n_tasks t = Array.length t.tasks
let n_edges t = Array.length t.edges
let n_graphs t = Array.length t.graphs
let task t i = t.tasks.(i)
let edge t i = t.edges.(i)
let graph_of_task t (task : Task.t) = t.graphs.(task.graph)

let hyperperiod t =
  let periods = Array.to_list (Array.map (fun (g : Graph.t) -> g.period) t.graphs) in
  Crusade_util.Arith.lcm_list periods

let copies t (g : Graph.t) = hyperperiod t / g.period

module Builder = struct
  type pending_graph = {
    g_name : string;
    period : int;
    est : int;
    deadline : int;
    compat_with : int list;
    unavailability_budget : float option;
    mutable g_tasks : Task.t list;  (* reverse order *)
    mutable g_edges : Edge.t list;  (* reverse order *)
  }

  type b = {
    mutable graphs_rev : pending_graph list;
    mutable n_graphs : int;
    mutable next_task : int;
    mutable task_graph : (int, int) Hashtbl.t;  (* task id -> graph id *)
  }

  let create () =
    { graphs_rev = []; n_graphs = 0; next_task = 0; task_graph = Hashtbl.create 64 }

  let nth_graph b i =
    let from_end = b.n_graphs - 1 - i in
    List.nth b.graphs_rev from_end

  let add_graph b ~name ~period ?(est = 0) ~deadline ?(compat_with = [])
      ?unavailability_budget () =
    let id = b.n_graphs in
    let pg =
      {
        g_name = name;
        period;
        est;
        deadline;
        compat_with;
        unavailability_budget;
        g_tasks = [];
        g_edges = [];
      }
    in
    b.graphs_rev <- pg :: b.graphs_rev;
    b.n_graphs <- id + 1;
    id

  let add_task b ~graph ~name ~exec ?preference ?(exclusion = [])
      ?(memory = Task.no_memory) ?(gates = 0) ?(pins = 0) ?deadline
      ?(ft = Task.default_ft) () =
    let pg = nth_graph b graph in
    let id = b.next_task in
    b.next_task <- id + 1;
    Hashtbl.replace b.task_graph id graph;
    let task : Task.t =
      { id; name; graph; exec; preference; exclusion; memory; gates; pins; deadline; ft }
    in
    pg.g_tasks <- task :: pg.g_tasks;
    id

  let add_edge b ~src ~dst ~bytes =
    let gs = Hashtbl.find_opt b.task_graph src
    and gd = Hashtbl.find_opt b.task_graph dst in
    match (gs, gd) with
    | Some gs, Some gd when gs = gd ->
        let pg = nth_graph b gs in
        pg.g_edges <- { Edge.id = 0; src; dst; bytes } :: pg.g_edges
    | Some _, Some _ -> invalid_arg "Spec.Builder.add_edge: endpoints in different graphs"
    | _ -> invalid_arg "Spec.Builder.add_edge: unknown task id"

  let finish b ~name ?boot_time_requirement () =
    let pending = List.rev b.graphs_rev in
    (* Symmetric closure of the declared compatibilities. *)
    let n = b.n_graphs in
    let declared = Array.make_matrix n n false in
    List.iteri
      (fun i pg ->
        List.iter
          (fun j ->
            if j >= 0 && j < n then begin
              declared.(i).(j) <- true;
              declared.(j).(i) <- true
            end)
          pg.compat_with)
      pending;
    let any_declared = List.exists (fun pg -> pg.compat_with <> []) pending in
    let graphs =
      List.mapi
        (fun i pg ->
          {
            Graph.id = i;
            name = pg.g_name;
            period = pg.period;
            est = pg.est;
            deadline = pg.deadline;
            tasks = Array.of_list (List.rev pg.g_tasks);
            edges = Array.of_list (List.rev pg.g_edges);
            compat = (if any_declared then Some declared.(i) else None);
            unavailability_budget = pg.unavailability_budget;
          })
        pending
    in
    build ~name ?boot_time_requirement graphs

  let finish_exn b ~name ?boot_time_requirement () =
    match finish b ~name ?boot_time_requirement () with
    | Ok t -> t
    | Error msg -> failwith ("Spec.Builder.finish: " ^ msg)
end

let envelopes_overlap (a : Graph.t) (b : Graph.t) =
  let lcm = Crusade_util.Arith.lcm a.period b.period in
  let copies_a = lcm / a.period and copies_b = lcm / b.period in
  (* Compare envelopes modulo the common hyperperiod; deadlines beyond the
     period boundary wrap conservatively. *)
  let overlap_1d s1 e1 s2 e2 = s1 < e2 && s2 < e1 in
  let rec scan_a k =
    if k >= copies_a then false
    else begin
      let sa = a.est + (k * a.period) in
      let ea = sa + a.deadline in
      let rec scan_b m =
        if m >= copies_b then false
        else begin
          let sb = b.est + (m * b.period) in
          let eb = sb + b.deadline in
          overlap_1d sa ea sb eb
          || overlap_1d sa ea (sb + lcm) (eb + lcm)
          || overlap_1d (sa + lcm) (ea + lcm) sb eb
          || scan_b (m + 1)
        end
      in
      scan_b 0 || scan_a (k + 1)
    end
  in
  scan_a 0

let static_compatible t gi gj =
  if gi = gj then false
  else begin
    let a = t.graphs.(gi) and b = t.graphs.(gj) in
    match a.Graph.compat with
    | Some vector when gj < Array.length vector -> vector.(gj)
    | Some _ | None -> not (envelopes_overlap a b)
  end
