module Rng = Crusade_util.Rng
module Device = Crusade_pnr.Device
module Circuit = Crusade_pnr.Circuit
module Fabric = Crusade_pnr.Fabric
module Delay = Crusade_pnr.Delay
module Ex = Crusade_workloads.Examples

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let circuit_structure =
  QCheck.Test.make ~name:"generated circuits are well-formed" ~count:100
    QCheck.(pair small_int (int_range 8 90))
    (fun (seed, pfus) ->
      let rng = Rng.create seed in
      let c = Circuit.generate rng ~name:"c" ~pfus ~pins:10 in
      c.Circuit.pfu_count = pfus
      && c.Circuit.depth >= 3
      && Array.for_all
           (fun (net : Circuit.net) ->
             net.Circuit.driver >= 0 && net.Circuit.driver < pfus
             && net.Circuit.level >= 0
             && net.Circuit.level < c.Circuit.depth
             && List.for_all (fun s -> s >= 0 && s < pfus) net.Circuit.sinks)
           c.Circuit.nets)

let circuit_cross_fraction_adds_nets () =
  let base = Circuit.generate (Rng.create 1) ~name:"a" ~pfus:40 ~pins:10 in
  let dense =
    Circuit.generate ~cross_fraction:0.5 (Rng.create 1) ~name:"b" ~pfus:40 ~pins:10
  in
  check Alcotest.bool "denser netlist" true
    (Array.length dense.Circuit.nets > Array.length base.Circuit.nets)

let device_geometry () =
  check Alcotest.int "table1 device pfus" 100 (Device.pfus Device.table1_device);
  let d = Device.make ~rows:4 ~cols:6 () in
  check Alcotest.int "pfus" 24 (Device.pfus d)

let fabric_deterministic () =
  let c = Circuit.generate (Rng.create 5) ~name:"c" ~pfus:20 ~pins:10 in
  let run () =
    Fabric.place_and_route Device.table1_device ~fillers:[] ~circuit:c
      ~extra_pin_nets:10 ~seed:99
  in
  match (run (), run ()) with
  | ( Fabric.Routed { critical_delay_ns = a; _ },
      Fabric.Routed { critical_delay_ns = b; _ } ) ->
      check (Alcotest.float 1e-9) "same delay" a b
  | _ -> Alcotest.fail "expected routed"

let fabric_no_capacity () =
  let d = Device.make ~rows:3 ~cols:3 () in
  let c = Circuit.generate (Rng.create 5) ~name:"big" ~pfus:20 ~pins:4 in
  match Fabric.place_and_route d ~fillers:[] ~circuit:c ~extra_pin_nets:0 ~seed:1 with
  | Fabric.Unroutable -> ()
  | Fabric.Routed _ -> Alcotest.fail "20 PFUs cannot fit 9 cells"

let fabric_positive_delay () =
  let c = Circuit.generate (Rng.create 5) ~name:"c" ~pfus:20 ~pins:10 in
  match
    Fabric.place_and_route Device.table1_device ~fillers:[] ~circuit:c
      ~extra_pin_nets:0 ~seed:3
  with
  | Fabric.Routed { critical_delay_ns; overflow_ratio } ->
      check Alcotest.bool "positive delay" true (critical_delay_ns > 0.0);
      check Alcotest.bool "no overflow when alone" true (overflow_ratio < 0.01)
  | Fabric.Unroutable -> Alcotest.fail "lone circuit must route"

let delay_zero_at_default_caps () =
  List.iter
    (fun (c : Ex.table1_circuit) ->
      let netlist = Ex.table1_netlist c in
      match Delay.measure ~samples:5 netlist ~eruf:0.70 ~epuf:0.80 ~seed:7 with
      | Delay.Increase_pct p ->
          check (Alcotest.float 1e-9) (c.Ex.circuit_name ^ " at caps") 0.0 p
      | Delay.Unroutable -> Alcotest.failf "%s unroutable at caps" c.Ex.circuit_name)
    Ex.table1_circuits

let delay_grows_with_utilization () =
  (* Table 1's qualitative law on a light circuit: full utilization is
     clearly worse than the 70% cap. *)
  let c = Ex.table1_netlist (List.hd Ex.table1_circuits) in
  match
    ( Delay.measure ~samples:9 c ~eruf:0.75 ~epuf:0.80 ~seed:7,
      Delay.measure ~samples:9 c ~eruf:1.00 ~epuf:0.80 ~seed:7 )
  with
  | Delay.Increase_pct low, Delay.Increase_pct high ->
      check Alcotest.bool "full >= low + 10%" true (high >= low +. 10.0)
  | _ -> Alcotest.fail "cvs1 routes at both settings"

let dense_circuits_unroutable_at_full () =
  List.iter
    (fun name ->
      let c =
        List.find (fun (c : Ex.table1_circuit) -> c.Ex.circuit_name = name)
          Ex.table1_circuits
      in
      match Delay.measure ~samples:15 (Ex.table1_netlist c) ~eruf:1.00 ~epuf:0.80 ~seed:7 with
      | Delay.Unroutable -> ()
      | Delay.Increase_pct p -> Alcotest.failf "%s routed at 100%% (%.1f%%)" name p)
    [ "r2d2p"; "cv46"; "wamxp" ]

let dense_circuits_route_below_full () =
  List.iter
    (fun name ->
      let c =
        List.find (fun (c : Ex.table1_circuit) -> c.Ex.circuit_name = name)
          Ex.table1_circuits
      in
      match Delay.measure ~samples:15 (Ex.table1_netlist c) ~eruf:0.90 ~epuf:0.80 ~seed:7 with
      | Delay.Unroutable -> Alcotest.failf "%s unroutable at 90%%" name
      | Delay.Increase_pct _ -> ())
    [ "r2d2p"; "cv46"; "wamxp" ]

let table1_circuit_count () =
  check Alcotest.int "ten circuits" 10 (List.length Ex.table1_circuits)

let suite =
  [
    qcheck circuit_structure;
    Alcotest.test_case "cross fraction adds nets" `Quick circuit_cross_fraction_adds_nets;
    Alcotest.test_case "device geometry" `Quick device_geometry;
    Alcotest.test_case "fabric deterministic" `Quick fabric_deterministic;
    Alcotest.test_case "fabric capacity" `Quick fabric_no_capacity;
    Alcotest.test_case "fabric positive delay" `Quick fabric_positive_delay;
    Alcotest.test_case "0% at default caps" `Slow delay_zero_at_default_caps;
    Alcotest.test_case "delay grows with utilization" `Slow delay_grows_with_utilization;
    Alcotest.test_case "dense unroutable at 100%" `Slow dense_circuits_unroutable_at_full;
    Alcotest.test_case "dense route below 100%" `Slow dense_circuits_route_below_full;
    Alcotest.test_case "table1 circuit count" `Quick table1_circuit_count;
  ]
