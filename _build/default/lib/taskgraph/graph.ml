type t = {
  id : int;
  name : string;
  period : int;
  est : int;
  deadline : int;
  tasks : Task.t array;
  edges : Edge.t array;
  compat : bool array option;
  unavailability_budget : float option;
}

let n_tasks t = Array.length t.tasks

let task_ids t = Array.to_list (Array.map (fun (task : Task.t) -> task.id) t.tasks)

let degree_tables t =
  let ids = Hashtbl.create (Array.length t.tasks) in
  Array.iter (fun (task : Task.t) -> Hashtbl.replace ids task.id ()) t.tasks;
  let out_deg = Hashtbl.create 16 and in_deg = Hashtbl.create 16 in
  Array.iter
    (fun (e : Edge.t) ->
      Hashtbl.replace out_deg e.src (1 + Option.value ~default:0 (Hashtbl.find_opt out_deg e.src));
      Hashtbl.replace in_deg e.dst (1 + Option.value ~default:0 (Hashtbl.find_opt in_deg e.dst)))
    t.edges;
  (ids, in_deg, out_deg)

let sinks t =
  let _, _, out_deg = degree_tables t in
  Array.to_list t.tasks
  |> List.filter (fun (task : Task.t) -> not (Hashtbl.mem out_deg task.id))

let sources t =
  let _, in_deg, _ = degree_tables t in
  Array.to_list t.tasks
  |> List.filter (fun (task : Task.t) -> not (Hashtbl.mem in_deg task.id))

let task_deadline t (task : Task.t) =
  match task.deadline with Some d -> d | None -> t.deadline

let topological_order t =
  let n = Array.length t.tasks in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i (task : Task.t) -> Hashtbl.replace index_of task.id i) t.tasks;
  let in_deg = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iter
    (fun (e : Edge.t) ->
      let si = Hashtbl.find index_of e.src and di = Hashtbl.find index_of e.dst in
      in_deg.(di) <- in_deg.(di) + 1;
      succs.(si) <- di :: succs.(si))
    t.edges;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) in_deg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    order := t.tasks.(i) :: !order;
    let relax j =
      in_deg.(j) <- in_deg.(j) - 1;
      if in_deg.(j) = 0 then Queue.add j queue
    in
    List.iter relax succs.(i)
  done;
  if !seen <> n then failwith (Printf.sprintf "Graph.topological_order: cycle in %s" t.name)
  else List.rev !order

let validate t =
  let ids, _, _ = degree_tables t in
  let bad_edge =
    Array.exists
      (fun (e : Edge.t) -> not (Hashtbl.mem ids e.src && Hashtbl.mem ids e.dst))
      t.edges
  in
  if t.period <= 0 then Error (t.name ^ ": non-positive period")
  else if t.deadline <= 0 then Error (t.name ^ ": non-positive deadline")
  else if t.est < 0 then Error (t.name ^ ": negative earliest start time")
  else if bad_edge then Error (t.name ^ ": edge references a non-member task")
  else begin
    match topological_order t with
    | _ -> Ok ()
    | exception Failure msg -> Error msg
  end
