module Trace = Crusade_util.Trace

type result = {
  core : Crusade.Crusade_core.result;
  transform_stats : Transform.stats;
  provisioning : Dependability.provisioning;
  total_cost : float;
  n_pes_with_spares : int;
}

let synthesize ?options spec lib =
  let trace =
    Option.bind options (fun (o : Crusade.Crusade_core.options) ->
        o.Crusade.Crusade_core.trace)
  in
  let augmented, transform_stats =
    Trace.span trace "ft.transform" (fun () -> Transform.apply spec)
  in
  match Crusade.Crusade_core.synthesize ?options augmented lib with
  | Error msg -> Error msg
  | Ok core ->
      let provisioning =
        Trace.span trace "ft.provision" (fun () ->
            Dependability.provision augmented core.Crusade.Crusade_core.clustering
              core.Crusade.Crusade_core.arch)
      in
      let n_spares =
        List.fold_left (fun acc (_, count) -> acc + count) 0
          provisioning.Dependability.spares
      in
      Ok
        {
          core;
          transform_stats;
          provisioning;
          total_cost = core.Crusade.Crusade_core.cost +. provisioning.Dependability.spare_cost;
          n_pes_with_spares = core.Crusade.Crusade_core.n_pes + n_spares;
        }
