lib/reconfig/interface.mli: Crusade_alloc Crusade_resource Crusade_taskgraph
