lib/sched/timeline.ml: List Option
