(** Synthesis as a service: the job server.

    One server owns a {!Store.t} of jobs, a {!Cache.t} of results, a
    FIFO {!Crusade_util.Jobqueue} of admitted work and a bounded
    in-flight budget on the shared {!Crusade_util.Pool} domain pool.
    HTTP handling is pure request -> response ({!handle}), so tests and
    the fuzz harness drive the full API in process; {!start} wraps the
    same handler in a real [unix] socket accept loop with keep-alive
    connection threads.

    API (JSON in, JSON out):
    - [POST /jobs] — body [{"spec": "<DSL text>", "options": {...},
      "resynth": {...}}]; returns the job id.  Options: [reconfig],
      [jobs], [portfolio], [quality] ("fast"|"balanced"|"max"),
      [budget_ms], [audit], [copy_cap], [eval_window].  [resynth] is a
      change event in the CLI's [--change-json] shape.  An identical
      (canonical spec, canonical options) re-submission is answered from
      the result cache: the job is born [done] with [cache_hit = true]
      and a payload byte-identical to the fresh run's.
    - [GET /jobs/:id] — status, transition log, event count.
    - [GET /jobs/:id/result] — the raw result payload (409 until done).
    - [GET /jobs/:id/events?since=N] — newline-delimited JSON phase
      events from the run's trace sink; [since] is the line cursor.
    - [DELETE /jobs/:id] — cooperative cancel: a queued job is removed
      outright, a running one is signalled through [options.cancel] and
      stops at its next commit point.
    - [GET /healthz], [GET /stats] — liveness; queue depth, in-flight,
      job states, cache hits/misses, per-phase latency totals. *)

type config = {
  max_in_flight : int;  (** jobs running concurrently on the pool *)
  queue_cap : int;  (** admitted-but-waiting bound; 503 when full *)
  default_jobs : int;  (** per-job evaluation parallelism default *)
  lib : Crusade_resource.Library.t;  (** PE library specs resolve against *)
  pre_run : (string -> unit) option;
      (** test hook: called with the job id on the worker domain after
          the job leaves the queue, before synthesis starts — lets a
          test hold a job "running" deterministically *)
}

val default_config : unit -> config
(** max_in_flight 2, queue_cap 64, [Pool.default_jobs ()] evaluation
    jobs, the stock library, no test hook. *)

type t

val create : config -> t
(** A fresh server sharing the global domain pool (warmed to
    [max_in_flight]). *)

val handle : t -> Http.request -> Http.response
(** Routes one request — the whole API surface, no sockets involved. *)

val stats_json : t -> string

val listen : ?addr:string -> port:int -> t -> Unix.file_descr * int
(** Binds and listens ([port = 0] picks an ephemeral port); returns the
    listening socket and the actual port. *)

val serve : t -> Unix.file_descr -> unit
(** Blocking accept loop on an already-listening socket; one thread per
    connection, keep-alive until the peer closes (or sends
    [Connection: close]).  Returns when {!stop} closes the socket. *)

val start : ?addr:string -> port:int -> t -> int
(** {!listen} + {!serve} on a background thread; returns the port. *)

val stop : t -> unit
(** Closes the listening socket (ending {!serve}) and the job queue.
    Running jobs finish; queued jobs are cancelled. *)
