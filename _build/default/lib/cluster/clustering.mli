(** Critical-path task clustering (Section 5, after COSYN).

    A cluster is a group of tasks that is always allocated to the same
    PE.  Clustering zeroes the communication cost along the current
    longest (highest-priority) path, shrinking the schedule length and
    the allocation search space.  Priority levels are recomputed after
    each cluster is closed, because the longest path moves. *)

type cluster = {
  cid : int;
  graph : int;  (** clusters never span task graphs *)
  members : int list;  (** global task ids, in path order *)
  feasible_mask : int;
      (** bit [p] set iff every member can run on PE type [p] and the
          aggregate gates/pins/memory fit that PE type's capacity *)
  gates : int;  (** aggregate hardware area of the members *)
  pins : int;
  memory_bytes : int;  (** aggregate storage of the members *)
}

type t = {
  clusters : cluster array;
  of_task : int array;  (** global task id -> cluster id *)
}

val feasibility_mask :
  Crusade_resource.Library.t -> gates:int -> pins:int -> memory_bytes:int ->
  task_mask:int -> int
(** Refines [task_mask] (PE types every member can execute on) by the
    capacity checks: CPUs need [memory_bytes] within their maximum DRAM,
    ASICs need the gates and pins, PPEs need them within the ERUF/EPUF
    caps. *)

val task_mask : Crusade_resource.Library.t -> Crusade_taskgraph.Task.t -> int
(** PE types a single task can execute on. *)

val run :
  ?max_cluster_size:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  t
(** Runs critical-path clustering.  [max_cluster_size] (default 8) bounds
    the cluster length; the paper reports up to three-fold co-synthesis
    speedup from clustering at <1% cost increase, and small caps keep the
    allocation flexible. *)

val singletons : Crusade_taskgraph.Spec.t -> Crusade_resource.Library.t -> t
(** The trivial clustering (one task per cluster); used to measure the
    benefit of clustering in the ablation bench. *)

val cluster_priority : t -> int array -> int -> int
(** [cluster_priority clustering task_levels cid]: the priority level of
    a cluster is the maximum level over its member tasks. *)
