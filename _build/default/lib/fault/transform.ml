module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph

type stats = {
  assertion_tasks : int;
  duplicate_tasks : int;
  compare_tasks : int;
  shared_by_transparency : int;
}

let combined_coverage assertions =
  1.0
  -. List.fold_left (fun acc (a : Task.assertion_spec) -> acc *. (1.0 -. a.coverage)) 1.0
       assertions

(* Assertions applied in order until the group reaches the requirement. *)
let assertion_group (task : Task.t) =
  let required = task.ft.required_coverage in
  let rec take acc cov = function
    | [] -> List.rev acc
    | (a : Task.assertion_spec) :: rest ->
        if cov >= required then List.rev acc
        else take (a :: acc) (1.0 -. ((1.0 -. cov) *. (1.0 -. a.coverage))) rest
  in
  take [] 0.0 task.ft.assertions

let scaled_memory (m : Task.memory) =
  {
    Task.program_bytes = m.program_bytes / 6;
    data_bytes = m.data_bytes / 6;
    stack_bytes = m.stack_bytes / 6;
  }

let apply ?(max_transparent_chain = 3) (spec : Spec.t) =
  let builder = Spec.Builder.create () in
  let new_id = Array.make (Spec.n_tasks spec) (-1) in
  (* Mirror of the builder's task counter, letting us map exclusion
     vectors (which may reference any task of the graph) before the tasks
     are physically added. *)
  let next = ref 0 in
  let add_task_counted builder ~graph ~name ~exec ?preference ?exclusion ?memory ?gates
      ?pins ?deadline ?ft () =
    let id =
      Spec.Builder.add_task builder ~graph ~name ~exec ?preference ?exclusion ?memory
        ?gates ?pins ?deadline ?ft ()
    in
    assert (id = !next);
    incr next;
    id
  in
  let stats =
    ref { assertion_tasks = 0; duplicate_tasks = 0; compare_tasks = 0; shared_by_transparency = 0 }
  in
  Array.iter
    (fun (g : Graph.t) ->
      let compat_with =
        match g.compat with
        | None -> []
        | Some vector ->
            let acc = ref [] in
            Array.iteri (fun j c -> if c && j < g.id then acc := j :: !acc) vector;
            !acc
      in
      let gid =
        Spec.Builder.add_graph builder ~name:g.name ~period:g.period ~est:g.est
          ~deadline:g.deadline ~compat_with
          ?unavailability_budget:g.unavailability_budget ()
      in
      (* Original tasks and edges; exclusion vectors keep their meaning
         through the id mapping, which is known up front. *)
      Array.iteri (fun i (task : Task.t) -> new_id.(task.id) <- !next + i) g.tasks;
      Array.iter
        (fun (task : Task.t) ->
          let exclusion = List.map (fun x -> new_id.(x)) task.exclusion in
          let id =
            add_task_counted builder ~graph:gid ~name:task.name ~exec:task.exec
              ?preference:task.preference ~exclusion ~memory:task.memory
              ~gates:task.gates ~pins:task.pins ?deadline:task.deadline ~ft:task.ft ()
          in
          assert (id = new_id.(task.id)))
        g.tasks;
      Array.iter
        (fun (e : Edge.t) ->
          Spec.Builder.add_edge builder ~src:new_id.(e.src) ~dst:new_id.(e.dst)
            ~bytes:e.bytes)
        g.edges;
      (* Decide which protected tasks need their own check; an
         error-transparent chain shares the check of its end. *)
      let needs_protection (task : Task.t) = task.ft.required_coverage > 0.0 in
      let own_check = Hashtbl.create 16 and chain_depth = Hashtbl.create 16 in
      let reverse_topo = List.rev (Graph.topological_order g) in
      List.iter
        (fun (task : Task.t) ->
          if needs_protection task then begin
            let covering_succ =
              List.fold_left
                (fun best (e : Edge.t) ->
                  (* An error born in this task is visible at the
                     successor's checked output only if the successor
                     itself transmits input errors. *)
                  let transparent = (Spec.task spec e.dst).Task.ft.error_transparent in
                  let depth =
                    if not transparent then None
                    else if Hashtbl.mem own_check e.dst then Some 1
                    else begin
                      match Hashtbl.find_opt chain_depth e.dst with
                      | Some d when d + 1 <= max_transparent_chain -> Some (d + 1)
                      | Some _ | None -> None
                    end
                  in
                  match (best, depth) with
                  | Some b, Some d -> Some (min b d)
                  | None, d -> d
                  | b, None -> b)
                None spec.succs.(task.id)
            in
            match covering_succ with
            | Some depth ->
                Hashtbl.replace chain_depth task.id depth;
                stats := { !stats with shared_by_transparency = !stats.shared_by_transparency + 1 }
            | None -> Hashtbl.replace own_check task.id ()
          end)
        reverse_topo;
      (* Materialize the checks. *)
      let check_deadline = g.deadline + (g.period / 5) in
      Array.iter
        (fun (task : Task.t) ->
          if Hashtbl.mem own_check task.id then begin
            let group = assertion_group task in
            let sufficient =
              group <> [] && combined_coverage group >= task.ft.required_coverage
            in
            if sufficient then
              List.iteri
                (fun i (a : Task.assertion_spec) ->
                  let chk =
                    add_task_counted builder ~graph:gid
                      ~name:(Printf.sprintf "%s.%s%d" task.name a.assertion_name i)
                      ~exec:a.check_exec
                      ~memory:(scaled_memory task.memory)
                      ~gates:(if task.gates > 0 then max 4 (task.gates / 5) else 0)
                      ~pins:(if task.pins > 0 then 2 else 0)
                      ~deadline:check_deadline ()
                  in
                  Spec.Builder.add_edge builder ~src:new_id.(task.id) ~dst:chk
                    ~bytes:a.check_bytes;
                  stats := { !stats with assertion_tasks = !stats.assertion_tasks + 1 })
                group
            else begin
              (* Duplicate-and-compare; the duplicate must not share a PE
                 with the original (fault isolation). *)
              let dup =
                add_task_counted builder ~graph:gid ~name:(task.name ^ ".dup")
                  ~exec:task.exec ?preference:task.preference
                  ~exclusion:[ new_id.(task.id) ] ~memory:task.memory
                  ~gates:task.gates ~pins:task.pins ?deadline:task.deadline ()
              in
              List.iter
                (fun (e : Edge.t) ->
                  Spec.Builder.add_edge builder ~src:new_id.(e.src) ~dst:dup
                    ~bytes:e.bytes)
                spec.preds.(task.id);
              let compare_exec =
                Array.map (fun t -> if t < 0 then -1 else max 1 (t / 8)) task.exec
              in
              let cmp =
                add_task_counted builder ~graph:gid ~name:(task.name ^ ".cmp")
                  ~exec:compare_exec
                  ~memory:(scaled_memory task.memory)
                  ~gates:(if task.gates > 0 then max 4 (task.gates / 6) else 0)
                  ~pins:(if task.pins > 0 then 2 else 0)
                  ~deadline:check_deadline ()
              in
              Spec.Builder.add_edge builder ~src:new_id.(task.id) ~dst:cmp ~bytes:32;
              Spec.Builder.add_edge builder ~src:dup ~dst:cmp ~bytes:32;
              stats :=
                {
                  !stats with
                  duplicate_tasks = !stats.duplicate_tasks + 1;
                  compare_tasks = !stats.compare_tasks + 1;
                }
            end
          end)
        g.tasks)
    spec.graphs;
  let name = spec.name ^ "-ft" in
  let transformed =
    Spec.Builder.finish_exn builder ~name
      ~boot_time_requirement:spec.boot_time_requirement ()
  in
  (transformed, !stats)
