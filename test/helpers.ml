(* Shared builders for the test suites: small specs over the small
   resource library (PE types: 0 cpu-a, 1 cpu-b, 2 asic-s, 3 fpga-f1,
   4 fpga-f2). *)

module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe

let small_lib = Library.small ()
let stock_lib = Library.stock ()

let exec_where lib ~eligible ~time =
  Array.init (Library.n_pe_types lib) (fun p ->
      if eligible (Library.pe lib p) then time else -1)

let cpu_exec ?(lib = small_lib) time = exec_where lib ~eligible:Pe.is_cpu ~time

let fpga_exec ?(lib = small_lib) time =
  exec_where lib ~time ~eligible:(fun pe ->
      match pe.Pe.pe_class with
      | Pe.Programmable { kind = Pe.Fpga; _ } -> true
      | Pe.Programmable { kind = Pe.Cpld; _ } | Pe.General_purpose _ | Pe.Asic_pe _ ->
          false)

let hw_exec ?(lib = small_lib) time =
  exec_where lib ~time ~eligible:(fun pe -> not (Pe.is_cpu pe))

(* A single-graph chain of [n] software tasks. *)
let sw_chain ?(lib = small_lib) ?(period = 10_000) ?(deadline = 8_000) ?(exec = 500) n =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"chain" ~period ~deadline () in
  let ids =
    List.init n (fun i ->
        Spec.Builder.add_task b ~graph:g
          ~name:(Printf.sprintf "t%d" i)
          ~exec:(cpu_exec ~lib exec) ())
  in
  let rec link = function
    | a :: (b' :: _ as rest) ->
        Spec.Builder.add_edge b ~src:a ~dst:b' ~bytes:64;
        link rest
    | [ _ ] | [] -> ()
  in
  link ids;
  (Spec.Builder.finish_exn b ~name:"sw-chain" (), ids)

(* Two single-task FPGA graphs; [overlap] controls whether their
   arrival-to-deadline envelopes intersect. *)
let two_hw_graphs ?(lib = small_lib) ~overlap () =
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"g1" ~period:20_000 ~est:0 ~deadline:5_000 () in
  let est2 = if overlap then 2_000 else 10_000 in
  let g2 =
    Spec.Builder.add_graph b ~name:"g2" ~period:20_000 ~est:est2 ~deadline:5_000 ()
  in
  let t1 =
    Spec.Builder.add_task b ~graph:g1 ~name:"t1" ~exec:(fpga_exec ~lib 3_000) ~gates:80
      ~pins:8 ()
  in
  let t2 =
    Spec.Builder.add_task b ~graph:g2 ~name:"t2" ~exec:(fpga_exec ~lib 3_000) ~gates:80
      ~pins:8 ()
  in
  (Spec.Builder.finish_exn b ~name:"two-hw" (), t1, t2)

let synthesize ?(lib = small_lib) ?(reconfig = true) spec =
  let options =
    { Crusade.Crusade_core.default_options with dynamic_reconfiguration = reconfig }
  in
  match Crusade.Crusade_core.synthesize ~options spec lib with
  | Ok r -> r
  | Error msg -> Alcotest.failf "synthesis failed: %s" msg

(* --- JSON validation for trace exports ---

   The build has no JSON library, so trace tests carry a minimal strict
   recursive-descent parser: enough to certify that an exported Chrome
   trace is well-formed JSON and that its span events balance. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Number of float
    | String of string
    | Array of value list
    | Obj of (string * value) list

  exception Bad of string

  let parse (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' | '\\' | '/' ->
                     Buffer.add_char buf s.[!pos];
                     advance ()
                 | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                     | Some _ -> ()
                     | None -> fail "bad \\u escape");
                     pos := !pos + 5
                 | c -> fail (Printf.sprintf "bad escape %C" c));
              go ()
          | c when Char.code c < 0x20 -> fail "raw control character in string"
          | c ->
              Buffer.add_char buf c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((key, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Array []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Array (elements [])
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Number (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input after value";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

  (* Chrome-trace well-formedness: every "B" on a tid is closed by a
     matching "E" (strict LIFO per tid), timestamps never decrease, and
     only the four phases the tracer emits appear. *)
  let spans_balanced json =
    match parse json with
    | Error _ -> false
    | Ok v -> (
        match member "traceEvents" v with
        | Some (Array events) ->
            let stacks : (float, string list) Hashtbl.t = Hashtbl.create 8 in
            let ok = ref true in
            let last_ts = ref neg_infinity in
            List.iter
              (fun ev ->
                let str k =
                  match member k ev with Some (String x) -> Some x | _ -> None
                in
                let num k =
                  match member k ev with Some (Number x) -> Some x | _ -> None
                in
                (match num "ts" with
                | Some ts ->
                    if ts < !last_ts then ok := false;
                    last_ts := ts
                | None -> ok := false);
                match (str "ph", str "name", num "tid") with
                | Some "B", Some name, Some tid ->
                    let stack =
                      Option.value ~default:[] (Hashtbl.find_opt stacks tid)
                    in
                    Hashtbl.replace stacks tid (name :: stack)
                | Some "E", _, Some tid -> (
                    match Hashtbl.find_opt stacks tid with
                    | Some (_ :: rest) -> Hashtbl.replace stacks tid rest
                    | Some [] | None -> ok := false)
                | Some ("i" | "C"), Some _, Some _ -> ()
                | _ -> ok := false)
              events;
            Hashtbl.iter (fun _ stack -> if stack <> [] then ok := false) stacks;
            !ok
        | _ -> false)
end
