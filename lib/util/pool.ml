type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stop : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    work_available = Condition.create ();
    queue = Queue.create ();
    workers = [];
    stop = false;
  }

let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let default_jobs () =
  match Sys.getenv_opt "CRUSADE_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> min j (recommended_jobs ())
      | Some _ | None -> 1)

(* Hard ceiling on spawned domains, whatever [jobs] is asked for:
   oversubscription beyond this only adds scheduling noise. *)
let max_workers = 15

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work_available t.mutex
  done;
  if not (Queue.is_empty t.queue) then begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (* Runner thunks catch their own exceptions; this is a backstop so a
       stray raise can never kill a worker. *)
    (try task () with _ -> ());
    worker_loop t
  end
  else Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.stop <- false

(* Grow the worker set to [n] domains (idempotent).  [t.workers] is
   mutated under the pool mutex: portfolio trajectories running on
   worker domains may hit a nested [map_n] concurrently with the
   orchestrating domain growing the pool. *)
let ensure_workers t n =
  let n = min n max_workers in
  Mutex.lock t.mutex;
  let have = List.length t.workers in
  if have < n then
    for _ = have + 1 to n do
      t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
    done;
  Mutex.unlock t.mutex

let size _t = max 1 (min max_workers (recommended_jobs ()))

(* More runners than the machine has domains never helps a CPU-bound
   work-steal: the extra runners just time-share cores and pay
   cross-domain GC synchronization for it.  The caller participates as
   a runner, so the cap is the full recommended count (not one less).
   Results are index-addressed, so the runner count never changes
   them. *)
let effective_jobs j = max 1 (min j (Domain.recommended_domain_count ()))

let warm t n = ensure_workers t n

let submit t task =
  Mutex.lock t.mutex;
  Queue.push task t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let map_n ?jobs t f n =
  let jobs =
    match jobs with Some j -> effective_jobs j | None -> recommended_jobs ()
  in
  if n <= 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let runners = min jobs n in
    ensure_workers t (runners - 1);
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let finished = ref 0 in
    let finished_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let runner () =
      let rec steal () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          steal ()
        end
      in
      steal ();
      Mutex.lock finished_mutex;
      incr finished;
      if !finished = runners then Condition.broadcast all_done;
      Mutex.unlock finished_mutex
    in
    Mutex.lock t.mutex;
    for _ = 2 to runners do
      Queue.push runner t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    (* The calling domain is a runner too, so progress never depends on a
       worker being free. *)
    runner ();
    Mutex.lock finished_mutex;
    while !finished < runners do
      Condition.wait all_done finished_mutex
    done;
    Mutex.unlock finished_mutex;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?jobs t f arr = map_n ?jobs t (fun i -> f arr.(i)) (Array.length arr)

let parallel_find_first ?jobs t f n =
  let jobs =
    match jobs with Some j -> effective_jobs j | None -> recommended_jobs ()
  in
  if jobs <= 1 then begin
    let rec scan i = if i >= n then None else match f i with Some _ as r -> r | None -> scan (i + 1) in
    scan 0
  end
  else begin
    let rec scan_from start =
      if start >= n then None
      else begin
        let batch = min jobs (n - start) in
        let results = map_n ~jobs t (fun k -> f (start + k)) batch in
        let rec pick k =
          if k >= batch then scan_from (start + batch)
          else match results.(k) with Some _ as r -> r | None -> pick (k + 1)
        in
        pick 0
      end
    in
    scan_from 0
  end

let global_pool = ref None

let global () =
  match !global_pool with
  | Some t -> t
  | None ->
      let t = create () in
      global_pool := Some t;
      at_exit (fun () -> shutdown t);
      t
