(** Communication connectivity: after a cluster lands on a PE, every
    inter-PE edge to an already-placed cluster needs a link joining the
    two PEs.  Ports are added to existing links when possible (cheapest
    port first); otherwise a new link instance of the cheapest type is
    created.  Communication vectors are implicitly recomputed because the
    scheduler reads port counts from the live architecture. *)

val ensure :
  Arch.t ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_cluster.Clustering.cluster ->
  (float, string) result
(** [ensure arch spec clustering cluster] connects the cluster's PE to
    the PEs of all placed neighbouring clusters; returns the dollar cost
    added, or an error when the link library cannot provide the
    connectivity (all links full). *)
