lib/util/text_table.ml: Buffer Float List Printf String
