(** Fault-detection transformation (Section 6).

    CRUSADE-FT protects every task that demands fault coverage by either
    assertion tasks (checking an inherent property of the task's output)
    or, when no assertion is available, duplicate-and-compare.  When a
    single assertion's coverage is insufficient, a group of assertions is
    applied.  Error-transparent tasks propagate input errors to their
    outputs, so one assertion at the end of an error-transparent chain
    covers the whole chain, cutting the overhead.

    The transformation is purely structural: it returns a new
    specification with the check tasks and edges added, which the
    ordinary CRUSADE flow then synthesizes. *)

type stats = {
  assertion_tasks : int;
  duplicate_tasks : int;
  compare_tasks : int;
  shared_by_transparency : int;
      (** protected tasks that needed no own check because a downstream
          assertion covers them through error transparency *)
}

val apply :
  ?max_transparent_chain:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_taskgraph.Spec.t * stats
(** [apply spec] returns the fault-detection-augmented specification.
    Check tasks receive a detection-latency budget of a fifth of the
    graph period beyond the protected task's deadline.  Duplicates carry
    an exclusion vector against their originals so they never share a PE
    (fault isolation).  [max_transparent_chain] (default 3) bounds how
    many error-transparent predecessors one assertion may cover, keeping
    fault-detection latency within its constraint. *)
