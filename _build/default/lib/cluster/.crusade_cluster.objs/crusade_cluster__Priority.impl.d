lib/cluster/priority.ml: Array Crusade_resource Crusade_taskgraph List
