lib/pnr/delay.mli: Circuit Device
