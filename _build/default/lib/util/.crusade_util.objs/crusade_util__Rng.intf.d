lib/util/rng.mli:
