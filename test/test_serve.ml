(* The job server, outside-in: the HTTP parser on hostile byte streams,
   the job queue under contention, the store's state machine, the full
   API in process, and finally the real thing over loopback sockets with
   a test-local HTTP client. *)

module C = Crusade.Crusade_core
module Dsl = Crusade_taskgraph.Dsl
module Http = Crusade_serve.Http
module Json = Crusade_serve.Json
module Server = Crusade_serve.Server
module Store = Crusade_serve.Store
module Jobqueue = Crusade_util.Jobqueue

let check = Alcotest.check

(* --- HTTP parser --- *)

let ok_exn = function
  | Ok r -> r
  | Error _ -> Alcotest.fail "expected a parsed request"

let simple_get () =
  let c =
    Http.conn_of_string
      "GET /jobs/j1/events?since=2&full HTTP/1.1\r\nHost: x\r\nX-Weird:  padded \r\n\r\n"
  in
  let r = ok_exn (Http.read_request c) in
  check Alcotest.string "method" "GET" r.Http.meth;
  check Alcotest.string "path" "/jobs/j1/events" r.Http.path;
  check (Alcotest.option Alcotest.string) "since" (Some "2")
    (Http.query_param r "since");
  check (Alcotest.option Alcotest.string) "valueless param" (Some "")
    (Http.query_param r "full");
  check (Alcotest.option Alcotest.string) "header lowercased+trimmed"
    (Some "padded") (Http.header r "x-weird");
  check Alcotest.string "no body" "" r.Http.body

let post_with_body () =
  let c =
    Http.conn_of_string
      "POST /jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world"
  in
  let r = ok_exn (Http.read_request c) in
  check Alcotest.string "body" "hello world" r.Http.body

let pipelined_keepalive () =
  (* Two requests in one byte stream: the leftover bytes of the second
     must survive the first parse. *)
  let c =
    Http.conn_of_string
      ("GET /healthz HTTP/1.1\r\n\r\n"
      ^ "POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nok")
  in
  let r1 = ok_exn (Http.read_request c) in
  let r2 = ok_exn (Http.read_request c) in
  check Alcotest.string "first path" "/healthz" r1.Http.path;
  check Alcotest.string "second path" "/jobs" r2.Http.path;
  check Alcotest.string "second body" "ok" r2.Http.body;
  match Http.read_request c with
  | Error Http.Eof -> ()
  | _ -> Alcotest.fail "stream should be drained"

let drip_fed_request () =
  (* One byte per read call: parsing must be independent of packet
     boundaries. *)
  let s = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
  let pos = ref 0 in
  let c =
    Http.conn_of_read (fun b off _len ->
        if !pos >= String.length s then 0
        else begin
          Bytes.set b off s.[!pos];
          incr pos;
          1
        end)
  in
  check Alcotest.string "path" "/healthz" (ok_exn (Http.read_request c)).Http.path

let truncation_and_eof () =
  (match Http.read_request (Http.conn_of_string "") with
  | Error Http.Eof -> ()
  | _ -> Alcotest.fail "empty stream is Eof");
  (match Http.read_request (Http.conn_of_string "GET /x HTTP/1.1\r\nHost") with
  | Error Http.Truncated -> ()
  | _ -> Alcotest.fail "mid-header end is Truncated");
  match
    Http.read_request
      (Http.conn_of_string "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi")
  with
  | Error Http.Truncated -> ()
  | _ -> Alcotest.fail "mid-body end is Truncated"

let limits_enforced () =
  let big_header =
    "GET /x HTTP/1.1\r\nX-Big: " ^ String.make 4096 'a' ^ "\r\n\r\n"
  in
  (match Http.read_request ~max_header:256 (Http.conn_of_string big_header) with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "oversized header block must be rejected");
  let big_body =
    "POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n" ^ String.make 4096 'b'
  in
  match Http.read_request ~max_body:256 (Http.conn_of_string big_body) with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "oversized body must be rejected before reading it"

let malformed_requests () =
  let bad s =
    match Http.read_request (Http.conn_of_string s) with
    | Error (Http.Bad _) -> ()
    | _ -> Alcotest.failf "should be Bad: %S" s
  in
  bad "GARBAGE\r\n\r\n";
  bad "GET /x HTTP/2\r\n\r\n";
  bad "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n";
  bad "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
  bad "POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n"

let bare_lf_accepted () =
  let c = Http.conn_of_string "GET /x HTTP/1.0\nHost: y\n\n" in
  check Alcotest.string "path" "/x" (ok_exn (Http.read_request c)).Http.path

let percent_decoding () =
  let c = Http.conn_of_string "GET /a%20b?k=v%2Fw+x HTTP/1.1\r\n\r\n" in
  let r = ok_exn (Http.read_request c) in
  check Alcotest.string "path decoded" "/a b" r.Http.path;
  check (Alcotest.option Alcotest.string) "query decoded" (Some "v/w x")
    (Http.query_param r "k")

let response_wire_format () =
  let r = Http.response 200 "{}" in
  check Alcotest.string "wire"
    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}"
    (Http.to_bytes r);
  check Alcotest.string "close adds header"
    "HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    (Http.to_bytes ~close:true (Http.response 404 ""))

(* --- the JSON codec the API speaks --- *)

let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Num 42.);
        ("f", Json.Num 2.5);
        ("l", Json.Arr [ Json.Bool true; Json.Null ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check Alcotest.bool "roundtrips" true (v = v')
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let json_strictness () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject: %S" s
  in
  bad "{} trailing";
  bad "{\"a\":}";
  bad "[1,]";
  bad "\"unterminated";
  bad "{\"a\" 1}";
  check Alcotest.bool "escapes decode" true
    (Json.parse "\"\\u0041\\n\"" = Ok (Json.Str "A\n"))

(* --- job queue --- *)

let queue_fifo () =
  let q = Jobqueue.create () in
  List.iter (fun i -> assert (Jobqueue.push q i)) [ 1; 2; 3; 4; 5 ];
  check (Alcotest.list Alcotest.int) "strict arrival order" [ 1; 2; 3; 4; 5 ]
    (List.init 5 (fun _ -> Option.get (Jobqueue.try_pop q)))

let queue_cap_and_close () =
  let q = Jobqueue.create ~cap:2 () in
  check Alcotest.bool "first fits" true (Jobqueue.push q 1);
  check Alcotest.bool "second fits" true (Jobqueue.push q 2);
  check Alcotest.bool "third bounces" false (Jobqueue.push q 3);
  Jobqueue.close q;
  check Alcotest.bool "push after close bounces" false (Jobqueue.push q 9);
  check (Alcotest.option Alcotest.int) "drains" (Some 1) (Jobqueue.pop q);
  check (Alcotest.option Alcotest.int) "drains" (Some 2) (Jobqueue.pop q);
  check (Alcotest.option Alcotest.int) "then None, no block" None
    (Jobqueue.pop q)

let queue_remove () =
  let q = Jobqueue.create () in
  List.iter (fun i -> assert (Jobqueue.push q i)) [ 1; 2; 3 ];
  check Alcotest.bool "removes queued" true (Jobqueue.remove q (fun x -> x = 2));
  check Alcotest.bool "already gone" false (Jobqueue.remove q (fun x -> x = 2));
  check (Alcotest.list Alcotest.int) "others keep order" [ 1; 3 ]
    (List.init 2 (fun _ -> Option.get (Jobqueue.try_pop q)))

let queue_cross_thread_fifo () =
  (* A popper thread consumes while the pusher produces: everything
     arrives, in order, exactly once. *)
  let n = 500 in
  let q = Jobqueue.create () in
  let got = ref [] in
  let popper =
    Thread.create
      (fun () ->
        let rec go () =
          match Jobqueue.pop q with
          | Some v ->
              got := v :: !got;
              go ()
          | None -> ()
        in
        go ())
      ()
  in
  for i = 1 to n do
    while not (Jobqueue.push q i) do
      Thread.yield ()
    done
  done;
  Jobqueue.close q;
  Thread.join popper;
  check (Alcotest.list Alcotest.int) "all items, arrival order"
    (List.init n (fun i -> i + 1))
    (List.rev !got)

let queue_remove_pop_race () =
  (* remove and pop race for the same elements: each element ends up
     exactly one place — removed or popped, never both, never lost. *)
  let n = 200 in
  let q = Jobqueue.create () in
  for i = 1 to n do
    assert (Jobqueue.push q i)
  done;
  let popped = ref [] in
  let removed = ref 0 in
  let popper =
    Thread.create
      (fun () ->
        let rec go () =
          match Jobqueue.pop q with
          | Some v ->
              popped := v :: !popped;
              go ()
          | None -> ()
        in
        go ())
      ()
  in
  for i = 1 to n do
    if i mod 2 = 0 && Jobqueue.remove q (fun x -> x = i) then incr removed
  done;
  Jobqueue.close q;
  Thread.join popper;
  check Alcotest.int "conserved" n (!removed + List.length !popped);
  let seen = Hashtbl.create n in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then Alcotest.failf "popped twice: %d" v;
      Hashtbl.add seen v ())
    !popped

(* --- job store state machine --- *)

let store_legal_lifecycle () =
  let s = Store.create () in
  let j = Store.add s ~spec_text:"x" ~cache_key:"k" ~cacheable:true in
  check Alcotest.string "fresh id" "j1" j.Store.id;
  check Alcotest.bool "queued->running" true
    (Store.transition s j Store.Running = Ok ());
  check Alcotest.bool "running->done" true
    (Store.transition s j Store.Done = Ok ());
  check
    (Alcotest.list Alcotest.string)
    "audit trail"
    [ "queued"; "running"; "done" ]
    (List.map (fun (_, st) -> Store.state_name st) (Store.log_of s j))

let store_illegal_edges_rejected () =
  let s = Store.create () in
  let j = Store.add s ~spec_text:"x" ~cache_key:"k" ~cacheable:true in
  ignore (Store.transition s j Store.Running);
  ignore (Store.transition s j Store.Done);
  List.iter
    (fun target ->
      match Store.transition s j target with
      | Error msg ->
          check Alcotest.bool "error names the edge" true
            (Helpers.contains msg "done ->")
      | Ok () -> Alcotest.fail "terminal state must be terminal")
    [ Store.Running; Store.Cancelled; Store.Failed; Store.Queued ];
  let j2 = Store.add s ~spec_text:"y" ~cache_key:"k2" ~cacheable:false in
  check Alcotest.bool "queued->done is legal (cache hit)" true
    (Store.transition s j2 Store.Done = Ok ())

let store_event_cursor () =
  let s = Store.create () in
  let j = Store.add s ~spec_text:"x" ~cache_key:"k" ~cacheable:true in
  List.iter (Store.append_event s j) [ "a"; "b"; "c" ];
  let lines, total = Store.events_since s j 0 in
  check (Alcotest.list Alcotest.string) "all, oldest first" [ "a"; "b"; "c" ]
    lines;
  check Alcotest.int "total" 3 total;
  let lines, _ = Store.events_since s j 2 in
  check (Alcotest.list Alcotest.string) "cursor skips" [ "c" ] lines;
  check Alcotest.bool "cursor at end" true ([] = fst (Store.events_since s j 3))

(* --- the API, in process --- *)

let call t ?(body = "") ?(query = []) meth path =
  Server.handle t { Http.meth; path; query; headers = []; body }

let job_body ?(options = []) spec_text =
  let opts =
    if options = [] then ""
    else
      Printf.sprintf ",\"options\":{%s}"
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k v) options))
  in
  Printf.sprintf "{\"spec\":\"%s\"%s}" (Json.escape spec_text) opts

let mk_server ?(max_in_flight = 2) ?(queue_cap = 8) ?pre_run () =
  Server.create
    {
      Server.max_in_flight;
      queue_cap;
      default_jobs = 1;
      lib = Helpers.small_lib;
      pre_run;
    }

let field resp name =
  match Json.parse resp.Http.body with
  | Ok v -> Json.member name v
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg resp.Http.body

let str_field resp name =
  match Option.bind (field resp name) Json.str with
  | Some s -> s
  | None -> Alcotest.failf "missing %S in %s" name resp.Http.body

let wait_for ?(timeout = 60.) what f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if not (f ()) then begin
      if Unix.gettimeofday () -. t0 > timeout then
        Alcotest.failf "timed out waiting for %s" what;
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let submit_ok t ?options spec_text =
  let resp = call t ~body:(job_body ?options spec_text) "POST" "/jobs" in
  check Alcotest.int "submission accepted" 201 resp.Http.status;
  (str_field resp "id", resp)

let wait_state t id target =
  wait_for
    (Printf.sprintf "%s to be %s" id target)
    (fun () -> str_field (call t "GET" ("/jobs/" ^ id)) "state" = target)

let chain_spec n = Dsl.print (fst (Helpers.sw_chain n))

let direct_json spec_text =
  match
    C.synthesize
      (Result.get_ok (Dsl.parse spec_text))
      Helpers.small_lib
  with
  | Ok r -> C.result_json r
  | Error msg -> Alcotest.failf "direct synthesis failed: %s" msg

let healthz_and_404 () =
  let t = mk_server () in
  check Alcotest.int "healthz" 200 (call t "GET" "/healthz").Http.status;
  check Alcotest.int "unknown job" 404 (call t "GET" "/jobs/j9").Http.status;
  check Alcotest.int "unknown path" 404 (call t "GET" "/nope").Http.status;
  check Alcotest.int "unknown method" 405
    (call t "TRACE" "/healthz").Http.status

let bad_submissions_rejected () =
  let t = mk_server () in
  let bad body why =
    let resp = call t ~body "POST" "/jobs" in
    check Alcotest.int why 400 resp.Http.status
  in
  bad "not json at all" "bad JSON";
  bad "{\"options\":{}}" "missing spec";
  bad "{\"spec\":\"spec x\\ngraph g period -5\"}" "unparsable spec";
  bad (job_body ~options:[ ("jobs", "0") ] (chain_spec 2)) "jobs must be positive";
  bad (job_body ~options:[ ("turbo", "true") ] (chain_spec 2)) "unknown option";
  bad
    "{\"spec\":\"x\",\"resynth\":{\"kind\":\"warp\"}}"
    "unknown change kind"

let job_runs_to_byte_identical_result () =
  let t = mk_server () in
  let spec_text = chain_spec 3 in
  let id, resp = submit_ok t spec_text in
  check Alcotest.string "born queued" "queued" (str_field resp "state");
  wait_state t id "done";
  let result = call t "GET" ("/jobs/" ^ id ^ "/result") in
  check Alcotest.int "result served" 200 result.Http.status;
  check Alcotest.string "byte-identical to the direct flow"
    (direct_json spec_text) result.Http.body

let cache_hit_identical_and_no_synthesis () =
  let t = mk_server () in
  let spec_text = chain_spec 4 in
  let id1, _ = submit_ok t spec_text in
  wait_state t id1 "done";
  let fresh = (call t "GET" ("/jobs/" ^ id1 ^ "/result")).Http.body in
  let synth_runs () =
    match
      Option.bind
        (Option.bind (field (call t "GET" "/stats") "counters")
           (Json.member "synth_runs"))
        Json.int
    with
    | Some n -> n
    | None -> 0
  in
  let runs_before = synth_runs () in
  (* Same spec, different surface syntax: extra blank lines and comments
     must hash to the same cache line (the key is the canonical print). *)
  let id2, resp2 = submit_ok t ("# resubmitted\n\n" ^ spec_text ^ "\n# end\n") in
  check Alcotest.string "born done" "done" (str_field resp2 "state");
  check Alcotest.bool "flagged as cache hit" true
    (field resp2 "cache_hit" = Some (Json.Bool true));
  let cached = call t "GET" ("/jobs/" ^ id2 ^ "/result") in
  check Alcotest.string "cached bytes = fresh bytes" fresh cached.Http.body;
  check Alcotest.int "no new synthesis ran" runs_before (synth_runs ());
  (* A different option set must miss. *)
  let id3, resp3 =
    submit_ok t ~options:[ ("reconfig", "false") ] spec_text
  in
  check Alcotest.string "different options miss" "queued"
    (str_field resp3 "state");
  wait_state t id3 "done"

let concurrent_jobs_both_exact () =
  let t = mk_server ~max_in_flight:2 () in
  let a = chain_spec 2 and b = chain_spec 5 in
  let id_a, _ = submit_ok t a in
  let id_b, _ = submit_ok t b in
  wait_state t id_a "done";
  wait_state t id_b "done";
  check Alcotest.string "job A exact" (direct_json a)
    (call t "GET" ("/jobs/" ^ id_a ^ "/result")).Http.body;
  check Alcotest.string "job B exact" (direct_json b)
    (call t "GET" ("/jobs/" ^ id_b ^ "/result")).Http.body

let events_stream_and_cursor () =
  let t = mk_server () in
  let id, _ = submit_ok t (chain_spec 3) in
  wait_state t id "done";
  let events = call t "GET" ("/jobs/" ^ id ^ "/events") in
  check Alcotest.string "ndjson" "application/x-ndjson" events.Http.content_type;
  let lines =
    String.split_on_char '\n' events.Http.body
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.bool "phases were streamed" true (List.length lines > 3);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok v ->
          check Alcotest.bool "event has a phase" true
            (Json.member "phase" v <> None)
      | Error msg -> Alcotest.failf "bad NDJSON line (%s): %s" msg line)
    lines;
  let tail =
    call t
      ~query:[ ("since", string_of_int (List.length lines)) ]
      "GET"
      ("/jobs/" ^ id ^ "/events")
  in
  check Alcotest.string "cursor past the end is empty" "" tail.Http.body

(* A gate the pre_run hook blocks on, so a test can hold a job in the
   running state for as long as it needs. *)
let gate () =
  let m = Mutex.create () and c = Condition.create () and open_ = ref false in
  let wait () =
    Mutex.lock m;
    while not !open_ do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  let release () =
    Mutex.lock m;
    open_ := true;
    Condition.broadcast c;
    Mutex.unlock m
  in
  (wait, release)

let cancel_queued_job () =
  let wait, release = gate () in
  let t = mk_server ~max_in_flight:1 ~pre_run:(fun _ -> wait ()) () in
  let id1, _ = submit_ok t (chain_spec 2) in
  let id2, _ = submit_ok t (chain_spec 3) in
  wait_state t id1 "running";
  (* j2 is still queued behind the held slot: DELETE removes it outright. *)
  let resp = call t "DELETE" ("/jobs/" ^ id2) in
  check Alcotest.int "removed from the queue" 200 resp.Http.status;
  check Alcotest.string "immediately terminal" "cancelled"
    (str_field (call t "GET" ("/jobs/" ^ id2)) "state");
  check Alcotest.int "second cancel conflicts" 409
    (call t "DELETE" ("/jobs/" ^ id2)).Http.status;
  release ();
  wait_state t id1 "done";
  (* The slot is free again: a later job runs to completion. *)
  let id3, _ = submit_ok t (chain_spec 4) in
  wait_state t id3 "done"

let cancel_running_job () =
  let wait, release = gate () in
  let t = mk_server ~max_in_flight:1 ~pre_run:(fun _ -> wait ()) () in
  let id, _ = submit_ok t (chain_spec 2) in
  wait_state t id "running";
  let resp = call t "DELETE" ("/jobs/" ^ id) in
  check Alcotest.int "cooperative cancel accepted" 202 resp.Http.status;
  release ();
  wait_state t id "cancelled";
  check Alcotest.int "no result for a cancelled job" 409
    (call t "GET" ("/jobs/" ^ id ^ "/result")).Http.status;
  (* The freed slot runs the next job. *)
  let id2, _ = submit_ok t (chain_spec 3) in
  wait_state t id2 "done";
  check Alcotest.string "new job exact after a cancellation"
    (direct_json (chain_spec 3))
    (call t "GET" ("/jobs/" ^ id2 ^ "/result")).Http.body

let queue_full_is_503 () =
  let wait, release = gate () in
  let t = mk_server ~max_in_flight:1 ~queue_cap:1 ~pre_run:(fun _ -> wait ()) () in
  let id1, _ = submit_ok t (chain_spec 2) in
  wait_state t id1 "running";
  let _id2, _ = submit_ok t (chain_spec 3) in
  (* slot held + queue slot taken: the third submission must bounce *)
  let resp = call t ~body:(job_body (chain_spec 4)) "POST" "/jobs" in
  check Alcotest.int "backpressure" 503 resp.Http.status;
  release ()

let resynth_job () =
  let t = mk_server () in
  let spec_text =
    let spec, _, _ = Helpers.two_hw_graphs ~overlap:false () in
    Dsl.print spec
  in
  let body =
    Printf.sprintf
      "{\"spec\":\"%s\",\"resynth\":{\"kind\":\"departure\",\"graphs\":[1]}}"
      (Json.escape spec_text)
  in
  let resp = call t ~body "POST" "/jobs" in
  check Alcotest.int "accepted" 201 resp.Http.status;
  let id = str_field resp "id" in
  wait_state t id "done";
  let result = call t "GET" ("/jobs/" ^ id ^ "/result") in
  match Json.parse result.Http.body with
  | Ok v ->
      check
        (Alcotest.option Alcotest.string)
        "schema" (Some "crusade-resynth-1")
        (Option.bind (Json.member "schema" v) Json.str);
      check Alcotest.bool "has a verdict" true (Json.member "verdict" v <> None)
  | Error msg -> Alcotest.failf "resynth payload not JSON (%s)" msg

let stats_shape () =
  let t = mk_server () in
  let id, _ = submit_ok t (chain_spec 2) in
  wait_state t id "done";
  let resp = call t "GET" "/stats" in
  match Json.parse resp.Http.body with
  | Error msg -> Alcotest.failf "stats not JSON: %s" msg
  | Ok v ->
      List.iter
        (fun k ->
          check Alcotest.bool (k ^ " present") true (Json.member k v <> None))
        [ "queue_depth"; "in_flight"; "jobs"; "cache"; "counters"; "phases_us" ];
      let done_jobs =
        Option.bind (Option.bind (Json.member "jobs" v) (Json.member "done")) Json.int
      in
      check (Alcotest.option Alcotest.int) "one done job" (Some 1) done_jobs;
      check Alcotest.bool "per-phase latency recorded" true
        (match Json.member "phases_us" v with
        | Some (Json.Obj (_ :: _)) -> true
        | _ -> false)

(* --- black box: the real server over loopback sockets --- *)

(* Minimal test-local HTTP client: one request per connection,
   Connection: close, read to EOF. *)
let http_request ~port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: test\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      meth path (String.length body) body
  in
  let rec send off =
    if off < String.length req then
      send (off + Unix.write_substring fd req off (String.length req - off))
  in
  send 0;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec recv () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      recv ()
    end
  in
  recv ();
  let raw = Buffer.contents buf in
  let status =
    match String.split_on_char ' ' raw with
    | _ :: code :: _ -> int_of_string code
    | _ -> Alcotest.failf "unparsable response: %S" raw
  in
  let body =
    match Helpers.contains raw "\r\n\r\n" with
    | true ->
        let rec find i =
          if String.sub raw i 4 = "\r\n\r\n" then i + 4 else find (i + 1)
        in
        let i = find 0 in
        String.sub raw i (String.length raw - i)
    | false -> ""
  in
  (status, body)

let black_box_over_sockets () =
  let t = mk_server ~max_in_flight:2 () in
  let port = Server.start ~port:0 t in
  Fun.protect ~finally:(fun () -> Server.stop t) @@ fun () ->
  let get path = http_request ~port "GET" path "" in
  let status, body = get "/healthz" in
  check Alcotest.int "healthz up" 200 status;
  check Alcotest.string "healthz body" "{\"ok\":true}" body;
  let spec_text = chain_spec 3 in
  let submit () = http_request ~port "POST" "/jobs" (job_body spec_text) in
  let status, body = submit () in
  check Alcotest.int "submitted over the wire" 201 status;
  let id =
    match Option.bind (Result.to_option (Json.parse body)) (Json.member "id") with
    | Some (Json.Str id) -> id
    | _ -> Alcotest.failf "no id in %s" body
  in
  wait_for "job done over sockets" (fun () ->
      Helpers.contains (snd (get ("/jobs/" ^ id))) "\"state\":\"done\"");
  let _, fresh = get ("/jobs/" ^ id ^ "/result") in
  check Alcotest.string "socket result = direct flow" (direct_json spec_text)
    fresh;
  (* identical re-submit over the wire: a done-at-birth cache hit *)
  let status, body2 = submit () in
  check Alcotest.int "resubmitted" 201 status;
  check Alcotest.bool "cache hit over the wire" true
    (Helpers.contains body2 "\"cache_hit\":true");
  let id2 =
    match Option.bind (Result.to_option (Json.parse body2)) (Json.member "id") with
    | Some (Json.Str id) -> id
    | _ -> Alcotest.failf "no id in %s" body2
  in
  let _, cached = get ("/jobs/" ^ id2 ^ "/result") in
  check Alcotest.string "cached bytes over the wire" fresh cached;
  let _, events = get ("/jobs/" ^ id ^ "/events") in
  check Alcotest.bool "events streamed" true (Helpers.contains events "\"phase\"");
  let status, _ = http_request ~port "DELETE" ("/jobs/" ^ id2) "" in
  check Alcotest.int "cancelling a done job conflicts" 409 status

let socket_pipelining () =
  let t = mk_server () in
  let port = Server.start ~port:0 t in
  Fun.protect ~finally:(fun () -> Server.stop t) @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* Two pipelined requests in a single write on one keep-alive
     connection; the second carries Connection: close. *)
  let wire =
    "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
    ^ "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
  in
  let rec send off =
    if off < String.length wire then
      send (off + Unix.write_substring fd wire off (String.length wire - off))
  in
  send 0;
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec recv () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      recv ()
    end
  in
  recv ();
  let raw = Buffer.contents buf in
  let count_bodies =
    let rec go i acc =
      if i + 11 > String.length raw then acc
      else if String.sub raw i 11 = "{\"ok\":true}" then go (i + 11) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "both pipelined responses arrive" 2 count_bodies

let suite =
  [
    Alcotest.test_case "http: simple GET" `Quick simple_get;
    Alcotest.test_case "http: POST with body" `Quick post_with_body;
    Alcotest.test_case "http: pipelined keep-alive" `Quick pipelined_keepalive;
    Alcotest.test_case "http: drip-fed bytes" `Quick drip_fed_request;
    Alcotest.test_case "http: truncation and eof" `Quick truncation_and_eof;
    Alcotest.test_case "http: size limits" `Quick limits_enforced;
    Alcotest.test_case "http: malformed requests" `Quick malformed_requests;
    Alcotest.test_case "http: bare LF accepted" `Quick bare_lf_accepted;
    Alcotest.test_case "http: percent decoding" `Quick percent_decoding;
    Alcotest.test_case "http: response wire format" `Quick response_wire_format;
    Alcotest.test_case "json: roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "json: strictness" `Quick json_strictness;
    Alcotest.test_case "queue: fifo" `Quick queue_fifo;
    Alcotest.test_case "queue: cap and close" `Quick queue_cap_and_close;
    Alcotest.test_case "queue: remove" `Quick queue_remove;
    Alcotest.test_case "queue: cross-thread fifo" `Quick queue_cross_thread_fifo;
    Alcotest.test_case "queue: remove/pop race" `Quick queue_remove_pop_race;
    Alcotest.test_case "store: legal lifecycle" `Quick store_legal_lifecycle;
    Alcotest.test_case "store: illegal edges rejected" `Quick
      store_illegal_edges_rejected;
    Alcotest.test_case "store: event cursor" `Quick store_event_cursor;
    Alcotest.test_case "api: healthz and 404s" `Quick healthz_and_404;
    Alcotest.test_case "api: bad submissions rejected" `Quick
      bad_submissions_rejected;
    Alcotest.test_case "api: job result byte-identical" `Quick
      job_runs_to_byte_identical_result;
    Alcotest.test_case "api: cache hit, no new synthesis" `Quick
      cache_hit_identical_and_no_synthesis;
    Alcotest.test_case "api: concurrent jobs both exact" `Quick
      concurrent_jobs_both_exact;
    Alcotest.test_case "api: events stream and cursor" `Quick
      events_stream_and_cursor;
    Alcotest.test_case "api: cancel queued job" `Quick cancel_queued_job;
    Alcotest.test_case "api: cancel running job" `Quick cancel_running_job;
    Alcotest.test_case "api: queue full is 503" `Quick queue_full_is_503;
    Alcotest.test_case "api: resynth job" `Quick resynth_job;
    Alcotest.test_case "api: stats shape" `Quick stats_shape;
    Alcotest.test_case "socket: black box" `Quick black_box_over_sockets;
    Alcotest.test_case "socket: pipelining" `Quick socket_pipelining;
  ]
