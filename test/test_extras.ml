(* Tests for the reporting/analysis extensions: schedule validation,
   Gantt rendering, reconfiguration programs, architecture export, the
   textual spec format and field-upgrade analysis. *)

module C = Crusade.Crusade_core
module U = Crusade.Upgrade
module Spec = Crusade_taskgraph.Spec
module Dsl = Crusade_taskgraph.Dsl
module Task = Crusade_taskgraph.Task
module Validate = Crusade_sched.Validate
module Gantt = Crusade_sched.Gantt
module Program = Crusade_reconfig.Program
module Export = Crusade_alloc.Export
module Ex = Crusade_workloads.Examples
module W = Crusade_workloads.Comm_system

let check = Alcotest.check
let lib = Helpers.small_lib
let stock = Helpers.stock_lib

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* --- Validate --- *)

let validate_clean_schedules () =
  List.iter
    (fun (spec, l) ->
      let r = Helpers.synthesize ~lib:l spec in
      let violations = Validate.check spec r.C.clustering r.C.arch r.C.schedule in
      List.iter
        (fun v -> Alcotest.failf "violation: %s" (Format.asprintf "%a" Validate.pp_violation v))
        violations)
    [
      (Ex.figure2 lib, lib);
      (Ex.figure4 lib, lib);
      (Ex.multirate stock, stock);
      (W.generate stock (W.scaled (W.preset "A1TR") 16.0), stock);
    ]

let validate_catches_precedence_break () =
  let spec, _ = Helpers.sw_chain 2 in
  let r = Helpers.synthesize spec in
  (* corrupt the schedule: pull the sink before its producer *)
  let sched = r.C.schedule in
  let sink =
    Array.to_list sched.Crusade_sched.Schedule.instances
    |> List.find (fun (i : Crusade_sched.Schedule.instance) -> i.i_task = 1)
  in
  sink.Crusade_sched.Schedule.start <- 0;
  sink.Crusade_sched.Schedule.finish <- sink.Crusade_sched.Schedule.finish - 400;
  let violations = Validate.check spec r.C.clustering r.C.arch sched in
  check Alcotest.bool "violations reported" true (violations <> []);
  check Alcotest.bool "precedence rule fires" true
    (List.exists (fun (v : Validate.violation) -> v.rule = "precedence") violations)

let validate_catches_verdict_lie () =
  let spec, _ = Helpers.sw_chain 2 in
  let r = Helpers.synthesize spec in
  let sched = r.C.schedule in
  let first = sched.Crusade_sched.Schedule.instances.(0) in
  (* push one instance past its deadline without updating the verdict *)
  first.Crusade_sched.Schedule.finish <- first.Crusade_sched.Schedule.abs_deadline + 500;
  let violations = Validate.check spec r.C.clustering r.C.arch sched in
  check Alcotest.bool "verdict rule fires" true
    (List.exists (fun (v : Validate.violation) -> v.rule = "verdict") violations)

(* --- Gantt --- *)

let gantt_renders_modes () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  let text = Gantt.render spec r.C.clustering r.C.arch r.C.schedule in
  check Alcotest.bool "mode 0 row" true (contains "mode 0" text);
  check Alcotest.bool "mode 2 row" true (contains "mode 2" text);
  check Alcotest.bool "device named" true (contains "fpga-f1" text)

let gantt_width_respected () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  let text = Gantt.render ~width:40 spec r.C.clustering r.C.arch r.C.schedule in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         check Alcotest.bool "line bounded" true (String.length line <= 40 + 40))

(* --- Program --- *)

let program_for_figure2 () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  match Program.extract spec r.C.clustering r.C.arch r.C.schedule with
  | [ p ] ->
      check Alcotest.int "three windows" 3 (List.length p.Program.steps);
      check Alcotest.int "two switches" 2 p.Program.switches;
      check Alcotest.bool "reboot time positive" true (p.Program.reboot_time_us > 0);
      (* chronological and consistent *)
      let rec ordered = function
        | (a : Program.step) :: (b :: _ as rest) ->
            a.Program.active_until <= b.Program.active_from && ordered rest
        | [ _ ] | [] -> true
      in
      check Alcotest.bool "steps ordered" true (ordered p.Program.steps);
      List.iter
        (fun (st : Program.step) ->
          check Alcotest.bool "load before activity" true
            (st.Program.load_at <= st.Program.active_from))
        p.Program.steps
  | other -> Alcotest.failf "expected one device program, got %d" (List.length other)

let program_skips_single_mode_devices () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize ~reconfig:false spec in
  check Alcotest.int "no multi-mode devices" 0
    (List.length (Program.extract spec r.C.clustering r.C.arch r.C.schedule))

(* --- Export --- *)

let export_dot_and_inventory () =
  let spec = Ex.figure4 lib in
  let r = Helpers.synthesize spec in
  let dot = Export.to_dot r.C.clustering ~t_arch:r.C.arch in
  check Alcotest.bool "dot graph" true (contains "graph" dot);
  check Alcotest.bool "dot has fpga node" true (contains "FPGA" dot);
  check Alcotest.bool "dot has cpu node" true (contains "CPU" dot);
  let inv = Export.inventory r.C.arch in
  check Alcotest.bool "inventory lists device" true (contains "fpga-f1" inv);
  check Alcotest.bool "inventory lists cpu" true (contains "cpu-a" inv)

(* --- Dsl --- *)

let dsl_example =
  String.concat "\n"
    [
      "spec radio";
      "boot_requirement 40000";
      "";
      "# receive path";
      "graph rx period 64000 est 0 deadline 16000 unavail 4.0";
      "  task fe exec -1,-1,120,100,100 gates 40 pins 6";
      "  task demod exec -1,-1,180,150,150 gates 55 pins 4 deadline 9000";
      "  task ctl exec 300,150,-1,-1,-1 mem 16384 8192 2048";
      "  edge fe demod 64";
      "  edge demod ctl 128";
      "";
      "graph tx period 64000 est 32000 deadline 16000 compat rx";
      "  task mod exec -1,-1,200,170,170 gates 50 pins 5 exclude fe";
    ]

let dsl_parse_basics () =
  match Dsl.parse dsl_example with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
      check Alcotest.string "name" "radio" spec.Spec.name;
      check Alcotest.int "boot requirement" 40_000 spec.Spec.boot_time_requirement;
      check Alcotest.int "graphs" 2 (Spec.n_graphs spec);
      check Alcotest.int "tasks" 4 (Spec.n_tasks spec);
      check Alcotest.int "edges" 2 (Spec.n_edges spec);
      (* compat vector declared *)
      check Alcotest.bool "tx compat rx" true (Spec.static_compatible spec 0 1);
      (* exclusion by name across graphs *)
      let m = Spec.task spec 3 in
      check Alcotest.(list int) "exclusion resolved" [ 0 ] m.Task.exclusion;
      (* option fields *)
      let demod = Spec.task spec 1 in
      check Alcotest.(option int) "task deadline" (Some 9_000) demod.Task.deadline;
      check Alcotest.int "gates" 55 demod.Task.gates

let dsl_roundtrip () =
  match Dsl.parse dsl_example with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
      let printed = Dsl.print spec in
      match Dsl.parse printed with
      | Error msg -> Alcotest.failf "reparse failed: %s" msg
      | Ok again ->
          check Alcotest.int "tasks stable" (Spec.n_tasks spec) (Spec.n_tasks again);
          check Alcotest.int "edges stable" (Spec.n_edges spec) (Spec.n_edges again);
          Array.iteri
            (fun i (t : Task.t) ->
              let u = Spec.task again i in
              check Alcotest.string "task name" t.name u.Task.name;
              check Alcotest.(array int) "exec vector" t.exec u.Task.exec)
            spec.Spec.tasks;
          check Alcotest.bool "compat stable" true (Spec.static_compatible again 0 1))

let dsl_error_reporting () =
  let cases =
    [
      ("graph g deadline 5", "needs a period");
      ("task t exec 1", "outside a graph");
      ("bogus directive", "unknown directive");
      ("graph g period 10 deadline 5\n  task t exec 1\n  edge t missing 4", "unknown task");
    ]
  in
  List.iter
    (fun (text, expected) ->
      match Dsl.parse text with
      | Ok _ -> Alcotest.failf "parse should fail for %S" text
      | Error msg ->
          check Alcotest.bool
            (Printf.sprintf "error %S mentions %S" msg expected)
            true (contains expected msg))
    cases

let dsl_parsed_spec_synthesizes () =
  (* the DSL example targets the small library's 5 PE types *)
  match Dsl.parse dsl_example with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
      let r = Helpers.synthesize spec in
      check Alcotest.bool "deadlines met" true r.C.deadlines_met

let dsl_file_roundtrip () =
  match Dsl.parse dsl_example with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
      let path = Filename.temp_file "crusade" ".spec" in
      Dsl.save path spec;
      match Dsl.load path with
      | Ok again ->
          Sys.remove path;
          check Alcotest.int "tasks" (Spec.n_tasks spec) (Spec.n_tasks again)
      | Error msg ->
          Sys.remove path;
          Alcotest.fail msg)

(* --- Upgrade --- *)

let upgrade_reprogramming_only () =
  let spec, upgrade_graphs = Ex.upgrade_scenario lib in
  match U.analyze spec lib ~upgrade_graphs with
  | Error msg -> Alcotest.fail msg
  | Ok { base; verdict; _ } -> (
      check Alcotest.bool "base deadlines met" true base.C.deadlines_met;
      match verdict with
      | U.Reprogramming_only { result; added_images } ->
          check Alcotest.bool "upgraded deadlines met" true result.C.deadlines_met;
          check Alcotest.bool "ships as new images" true (added_images > 0);
          check Alcotest.int "no new hardware" base.C.n_pes result.C.n_pes
      | U.Needs_hardware _ -> Alcotest.fail "scenario fits the deployed devices"
      | U.Infeasible msg -> Alcotest.failf "unexpectedly infeasible: %s" msg)

let upgrade_needs_hardware_when_full () =
  (* an upgrade graph overlapping the framer cannot time-share: it needs
     its own silicon *)
  let b = Spec.Builder.create () in
  let base_g =
    Spec.Builder.add_graph b ~name:"base" ~period:48_000 ~est:0 ~deadline:12_000 ()
  in
  ignore
    (Spec.Builder.add_task b ~graph:base_g ~name:"b0" ~exec:(Helpers.fpga_exec 3_000)
       ~gates:120 ~pins:8 ());
  let up_g =
    Spec.Builder.add_graph b ~name:"upgrade" ~period:48_000 ~est:0 ~deadline:12_000 ()
  in
  ignore
    (Spec.Builder.add_task b ~graph:up_g ~name:"u0" ~exec:(Helpers.fpga_exec 3_000)
       ~gates:120 ~pins:8 ());
  let spec = Spec.Builder.finish_exn b ~name:"crowded" () in
  match U.analyze spec lib ~upgrade_graphs:[ up_g ] with
  | Error msg -> Alcotest.fail msg
  | Ok { verdict; _ } -> (
      match verdict with
      | U.Needs_hardware { added_pes; added_cost; _ } ->
          check Alcotest.bool "new hardware" true (added_pes > 0);
          check Alcotest.bool "added cost" true (added_cost > 0.0)
      | U.Reprogramming_only _ ->
          Alcotest.fail "overlapping 120-gate blocks cannot share F1/F2 modes"
      | U.Infeasible msg -> Alcotest.failf "unexpectedly infeasible: %s" msg)

let continue_allocation_noop_when_complete () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  match C.continue_allocation r with
  | Error msg -> Alcotest.fail msg
  | Ok again ->
      check Alcotest.int "same PEs" r.C.n_pes again.C.n_pes;
      check Alcotest.bool "still feasible" true again.C.deadlines_met

let suite =
  [
    Alcotest.test_case "validator accepts clean schedules" `Slow validate_clean_schedules;
    Alcotest.test_case "validator catches arrival break" `Quick validate_catches_precedence_break;
    Alcotest.test_case "validator catches verdict lie" `Quick validate_catches_verdict_lie;
    Alcotest.test_case "gantt renders modes" `Quick gantt_renders_modes;
    Alcotest.test_case "gantt width" `Quick gantt_width_respected;
    Alcotest.test_case "program for figure2" `Quick program_for_figure2;
    Alcotest.test_case "program skips single mode" `Quick program_skips_single_mode_devices;
    Alcotest.test_case "export dot/inventory" `Quick export_dot_and_inventory;
    Alcotest.test_case "dsl parse" `Quick dsl_parse_basics;
    Alcotest.test_case "dsl roundtrip" `Quick dsl_roundtrip;
    Alcotest.test_case "dsl errors" `Quick dsl_error_reporting;
    Alcotest.test_case "dsl spec synthesizes" `Quick dsl_parsed_spec_synthesizes;
    Alcotest.test_case "dsl file roundtrip" `Quick dsl_file_roundtrip;
    Alcotest.test_case "upgrade by reprogramming" `Quick upgrade_reprogramming_only;
    Alcotest.test_case "upgrade needs hardware" `Quick upgrade_needs_hardware_when_full;
    Alcotest.test_case "continue_allocation no-op" `Quick continue_allocation_noop_when_complete;
  ]

(* --- Image --- *)

module Image = Crusade_reconfig.Image

let image_manifest_figure2 () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  let images = Image.manifest spec r.C.clustering r.C.arch in
  check Alcotest.int "one image per mode" r.C.n_modes (List.length images);
  List.iter
    (fun (img : Image.image) ->
      (* image fills the device's boot PROM exactly *)
      check Alcotest.int "image size = boot memory"
        ((40_000 + 7) / 8)
        (String.length img.Image.bytes);
      check Alcotest.bool "magic header" true
        (String.sub img.Image.bytes 0 4 = "CRSD"))
    images;
  (* distinct modes carry distinct configurations *)
  let crcs = List.map (fun (i : Image.image) -> i.Image.crc) images in
  check Alcotest.int "distinct CRCs" (List.length crcs)
    (List.length (List.sort_uniq compare crcs))

let image_deterministic () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  let a = Image.manifest spec r.C.clustering r.C.arch in
  let b = Image.manifest spec r.C.clustering r.C.arch in
  List.iter2
    (fun (x : Image.image) (y : Image.image) ->
      check Alcotest.bool "same bytes" true (x.Image.bytes = y.Image.bytes))
    a b

let crc16_known_vector () =
  (* CRC-16/CCITT-FALSE of "123456789" is 0x29B1 *)
  check Alcotest.int "check vector" 0x29B1 (Image.crc16 "123456789")

let image_crc_detects_corruption () =
  let spec = Ex.figure2 lib in
  let r = Helpers.synthesize spec in
  match Image.manifest spec r.C.clustering r.C.arch with
  | img :: _ ->
      let body = String.sub img.Image.bytes 0 (String.length img.Image.bytes - 2) in
      check Alcotest.int "stored CRC matches body" img.Image.crc (Image.crc16 body);
      let corrupted = "X" ^ String.sub body 1 (String.length body - 1) in
      check Alcotest.bool "corruption changes CRC" true
        (Image.crc16 corrupted <> img.Image.crc)
  | [] -> Alcotest.fail "figure2 has images"

let extra_suite =
  [
    Alcotest.test_case "image manifest" `Quick image_manifest_figure2;
    Alcotest.test_case "image deterministic" `Quick image_deterministic;
    Alcotest.test_case "crc16 vector" `Quick crc16_known_vector;
    Alcotest.test_case "image crc detects corruption" `Quick image_crc_detects_corruption;
  ]

let suite = suite @ extra_suite
