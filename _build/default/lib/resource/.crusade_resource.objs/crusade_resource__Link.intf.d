lib/resource/link.mli: Format
