lib/alloc/arch.mli: Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util Format Hashtbl
