(** Abstract FPGA device model for the place-and-route substrate: a grid
    of programmable functional units (PFUs) with channelled routing.

    Horizontal and vertical routing channels run between adjacent rows and
    columns; each channel segment carries at most [wires_per_channel]
    nets before congestion detours (and eventually unroutability) set
    in.  This is the mechanism behind the paper's observation that very
    high PFU/pin utilization breaks the delay constraints (Section 4.5 /
    Table 1). *)

type t = {
  rows : int;
  cols : int;
  wires_per_channel : int;
  io_pins : int;  (** user I/O pins on the periphery *)
  pfu_delay_ns : float;  (** logic delay through one PFU *)
  segment_delay_ns : float;  (** wire delay per channel segment *)
}

val pfus : t -> int
(** Total PFU count, [rows * cols]. *)

val table1_device : t
(** The 100-PFU device used to regenerate Table 1 (the largest Table 1
    circuit has 84 PFUs). *)

val make : rows:int -> cols:int -> ?wires_per_channel:int -> ?io_pins:int -> unit -> t
