examples/field_upgrade.mli:
