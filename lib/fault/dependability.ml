module Spec = Crusade_taskgraph.Spec
module Graph = Crusade_taskgraph.Graph
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec

let fit_rate (pe : Pe.t) =
  match pe.Pe.pe_class with
  | Pe.General_purpose _ -> 500.0
  | Pe.Asic_pe _ -> 200.0
  | Pe.Programmable { kind = Pe.Fpga; _ } -> 350.0
  | Pe.Programmable { kind = Pe.Cpld; _ } -> 250.0

let link_fit_rate = 100.0

let default_mttr_hours = 2.0

(* Machine-repairman chain: [n_active] units must be up, [spares] warm
   standbys, one repair crew.  State = failed units; failure rate from
   state i is (n_active + spares - i) * lambda, repair rate mu.  The pool
   is unavailable in states with more failures than spares. *)
let pool_unavailability ?(mttr_hours = default_mttr_hours) ~n_active ~spares ~fit () =
  if n_active = 0 then 0.0
  else begin
    let lambda = fit *. 1e-9 in
    let mu = 1.0 /. mttr_hours in
    let total_units = n_active + spares in
    let pi = Array.make (total_units + 1) 0.0 in
    pi.(0) <- 1.0;
    for i = 0 to total_units - 1 do
      let failure = float_of_int (total_units - i) *. lambda in
      pi.(i + 1) <- pi.(i) *. failure /. mu
    done;
    let sum = Array.fold_left ( +. ) 0.0 pi in
    let down = ref 0.0 in
    for i = spares + 1 to total_units do
      down := !down +. pi.(i)
    done;
    !down /. sum
  end

let minutes_per_year u = u *. 365.25 *. 24.0 *. 60.0

type provisioning = {
  spares : (Pe.t * int) list;
  link_spares : int;
  spare_cost : float;
  graph_unavailability : (string * float) list;
}

let spare_link_cost = 12.0

(* Graph -> PE type ids its clusters run on, in the (deterministic)
   cluster-table order.  Shared by {!provision} and
   {!achieved_unavailability} so the recomputation folds pool
   unavailabilities in exactly the same order. *)
let graph_types_of (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let graph_types = Array.make (Spec.n_graphs spec) [] in
  Array.iter
    (fun (c : Clustering.cluster) ->
      match Arch.pe_of_cluster arch c.cid with
      | Some pe ->
          let tid = pe.Arch.ptype.Pe.id in
          if not (List.mem tid graph_types.(c.graph)) then
            graph_types.(c.graph) <- tid :: graph_types.(c.graph)
      | None -> ())
    clustering.Clustering.clusters;
  graph_types

let active_type_count (arch : Arch.t) =
  let type_count = Hashtbl.create 8 in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      if Arch.pe_in_use pe then begin
        let cur =
          Option.value ~default:0 (Hashtbl.find_opt type_count pe.Arch.ptype.Pe.id)
        in
        Hashtbl.replace type_count pe.Arch.ptype.Pe.id (cur + 1)
      end)
    arch.Arch.pes;
  type_count

let provision ?(mttr_hours = default_mttr_hours) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  (* Pools: one per PE type in use, plus one for the links. *)
  let type_count = active_type_count arch in
  let n_links = Arch.n_links arch in
  let graph_types = graph_types_of spec clustering arch in
  let spares = Hashtbl.create 8 in
  let pool_u tid =
    let n_active = Option.value ~default:0 (Hashtbl.find_opt type_count tid) in
    let s = Option.value ~default:0 (Hashtbl.find_opt spares tid) in
    let fit = fit_rate (Crusade_resource.Library.pe arch.Arch.lib tid) in
    pool_unavailability ~mttr_hours ~n_active ~spares:s ~fit ()
  in
  let link_spares = ref 0 in
  let link_u () =
    pool_unavailability ~mttr_hours ~n_active:n_links ~spares:!link_spares
      ~fit:link_fit_rate ()
  in
  let graph_u (g : Graph.t) =
    List.fold_left (fun acc tid -> acc +. pool_u tid) (link_u ()) graph_types.(g.id)
  in
  (* Greedy provisioning: while a budgeted graph misses its target, add a
     spare to its largest contributor. *)
  let budget_violated () =
    Array.fold_left
      (fun acc (g : Graph.t) ->
        match g.unavailability_budget with
        | Some budget when minutes_per_year (graph_u g) > budget -> Some g
        | Some _ | None -> acc)
      None spec.graphs
  in
  let add_spare_for (g : Graph.t) =
    let worst =
      List.fold_left
        (fun best tid ->
          match best with
          | Some (u, _) when u >= pool_u tid -> best
          | _ -> Some (pool_u tid, `Pe tid))
        None graph_types.(g.id)
    in
    let worst =
      match worst with
      | Some (u, _) when link_u () > u -> Some (link_u (), `Links)
      | None -> Some (link_u (), `Links)
      | some -> some
    in
    match worst with
    | Some (_, `Pe tid) ->
        Hashtbl.replace spares tid (1 + Option.value ~default:0 (Hashtbl.find_opt spares tid))
    | Some (_, `Links) -> incr link_spares
    | None -> ()
  in
  let rec iterate guard =
    if guard > 0 then begin
      match budget_violated () with
      | Some g ->
          add_spare_for g;
          iterate (guard - 1)
      | None -> ()
    end
  in
  iterate 200;
  let spare_list =
    Hashtbl.fold
      (fun tid count acc ->
        if count > 0 then (Crusade_resource.Library.pe arch.Arch.lib tid, count) :: acc
        else acc)
      spares []
  in
  let spare_cost =
    List.fold_left (fun acc ((pe : Pe.t), count) -> acc +. (pe.Pe.cost *. float_of_int count))
      0.0 spare_list
    (* A spare link is a transceiver set at the cheapest link type cost. *)
    +. (float_of_int !link_spares *. spare_link_cost)
  in
  let graph_unavailability =
    Array.to_list spec.graphs
    |> List.filter_map (fun (g : Graph.t) ->
           match g.unavailability_budget with
           | Some _ -> Some (g.name, minutes_per_year (graph_u g))
           | None -> None)
  in
  { spares = spare_list; link_spares = !link_spares; spare_cost; graph_unavailability }

let achieved_unavailability ?(mttr_hours = default_mttr_hours) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) (p : provisioning) =
  let type_count = active_type_count arch in
  let n_links = Arch.n_links arch in
  let graph_types = graph_types_of spec clustering arch in
  let spares = Hashtbl.create 8 in
  List.iter
    (fun ((pe : Pe.t), count) -> Hashtbl.replace spares pe.Pe.id count)
    p.spares;
  let pool_u tid =
    let n_active = Option.value ~default:0 (Hashtbl.find_opt type_count tid) in
    let s = Option.value ~default:0 (Hashtbl.find_opt spares tid) in
    let fit = fit_rate (Crusade_resource.Library.pe arch.Arch.lib tid) in
    pool_unavailability ~mttr_hours ~n_active ~spares:s ~fit ()
  in
  let link_u =
    pool_unavailability ~mttr_hours ~n_active:n_links ~spares:p.link_spares
      ~fit:link_fit_rate ()
  in
  let graph_u (g : Graph.t) =
    List.fold_left (fun acc tid -> acc +. pool_u tid) link_u graph_types.(g.id)
  in
  Array.to_list spec.graphs
  |> List.filter_map (fun (g : Graph.t) ->
         match g.unavailability_budget with
         | Some budget -> Some (g.name, budget, minutes_per_year (graph_u g))
         | None -> None)
