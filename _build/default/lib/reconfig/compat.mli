(** Identification of non-overlapping task graphs (Section 4.1).

    Two task graphs are compatible when their execution slots never
    overlap inside the hyperperiod, so they can time-share FPGA/CPLD
    resources through dynamic reconfiguration.  Compatibility is taken
    from the specification's compatibility vectors when given; otherwise
    it is discovered from the start/stop times of tasks and edges after
    scheduling (the Fig. 3 procedure). *)

val matrix :
  Crusade_taskgraph.Spec.t -> Crusade_sched.Schedule.t -> bool array array
(** [matrix spec schedule] gives the symmetric graph-compatibility
    matrix: declared vectors win; otherwise activity windows from the
    schedule decide.  A graph is never compatible with itself. *)

val graphs_compatible : bool array array -> int list -> int list -> bool
(** Whether every graph in the first set is compatible with every graph
    in the second (used when deciding if two sets of clusters may share a
    device in different modes). *)
