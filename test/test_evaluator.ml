(* The two-stage candidate evaluator: stage-1 admissibility of
   [Schedule.estimate], stage-2 memoization, the architecture undo
   journal, and end-to-end determinism of synthesis with the evaluator
   on versus off. *)

module C = Crusade.Crusade_core
module Spec = Crusade_taskgraph.Spec
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Options = Crusade_alloc.Options
module Export = Crusade_alloc.Export
module Schedule = Crusade_sched.Schedule
module Memo = Crusade_sched.Memo
module Vec = Crusade_util.Vec
module W = Crusade_workloads.Comm_system
module Examples = Crusade_workloads.Examples

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let tiny_params seed =
  {
    W.name = Printf.sprintf "eval%d" seed;
    n_tasks = 40;
    seed;
    hw_fraction = 0.5;
    family_slots = 3;
    asic_fraction = 0.1;
    cpld_fraction = 0.1;
  }

(* A random (possibly partial, usually tardy) placement: walk the
   clusters, apply a randomly chosen applicable allocation option for
   each — nothing here optimizes, so the architectures exercise the
   estimator far from the feasible region the synthesis flow converges
   to. *)
let random_placement rng spec clustering lib =
  let arch = Arch.create lib in
  Array.iter
    (fun (c : Clustering.cluster) ->
      let options =
        Options.enumerate arch spec clustering c ~allow_new_modes:true ()
      in
      let options = Array.of_list options in
      let n = Array.length options in
      if n > 0 then begin
        let start = Random.State.int rng n in
        let rec attempt k =
          if k < n then begin
            match
              Options.apply arch spec clustering c options.((start + k) mod n)
            with
            | Ok () -> ()
            | Error _ -> attempt (k + 1)
          end
        in
        attempt 0
      end)
    clustering.Clustering.clusters;
  arch

(* The stage-1 contract: the bound never exceeds the scheduler's true
   total tardiness, and it fails exactly when the scheduler fails. *)
let estimate_admissible =
  QCheck.Test.make ~name:"estimate is an admissible tardiness bound" ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let lib = Helpers.stock_lib in
      let spec = W.generate lib (tiny_params ((seed mod 997) + 1)) in
      let clustering = Clustering.run ~max_cluster_size:8 spec lib in
      let rng = Random.State.make [| seed |] in
      let arch = random_placement rng spec clustering lib in
      List.for_all
        (fun cap ->
          match
            ( Schedule.estimate ~copy_cap:cap spec clustering arch,
              Schedule.run ~copy_cap:cap spec clustering arch )
          with
          | Ok lb, Ok sched -> 0 <= lb && lb <= sched.Schedule.total_tardiness
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false)
        [ 1; 4; 64 ])

let estimate_matches_disconnection () =
  let spec, ids = Helpers.sw_chain 2 in
  let clustering = Clustering.singletons spec Helpers.small_lib in
  let arch = Arch.create Helpers.small_lib in
  let cpu_a = Arch.add_pe arch (Library.pe Helpers.small_lib 0) in
  let cpu_b = Arch.add_pe arch (Library.pe Helpers.small_lib 0) in
  let place t pe =
    let c = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t)) in
    match
      Arch.place_cluster arch spec clustering c ~pe ~mode:(Vec.get pe.Arch.modes 0)
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "place failed: %s" msg
  in
  (match ids with
  | [ t0; t1 ] ->
      place t0 cpu_a;
      place t1 cpu_b
  | _ -> Alcotest.fail "expected two tasks");
  (* Two communicating placed tasks, no link: both stages must refuse. *)
  (match (Schedule.estimate spec clustering arch, Schedule.run spec clustering arch) with
  | Error a, Error b -> check Alcotest.string "same failure" b a
  | _ -> Alcotest.fail "both evaluators must report the disconnection");
  (* Connecting the PEs makes both succeed. *)
  let link = Arch.add_link arch (Library.link Helpers.small_lib 0) in
  (match (Arch.attach arch link cpu_a, Arch.attach arch link cpu_b) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "attach failed");
  match (Schedule.estimate spec clustering arch, Schedule.run spec clustering arch) with
  | Ok lb, Ok sched ->
      check Alcotest.bool "admissible after connecting" true
        (lb <= sched.Schedule.total_tardiness)
  | _ -> Alcotest.fail "both evaluators must succeed once connected"

(* --- undo journal --- *)

(* Everything observable about an architecture, for bit-identity checks:
   structure (inventory + dot render), accounting, and the placement
   map. *)
let arch_signature (clustering : Clustering.t) (arch : Arch.t) =
  let sites =
    Array.to_list
      (Array.map
         (fun (c : Clustering.cluster) ->
           match Arch.site_of_cluster arch c.Clustering.cid with
           | Some site -> (c.Clustering.cid, site.Arch.s_pe, site.Arch.s_mode)
           | None -> (c.Clustering.cid, -1, -1))
         clustering.Clustering.clusters)
  in
  ( Export.inventory arch,
    Export.to_dot clustering ~t_arch:arch,
    Arch.cost arch,
    (Arch.n_pes arch, Arch.n_links arch),
    (Vec.length arch.Arch.pes, Vec.length arch.Arch.links),
    sites )

let journal_rollback_restores () =
  let spec, clustering, t1, t2 =
    let spec, t1, t2 = Helpers.two_hw_graphs ~overlap:false () in
    (spec, Clustering.singletons spec Helpers.small_lib, t1, t2)
  in
  let arch = Arch.create Helpers.small_lib in
  let fpga = Arch.add_pe arch (Library.pe Helpers.small_lib 4) in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let c2 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t2)) in
  (match
     Arch.place_cluster arch spec clustering c1 ~pe:fpga
       ~mode:(Vec.get fpga.Arch.modes 0)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "seed place failed: %s" msg);
  let before = arch_signature clustering arch in
  let ck = Arch.checkpoint arch in
  (* A trial touching every journaled operation: new PE, new mode, a
     placement, a move, connectivity. *)
  let cpu = Arch.add_pe arch (Library.pe Helpers.small_lib 0) in
  let mode2 = Arch.add_mode arch fpga in
  (match Arch.place_cluster arch spec clustering c2 ~pe:fpga ~mode:mode2 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trial place failed: %s" msg);
  Arch.unplace_cluster arch clustering c1;
  let link = Arch.add_link arch (Library.link Helpers.small_lib 0) in
  (match (Arch.attach arch link fpga, Arch.attach arch link cpu) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "attach failed");
  Arch.detach_unused arch;
  check Alcotest.bool "trial visibly mutated the base" true
    (arch_signature clustering arch <> before);
  Arch.rollback arch ck;
  check Alcotest.bool "rollback restores the base exactly" true
    (arch_signature clustering arch = before);
  (* The restored architecture behaves identically, not just prints
     identically: a fresh deep copy of it schedules the same. *)
  match
    (Schedule.run spec clustering arch, Schedule.run spec clustering (Arch.copy arch))
  with
  | Ok a, Ok b ->
      check Alcotest.int "same tardiness" a.Schedule.total_tardiness
        b.Schedule.total_tardiness
  | _ -> Alcotest.fail "restored architecture must schedule"

let journal_commit_keeps () =
  let spec, t1, _ = Helpers.two_hw_graphs ~overlap:false () in
  let clustering = Clustering.singletons spec Helpers.small_lib in
  let arch = Arch.create Helpers.small_lib in
  let fpga = Arch.add_pe arch (Library.pe Helpers.small_lib 4) in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let ck = Arch.checkpoint arch in
  (match
     Arch.place_cluster arch spec clustering c1 ~pe:fpga
       ~mode:(Vec.get fpga.Arch.modes 0)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "place failed: %s" msg);
  Arch.commit arch ck;
  check Alcotest.bool "committed placement survives" true
    (Arch.site_of_cluster arch c1.cid <> None)

let journal_nested () =
  let spec, t1, t2 = Helpers.two_hw_graphs ~overlap:false () in
  let clustering = Clustering.singletons spec Helpers.small_lib in
  let arch = Arch.create Helpers.small_lib in
  let fpga = Arch.add_pe arch (Library.pe Helpers.small_lib 4) in
  let mode = Vec.get fpga.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let c2 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t2)) in
  let outer = Arch.checkpoint arch in
  (match Arch.place_cluster arch spec clustering c1 ~pe:fpga ~mode with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "outer place failed: %s" msg);
  let inner = Arch.checkpoint arch in
  let mode2 = Arch.add_mode arch fpga in
  (match Arch.place_cluster arch spec clustering c2 ~pe:fpga ~mode:mode2 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "inner place failed: %s" msg);
  Arch.rollback arch inner;
  check Alcotest.bool "inner undone" true (Arch.site_of_cluster arch c2.cid = None);
  check Alcotest.int "inner mode gone" 1 (Vec.length fpga.Arch.modes);
  check Alcotest.bool "outer kept" true (Arch.site_of_cluster arch c1.cid <> None);
  Arch.rollback arch outer;
  check Alcotest.bool "outer undone" true (Arch.site_of_cluster arch c1.cid = None);
  check Alcotest.int "gates released" 0 mode.Arch.m_gates

(* --- end-to-end determinism --- *)

let result_signature (r : C.result) =
  let sched =
    Array.to_list
      (Array.map
         (fun (i : Schedule.instance) ->
           (i.Schedule.i_task, i.Schedule.i_copy, i.Schedule.start, i.Schedule.finish))
         r.C.schedule.Schedule.instances)
  in
  ( r.C.cost,
    (r.C.n_pes, r.C.n_links, r.C.n_modes),
    r.C.deadlines_met,
    r.C.schedule.Schedule.total_tardiness,
    arch_signature r.C.clustering r.C.arch,
    sched )

let synthesize_with ~prune ~memo ?(jobs = 1) spec lib =
  let options = { C.default_options with prune; memo; jobs } in
  match C.synthesize ~options spec lib with
  | Ok r -> r
  | Error msg -> Alcotest.failf "synthesis failed: %s" msg

let determinism_on_spec name spec lib =
  let baseline = synthesize_with ~prune:false ~memo:false spec lib in
  let full = synthesize_with ~prune:true ~memo:true spec lib in
  let prune_only = synthesize_with ~prune:true ~memo:false spec lib in
  let sig_base = result_signature baseline in
  check Alcotest.bool
    (name ^ ": evaluator on = evaluator off")
    true
    (result_signature full = sig_base);
  check Alcotest.bool
    (name ^ ": prune-only = evaluator off")
    true
    (result_signature prune_only = sig_base);
  check Alcotest.bool
    (name ^ ": parallel pruned = sequential unpruned")
    true
    (result_signature (synthesize_with ~prune:true ~memo:true ~jobs:2 spec lib)
    = sig_base)

let determinism_figure2 () =
  determinism_on_spec "figure2" (Examples.figure2 Helpers.small_lib) Helpers.small_lib

let determinism_figure4 () =
  determinism_on_spec "figure4" (Examples.figure4 Helpers.small_lib) Helpers.small_lib

let determinism_generated () =
  List.iter
    (fun seed ->
      let spec = W.generate Helpers.stock_lib (tiny_params seed) in
      determinism_on_spec
        (Printf.sprintf "generated seed %d" seed)
        spec Helpers.stock_lib)
    [ 11; 42 ]

(* Stage 2 actually fires: a synthesis with the evaluator on reports
   memo traffic, and repeated identical schedules come back hits. *)
let memo_hits_observed () =
  let spec = Examples.figure2 Helpers.small_lib in
  let r = synthesize_with ~prune:true ~memo:true spec Helpers.small_lib in
  check Alcotest.bool "memo was consulted" true
    (r.C.eval_stats.C.memo_hits + r.C.eval_stats.C.memo_misses > 0);
  let memo = Memo.create () in
  (match
     ( Memo.run memo spec r.C.clustering r.C.arch,
       Memo.run memo spec r.C.clustering r.C.arch )
   with
  | Ok a, Ok b ->
      check Alcotest.int "identical schedule served" a.Schedule.total_tardiness
        b.Schedule.total_tardiness
  | _ -> Alcotest.fail "final architecture must schedule");
  check Alcotest.int "first consult missed" 1 (Memo.misses memo);
  check Alcotest.int "repeat consult hit" 1 (Memo.hits memo);
  (* [clear] empties the table but keeps the counters. *)
  Memo.clear memo;
  (match Memo.run memo spec r.C.clustering r.C.arch with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "cleared table misses again" 2 (Memo.misses memo);
  check Alcotest.int "counters survive clear" 1 (Memo.hits memo)

(* The per-run scoping contract: every synthesis owns its memo table and
   counters, so identical back-to-back runs report identical, exact
   statistics — with the old process-global table the second run's
   numbers were polluted by leftover entries from the first. *)
let eval_stats_per_run () =
  let spec = Examples.figure4 Helpers.small_lib in
  let stats_of () =
    let r = synthesize_with ~prune:true ~memo:true spec Helpers.small_lib in
    (result_signature r, r.C.eval_stats)
  in
  let sig1, s1 = stats_of () in
  let sig2, s2 = stats_of () in
  check Alcotest.bool "identical runs synthesize identically" true (sig1 = sig2);
  check Alcotest.bool "identical runs report identical eval stats" true (s1 = s2);
  check Alcotest.bool "counters did not accumulate across runs" true
    (s2.C.memo_misses > 0 && s2.C.memo_misses = s1.C.memo_misses);
  (* A fresh table can never serve a hit built by another run. *)
  let r = synthesize_with ~prune:true ~memo:true spec Helpers.small_lib in
  let fresh = Memo.create () in
  (match Memo.run fresh spec r.C.clustering r.C.arch with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "no cross-run hit on a fresh table" 0 (Memo.hits fresh)

(* Tracing covers every phase of the flow and never perturbs the
   synthesis result. *)
let trace_covers_phases () =
  let module Trace = Crusade_util.Trace in
  let spec = Examples.figure4 Helpers.small_lib in
  let trace = Trace.create () in
  let options = { C.default_options with C.trace = Some trace } in
  match C.synthesize ~options spec Helpers.small_lib with
  | Error msg -> Alcotest.failf "traced synthesis failed: %s" msg
  | Ok r ->
      let plain = synthesize_with ~prune:true ~memo:true spec Helpers.small_lib in
      check Alcotest.bool "tracing does not perturb synthesis" true
        (result_signature r = result_signature plain);
      let json = Trace.to_json trace in
      (match Helpers.Json.parse json with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg);
      check Alcotest.bool "spans balance per thread" true
        (Helpers.Json.spans_balanced json);
      List.iter
        (fun phase ->
          check Alcotest.bool (Printf.sprintf "phase %S traced" phase) true
            (Helpers.contains json (Printf.sprintf "%S" phase)))
        [
          "synthesize";
          "preprocess";
          "clustering";
          "allocation";
          "alloc.cluster";
          "alloc.candidate";
          "repair";
          "merge";
          "interface";
          "schedule.run";
          "eval_stats";
        ]

let suite =
  [
    qcheck estimate_admissible;
    Alcotest.test_case "estimate matches run's disconnection" `Quick
      estimate_matches_disconnection;
    Alcotest.test_case "journal rollback restores the base" `Quick
      journal_rollback_restores;
    Alcotest.test_case "journal commit keeps the trial" `Quick journal_commit_keeps;
    Alcotest.test_case "journal checkpoints nest" `Quick journal_nested;
    Alcotest.test_case "determinism: figure2" `Quick determinism_figure2;
    Alcotest.test_case "determinism: figure4" `Quick determinism_figure4;
    Alcotest.test_case "determinism: generated workloads" `Slow determinism_generated;
    Alcotest.test_case "memoization observable" `Quick memo_hits_observed;
    Alcotest.test_case "eval stats scoped per run" `Quick eval_stats_per_run;
    Alcotest.test_case "trace covers every phase" `Quick trace_covers_phases;
  ]
