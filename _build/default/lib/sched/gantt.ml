module Spec = Crusade_taskgraph.Spec
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec

let render ?(width = 100) (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t)
    (sched : Schedule.t) =
  ignore spec;
  let horizon =
    Array.fold_left
      (fun acc (i : Schedule.instance) -> max acc i.Schedule.finish)
      (max 1 sched.Schedule.hyperperiod)
      sched.Schedule.instances
  in
  let column t = min (width - 1) (t * width / horizon) in
  (* Rows keyed by (pe, mode); CPUs and ASICs use mode 0. *)
  let rows = Hashtbl.create 16 in
  let row_for pe_id mode_id =
    match Hashtbl.find_opt rows (pe_id, mode_id) with
    | Some r -> r
    | None ->
        let r = Bytes.make width '.' in
        Hashtbl.replace rows (pe_id, mode_id) r;
        r
  in
  Array.iter
    (fun (i : Schedule.instance) ->
      if i.Schedule.start >= 0 then begin
        match Arch.task_site arch clustering i.Schedule.i_task with
        | None -> ()
        | Some site ->
            let r = row_for site.Arch.s_pe site.Arch.s_mode in
            let c0 = column i.Schedule.start and c1 = column i.Schedule.finish in
            let glyph =
              (* one letter per cluster keeps the blocks tellable apart *)
              let cid = clustering.Clustering.of_task.(i.Schedule.i_task) in
              Char.chr (Char.code 'a' + (cid mod 26))
            in
            for c = c0 to max c0 (c1 - 1) do
              Bytes.set r c glyph
            done
      end)
    sched.Schedule.instances;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "time 0 .. %d us (%d us per column)\n" horizon
       (Crusade_util.Arith.ceil_div horizon width));
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) rows [] |> List.sort compare in
  List.iter
    (fun (pe_id, mode_id) ->
      let pe = Vec.get arch.Arch.pes pe_id in
      let label =
        if Pe.is_programmable pe.Arch.ptype then
          Printf.sprintf "pe%-3d %-12s mode %d" pe_id pe.Arch.ptype.Pe.name mode_id
        else Printf.sprintf "pe%-3d %-12s       " pe_id pe.Arch.ptype.Pe.name
      in
      Buffer.add_string buf label;
      Buffer.add_string buf " |";
      Buffer.add_bytes buf (Hashtbl.find rows (pe_id, mode_id));
      Buffer.add_string buf "|\n")
    keys;
  Buffer.contents buf
