type state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

type job = {
  id : string;
  seq : int;
  spec_text : string;
  cache_key : string;
  cacheable : bool;
  submitted_at : float;
  mutable state : state;
  mutable cache_hit : bool;
  mutable payload : string option;
  mutable error : string option;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable log : (float * state) list;
  mutable events : string list;
  mutable n_events : int;
  cancel_requested : bool Atomic.t;
}

type t = {
  lock : Mutex.t;
  jobs : (string, job) Hashtbl.t;
  mutable next : int;
}

let create () = { lock = Mutex.create (); jobs = Hashtbl.create 64; next = 1 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add t ~spec_text ~cache_key ~cacheable =
  locked t (fun () ->
      let seq = t.next in
      t.next <- seq + 1;
      let now = Unix.gettimeofday () in
      let job =
        {
          id = Printf.sprintf "j%d" seq;
          seq;
          spec_text;
          cache_key;
          cacheable;
          submitted_at = now;
          state = Queued;
          cache_hit = false;
          payload = None;
          error = None;
          started_at = None;
          finished_at = None;
          log = [ (now, Queued) ];
          events = [];
          n_events = 0;
          cancel_requested = Atomic.make false;
        }
      in
      Hashtbl.replace t.jobs job.id job;
      job)

let find t id = locked t (fun () -> Hashtbl.find_opt t.jobs id)

(* The complete set of legal lifecycle edges. *)
let legal = function
  | Queued, Running
  | Queued, Cancelled
  | Queued, Done (* cache hit: served without running *)
  | Running, Done
  | Running, Failed
  | Running, Cancelled ->
      true
  | _ -> false

let transition t job target =
  locked t (fun () ->
      if legal (job.state, target) then begin
        let now = Unix.gettimeofday () in
        (match target with
        | Running -> job.started_at <- Some now
        | Done | Failed | Cancelled -> job.finished_at <- Some now
        | Queued -> ());
        job.state <- target;
        job.log <- (now, target) :: job.log;
        Ok ()
      end
      else
        Error
          (Printf.sprintf "illegal transition %s -> %s for %s"
             (state_name job.state) (state_name target) job.id))

let append_event t job line =
  locked t (fun () ->
      job.events <- line :: job.events;
      job.n_events <- job.n_events + 1)

let events_since t job n =
  locked t (fun () ->
      let total = job.n_events in
      let fresh =
        if n >= total then []
        else
          (* [events] is newest first; take the first (total - n). *)
          let rec take k = function
            | x :: rest when k > 0 -> x :: take (k - 1) rest
            | _ -> []
          in
          List.rev (take (total - n) job.events)
      in
      (fresh, total))

let log_of t job = locked t (fun () -> List.rev job.log)

let count_in t s =
  locked t (fun () ->
      Hashtbl.fold (fun _ j acc -> if j.state = s then acc + 1 else acc) t.jobs 0)

let n_jobs t = locked t (fun () -> Hashtbl.length t.jobs)
