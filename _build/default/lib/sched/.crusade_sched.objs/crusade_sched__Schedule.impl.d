lib/sched/schedule.ml: Array Crusade_alloc Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util Hashtbl List Option Printf Timeline
