module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph
module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Priority = Crusade_cluster.Priority
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec
module Intervals = Crusade_util.Intervals
module Pqueue = Crusade_util.Pqueue

type instance = {
  i_task : int;
  i_copy : int;
  arrival : int;
  abs_deadline : int;
  mutable start : int;
  mutable finish : int;
}

type t = {
  instances : instance array;
  hyperperiod : int;
  deadlines_met : bool;
  total_tardiness : int;
  graph_windows : Intervals.t array;
  mode_switches : int array;
  scheduled_tasks : int;
}

let default_copy_cap = 64

(* Bytes a non-comm-processor CPU copies per microsecond when staging an
   inter-PE transfer; CPUs with a communication processor overlap
   communication with computation (Section 2.2). *)
let cpu_copy_bytes_per_us = 256

let compute_priorities (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let exec_time (task : Task.t) =
    match Arch.task_site arch clustering task.id with
    | Some site ->
        let pe = Vec.get arch.pes site.Arch.s_pe in
        Option.value ~default:(Task.max_exec task)
          (Task.exec_on task pe.Arch.ptype.Pe.id)
    | None -> Task.max_exec task
  in
  let comm_time (e : Edge.t) =
    if clustering.of_task.(e.src) = clustering.of_task.(e.dst) then 0
    else begin
      match
        ( Arch.task_site arch clustering e.src,
          Arch.task_site arch clustering e.dst )
      with
      | Some a, Some b when a.Arch.s_pe = b.Arch.s_pe -> 0
      | Some a, Some b -> (
          match Arch.links_between arch a.Arch.s_pe b.Arch.s_pe with
          | [] -> Priority.unallocated_comm arch.lib e
          | links ->
              List.fold_left
                (fun acc (l : Arch.link_inst) ->
                  let time =
                    Link.comm_time l.ltype
                      ~ports:(max 2 (List.length l.attached))
                      ~bytes:e.bytes
                  in
                  min acc time)
                max_int links)
      | _, _ -> Priority.unallocated_comm arch.lib e
    end
  in
  Priority.compute spec ~exec_time ~comm_time

(* Levels only change when the architecture does, and the same
   architecture is scheduled several times per synthesis (candidate
   evaluation, repair, merge validation, interface synthesis), so the
   last computation is cached on the architecture itself. *)
let priorities (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  match Arch.cached_levels arch spec clustering with
  | Some levels -> levels
  | None ->
      let levels = compute_priorities spec clustering arch in
      Arch.set_cached_levels arch spec clustering levels;
      levels

(* Per-PPE configuration-window bookkeeping. *)
type ppe_state = {
  mutable windows : (int * int * int) list;  (* (mode, start, stop), by start *)
  boot_by_mode : int array;
}

let ppe_find_start state ~mode ~ready ~duration =
  let boot_self = state.boot_by_mode.(mode) in
  let rec scan t = function
    | [] -> t
    | (md, s, e) :: rest ->
        if md = mode then scan t rest
        else begin
          let boot_next = state.boot_by_mode.(md) in
          (* Our window [t, t+duration) must leave room to boot into any
             other-mode window after it, and must itself start a boot
             after any other-mode window before it. *)
          if t + duration + boot_next > s && t < e + boot_self then
            scan (max t (e + boot_self)) rest
          else scan t rest
        end
  in
  scan ready state.windows

let ppe_commit state ~mode ~start ~stop =
  let rec ins = function
    | [] -> [ (mode, start, stop) ]
    | (md, s, e) :: rest when s <= start -> (md, s, e) :: ins rest
    | rest -> (mode, start, stop) :: rest
  in
  state.windows <- ins state.windows

let count_switches state =
  (* Merge overlapping same-mode windows, then count mode alternations. *)
  let rec walk current acc = function
    | [] -> acc
    | (md, _, _) :: rest ->
        if md = current then walk current acc rest else walk md (acc + 1) rest
  in
  match state.windows with
  | [] -> 0
  | (first, _, _) :: rest -> walk first 0 rest

exception Disconnected of int * int

let run ?(copy_cap = default_copy_cap) (spec : Spec.t) (clustering : Clustering.t)
    (arch : Arch.t) =
  let n_graphs = Spec.n_graphs spec in
  let hyperperiod = Spec.hyperperiod spec in
  (* Instance numbering: graph base + copy * graph size + local index. *)
  let local_index = Array.make (Spec.n_tasks spec) 0 in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iteri (fun i (task : Task.t) -> local_index.(task.id) <- i) g.tasks)
    spec.graphs;
  let explicit = Array.make n_graphs 0 in
  let bases = Array.make n_graphs 0 in
  let total = ref 0 in
  Array.iteri
    (fun gi (g : Graph.t) ->
      explicit.(gi) <- min (Spec.copies spec g) copy_cap;
      bases.(gi) <- !total;
      total := !total + (explicit.(gi) * Graph.n_tasks g))
    spec.graphs;
  let instance_id (task : Task.t) copy =
    bases.(task.graph) + (copy * Graph.n_tasks spec.graphs.(task.graph))
    + local_index.(task.id)
  in
  (* Effective deadlines: an interior task must leave room for the
     worst-case completion of its downstream path, otherwise a later
     allocation can legally squeeze the chain until the sink has no slack
     left.  Worst-case times match the paper's use of worst-case
     execution vectors in priority levels. *)
  let downstream = Array.make (Spec.n_tasks spec) 0 in
  Array.iter
    (fun (g : Graph.t) ->
      let order = List.rev (Graph.topological_order g) in
      List.iter
        (fun (task : Task.t) ->
          downstream.(task.id) <-
            List.fold_left
              (fun acc (e : Edge.t) ->
                max acc (Task.max_exec (Spec.task spec e.dst) + downstream.(e.dst)))
              0 spec.succs.(task.id))
        order)
    spec.graphs;
  let instances =
    Array.make !total
      { i_task = 0; i_copy = 0; arrival = 0; abs_deadline = 0; start = 0; finish = 0 }
  in
  Array.iter
    (fun (g : Graph.t) ->
      for copy = 0 to explicit.(g.id) - 1 do
        Array.iter
          (fun (task : Task.t) ->
            let arrival = g.est + (copy * g.period) in
            instances.(instance_id task copy) <-
              {
                i_task = task.id;
                i_copy = copy;
                arrival;
                abs_deadline =
                  arrival + Graph.task_deadline g task - downstream.(task.id);
                start = -1;
                finish = -1;
              })
          g.tasks
      done)
    spec.graphs;
  (* Placement lookups per task. *)
  let site_of = Array.map (fun _ -> None) (Array.make (Spec.n_tasks spec) ()) in
  Array.iteri
    (fun task_id _ -> site_of.(task_id) <- Arch.task_site arch clustering task_id)
    site_of;
  let placed task_id = site_of.(task_id) <> None in
  (* Resources: dense arrays indexed by instance id (p_id/l_id are the
     Vec positions), created on first touch.  [links_between] goes
     straight to the architecture's own memo. *)
  let cpu_timelines = Array.make (Vec.length arch.Arch.pes) None in
  let cpu_timeline pe_id =
    match cpu_timelines.(pe_id) with
    | Some tl -> tl
    | None ->
        let tl = Timeline.create () in
        cpu_timelines.(pe_id) <- Some tl;
        tl
  in
  let link_timelines = Array.make (Vec.length arch.Arch.links) None in
  let link_timeline l_id =
    match link_timelines.(l_id) with
    | Some tl -> tl
    | None ->
        let tl = Timeline.create () in
        link_timelines.(l_id) <- Some tl;
        tl
  in
  let ppe_states = Array.make (Vec.length arch.Arch.pes) None in
  let ppe_state (pe : Arch.pe_inst) =
    match ppe_states.(pe.Arch.p_id) with
    | Some st -> st
    | None ->
        let boots =
          Array.of_list (List.map (fun m -> Arch.mode_boot_us pe m) pe.Arch.modes)
        in
        let st = { windows = []; boot_by_mode = boots } in
        ppe_states.(pe.Arch.p_id) <- Some st;
        st
  in
  let links_between a b = Arch.links_between arch a b in
  (* Activity windows per graph (explicit copies). *)
  let graph_activity = Array.make n_graphs [] in
  let note_activity graph start stop =
    if stop > start then graph_activity.(graph) <- (start, stop) :: graph_activity.(graph)
  in
  (* Dependency counting over placed tasks only. *)
  let indegree = Array.make !total 0 in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iter
        (fun (e : Edge.t) ->
          if placed e.src && placed e.dst then
            for copy = 0 to explicit.(g.id) - 1 do
              let dst = instance_id (Spec.task spec e.dst) copy in
              indegree.(dst) <- indegree.(dst) + 1
            done)
        g.edges)
    spec.graphs;
  let levels = priorities spec clustering arch in
  (* Ready-list order: most urgent effective deadline first (the
     per-instance form of the deadline-based priority levels: the
     effective deadline already folds arrival, the task deadline and the
     worst-case downstream path); levels break ties within a deadline. *)
  let cmp a b =
    if instances.(a).abs_deadline <> instances.(b).abs_deadline then
      compare instances.(a).abs_deadline instances.(b).abs_deadline
    else begin
      let ta = instances.(a).i_task and tb = instances.(b).i_task in
      if levels.(ta) <> levels.(tb) then compare levels.(tb) levels.(ta)
      else compare a b
    end
  in
  let queue = Pqueue.create ~cmp in
  Array.iteri
    (fun idx inst ->
      if placed inst.i_task && indegree.(idx) = 0 then Pqueue.add queue idx)
    instances;
  let scheduled_tasks = ref 0 in
  let schedule_instance idx =
    let inst = instances.(idx) in
    let task = Spec.task spec inst.i_task in
    let site = Option.get site_of.(inst.i_task) in
    let pe = Vec.get arch.pes site.Arch.s_pe in
    let pe_type = pe.Arch.ptype in
    let duration = Option.value ~default:0 (Task.exec_on task pe_type.Pe.id) in
    (* Input edges: intra-PE transfers are free; inter-PE transfers are
       scheduled on the best connecting link. *)
    let copy_overhead = ref 0 in
    let ready =
      List.fold_left
        (fun acc (e : Edge.t) ->
          if not (placed e.src) then acc
          else begin
            let src_inst = instances.(instance_id (Spec.task spec e.src) inst.i_copy) in
            let src_site = Option.get site_of.(e.src) in
            if src_site.Arch.s_pe = site.Arch.s_pe then max acc src_inst.finish
            else begin
              match links_between src_site.Arch.s_pe site.Arch.s_pe with
              | [] -> raise (Disconnected (src_site.Arch.s_pe, site.Arch.s_pe))
              | links ->
                  let best =
                    List.fold_left
                      (fun best (l : Arch.link_inst) ->
                        let comm =
                          Link.comm_time l.ltype
                            ~ports:(max 2 (List.length l.Arch.attached))
                            ~bytes:e.bytes
                        in
                        let _, fin =
                          Timeline.probe (link_timeline l.Arch.l_id)
                            ~ready:src_inst.finish ~duration:comm
                        in
                        match best with
                        | Some (_, _, best_fin) when best_fin <= fin -> best
                        | _ -> Some (l, comm, fin)
                      )
                      None links
                  in
                  let l, comm, _ =
                    match best with Some x -> x | None -> assert false
                  in
                  let s, f =
                    Timeline.insert (link_timeline l.Arch.l_id) ~ready:src_inst.finish
                      ~duration:comm
                  in
                  note_activity task.graph s f;
                  (match pe_type.Pe.pe_class with
                  | Pe.General_purpose cpu when not cpu.has_communication_processor ->
                      copy_overhead :=
                        !copy_overhead
                        + Crusade_util.Arith.ceil_div e.bytes cpu_copy_bytes_per_us
                  | Pe.General_purpose _ | Pe.Asic_pe _ | Pe.Programmable _ -> ());
                  max acc f
            end
          end)
        inst.arrival spec.preds.(inst.i_task)
    in
    let start, finish =
      match pe_type.Pe.pe_class with
      | Pe.General_purpose cpu ->
          Timeline.insert_preemptible (cpu_timeline pe.Arch.p_id) ~ready
            ~duration:(duration + !copy_overhead)
            ~max_chunks:3 ~chunk_penalty:cpu.preemption_overhead_us
      | Pe.Asic_pe _ -> (ready, ready + duration)
      | Pe.Programmable _ ->
          let st = ppe_state pe in
          let s = ppe_find_start st ~mode:site.Arch.s_mode ~ready ~duration in
          ppe_commit st ~mode:site.Arch.s_mode ~start:s ~stop:(s + duration);
          (s, s + duration)
    in
    inst.start <- start;
    inst.finish <- finish;
    note_activity task.graph start finish;
    incr scheduled_tasks;
    (* Release successors. *)
    List.iter
      (fun (e : Edge.t) ->
        if placed e.dst then begin
          let dst = instance_id (Spec.task spec e.dst) inst.i_copy in
          indegree.(dst) <- indegree.(dst) - 1;
          if indegree.(dst) = 0 then Pqueue.add queue dst
        end)
      spec.succs.(inst.i_task)
  in
  match
    let rec drain () =
      match Pqueue.pop queue with
      | Some idx ->
          schedule_instance idx;
          drain ()
      | None -> ()
    in
    drain ()
  with
  | exception Disconnected (a, b) ->
      Error (Printf.sprintf "no link between PE %d and PE %d" a b)
  | () ->
      (* Deadline verification over the explicit instances. *)
      let tardiness = ref 0 in
      Array.iter
        (fun inst ->
          if placed inst.i_task && inst.finish >= 0 then
            tardiness := !tardiness + max 0 (inst.finish - inst.abs_deadline))
        instances;
      (* Graph activity over the whole hyperperiod: explicit windows plus a
         conservative covering interval for the extrapolated copies. *)
      let graph_windows =
        Array.mapi
          (fun gi acts ->
            let g = spec.graphs.(gi) in
            let copies = Spec.copies spec g in
            let acts =
              if copies > explicit.(gi) && acts <> [] then begin
                let horizon_start = g.est + (explicit.(gi) * g.period) in
                (horizon_start, g.est + (copies * g.period)) :: acts
              end
              else acts
            in
            Intervals.of_list acts)
          graph_activity
      in
      let mode_switches = Array.make (Vec.length arch.pes) 0 in
      Array.iteri
        (fun pe_id st ->
          match st with
          | Some st -> mode_switches.(pe_id) <- count_switches st
          | None -> ())
        ppe_states;
      Ok
        {
          instances;
          hyperperiod;
          deadlines_met = !tardiness = 0;
          total_tardiness = !tardiness;
          graph_windows;
          mode_switches;
          scheduled_tasks = !scheduled_tasks;
        }
