(** The evolving hardware/software architecture: PE instances (each
    programmable PE possibly carrying several configuration modes),
    link instances, and the cluster placement map.

    There is no fixed architectural template (Section 2.2): PEs and links
    are instantiated on demand by the allocation step, and PPE instances
    acquire additional modes when compatible (non-overlapping) clusters
    time-share them through dynamic reconfiguration. *)

type mode = {
  m_id : int;
  mutable m_clusters : int list;  (** cluster ids resident in this mode *)
  mutable m_gates : int;  (** PFUs/gates used by the resident clusters *)
  mutable m_pins : int;
}

type pe_inst = {
  p_id : int;
  ptype : Crusade_resource.Pe.t;
  modes : mode Crusade_util.Vec.t;
      (** indexed by [m_id]; non-programmable PEs have exactly one *)
  mutable used_memory : int;  (** CPU: bytes of DRAM consumed *)
  mutable boot_full_us : int;
      (** time to reprogram the whole device with the current programming
          interface (PPE only; see {!Interface} in [crusade_reconfig]) *)
  mutable p_failed : bool;
      (** the PE has failed in the field: it keeps its [p_id] (sites
          index into the PE vector) but {!place_cluster} and candidate
          enumeration reject it; once re-synthesis vacates it, it
          contributes nothing to {!cost} or {!n_pes} *)
}

type link_inst = {
  l_id : int;
  ltype : Crusade_resource.Link.t;
  mutable attached : int list;  (** PE ids on this link (its ports) *)
}

type site = { s_pe : int; s_mode : int }
(** Where a cluster lives: PE instance id and mode id on that PE. *)

type levels_cache = {
  lc_spec : Crusade_taskgraph.Spec.t;
  lc_clustering : Crusade_cluster.Clustering.t;
  lc_levels : int array;
}
(** Memoized priority levels (see {!cached_levels}), valid for exactly
    the (spec, clustering) pair they were computed against. *)

type t = {
  lib : Crusade_resource.Library.t;
  pes : pe_inst Crusade_util.Vec.t;
  links : link_inst Crusade_util.Vec.t;
  sites : (int, site) Hashtbl.t;  (** cluster id -> placement *)
  mutable interface_cost : float option;
      (** reconfiguration-controller + image-storage cost once interface
          synthesis has run; [None] until then, in which case {!cost}
          uses a per-image PROM estimate *)
  links_cache : (int, link_inst list) Hashtbl.t;
      (** {!links_between} memo keyed by [(min lsl 20) lor max] of the PE
          pair (an int key hashes far cheaper than a tuple on the
          scheduler's per-transfer probe path), shared by every
          [Schedule.run] against this architecture; cleared on any
          connectivity change and left cold by {!copy} (its values alias
          the source's link records) *)
  mutable links_cache_full : bool;
      (** the memo holds every connected pair (one-pass population on
          first probe); a missing key then means "no link" *)
  mutable levels_cache : levels_cache option;
      (** last priority-levels computation; cleared on any mutation *)
  mutable journal : (unit -> unit) list;
      (** undo thunks, newest first; populated only between
          {!checkpoint} and the matching {!rollback}/{!commit} *)
  mutable journal_len : int;
  mutable journal_depth : int;  (** open checkpoints *)
  mutable conn_epoch : int;
      (** connectivity-affecting operations recorded since the journal
          opened; lets {!rollback} keep the warm [links_cache] when a
          trial only moved clusters around *)
}

val create : Crusade_resource.Library.t -> t

val copy : t -> t
(** Deep copy (the parallel evaluation path gives every domain disjoint
    state).  The copy never inherits open checkpoints. *)

(** {2 Undo journal}

    The sequential evaluation path trials candidate mutations directly on
    the base architecture instead of deep-copying it: [checkpoint] opens
    a journal scope, every mutating operation ({!place_cluster},
    {!unplace_cluster}, {!add_pe}, {!add_mode}, {!add_link}, {!attach},
    {!detach_unused}) logs its inverse, and [rollback] runs the log
    backwards, restoring the base bit-for-bit — including the
    [links_cache]/[levels_cache] memo state: the levels memo saved at the
    checkpoint is reinstated, and the link memo is reset only when the
    trial actually touched connectivity.  Checkpoints nest (LIFO); each
    must be consumed by exactly one [rollback] or [commit]. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Opens a journal scope; mutations are recorded until the matching
    {!rollback} or {!commit}. *)

val rollback : t -> checkpoint -> unit
(** Undoes every operation recorded since the checkpoint. *)

val commit : t -> checkpoint -> unit
(** Accepts the operations recorded since the checkpoint (outer
    checkpoints, if any, can still undo them). *)

val add_pe : t -> Crusade_resource.Pe.t -> pe_inst
(** Instantiates a PE with one (empty) mode. *)

val add_mode : t -> pe_inst -> mode
(** Adds a configuration mode to a programmable PE.
    @raise Invalid_argument on non-programmable PEs. *)

val add_link : t -> Crusade_resource.Link.t -> link_inst

val attach : t -> link_inst -> pe_inst -> (unit, string) result
(** Connects a PE to a link, consuming one port.  Idempotent per pair. *)

val fail_pe : t -> pe_inst -> unit
(** Marks a PE as failed in the field (journaled; idempotent).  Existing
    placements are untouched — re-synthesis is responsible for vacating
    them — but new placements and candidate enumeration reject the PE. *)

val place_cluster :
  t ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_cluster.Clustering.cluster ->
  pe:pe_inst ->
  mode:mode ->
  (unit, string) result
(** Places a cluster, enforcing execution feasibility of every member on
    the PE type, capacity (CPU memory; ASIC gates/pins; PPE ERUF/EPUF
    caps per mode) and the exclusion vectors against co-resident tasks. *)

val unplace_cluster :
  t -> Crusade_cluster.Clustering.t -> Crusade_cluster.Clustering.cluster -> unit
(** Removes a placed cluster from its site (mode occupancy, CPU memory
    and the placement map); no-op when the cluster is unplaced.  Used by
    the merge exploration of dynamic-reconfiguration generation. *)

val detach_unused : t -> unit
(** Drops link ports of PEs that no longer host any cluster, so merged
    architectures stop paying for dead connectivity. *)

val site_of_cluster : t -> int -> site option

val pe_of_cluster : t -> int -> pe_inst option

val mode_of_site : t -> site -> mode
(** O(1): modes are indexed by [m_id]. *)

val pe_in_use : pe_inst -> bool
(** Does any mode hold a cluster?  Allocation-free short-circuit used by
    the cost and counting hot paths. *)

val memory_banks : pe_inst -> int
(** DRAM banks a CPU instance needs for its resident clusters. *)

val n_images : pe_inst -> int
(** Number of configuration images (modes actually holding clusters). *)

val mode_boot_us : pe_inst -> mode -> int
(** Time to switch the device to [mode]: full-device reprogramming time,
    scaled down for partially reconfigurable devices by the fraction of
    PFUs the mode actually uses. *)

val cost : t -> float
(** Total dollar cost: PEs + CPU DRAM banks + links and ports + boot
    PROM storage for every configuration image + the reconfiguration
    interface (estimate until interface synthesis runs). *)

val prom_dollars_per_kbyte : float

val links_between : t -> int -> int -> link_inst list
(** Link instances to which both PEs are attached.  Memoized per PE pair
    until the architecture's connectivity changes, so the scheduler's
    hot path pays the link scan once per architecture, not once per
    [Schedule.run].  Callers must treat the returned list as read-only. *)

val cached_levels :
  t -> Crusade_taskgraph.Spec.t -> Crusade_cluster.Clustering.t -> int array option
(** Priority levels cached by the last {!set_cached_levels} for
    physically this (spec, clustering) pair, or [None] after any
    mutation.  Lets [Schedule.priorities] be recomputed only when the
    architecture actually changed — e.g. the allocation loop commits a
    candidate whose levels were already computed when it was evaluated,
    and the next iteration reuses them.  The array is shared: callers
    must not mutate it. *)

val set_cached_levels :
  t -> Crusade_taskgraph.Spec.t -> Crusade_cluster.Clustering.t -> int array -> unit

val n_pes : t -> int
val n_links : t -> int
(** Counts of *used* PEs/links (with at least one cluster / two ports). *)

val task_site : t -> Crusade_cluster.Clustering.t -> int -> site option
(** Placement of a task via its cluster. *)

val pp_summary : Format.formatter -> t -> unit
