lib/alloc/export.mli: Arch Crusade_cluster
