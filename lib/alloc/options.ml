module Spec = Crusade_taskgraph.Spec
module Edge = Crusade_taskgraph.Edge
module Pe = Crusade_resource.Pe
module Library = Crusade_resource.Library
module Caps = Crusade_resource.Caps
module Clustering = Crusade_cluster.Clustering
module Vec = Crusade_util.Vec

type kind =
  | Existing_site of Arch.site
  | New_mode of int
  | New_pe of int

type t = { kind : kind; delta_cost : float; affinity : int }

let prom_image_cost (ptype : Pe.t) =
  match ptype.Pe.pe_class with
  | Pe.Programmable info ->
      float_of_int info.boot_memory_bytes /. 1024.0 *. Arch.prom_dollars_per_kbyte
  | Pe.General_purpose _ | Pe.Asic_pe _ -> 0.0

let new_pe_cost (ptype : Pe.t) =
  let extra =
    match ptype.Pe.pe_class with
    | Pe.General_purpose cpu -> cpu.memory_bank_cost
    | Pe.Asic_pe _ -> 0.0
    | Pe.Programmable _ -> prom_image_cost ptype
  in
  ptype.Pe.cost +. extra

(* Would the cluster fit this PE instance/mode right now? *)
let fits arch (cluster : Clustering.cluster) (pe : Arch.pe_inst) (mode : Arch.mode) =
  ignore arch;
  cluster.feasible_mask land (1 lsl pe.Arch.ptype.Pe.id) <> 0
  &&
  match pe.Arch.ptype.Pe.pe_class with
  | Pe.General_purpose cpu ->
      pe.Arch.used_memory + cluster.memory_bytes
      <= cpu.memory_bank_bytes * cpu.max_memory_banks
  | Pe.Asic_pe a ->
      mode.Arch.m_gates + cluster.gates <= a.gates
      && mode.Arch.m_pins + cluster.pins <= a.pins
  | Pe.Programmable _ ->
      mode.Arch.m_gates + cluster.gates <= Caps.usable_pfus pe.Arch.ptype
      && mode.Arch.m_pins + cluster.pins <= Caps.usable_pins pe.Arch.ptype

let affinity_of arch (spec : Spec.t) (clustering : Clustering.t)
    (cluster : Clustering.cluster) pe_id =
  let count = ref 0 in
  let note task_id =
    match Arch.task_site arch clustering task_id with
    | Some site when site.Arch.s_pe = pe_id -> incr count
    | Some _ | None -> ()
  in
  List.iter
    (fun member ->
      List.iter (fun (e : Edge.t) -> note e.dst) spec.succs.(member);
      List.iter (fun (e : Edge.t) -> note e.src) spec.preds.(member))
    cluster.members;
  !count

let enumerate arch spec clustering (cluster : Clustering.cluster) ~allow_new_modes
    ?(max_existing = 8) ?(max_new_pe = 16) () =
  let existing = ref [] and new_modes = ref [] in
  (* Time-sharing a programmable device is only sound when the graphs in
     different modes can never be active simultaneously: modes serialize
     on the device and switching costs a reboot (Sections 4.1-4.3). *)
  let mode_graphs (mode : Arch.mode) =
    List.sort_uniq compare
      (List.map
         (fun cid -> clustering.Clustering.clusters.(cid).Clustering.graph)
         mode.Arch.m_clusters)
  in
  let mode_of_own_graph (pe : Arch.pe_inst) =
    Vec.fold
      (fun acc (m : Arch.mode) ->
        match acc with
        | Some _ -> acc
        | None -> if List.mem cluster.graph (mode_graphs m) then Some m else None)
      None pe.Arch.modes
  in
  let other_modes_compatible (pe : Arch.pe_inst) (mode_id : int) =
    Vec.for_all
      (fun (m : Arch.mode) ->
        m.Arch.m_id = mode_id
        || List.for_all
             (fun g -> Spec.static_compatible spec g cluster.graph)
             (mode_graphs m))
      pe.Arch.modes
  in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      if
        (not pe.Arch.p_failed)
        && cluster.feasible_mask land (1 lsl pe.Arch.ptype.Pe.id) <> 0
      then begin
        let affinity = affinity_of arch spec clustering cluster pe.Arch.p_id in
        let programmable = Pe.is_programmable pe.Arch.ptype in
        let own_mode = if programmable then mode_of_own_graph pe else None in
        Vec.iter
          (fun (mode : Arch.mode) ->
            let mode_allowed =
              (not programmable)
              || (match own_mode with
                 | Some m -> m.Arch.m_id = mode.Arch.m_id
                 | None -> true)
                 && other_modes_compatible pe mode.Arch.m_id
            in
            if mode_allowed && fits arch cluster pe mode then begin
              (* Prefer packing a cluster with graphs it overlaps in time
                 (they must share the mode anyway, Fig. 4's C3); packing
                 it with compatible graphs would waste a time-sharing
                 opportunity, so such sites rank below. *)
              let overlap_bonus =
                if not programmable then 0
                else if
                  List.exists
                    (fun g ->
                      g = cluster.graph
                      || not (Spec.static_compatible spec g cluster.graph))
                    (mode_graphs mode)
                then 1000
                else 0
              in
              existing :=
                {
                  kind = Existing_site { Arch.s_pe = pe.Arch.p_id; s_mode = mode.Arch.m_id };
                  delta_cost = 0.0;
                  affinity = affinity + overlap_bonus;
                }
                :: !existing
            end)
          pe.Arch.modes;
        if allow_new_modes && programmable && own_mode = None
           && other_modes_compatible pe (-1)
        then begin
          (* A fresh mode always has full (capped) capacity. *)
          let empty = { Arch.m_id = -1; m_clusters = []; m_gates = 0; m_pins = 0 } in
          if fits arch cluster pe empty then
            new_modes :=
              {
                kind = New_mode pe.Arch.p_id;
                delta_cost = prom_image_cost pe.Arch.ptype;
                affinity;
              }
              :: !new_modes
        end
      end)
    arch.Arch.pes;
  let top n scored =
    let sorted =
      List.sort
        (fun a b ->
          if a.delta_cost <> b.delta_cost then compare a.delta_cost b.delta_cost
          else compare b.affinity a.affinity)
        scored
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take n sorted
  in
  let new_pes =
    let rec scan acc i =
      if i >= Library.n_pe_types arch.Arch.lib then acc
      else begin
        let ptype = Library.pe arch.Arch.lib i in
        let acc =
          if cluster.feasible_mask land (1 lsl i) <> 0 then
            { kind = New_pe i; delta_cost = new_pe_cost ptype; affinity = 0 } :: acc
          else acc
        in
        scan acc (i + 1)
      end
    in
    scan [] 0
  in
  top max_existing !existing @ top 4 !new_modes @ top max_new_pe new_pes

let apply arch spec clustering (cluster : Clustering.cluster) option =
  let placed =
    match option.kind with
    | Existing_site site ->
        let pe = Vec.get arch.Arch.pes site.Arch.s_pe in
        let mode = Arch.mode_of_site arch site in
        Arch.place_cluster arch spec clustering cluster ~pe ~mode
    | New_mode pe_id ->
        let pe = Vec.get arch.Arch.pes pe_id in
        let mode = Arch.add_mode arch pe in
        Arch.place_cluster arch spec clustering cluster ~pe ~mode
    | New_pe pe_type ->
        let pe = Arch.add_pe arch (Library.pe arch.Arch.lib pe_type) in
        if Vec.length pe.Arch.modes = 1 then
          Arch.place_cluster arch spec clustering cluster ~pe
            ~mode:(Vec.get pe.Arch.modes 0)
        else Error "fresh PE must have exactly one mode"
  in
  match placed with
  | Error _ as e -> e
  | Ok () -> (
      match Connect.ensure arch spec clustering cluster with
      | Ok _cost -> Ok ()
      | Error _ as e -> e)
