type t = {
  lock : Mutex.t;
  table : (string, string) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { lock = Mutex.create (); table = Hashtbl.create 64; hits = 0; misses = 0 }

let key ~spec_canonical ~options_canonical =
  Digest.to_hex (Digest.string (spec_canonical ^ "\x00" ^ options_canonical))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some _ as hit ->
          t.hits <- t.hits + 1;
          hit
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t k payload = locked t (fun () -> Hashtbl.replace t.table k payload)

let stats t = locked t (fun () -> (t.hits, t.misses, Hashtbl.length t.table))
