lib/taskgraph/graph.mli: Edge Task
