(** A complete embedded-system specification: a set of periodic acyclic
    task graphs plus system-wide requirements (the boot-time requirement
    of Section 4.4).

    Tasks and edges have global ids so the synthesis pipeline can use
    flat arrays; [tasks.(i).id = i] and [edges.(i).id = i]. *)

type t = private {
  name : string;
  graphs : Graph.t array;
  tasks : Task.t array;
  edges : Edge.t array;
  succs : Edge.t list array;  (** outgoing edges, indexed by task id *)
  preds : Edge.t list array;  (** incoming edges, indexed by task id *)
  boot_time_requirement : int;
      (** maximum tolerated reconfiguration (mode-switch) time, us *)
}

val build :
  name:string -> ?boot_time_requirement:int -> Graph.t list -> (t, string) result
(** Validates every graph and the id numbering.  The default boot-time
    requirement is 50 ms. *)

val build_exn :
  name:string -> ?boot_time_requirement:int -> Graph.t list -> t

val n_tasks : t -> int
val n_edges : t -> int
val n_graphs : t -> int

val task : t -> int -> Task.t
val edge : t -> int -> Edge.t
val graph_of_task : t -> Task.t -> Graph.t

val hyperperiod : t -> int
(** Least common multiple of all graph periods (traditional real-time
    computing; Section 3). *)

val copies : t -> Graph.t -> int
(** [hyperperiod / period]: number of copies of the graph inside the
    hyperperiod — the association-array row count for that graph. *)

(** Incremental construction used by workload generators and examples. *)
module Builder : sig
  type b

  val create : unit -> b

  val add_graph :
    b ->
    name:string ->
    period:int ->
    ?est:int ->
    deadline:int ->
    ?compat_with:int list ->
    ?unavailability_budget:float ->
    unit ->
    int
  (** Returns the new graph's id.  [compat_with] lists ids of previously
      added graphs this one is declared compatible with (the declaration
      is made symmetric at [finish] time). *)

  val add_task :
    b ->
    graph:int ->
    name:string ->
    exec:int array ->
    ?preference:int array ->
    ?exclusion:int list ->
    ?memory:Task.memory ->
    ?gates:int ->
    ?pins:int ->
    ?deadline:int ->
    ?ft:Task.ft_info ->
    unit ->
    int
  (** Returns the new task's global id. *)

  val add_edge : b -> src:int -> dst:int -> bytes:int -> unit
  (** Both endpoints must belong to the same graph. *)

  val finish : b -> name:string -> ?boot_time_requirement:int -> unit -> (t, string) result

  val finish_exn : b -> name:string -> ?boot_time_requirement:int -> unit -> t
end

val static_compatible : t -> int -> int -> bool
(** Design-time compatibility of two graphs: declared compatibility
    vectors win; otherwise the arrival-to-deadline envelopes of all
    copies are intersected over the two periods' LCM.  Disjoint
    envelopes guarantee disjoint execution slots in any deadline-meeting
    schedule, so the graphs may time-share a programmable device
    (Section 4.1).  A graph is never compatible with itself. *)
