(* Warm re-synthesis under change (Crusade_core.Resynth): every change
   kind end to end, plus a differential property against from-scratch
   synthesis of the post-change workload. *)

module C = Crusade.Crusade_core
module R = Crusade.Crusade_core.Resynth
module F = Crusade_fault.Ft
module Spec = Crusade_taskgraph.Spec
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec
module W = Crusade_workloads.Comm_system

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let lib = Helpers.stock_lib

let small_spec ?(seed = 3) () =
  W.generate lib
    {
      W.name = Printf.sprintf "resynth-%d" seed;
      n_tasks = 28;
      seed;
      hw_fraction = 0.5;
      family_slots = 3;
      asic_fraction = 0.1;
      cpld_fraction = 0.1;
    }

let synthesize ?(options = C.default_options) ?include_graph spec =
  match C.synthesize ~options ?include_graph spec lib with
  | Ok r -> r
  | Error msg -> Alcotest.failf "synthesis failed: %s" msg

let apply ?(options = C.default_options) deployed change =
  match R.apply ~options deployed change with
  | Ok rep -> rep
  | Error msg -> Alcotest.failf "resynth failed: %s" msg

let assert_clean_audit rep =
  match R.audit_report rep with
  | [] -> ()
  | vs ->
      Alcotest.failf "repaired architecture fails its audit: %s"
        (String.concat "; "
           (List.map
              (fun (v : Crusade_alloc.Audit.violation) ->
                Printf.sprintf "[%s] %s" v.rule v.detail)
              vs))

let last_graph spec = Array.length spec.Spec.graphs - 1

(* Graph arrival: deploy without the last graph, then let it arrive.
   The untouched graphs keep their placement; the repaired system
   covers everything and audits clean. *)
let graph_arrival () =
  let spec = small_spec () in
  let g = last_graph spec in
  let deployed = synthesize ~include_graph:(fun g' -> g' <> g) spec in
  let rep = apply deployed (R.Graph_arrival [ g ]) in
  (match R.final_result rep with
  | None -> Alcotest.fail "arrival of one graph should be repairable"
  | Some r -> check Alcotest.bool "deadlines met" true r.C.deadlines_met);
  check Alcotest.bool "arriving graph is covered" true
    (R.expected_graphs deployed (R.Graph_arrival [ g ]) g);
  assert_clean_audit rep

(* Graph departure: nothing new to place, so the reprogramming attempt
   succeeds trivially and the cost can only shrink or stay put. *)
let graph_departure () =
  let spec = small_spec () in
  let g = last_graph spec in
  let deployed = synthesize spec in
  let rep = apply deployed (R.Graph_departure [ g ]) in
  (match rep.R.verdict with
  | R.Images_only _ -> ()
  | R.Needs_hardware _ | R.Infeasible ->
      Alcotest.fail "a departure never needs new hardware");
  check Alcotest.bool "departed graph leaves coverage" false
    (R.expected_graphs deployed (R.Graph_departure [ g ]) g);
  (match rep.R.cost_delta with
  | Some d -> check Alcotest.bool "cost never grows on departure" true (d <= 0.0)
  | None -> Alcotest.fail "departure must produce a result");
  assert_clean_audit rep

(* PE failure: the failed instance hosts clusters, they are ripped and
   re-placed, and the final architecture never uses the failed PE. *)
let pe_failure () =
  let spec = small_spec () in
  let deployed = synthesize spec in
  let rep = apply deployed (R.Pe_failure 0) in
  check Alcotest.bool "a loaded PE failing rips clusters" true
    (rep.R.ripped_clusters <> []);
  (match R.final_result rep with
  | None -> Alcotest.fail "single PE failure should be repairable"
  | Some r ->
      let failed = Vec.get r.C.arch.Arch.pes 0 in
      check Alcotest.bool "failed PE is not in use" false
        (Arch.pe_in_use failed));
  assert_clean_audit rep

(* Execution-time drift rebuilds the spec; the repaired system is judged
   against the drifted deadlines. *)
let exec_drift () =
  let spec = small_spec () in
  let deployed = synthesize spec in
  let rep = apply deployed (R.Exec_drift 20) in
  let scratch =
    match R.drift_spec spec 20 with
    | Ok spec' -> synthesize spec'
    | Error msg -> Alcotest.failf "drift_spec failed: %s" msg
  in
  check Alcotest.bool "warm verdict matches from-scratch" true
    (R.final_result rep <> None = scratch.C.deadlines_met);
  assert_clean_audit rep

let drift_spec_validation () =
  let spec = small_spec () in
  (match R.drift_spec spec (-100) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "drift of -100%% must be rejected");
  match R.drift_spec spec 0 with
  | Ok spec' ->
      check Alcotest.int "0%% drift preserves the task count"
        (Spec.n_tasks spec) (Spec.n_tasks spec')
  | Error msg -> Alcotest.failf "0%% drift must be accepted: %s" msg

let change_validation () =
  let spec = small_spec () in
  let deployed = synthesize spec in
  let rejects what change =
    match R.apply deployed change with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s must be rejected" what
  in
  rejects "empty arrival" (R.Graph_arrival []);
  rejects "unknown graph" (R.Graph_departure [ 999 ]);
  rejects "unknown PE" (R.Pe_failure 999)

(* FT warm restart: after a field PE failure the spares are
   re-provisioned against the repaired architecture, and the whole
   repaired FT result passes the FT audit. *)
let ft_pe_failure () =
  let spec = small_spec () in
  let fr =
    match F.synthesize ~options:C.default_options spec lib with
    | Ok fr -> fr
    | Error msg -> Alcotest.failf "FT synthesis failed: %s" msg
  in
  match F.resynth_pe_failure fr ~pe:0 with
  | Error msg -> Alcotest.failf "FT resynth failed: %s" msg
  | Ok (rep, repaired) -> (
      assert_clean_audit rep;
      match repaired with
      | None -> Alcotest.fail "single PE failure should be repairable"
      | Some fr' -> (
          check Alcotest.bool "spares were re-provisioned" true
            (fr'.F.total_cost >= fr'.F.core.C.cost);
          match F.audit fr' with
          | [] -> ()
          | vs ->
              Alcotest.failf "repaired FT result fails its audit (%d)"
                (List.length vs)))

(* The report carries the wall-clock latency of the repair. *)
let report_latency () =
  let spec = small_spec () in
  let deployed = synthesize spec in
  let rep = apply deployed (R.Pe_failure 0) in
  check Alcotest.bool "latency is non-negative" true
    (rep.R.resynth_seconds >= 0.0)

(* Differential property: across random workloads and every change
   kind, the warm repair reaches the same feasibility verdict as
   synthesizing the post-change workload from scratch, and the repaired
   architecture audits clean.  Costs may legitimately differ — the
   repair is pinned to the deployed placement. *)
let resynth_matches_scratch =
  QCheck.Test.make ~name:"resynth verdict matches from-scratch" ~count:8
    (QCheck.pair (QCheck.int_range 1 50) (QCheck.int_range 0 3))
    (fun (seed, kind) ->
      let spec = small_spec ~seed () in
      let g = last_graph spec in
      let change =
        match kind with
        | 0 -> R.Graph_arrival [ g ]
        | 1 -> R.Upgrade [ g ]
        | 2 -> R.Pe_failure 0
        | _ -> R.Exec_drift 20
      in
      let deployed_include =
        match change with
        | R.Graph_arrival gs | R.Upgrade gs -> fun g' -> not (List.mem g' gs)
        | R.Graph_departure _ | R.Pe_failure _ | R.Exec_drift _ -> fun _ -> true
      in
      let deployed = synthesize ~include_graph:deployed_include spec in
      let rep = apply deployed change in
      let scratch =
        match change with
        | R.Exec_drift pct -> (
            match R.drift_spec spec pct with
            | Ok spec' -> synthesize spec'
            | Error msg -> Alcotest.failf "drift_spec failed: %s" msg)
        | R.Graph_departure gs ->
            synthesize ~include_graph:(fun g' -> not (List.mem g' gs)) spec
        | R.Graph_arrival _ | R.Upgrade _ | R.Pe_failure _ -> synthesize spec
      in
      R.audit_report rep = []
      && R.final_result rep <> None = scratch.C.deadlines_met)

let suite =
  [
    Alcotest.test_case "graph arrival repairs in place" `Quick graph_arrival;
    Alcotest.test_case "graph departure is images-only" `Quick graph_departure;
    Alcotest.test_case "PE failure warm restart" `Quick pe_failure;
    Alcotest.test_case "execution-time drift" `Quick exec_drift;
    Alcotest.test_case "drift spec validation" `Quick drift_spec_validation;
    Alcotest.test_case "change validation" `Quick change_validation;
    Alcotest.test_case "FT PE failure re-provisions spares" `Quick ft_pe_failure;
    Alcotest.test_case "report carries repair latency" `Quick report_latency;
    qcheck resynth_matches_scratch;
  ]
