lib/util/intervals.mli:
