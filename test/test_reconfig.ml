module Spec = Crusade_taskgraph.Spec
module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Schedule = Crusade_sched.Schedule
module Compat = Crusade_reconfig.Compat
module Interface = Crusade_reconfig.Interface
module Merge = Crusade_reconfig.Merge
module Memo = Crusade_sched.Memo
module Vec = Crusade_util.Vec

let check = Alcotest.check
let lib = Helpers.small_lib

(* Architecture with each of the two hw clusters on its own F1. *)
let two_device_arch ?(overlap = false) () =
  let spec, t1, t2 = Helpers.two_hw_graphs ~overlap () in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let place t =
    let pe = Arch.add_pe arch (Library.pe lib 3) in
    let c = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t)) in
    match Arch.place_cluster arch spec clustering c ~pe ~mode:(Vec.get pe.Arch.modes 0) with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  place t1;
  place t2;
  (spec, clustering, arch)

(* --- Compat --- *)

let compat_from_schedule () =
  let spec, clustering, arch = two_device_arch ~overlap:false () in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      let m = Compat.matrix spec sched in
      check Alcotest.bool "disjoint windows compatible" true m.(0).(1);
      check Alcotest.bool "symmetric" true m.(1).(0);
      check Alcotest.bool "not self-compatible" false m.(0).(0)

let compat_overlapping_schedule () =
  let spec, clustering, arch = two_device_arch ~overlap:true () in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      let m = Compat.matrix spec sched in
      check Alcotest.bool "overlapping incompatible" false m.(0).(1)

let compat_sets () =
  let m = [| [| false; true; true |]; [| true; false; false |]; [| true; false; false |] |] in
  check Alcotest.bool "all pairs" true (Compat.graphs_compatible m [ 0 ] [ 1; 2 ]);
  check Alcotest.bool "violating pair" false (Compat.graphs_compatible m [ 1 ] [ 2 ]);
  check Alcotest.bool "same graph allowed in sets" true
    (Compat.graphs_compatible m [ 0 ] [ 0 ])

(* --- Interface --- *)

let interface_boot_times () =
  let info =
    match Pe.ppe_info (Library.pe lib 3) with Some i -> i | None -> assert false
  in
  (* 40_000 config bits *)
  let serial_1 =
    Interface.boot_full_us { style = Serial; role = Master_prom; mhz = 1.0; chained = false } info
  in
  check Alcotest.int "serial 1MHz" 40_000 serial_1;
  let par_10 =
    Interface.boot_full_us { style = Parallel8; role = Master_prom; mhz = 10.0; chained = false } info
  in
  check Alcotest.int "parallel 10MHz" 500 par_10;
  let chained =
    Interface.boot_full_us { style = Serial; role = Master_prom; mhz = 1.0; chained = true } info
  in
  check Alcotest.bool "chaining is slower" true (chained > serial_1)

let interface_option_space () =
  check Alcotest.int "2x2x4x2 options" 32 (List.length Interface.all_options)

let interface_cost_ordering () =
  let spec, clustering, arch = two_device_arch () in
  ignore (spec, clustering);
  let cost option = Interface.interface_cost option arch in
  let cheap =
    cost { style = Serial; role = Master_prom; mhz = 1.0; chained = true }
  in
  let fast =
    cost { style = Parallel8; role = Master_prom; mhz = 10.0; chained = false }
  in
  match (cheap, fast) with
  | Some a, Some b -> check Alcotest.bool "faster costs more" true (b > a)
  | _ -> Alcotest.fail "costs must be defined"

let interface_slave_needs_cpu () =
  let _, _, arch = two_device_arch () in
  (* architecture has no CPU *)
  check Alcotest.(option (float 1.0)) "slave impossible" None
    (Interface.interface_cost
       { style = Serial; role = Slave_cpu; mhz = 1.0; chained = false }
       arch)

let interface_synthesize_meets_requirement () =
  let spec, clustering, arch = two_device_arch () in
  ignore clustering;
  match Interface.synthesize arch spec ~validate:(fun _ -> true) with
  | Error m -> Alcotest.fail m
  | Ok option ->
      check Alcotest.bool "interface cost recorded" true
        (arch.Arch.interface_cost <> None);
      (* every multi-image device boots within the requirement *)
      Vec.iter
        (fun (pe : Arch.pe_inst) ->
          if Arch.n_images pe > 1 then
            Vec.iter
              (fun m ->
                check Alcotest.bool "boot within budget" true
                  (Arch.mode_boot_us pe m <= spec.Spec.boot_time_requirement))
              pe.Arch.modes)
        arch.Arch.pes;
      ignore option

let interface_synthesize_prefers_cheap () =
  let spec, clustering, arch = two_device_arch () in
  ignore clustering;
  match Interface.synthesize arch spec ~validate:(fun _ -> true) with
  | Error m -> Alcotest.fail m
  | Ok option ->
      (* with a 50 ms budget and permissive validation, the 1 MHz serial
         options (cheapest) win *)
      check (Alcotest.float 1e-9) "slowest clock chosen" 1.0 option.Interface.mhz

(* --- Merge --- *)

let merge_two_compatible_devices () =
  let spec, clustering, arch = two_device_arch ~overlap:false () in
  check Alcotest.int "two devices before" 2 (Arch.n_pes arch);
  match Merge.optimize ~memo:(Memo.create ()) spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok (merged, sched, stats) ->
      check Alcotest.int "one device after" 1 (Arch.n_pes merged);
      check Alcotest.bool "deadlines met" true sched.Schedule.deadlines_met;
      check Alcotest.bool "a merge accepted" true (stats.Merge.merges_accepted >= 1);
      check Alcotest.bool "cost decreased" true (Arch.cost merged < Arch.cost arch);
      (* the surviving device carries two configuration images *)
      let images =
        Vec.fold (fun acc pe -> max acc (Arch.n_images pe)) 0 merged.Arch.pes
      in
      check Alcotest.int "two images" 2 images

let merge_rejects_overlapping () =
  let spec, clustering, arch = two_device_arch ~overlap:true () in
  match Merge.optimize ~memo:(Memo.create ()) spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok (merged, _, _) ->
      check Alcotest.int "no merge possible" 2 (Arch.n_pes merged)

let merge_potential_counts () =
  let _, _, arch = two_device_arch () in
  check Alcotest.int "2 PPEs + 0 links" 2 (Merge.merge_potential arch)

(* The in-place journaled merge loop (incremental_merge, the default at
   jobs = 1) must reproduce the batch per-trial-copy loop bit for bit:
   same accepted architecture, same schedule, same stats counters. *)
let merge_incremental_matches_batch () =
  let spec, clustering, arch = two_device_arch ~overlap:false () in
  let run incremental_merge =
    match
      Merge.optimize ~incremental_merge ~memo:(Memo.create ()) spec clustering
        arch
    with
    | Ok out -> out
    | Error m -> Alcotest.fail m
  in
  let m_inc, s_inc, st_inc = run true in
  let m_bat, s_bat, st_bat = run false in
  check (Alcotest.float 1e-9) "cost identical" (Arch.cost m_bat)
    (Arch.cost m_inc);
  check Alcotest.int "PEs identical" (Arch.n_pes m_bat) (Arch.n_pes m_inc);
  check Alcotest.bool "schedules identical" true
    (s_bat.Schedule.instances = s_inc.Schedule.instances
    && s_bat.Schedule.deadlines_met = s_inc.Schedule.deadlines_met
    && s_bat.Schedule.total_tardiness = s_inc.Schedule.total_tardiness);
  check Alcotest.bool "stats identical" true (st_bat = st_inc)

let merge_input_not_mutated () =
  let spec, clustering, arch = two_device_arch ~overlap:false () in
  let before = Arch.cost arch in
  (match Merge.optimize ~memo:(Memo.create ()) spec clustering arch with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check (Alcotest.float 1e-9) "input arch unchanged" before (Arch.cost arch)

let suite =
  [
    Alcotest.test_case "compat from schedule" `Quick compat_from_schedule;
    Alcotest.test_case "compat overlapping" `Quick compat_overlapping_schedule;
    Alcotest.test_case "compat sets" `Quick compat_sets;
    Alcotest.test_case "interface boot times" `Quick interface_boot_times;
    Alcotest.test_case "interface option space" `Quick interface_option_space;
    Alcotest.test_case "interface cost ordering" `Quick interface_cost_ordering;
    Alcotest.test_case "slave needs cpu" `Quick interface_slave_needs_cpu;
    Alcotest.test_case "interface meets requirement" `Quick interface_synthesize_meets_requirement;
    Alcotest.test_case "interface prefers cheap" `Quick interface_synthesize_prefers_cheap;
    Alcotest.test_case "merge compatible devices" `Quick merge_two_compatible_devices;
    Alcotest.test_case "merge rejects overlapping" `Quick merge_rejects_overlapping;
    Alcotest.test_case "merge potential" `Quick merge_potential_counts;
    Alcotest.test_case "merge does not mutate input" `Quick merge_input_not_mutated;
    Alcotest.test_case "merge incremental matches batch" `Quick
      merge_incremental_matches_batch;
  ]
