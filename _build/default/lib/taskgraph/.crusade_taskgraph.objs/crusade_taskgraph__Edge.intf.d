lib/taskgraph/edge.mli:
