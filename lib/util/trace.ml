type arg = Str of string | Num of int

type phase = B | E | I | C

type event = {
  ev_ph : phase;
  ev_name : string;
  ev_ts : float;  (* microseconds since sink creation *)
  ev_tid : int;  (* emitting domain id *)
  ev_args : (string * arg) list;
}

type view = {
  v_phase : string;  (* "B" | "E" | "i" | "C" *)
  v_name : string;
  v_ts : float;
  v_tid : int;
  v_args : (string * arg) list;
}

type t = {
  lock : Mutex.t;
  epoch : float;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
  mutable last_ts : float;
  mutable hook : (view -> unit) option;
}

let create () =
  {
    lock = Mutex.create ();
    epoch = Unix.gettimeofday ();
    events = [];
    n_events = 0;
    last_ts = 0.0;
    hook = None;
  }

let on_event t f = t.hook <- Some f

let phase_string = function B -> "B" | E -> "E" | I -> "i" | C -> "C"

let emit t ph name args =
  let tid = (Domain.self () :> int) in
  Mutex.lock t.lock;
  (* Wall clocks may step backwards (NTP); clamping under the lock keeps
     the exported stream monotonic, which trace viewers require. *)
  let ts = (Unix.gettimeofday () -. t.epoch) *. 1e6 in
  let ts = if ts < t.last_ts then t.last_ts else ts in
  t.last_ts <- ts;
  t.events <-
    { ev_ph = ph; ev_name = name; ev_ts = ts; ev_tid = tid; ev_args = args }
    :: t.events;
  t.n_events <- t.n_events + 1;
  (* The hook runs under the sink lock so subscribers observe events in
     exactly the emission order (concurrent domains included); it must
     not call back into the sink. *)
  (match t.hook with
  | Some f -> (
      try f { v_phase = phase_string ph; v_name = name; v_ts = ts; v_tid = tid; v_args = args }
      with _ -> ())
  | None -> ());
  Mutex.unlock t.lock

let span t ?(args = []) name f =
  match t with
  | None -> f ()
  | Some t ->
      emit t B name args;
      Fun.protect ~finally:(fun () -> emit t E name []) f

let instant t ?(args = []) name =
  match t with None -> () | Some t -> emit t I name args

let counter t name values =
  match t with
  | None -> ()
  | Some t -> emit t C name (List.map (fun (k, v) -> (k, Num v)) values)

let n_events t = t.n_events

(* --- Chrome trace_event export --- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_event b ev =
  let ph =
    match ev.ev_ph with B -> "B" | E -> "E" | I -> "i" | C -> "C"
  in
  Buffer.add_string b "{\"name\":\"";
  add_escaped b ev.ev_name;
  Buffer.add_string b
    (Printf.sprintf "\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d" ph ev.ev_ts
       ev.ev_tid);
  (match ev.ev_ph with I -> Buffer.add_string b ",\"s\":\"t\"" | B | E | C -> ());
  if ev.ev_args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b "\":";
        match v with
        | Num n -> Buffer.add_string b (string_of_int n)
        | Str s ->
            Buffer.add_char b '"';
            add_escaped b s;
            Buffer.add_char b '"')
      ev.ev_args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

let to_json t =
  Mutex.lock t.lock;
  let events = List.rev t.events in
  Mutex.unlock t.lock;
  let b = Buffer.create (4096 + (128 * List.length events)) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n" else Buffer.add_char b '\n';
      add_event b ev)
    events;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_json t))

(* --- per-run metrics --- *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let incr = Atomic.incr
  let add c n = ignore (Atomic.fetch_and_add c n)
  let get = Atomic.get
end

module Metrics = struct
  type t = { mlock : Mutex.t; table : (string, Counter.t) Hashtbl.t }

  let create () = { mlock = Mutex.create (); table = Hashtbl.create 16 }

  let counter m name =
    Mutex.lock m.mlock;
    let c =
      match Hashtbl.find_opt m.table name with
      | Some c -> c
      | None ->
          let c = Counter.make () in
          Hashtbl.add m.table name c;
          c
    in
    Mutex.unlock m.mlock;
    c

  let get m name =
    Mutex.lock m.mlock;
    let v =
      match Hashtbl.find_opt m.table name with
      | Some c -> Counter.get c
      | None -> 0
    in
    Mutex.unlock m.mlock;
    v

  let to_alist m =
    Mutex.lock m.mlock;
    let all = Hashtbl.fold (fun k c acc -> (k, Counter.get c) :: acc) m.table [] in
    Mutex.unlock m.mlock;
    List.sort compare all
end
