lib/util/vec.mli:
