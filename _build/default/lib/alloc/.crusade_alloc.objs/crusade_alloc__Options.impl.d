lib/alloc/options.ml: Arch Array Connect Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util List
