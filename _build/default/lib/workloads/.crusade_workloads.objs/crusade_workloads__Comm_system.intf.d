lib/workloads/comm_system.mli: Crusade_resource Crusade_taskgraph
