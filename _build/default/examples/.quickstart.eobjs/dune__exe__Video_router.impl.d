examples/video_router.ml: Array Crusade Crusade_resource Crusade_taskgraph Crusade_workloads Format Sys
