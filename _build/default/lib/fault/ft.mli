(** CRUSADE-FT: co-synthesis of fault-tolerant architectures (Section 6).

    The basic CRUSADE flow runs on the fault-detection-augmented
    specification ({!Transform}); dependability analysis then provisions
    standby spares until every task graph's availability requirement is
    met ({!Dependability}). *)

type result = {
  core : Crusade.Crusade_core.result;  (** synthesis of the augmented spec *)
  transform_stats : Transform.stats;
  provisioning : Dependability.provisioning;
  total_cost : float;  (** architecture + spares *)
  n_pes_with_spares : int;
}

val synthesize :
  ?options:Crusade.Crusade_core.options ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  (result, string) Stdlib.result
(** Runs fault-detection transformation, CRUSADE co-synthesis (with or
    without dynamic reconfiguration per [options]) and spare
    provisioning. *)
