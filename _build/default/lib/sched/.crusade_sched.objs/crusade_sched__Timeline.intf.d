lib/sched/timeline.mli:
