(** Directed communication edges between tasks.

    An edge carries the number of information bytes transferred; its
    communication vector (time per link type) is computed from the link
    characteristics — a priori with an average port count, and recomputed
    after each allocation with the actual port count (Section 2.2). *)

type t = {
  id : int;  (** global edge id, unique across the specification *)
  src : int;  (** global task id of the producer *)
  dst : int;  (** global task id of the consumer *)
  bytes : int;
}

val comm_vector : t -> access:(link_type:int -> ports:int -> bytes:int -> int) ->
  n_link_types:int -> int array
(** A-priori communication vector using the library's average port count;
    [access] is typically [Resource.Link.comm_time] partially applied. *)
