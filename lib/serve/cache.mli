(** Content-addressed result cache.

    A key is the digest of the {e canonical} spec text ([Dsl.print] of
    the parsed specification, so upload formatting is irrelevant)
    together with the canonical option string; the value is the result
    payload, stored verbatim.  Because {!Crusade.Crusade_core.result_json}
    is deterministic for a (spec, options) pair, a cached payload is
    byte-identical to what a fresh synthesis would produce — serving it
    is indistinguishable from running the job, minus the latency. *)

type t

val create : unit -> t

val key : spec_canonical:string -> options_canonical:string -> string
(** Hex digest addressing one (spec, options) equivalence class. *)

val find : t -> string -> string option
(** Lookup; bumps the hit or miss counter. *)

val add : t -> string -> string -> unit
(** [add t key payload] stores the payload (last write wins). *)

val stats : t -> int * int * int
(** [(hits, misses, entries)]. *)
