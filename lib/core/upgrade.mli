(** Field-upgrade analysis (Section 3, motivation 2).

    Embedded systems ship with an initial feature set; later feature
    releases should, ideally, be delivered by reprogramming the FPGAs and
    CPLDs already in the field rather than by replacing hardware.  This
    module answers the question for a concrete upgrade: synthesize the
    base architecture from the initially released task graphs, then try
    to accommodate the upgrade graphs

    - first by reprogramming alone (new configuration modes on the
      deployed devices, spare CPU/ASIC capacity, no new parts),
    - and failing that, with new hardware, reporting the added cost. *)

type verdict =
  | Reprogramming_only of {
      result : Crusade_core.result;  (** the upgraded system *)
      added_images : int;  (** new configuration images shipped *)
    }
      (** the upgrade deploys as a pure software/bitstream update *)
  | Needs_hardware of {
      result : Crusade_core.result;
      added_pes : int;
      added_cost : float;  (** dollars over the base architecture *)
    }
  | Infeasible of string

type report = {
  base : Crusade_core.result;
  verdict : verdict;
  reprogram_attempt : Crusade_core.Resynth.attempt_outcome;
      (** outcome of the reprogramming-only attempt, even when the
          verdict fell through to new hardware — an [Infeasible] verdict
          explains why each attempt failed *)
  hardware_attempt : Crusade_core.Resynth.attempt_outcome option;
      (** [None] when reprogramming sufficed (no second attempt ran) *)
  resynth : Crusade_core.Resynth.report;
      (** the underlying warm re-synthesis report (cost delta, PE diff,
          latency) *)
}

val analyze :
  ?options:Crusade_core.options ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  upgrade_graphs:int list ->
  (report, string) result
(** [analyze spec lib ~upgrade_graphs] treats the listed graph ids as the
    future feature release and the rest as the initial product.
    Implemented as {!Crusade_core.Resynth.apply} with an [Upgrade]
    change event over the base synthesis. *)

val audit : report -> Crusade_alloc.Audit.violation list
(** First-principles audit of both the base and (when one exists) the
    upgraded architecture, with the coverage rule restricted to the
    graphs each is supposed to place.  Empty when sound. *)
