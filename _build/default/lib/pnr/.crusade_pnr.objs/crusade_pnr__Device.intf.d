lib/pnr/device.mli:
