(** Processing-element (PE) types of the resource library.

    A PE type is one of:
    - a general-purpose processor (software tasks; characterized by memory
      hierarchy, communication-port support and OS overheads),
    - an ASIC (fixed-function hardware; gates and pins),
    - a programmable PE (PPE: FPGA or CPLD; PFUs, pins, boot memory and a
      configuration bitstream that can be reloaded at run time).

    Times are in microseconds, costs in dollars.  [speed_factor] is the
    relative execution speed used by workload generators when deriving
    per-type execution-time vectors (1.0 = baseline 68360-class). *)

type cpu_info = {
  memory_bank_bytes : int;  (** capacity of one DRAM bank *)
  max_memory_banks : int;  (** the paper evaluates up to 4 banks / 64 MB *)
  memory_bank_cost : float;  (** dollars per populated bank *)
  context_switch_us : int;
  preemption_overhead_us : int;  (** interrupt + context switch + RPC *)
  has_communication_processor : bool;
      (** when true, communication and computation proceed concurrently *)
  speed_factor : float;
}

type asic_info = { gates : int; pins : int }

type prog_kind = Fpga | Cpld

type ppe_info = {
  kind : prog_kind;
  pfus : int;  (** programmable functional units (CLBs / macrocells) *)
  pins : int;
  boot_memory_bytes : int;  (** PROM bytes for one full configuration *)
  config_bits : int;  (** bits to (re)program the whole device *)
  partially_reconfigurable : bool;
      (** AT6000 / XC6200-class devices reprogram only the used PFUs *)
  speed_factor : float;
}

type pe_class =
  | General_purpose of cpu_info
  | Asic_pe of asic_info
  | Programmable of ppe_info

type t = { id : int; name : string; cost : float; pe_class : pe_class }

val is_programmable : t -> bool
val is_cpu : t -> bool
val is_asic : t -> bool

val pfus : t -> int
(** PFU capacity of a PPE; 0 for non-programmable PEs. *)

val pins : t -> int
(** Pin count of a hardware PE; 0 for general-purpose processors (their
    I/O goes through communication ports handled by the link model). *)

val ppe_info : t -> ppe_info option

val pp : Format.formatter -> t -> unit
