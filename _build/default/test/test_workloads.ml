module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Graph = Crusade_taskgraph.Graph
module W = Crusade_workloads.Comm_system
module Ex = Crusade_workloads.Examples

let check = Alcotest.check
let lib = Helpers.stock_lib

let small_params = W.scaled (W.preset "A1TR") 16.0

let generator_deterministic () =
  let a = W.generate lib small_params and b = W.generate lib small_params in
  check Alcotest.int "same tasks" (Spec.n_tasks a) (Spec.n_tasks b);
  check Alcotest.int "same edges" (Spec.n_edges a) (Spec.n_edges b);
  Array.iteri
    (fun i (t : Task.t) ->
      check Alcotest.string "same names" t.name (Spec.task b i).Task.name)
    a.Spec.tasks

let generator_exact_task_count () =
  let spec = W.generate lib small_params in
  check Alcotest.int "task count honoured" small_params.W.n_tasks (Spec.n_tasks spec)

let generator_presets_exist () =
  check
    Alcotest.(list string)
    "paper order"
    [ "A1TR"; "VDRTX"; "HROST"; "EST189A"; "HRXC"; "ADMR"; "B192G"; "NGXM" ]
    W.preset_names;
  List.iter
    (fun name -> ignore (W.preset name))
    W.preset_names

let generator_preset_sizes () =
  check Alcotest.int "A1TR" 1126 (W.preset "A1TR").W.n_tasks;
  check Alcotest.int "NGXM" 7416 (W.preset "NGXM").W.n_tasks

let generator_periods_harmonic () =
  let spec = W.generate lib small_params in
  Array.iter
    (fun (g : Graph.t) ->
      check Alcotest.bool "period in family" true
        (List.mem g.period [ 8_000; 16_000; 32_000; 64_000 ]))
    spec.Spec.graphs;
  check Alcotest.bool "hyperperiod bounded" true (Spec.hyperperiod spec <= 64_000)

let generator_hw_graphs_sloted () =
  let spec = W.generate lib small_params in
  let hw (g : Graph.t) = String.length g.name > 4 && String.sub g.name 5 2 = "hw" in
  Array.iter
    (fun (g : Graph.t) ->
      if hw g then begin
        (* hw windows are slot-aligned: est multiple of deadline *)
        check Alcotest.int "slot width" 0 (g.est mod g.deadline);
        check Alcotest.bool "slot fits period" true (g.est + g.deadline <= g.period)
      end)
    spec.Spec.graphs

let generator_same_family_slots_compatible () =
  let spec = W.generate lib small_params in
  (* find two hw graphs with same period and different slots *)
  let hw =
    Array.to_list spec.Spec.graphs
    |> List.filter (fun (g : Graph.t) ->
           String.length g.name > 6 && String.sub g.name 5 2 = "hw")
  in
  let found = ref false in
  List.iter
    (fun (a : Graph.t) ->
      List.iter
        (fun (b : Graph.t) ->
          if a.id < b.id && a.period = b.period && a.est <> b.est then begin
            found := true;
            check Alcotest.bool
              (Printf.sprintf "%s compatible with %s" a.name b.name)
              true
              (Spec.static_compatible spec a.id b.id)
          end)
        hw)
    hw;
  check Alcotest.bool "at least one pair checked" true !found

let generator_hw_tasks_have_area () =
  let spec = W.generate lib small_params in
  Array.iter
    (fun (t : Task.t) ->
      let g = Spec.graph_of_task spec t in
      if String.sub g.Graph.name 5 2 = "hw" then begin
        check Alcotest.bool "gates > 0" true (t.gates > 0);
        check Alcotest.bool "no cpu mapping" true
          (not (Task.can_run_on t 0))
      end
      else check Alcotest.bool "sw has memory" true (Task.total_bytes t.memory > 0))
    spec.Spec.tasks

let generator_ft_annotations () =
  let spec = W.generate lib small_params in
  let with_assert =
    Array.to_list spec.Spec.tasks
    |> List.filter (fun (t : Task.t) -> t.ft.Task.assertions <> [])
  in
  let share = float_of_int (List.length with_assert) /. float_of_int (Spec.n_tasks spec) in
  check Alcotest.bool "roughly 65% have assertions" true (share > 0.4 && share < 0.9);
  Array.iter
    (fun (g : Graph.t) ->
      check Alcotest.bool "availability budget set" true
        (g.unavailability_budget <> None))
    spec.Spec.graphs

let generator_scaled () =
  let p = W.scaled (W.preset "NGXM") 8.0 in
  check Alcotest.int "scaled size" 927 p.W.n_tasks

let figure2_shape () =
  let spec = Ex.figure2 Helpers.small_lib in
  check Alcotest.int "3 graphs" 3 (Spec.n_graphs spec);
  check Alcotest.int "3 tasks" 3 (Spec.n_tasks spec);
  (* pairwise compatible: the point of the figure *)
  check Alcotest.bool "T1/T2" true (Spec.static_compatible spec 0 1);
  check Alcotest.bool "T2/T3" true (Spec.static_compatible spec 1 2);
  check Alcotest.bool "T1/T3" true (Spec.static_compatible spec 0 2)

let figure4_shape () =
  let spec = Ex.figure4 Helpers.small_lib in
  check Alcotest.int "4 graphs" 4 (Spec.n_graphs spec);
  (* C1 (graph 1) overlaps C3 (graph 3), C2 (graph 2) compatible with both *)
  check Alcotest.bool "C1/C2 compatible" true (Spec.static_compatible spec 1 2);
  check Alcotest.bool "C1/C3 overlap" false (Spec.static_compatible spec 1 3);
  check Alcotest.bool "C2/C3 compatible" true (Spec.static_compatible spec 2 3)

let multirate_shape () =
  let spec = Ex.multirate lib in
  check Alcotest.bool "rate spread 25us..60s" true
    (Array.exists (fun (g : Graph.t) -> g.period = 25) spec.Spec.graphs
    && Array.exists (fun (g : Graph.t) -> g.period = 60_000_000) spec.Spec.graphs);
  (* the association array must be forced to extrapolate *)
  check Alcotest.bool "copies exceed any explicit cap" true
    (Spec.copies spec spec.Spec.graphs.(0) > 1000)

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick generator_deterministic;
    Alcotest.test_case "exact task count" `Quick generator_exact_task_count;
    Alcotest.test_case "presets exist" `Quick generator_presets_exist;
    Alcotest.test_case "preset sizes" `Quick generator_preset_sizes;
    Alcotest.test_case "harmonic periods" `Quick generator_periods_harmonic;
    Alcotest.test_case "hw graphs slotted" `Quick generator_hw_graphs_sloted;
    Alcotest.test_case "family slots compatible" `Quick generator_same_family_slots_compatible;
    Alcotest.test_case "hw tasks have area" `Quick generator_hw_tasks_have_area;
    Alcotest.test_case "ft annotations" `Quick generator_ft_annotations;
    Alcotest.test_case "scaled" `Quick generator_scaled;
    Alcotest.test_case "figure2 shape" `Quick figure2_shape;
    Alcotest.test_case "figure4 shape" `Quick figure4_shape;
    Alcotest.test_case "multirate shape" `Quick multirate_shape;
  ]
