type verdict =
  | Reprogramming_only of { result : Crusade_core.result; added_images : int }
  | Needs_hardware of {
      result : Crusade_core.result;
      added_pes : int;
      added_cost : float;
    }
  | Infeasible of string

type report = { base : Crusade_core.result; verdict : verdict }

let analyze ?(options = Crusade_core.default_options) spec lib ~upgrade_graphs =
  let is_upgrade g = List.mem g upgrade_graphs in
  match
    Crusade_core.synthesize ~options ~include_graph:(fun g -> not (is_upgrade g)) spec
      lib
  with
  | Error msg -> Error msg
  | Ok base ->
      let reprogram_options = { options with Crusade_core.allow_new_pes = false } in
      let verdict =
        match Crusade_core.continue_allocation ~options:reprogram_options base with
        | Ok upgraded when upgraded.Crusade_core.deadlines_met ->
            Reprogramming_only
              {
                result = upgraded;
                added_images =
                  upgraded.Crusade_core.n_modes - base.Crusade_core.n_modes;
              }
        | Ok _ | Error _ -> (
            (* The deployed hardware cannot absorb the upgrade: allow new
               parts and price the difference. *)
            match Crusade_core.continue_allocation ~options base with
            | Ok upgraded when upgraded.Crusade_core.deadlines_met ->
                Needs_hardware
                  {
                    result = upgraded;
                    added_pes = upgraded.Crusade_core.n_pes - base.Crusade_core.n_pes;
                    added_cost = upgraded.Crusade_core.cost -. base.Crusade_core.cost;
                  }
            | Ok r ->
                Infeasible
                  (Printf.sprintf "deadlines missed by %d us even with new hardware"
                     r.Crusade_core.schedule.Crusade_sched.Schedule.total_tardiness)
            | Error msg -> Infeasible msg)
      in
      Ok { base; verdict }
