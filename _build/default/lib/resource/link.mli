(** Link types of the resource library: point-to-point, bus or LAN.

    A link is characterized by the maximum number of ports it supports, an
    access-time vector (access time as a function of the number of ports
    currently on the link), the number of information bytes per packet and
    the packet transmission time (Section 2.2). *)

type topology = Point_to_point | Bus | Lan

type t = {
  id : int;
  name : string;
  cost : float;  (** dollars per link instance (transceivers, wiring) *)
  port_cost : float;  (** incremental dollars per connected port *)
  topology : topology;
  max_ports : int;
  access_times : int array;
      (** [access_times.(p-2)] = access time (us) with [p] ports,
          [2 <= p <= max_ports] *)
  bytes_per_packet : int;
  packet_time_us : int;
}

val access_time : t -> ports:int -> int
(** Access time for the given population; clamps to the vector bounds. *)

val comm_time : t -> ports:int -> bytes:int -> int
(** Communication time of a message: access time plus
    [ceil (bytes / bytes_per_packet)] packet transmissions.
    Zero-byte messages cost zero. *)

val average_ports : int
(** Port count assumed before the architecture is known, used to compute
    the a-priori communication vectors (Section 2.2). *)

val pp : Format.formatter -> t -> unit
