lib/taskgraph/dsl.mli: Spec
