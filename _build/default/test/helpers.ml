(* Shared builders for the test suites: small specs over the small
   resource library (PE types: 0 cpu-a, 1 cpu-b, 2 asic-s, 3 fpga-f1,
   4 fpga-f2). *)

module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe

let small_lib = Library.small ()
let stock_lib = Library.stock ()

let exec_where lib ~eligible ~time =
  Array.init (Library.n_pe_types lib) (fun p ->
      if eligible (Library.pe lib p) then time else -1)

let cpu_exec ?(lib = small_lib) time = exec_where lib ~eligible:Pe.is_cpu ~time

let fpga_exec ?(lib = small_lib) time =
  exec_where lib ~time ~eligible:(fun pe ->
      match pe.Pe.pe_class with
      | Pe.Programmable { kind = Pe.Fpga; _ } -> true
      | Pe.Programmable { kind = Pe.Cpld; _ } | Pe.General_purpose _ | Pe.Asic_pe _ ->
          false)

let hw_exec ?(lib = small_lib) time =
  exec_where lib ~time ~eligible:(fun pe -> not (Pe.is_cpu pe))

(* A single-graph chain of [n] software tasks. *)
let sw_chain ?(lib = small_lib) ?(period = 10_000) ?(deadline = 8_000) ?(exec = 500) n =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"chain" ~period ~deadline () in
  let ids =
    List.init n (fun i ->
        Spec.Builder.add_task b ~graph:g
          ~name:(Printf.sprintf "t%d" i)
          ~exec:(cpu_exec ~lib exec) ())
  in
  let rec link = function
    | a :: (b' :: _ as rest) ->
        Spec.Builder.add_edge b ~src:a ~dst:b' ~bytes:64;
        link rest
    | [ _ ] | [] -> ()
  in
  link ids;
  (Spec.Builder.finish_exn b ~name:"sw-chain" (), ids)

(* Two single-task FPGA graphs; [overlap] controls whether their
   arrival-to-deadline envelopes intersect. *)
let two_hw_graphs ?(lib = small_lib) ~overlap () =
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"g1" ~period:20_000 ~est:0 ~deadline:5_000 () in
  let est2 = if overlap then 2_000 else 10_000 in
  let g2 =
    Spec.Builder.add_graph b ~name:"g2" ~period:20_000 ~est:est2 ~deadline:5_000 ()
  in
  let t1 =
    Spec.Builder.add_task b ~graph:g1 ~name:"t1" ~exec:(fpga_exec ~lib 3_000) ~gates:80
      ~pins:8 ()
  in
  let t2 =
    Spec.Builder.add_task b ~graph:g2 ~name:"t2" ~exec:(fpga_exec ~lib 3_000) ~gates:80
      ~pins:8 ()
  in
  (Spec.Builder.finish_exn b ~name:"two-hw" (), t1, t2)

let synthesize ?(lib = small_lib) ?(reconfig = true) spec =
  let options =
    { Crusade.Crusade_core.default_options with dynamic_reconfiguration = reconfig }
  in
  match Crusade.Crusade_core.synthesize ~options spec lib with
  | Ok r -> r
  | Error msg -> Alcotest.failf "synthesis failed: %s" msg
