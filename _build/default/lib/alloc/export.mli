(** Architecture export: Graphviz DOT and a plain-text inventory.

    The DOT graph draws PEs as boxes (programmable PEs list their
    configuration modes and resident clusters) connected through their
    shared links, which is the usual way the co-synthesis literature
    draws derived architectures (cf. the paper's Fig. 4). *)

val to_dot :
  ?title:string ->
  Crusade_cluster.Clustering.t ->
  t_arch:Arch.t ->
  string
(** Graphviz source for the architecture. *)

val inventory : Arch.t -> string
(** Multi-line text inventory: one line per used PE (type, modes,
    utilization) and per link (type, ports). *)
