(* Field-upgrade analysis (Section 3, motivation 2).

   A deployed line card (framer + policer on FPGAs, a software monitor)
   receives a feature release: an encryption offload and an extra traffic
   class.  Because the new functions occupy time slots the deployed
   devices leave idle, CRUSADE can deliver the upgrade as configuration
   images alone — no hardware change, no product recall.

     dune exec examples/field_upgrade.exe *)

module C = Crusade.Crusade_core
module U = Crusade.Upgrade

let () =
  let lib = Crusade_resource.Library.small () in
  let spec, upgrade_graphs = Crusade_workloads.Examples.upgrade_scenario lib in
  Format.printf "Initial release: graphs %s; feature release: graphs %s@.@."
    (String.concat ", "
       (Array.to_list spec.Crusade_taskgraph.Spec.graphs
       |> List.filter_map (fun (g : Crusade_taskgraph.Graph.t) ->
              if List.mem g.id upgrade_graphs then None else Some g.name)))
    (String.concat ", "
       (List.map
          (fun g -> spec.Crusade_taskgraph.Spec.graphs.(g).Crusade_taskgraph.Graph.name)
          upgrade_graphs));
  match U.analyze spec lib ~upgrade_graphs with
  | Error msg ->
      Format.printf "analysis failed: %s@." msg;
      exit 1
  | Ok { base; verdict; _ } -> (
      Format.printf "--- deployed architecture ---@.%a@.@." C.pp_report base;
      match verdict with
      | U.Reprogramming_only { result; added_images } ->
          Format.printf "--- after the feature release ---@.%a@.@." C.pp_report result;
          Format.printf
            "VERDICT: upgrade ships as %d new configuration image(s) — pure@."
            added_images;
          Format.printf "reprogramming, no hardware change.@."
      | U.Needs_hardware { result; added_pes; added_cost } ->
          Format.printf "--- after the feature release ---@.%a@.@." C.pp_report result;
          Format.printf "VERDICT: upgrade needs %d new PE(s), +$%.0f.@." added_pes
            added_cost
      | U.Infeasible msg -> Format.printf "VERDICT: upgrade infeasible (%s).@." msg)
