(** Tasks: the atomic units of embedded-system functionality.

    A task carries the four characterization vectors of Section 2.2:
    execution-time vector (per PE type), preference vector, exclusion
    vector and memory vector — plus the hardware area (gates / PFUs and
    pins) it occupies when mapped to an ASIC or a programmable device, and
    the optional fault-tolerance annotations used by CRUSADE-FT. *)

type memory = { program_bytes : int; data_bytes : int; stack_bytes : int }

val no_memory : memory
val total_bytes : memory -> int

type assertion_spec = {
  assertion_name : string;
  coverage : float;  (** fault coverage achieved by this assertion, in [0,1] *)
  check_exec : int array;  (** execution-time vector of the check task *)
  check_bytes : int;  (** bytes on the checked-task -> check-task edge *)
}
(** An available assertion check for a task (parity, checksum, address
    range, ...).  When a single assertion's coverage is insufficient, a
    group of assertions is applied together (Section 6). *)

type ft_info = {
  assertions : assertion_spec list;
      (** available assertions; empty means the task must be protected by
          duplicate-and-compare *)
  error_transparent : bool;
      (** the task propagates input errors to its outputs, allowing a
          downstream assertion to cover it *)
  required_coverage : float;  (** fault coverage demanded for this task *)
}

val default_ft : ft_info

type t = {
  id : int;  (** global id, unique across the whole specification *)
  name : string;
  graph : int;  (** owning task-graph id *)
  exec : int array;
      (** [exec.(p)] = worst-case execution time (us) on PE type [p];
          [-1] marks an infeasible mapping *)
  preference : int array option;
      (** optional 0/1 vector over PE types; [0] forbids the mapping
          even when [exec] would allow it *)
  exclusion : int list;  (** global task ids that may not share a PE *)
  memory : memory;
  gates : int;  (** area (gates or PFUs) when implemented in hardware *)
  pins : int;  (** device pins consumed when implemented in hardware *)
  deadline : int option;
      (** deadline (us, relative to the copy's arrival); typically set on
          sink tasks *)
  ft : ft_info;
}

val exec_on : t -> int -> int option
(** [exec_on task pe_type] is the execution time on that PE type, [None]
    when infeasible or forbidden by the preference vector. *)

val exec_us_on : t -> int -> int
(** Allocation-free {!exec_on}: [-1] when infeasible or forbidden.  For
    the scheduler's per-candidate hot paths, where the option box was
    measurable garbage. *)

val can_run_on : t -> int -> bool

val max_exec : t -> int
(** Worst feasible execution time across PE types (used for priority
    levels before allocation).  @raise Failure if the task can run
    nowhere. *)

val min_exec : t -> int
(** Best feasible execution time across PE types. *)

val excludes : t -> t -> bool
(** Whether the two tasks appear in each other's exclusion vectors. *)
