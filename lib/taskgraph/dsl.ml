(* Line-oriented parser: tokenize each line, dispatch on the first word,
   carry mutable builder state. *)

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected an integer, got %S" s)

let float_of line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected a number, got %S" s)

let exec_of line s =
  String.split_on_char ',' s |> List.map (int_of line) |> Array.of_list

(* Consume "key value ..." option pairs from a token list. *)
type task_options = {
  mutable exec : int array option;
  mutable preference : int array option;
  mutable memory : Task.memory;
  mutable gates : int;
  mutable pins : int;
  mutable deadline : int option;
  mutable exclude : string list;
}

let parse_task_options line rest =
  let o =
    {
      exec = None;
      preference = None;
      memory = Task.no_memory;
      gates = 0;
      pins = 0;
      deadline = None;
      exclude = [];
    }
  in
  let rec go = function
    | [] -> o
    | "exec" :: v :: rest ->
        o.exec <- Some (exec_of line v);
        go rest
    | "pref" :: v :: rest ->
        o.preference <- Some (exec_of line v);
        go rest
    | "mem" :: p :: d :: s :: rest ->
        o.memory <-
          {
            Task.program_bytes = int_of line p;
            data_bytes = int_of line d;
            stack_bytes = int_of line s;
          };
        go rest
    | "gates" :: v :: rest ->
        o.gates <- int_of line v;
        go rest
    | "pins" :: v :: rest ->
        o.pins <- int_of line v;
        go rest
    | "deadline" :: v :: rest ->
        o.deadline <- Some (int_of line v);
        go rest
    | "exclude" :: v :: rest ->
        o.exclude <- String.split_on_char ',' v;
        go rest
    | key :: _ -> fail line (Printf.sprintf "unknown task option %S" key)
  in
  go rest

type graph_header = {
  g_period : int;
  g_est : int;
  g_deadline : int;
  g_unavail : float option;
  g_compat : string list;
}

let parse_graph_header line rest =
  let period = ref None
  and est = ref 0
  and deadline = ref None
  and unavail = ref None
  and compat = ref [] in
  let rec go = function
    | [] -> ()
    | "period" :: v :: rest ->
        period := Some (int_of line v);
        go rest
    | "est" :: v :: rest ->
        est := int_of line v;
        go rest
    | "deadline" :: v :: rest ->
        deadline := Some (int_of line v);
        go rest
    | "unavail" :: v :: rest ->
        unavail := Some (float_of line v);
        go rest
    | "compat" :: rest ->
        (* the remaining tokens are graph names *)
        compat := rest
    | key :: _ -> fail line (Printf.sprintf "unknown graph option %S" key)
  in
  go rest;
  match (!period, !deadline) with
  | Some p, Some d ->
      { g_period = p; g_est = !est; g_deadline = d; g_unavail = !unavail; g_compat = !compat }
  | None, _ -> fail line "graph needs a period"
  | _, None -> fail line "graph needs a deadline"

let parse text =
  let builder = Spec.Builder.create () in
  let spec_name = ref "spec" in
  let boot = ref None in
  let graph_ids = Hashtbl.create 8 in
  (* task name -> global id (task names must be unique spec-wide to keep
     exclusion references unambiguous) *)
  let task_ids = Hashtbl.create 64 in
  let current_graph = ref None in
  (* exclusions may reference tasks declared later: resolve at the end via
     a patch list is impossible with the immutable builder, so forward
     references are rejected instead. *)
  let handle line_no line =
    match tokens line with
    | [] -> ()
    | hd :: _ when String.length hd > 0 && hd.[0] = '#' -> ()
    | [ "spec"; name ] -> spec_name := name
    | [ "boot_requirement"; v ] -> boot := Some (int_of line_no v)
    | "graph" :: name :: rest ->
        let h = parse_graph_header line_no rest in
        let compat_with =
          List.map
            (fun g ->
              match Hashtbl.find_opt graph_ids g with
              | Some id -> id
              | None -> fail line_no (Printf.sprintf "unknown graph %S in compat" g))
            h.g_compat
        in
        let gid =
          Spec.Builder.add_graph builder ~name ~period:h.g_period ~est:h.g_est
            ~deadline:h.g_deadline ~compat_with
            ?unavailability_budget:h.g_unavail ()
        in
        Hashtbl.replace graph_ids name gid;
        current_graph := Some gid
    | "task" :: name :: rest -> (
        match !current_graph with
        | None -> fail line_no "task outside a graph"
        | Some gid ->
            if Hashtbl.mem task_ids name then
              fail line_no (Printf.sprintf "duplicate task name %S" name);
            let o = parse_task_options line_no rest in
            let exec =
              match o.exec with
              | Some e -> e
              | None -> fail line_no "task needs an exec vector"
            in
            let exclusion =
              List.map
                (fun t ->
                  match Hashtbl.find_opt task_ids t with
                  | Some id -> id
                  | None ->
                      fail line_no
                        (Printf.sprintf "unknown task %S in exclude (forward \
                                         references are not supported)" t))
                o.exclude
            in
            let id =
              Spec.Builder.add_task builder ~graph:gid ~name ~exec
                ?preference:o.preference ~exclusion ~memory:o.memory ~gates:o.gates
                ~pins:o.pins ?deadline:o.deadline ()
            in
            Hashtbl.replace task_ids name id)
    | [ "edge"; src; dst; bytes ] -> (
        match (Hashtbl.find_opt task_ids src, Hashtbl.find_opt task_ids dst) with
        | Some s, Some d ->
            Spec.Builder.add_edge builder ~src:s ~dst:d ~bytes:(int_of line_no bytes)
        | None, _ -> fail line_no (Printf.sprintf "unknown task %S" src)
        | _, None -> fail line_no (Printf.sprintf "unknown task %S" dst))
    | hd :: _ -> fail line_no (Printf.sprintf "unknown directive %S" hd)
  in
  match
    String.split_on_char '\n' text
    |> List.iteri (fun i line -> handle (i + 1) (String.trim line))
  with
  | () ->
      Spec.Builder.finish builder ~name:!spec_name ?boot_time_requirement:!boot ()
  | exception Parse_error (line, msg) ->
      Error (Printf.sprintf "line %d: %s" line msg)
  | exception Invalid_argument msg -> Error msg

let print (spec : Spec.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "spec %s\n" spec.name;
  out "boot_requirement %d\n" spec.boot_time_requirement;
  let task_name id = (Spec.task spec id).Task.name in
  Array.iter
    (fun (g : Graph.t) ->
      out "\ngraph %s period %d est %d deadline %d" g.name g.period g.est g.deadline;
      (match g.unavailability_budget with
      | Some u -> out " unavail %g" u
      | None -> ());
      (match g.compat with
      | Some vector ->
          let names =
            List.filteri (fun j _ -> j < g.id && vector.(j)) (Array.to_list spec.graphs)
            |> List.map (fun (h : Graph.t) -> h.name)
          in
          if names <> [] then out " compat %s" (String.concat " " names)
      | None -> ());
      out "\n";
      Array.iter
        (fun (task : Task.t) ->
          out "  task %s exec %s" task.name
            (String.concat "," (List.map string_of_int (Array.to_list task.exec)));
          (match task.preference with
          | Some pref ->
              out " pref %s"
                (String.concat "," (List.map string_of_int (Array.to_list pref)))
          | None -> ());
          if Task.total_bytes task.memory > 0 then
            out " mem %d %d %d" task.memory.Task.program_bytes
              task.memory.Task.data_bytes task.memory.Task.stack_bytes;
          if task.gates > 0 then out " gates %d" task.gates;
          if task.pins > 0 then out " pins %d" task.pins;
          (match task.deadline with Some d -> out " deadline %d" d | None -> ());
          (* [Spec.build] symmetrizes exclusion, but the parser only
             resolves backward references; print each pair once, at its
             later member, and rebuilding restores the other half. *)
          let backward = List.filter (fun x -> x < task.id) task.exclusion in
          if backward <> [] then
            out " exclude %s" (String.concat "," (List.map task_name backward));
          out "\n")
        g.tasks;
      Array.iter
        (fun (e : Edge.t) ->
          out "  edge %s %s %d\n" (task_name e.src) (task_name e.dst) e.bytes)
        g.edges)
    spec.graphs;
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let save path spec =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (print spec))
