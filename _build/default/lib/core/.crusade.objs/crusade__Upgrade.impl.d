lib/core/upgrade.ml: Crusade_core Crusade_sched List Printf
