lib/sched/validate.ml: Array Crusade_alloc Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util Format Hashtbl List Option Printf Schedule
