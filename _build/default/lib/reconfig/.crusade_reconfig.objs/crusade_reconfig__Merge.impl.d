lib/reconfig/merge.ml: Array Compat Crusade_alloc Crusade_cluster Crusade_resource Crusade_sched Crusade_taskgraph Crusade_util List Result
