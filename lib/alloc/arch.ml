module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Library = Crusade_resource.Library
module Caps = Crusade_resource.Caps
module Clustering = Crusade_cluster.Clustering
module Vec = Crusade_util.Vec

type mode = {
  m_id : int;
  mutable m_clusters : int list;
  mutable m_gates : int;
  mutable m_pins : int;
}

type pe_inst = {
  p_id : int;
  ptype : Pe.t;
  modes : mode Vec.t;
  mutable used_memory : int;
  mutable boot_full_us : int;
  mutable p_failed : bool;
      (* A failed PE keeps its [p_id] (sites index into the vector) but
         accepts no placements; re-synthesis vacates it, after which it
         contributes nothing to cost or counts ([pe_in_use] is false). *)
}

type link_inst = {
  l_id : int;
  ltype : Link.t;
  mutable attached : int list;
}

type site = { s_pe : int; s_mode : int }

type levels_cache = {
  lc_spec : Crusade_taskgraph.Spec.t;
  lc_clustering : Clustering.t;
  lc_levels : int array;
}

type t = {
  lib : Library.t;
  pes : pe_inst Vec.t;
  links : link_inst Vec.t;
  sites : (int, site) Hashtbl.t;
  mutable interface_cost : float option;
  links_cache : (int, link_inst list) Hashtbl.t;
  mutable links_cache_full : bool;
      (* [links_cache] holds *every* connected pair (populated in one
         pass over the links); a missing key then means "no link", with
         no per-pair filtering fallback. *)
  mutable levels_cache : levels_cache option;
  (* Undo journal (trial architectures without deep copies): while at
     least one checkpoint is open, every mutating operation pushes a
     thunk that restores the pre-operation state; [rollback] pops and
     runs them back to the checkpoint.  [conn_epoch] counts
     connectivity-affecting operations so a rollback knows whether the
     [links_cache] may hold entries computed against trial connectivity
     (in which case it is reset; otherwise the warm memo survives the
     trial). *)
  mutable journal : (unit -> unit) list;
  mutable journal_len : int;
  mutable journal_depth : int;
  mutable conn_epoch : int;
}

type checkpoint = { ck_pos : int; ck_levels : levels_cache option; ck_conn : int }

(* Cache invalidation: [links_cache] memoizes {!links_between} and dies
   with any connectivity change; the priority-levels cache additionally
   depends on placements, so every architecture mutation clears it. *)
let touch_levels t = t.levels_cache <- None

let touch_links t =
  Hashtbl.reset t.links_cache;
  t.links_cache_full <- false;
  t.levels_cache <- None

let journaling t = t.journal_depth > 0

let record t undo =
  if journaling t then begin
    t.journal <- undo :: t.journal;
    t.journal_len <- t.journal_len + 1
  end

let note_conn t = if journaling t then t.conn_epoch <- t.conn_epoch + 1

let checkpoint t =
  t.journal_depth <- t.journal_depth + 1;
  { ck_pos = t.journal_len; ck_levels = t.levels_cache; ck_conn = t.conn_epoch }

let rollback t ck =
  while t.journal_len > ck.ck_pos do
    match t.journal with
    | undo :: rest ->
        undo ();
        t.journal <- rest;
        t.journal_len <- t.journal_len - 1
    | [] -> assert false
  done;
  t.journal_depth <- t.journal_depth - 1;
  if t.conn_epoch > ck.ck_conn then begin
    (* The trial changed connectivity (or instantiated resources), so
       the link memo may hold entries computed against it. *)
    Hashtbl.reset t.links_cache;
    t.links_cache_full <- false;
    t.conn_epoch <- ck.ck_conn
  end;
  (* The levels memo saved at the checkpoint is valid again for the
     restored placement. *)
  t.levels_cache <- ck.ck_levels

let commit t ck =
  ignore ck.ck_pos;
  t.journal_depth <- t.journal_depth - 1;
  if t.journal_depth = 0 then begin
    t.journal <- [];
    t.journal_len <- 0
  end

let prom_dollars_per_kbyte = 0.35

(* Default programming interface assumed until interface synthesis runs:
   8-bit parallel at 10 MHz, i.e. 80 configuration bits per microsecond.
   Starting from the fastest interface lets the merge phase find every
   timing-feasible sharing; interface synthesis then walks down to the
   cheapest option that keeps the schedule feasible. *)
let default_bits_per_us = 80

let create lib =
  {
    lib;
    pes = Vec.create ();
    links = Vec.create ();
    sites = Hashtbl.create 64;
    interface_cost = None;
    links_cache = Hashtbl.create 64;
    links_cache_full = false;
    levels_cache = None;
    journal = [];
    journal_len = 0;
    journal_depth = 0;
    conn_epoch = 0;
  }

let copy t =
  let copy_mode m =
    { m_id = m.m_id; m_clusters = m.m_clusters; m_gates = m.m_gates; m_pins = m.m_pins }
  in
  let copy_pe p =
    {
      p_id = p.p_id;
      ptype = p.ptype;
      modes = Vec.map_copy copy_mode p.modes;
      used_memory = p.used_memory;
      boot_full_us = p.boot_full_us;
      p_failed = p.p_failed;
    }
  in
  let copy_link l = { l_id = l.l_id; ltype = l.ltype; attached = l.attached } in
  {
    lib = t.lib;
    pes = Vec.map_copy copy_pe t.pes;
    links = Vec.map_copy copy_link t.links;
    sites = Hashtbl.copy t.sites;
    interface_cost = t.interface_cost;
    (* The link memo holds [link_inst] values of the source architecture;
       carrying it over would alias stale records, so the copy starts
       cold.  The levels cache is a plain int array valid for the copied
       placement, so it transfers (any later mutation clears it). *)
    links_cache = Hashtbl.create 64;
    links_cache_full = false;
    levels_cache = t.levels_cache;
    (* Copies are independent trial states: they never inherit the
       source's open checkpoints. *)
    journal = [];
    journal_len = 0;
    journal_depth = 0;
    conn_epoch = 0;
  }

let fresh_mode m_id = { m_id; m_clusters = []; m_gates = 0; m_pins = 0 }

let add_pe t (ptype : Pe.t) =
  let boot_full_us =
    match ptype.pe_class with
    | Pe.Programmable info -> info.config_bits / default_bits_per_us
    | Pe.General_purpose _ | Pe.Asic_pe _ -> 0
  in
  let modes = Vec.create () in
  Vec.push modes (fresh_mode 0);
  let pe =
    {
      p_id = Vec.length t.pes;
      ptype;
      modes;
      used_memory = 0;
      boot_full_us;
      p_failed = false;
    }
  in
  Vec.push t.pes pe;
  record t (fun () -> ignore (Vec.pop t.pes));
  (* A rolled-back PE frees its [p_id] for the next trial; link-memo
     entries mentioning it must not survive into that trial. *)
  note_conn t;
  touch_levels t;
  pe

let add_mode t pe =
  if not (Pe.is_programmable pe.ptype) then
    invalid_arg "Arch.add_mode: only programmable PEs have multiple modes";
  let mode = fresh_mode (Vec.length pe.modes) in
  Vec.push pe.modes mode;
  record t (fun () -> ignore (Vec.pop pe.modes));
  mode

let add_link t (ltype : Link.t) =
  let link = { l_id = Vec.length t.links; ltype; attached = [] } in
  Vec.push t.links link;
  record t (fun () -> ignore (Vec.pop t.links));
  note_conn t;
  touch_links t;
  link

let attach t link pe =
  if List.mem pe.p_id link.attached then Ok ()
  else if List.length link.attached >= link.ltype.Link.max_ports then
    Error (Printf.sprintf "link %s is full" link.ltype.Link.name)
  else begin
    let before = link.attached in
    link.attached <- pe.p_id :: before;
    record t (fun () -> link.attached <- before);
    note_conn t;
    touch_links t;
    Ok ()
  end

let fail_pe t pe =
  if not pe.p_failed then begin
    pe.p_failed <- true;
    record t (fun () -> pe.p_failed <- false);
    (* Candidate enumeration and link routing must not see the PE. *)
    note_conn t;
    touch_levels t
  end

let site_of_cluster t cid = Hashtbl.find_opt t.sites cid

let pe_of_cluster t cid =
  match site_of_cluster t cid with
  | Some site -> Some (Vec.get t.pes site.s_pe)
  | None -> None

let mode_of_site t site =
  let pe = Vec.get t.pes site.s_pe in
  Vec.get pe.modes site.s_mode

let pe_in_use pe = Vec.exists (fun m -> m.m_clusters <> []) pe.modes

(* Exclusion vectors forbid two tasks from sharing a PE, whatever the
   mode. *)
let exclusion_conflict t (spec : Crusade_taskgraph.Spec.t) (clustering : Clustering.t)
    (cluster : Clustering.cluster) pe =
  let on_this_pe task_id =
    match site_of_cluster t clustering.of_task.(task_id) with
    | Some site -> site.s_pe = pe.p_id
    | None -> false
  in
  List.exists
    (fun member ->
      let task = Crusade_taskgraph.Spec.task spec member in
      List.exists on_this_pe task.Crusade_taskgraph.Task.exclusion)
    cluster.members

(* Snapshot a (mode, pe) occupancy plus the cluster's placement-map entry
   for the journal. *)
let record_occupancy t (mode : mode) (pe : pe_inst) cid =
  if journaling t then begin
    let clusters = mode.m_clusters
    and gates = mode.m_gates
    and pins = mode.m_pins
    and memory = pe.used_memory
    and site = Hashtbl.find_opt t.sites cid in
    record t (fun () ->
        mode.m_clusters <- clusters;
        mode.m_gates <- gates;
        mode.m_pins <- pins;
        pe.used_memory <- memory;
        match site with
        | Some s -> Hashtbl.replace t.sites cid s
        | None -> Hashtbl.remove t.sites cid)
  end

let place_cluster t spec (clustering : Clustering.t) (cluster : Clustering.cluster) ~pe
    ~mode =
  if Hashtbl.mem t.sites cluster.cid then Error "cluster already placed"
  else if pe.p_failed then Error "PE has failed"
  else if cluster.feasible_mask land (1 lsl pe.ptype.Pe.id) = 0 then
    Error "cluster cannot execute on this PE type"
  else if exclusion_conflict t spec clustering cluster pe then
    Error "exclusion vector conflict"
  else begin
    let capacity_ok =
      match pe.ptype.Pe.pe_class with
      | Pe.General_purpose cpu ->
          pe.used_memory + cluster.memory_bytes
          <= cpu.memory_bank_bytes * cpu.max_memory_banks
      | Pe.Asic_pe a ->
          mode.m_gates + cluster.gates <= a.gates && mode.m_pins + cluster.pins <= a.pins
      | Pe.Programmable _ ->
          mode.m_gates + cluster.gates <= Caps.usable_pfus pe.ptype
          && mode.m_pins + cluster.pins <= Caps.usable_pins pe.ptype
    in
    if not capacity_ok then Error "insufficient capacity"
    else begin
      record_occupancy t mode pe cluster.cid;
      mode.m_clusters <- cluster.cid :: mode.m_clusters;
      mode.m_gates <- mode.m_gates + cluster.gates;
      mode.m_pins <- mode.m_pins + cluster.pins;
      pe.used_memory <- pe.used_memory + cluster.memory_bytes;
      Hashtbl.replace t.sites cluster.cid { s_pe = pe.p_id; s_mode = mode.m_id };
      touch_levels t;
      Ok ()
    end
  end

let unplace_cluster t (clustering : Clustering.t) (cluster : Clustering.cluster) =
  match Hashtbl.find_opt t.sites cluster.cid with
  | None -> ()
  | Some site ->
      let pe = Vec.get t.pes site.s_pe in
      let mode = Vec.get pe.modes site.s_mode in
      record_occupancy t mode pe cluster.cid;
      mode.m_clusters <- List.filter (fun cid -> cid <> cluster.cid) mode.m_clusters;
      mode.m_gates <- mode.m_gates - cluster.gates;
      mode.m_pins <- mode.m_pins - cluster.pins;
      pe.used_memory <- pe.used_memory - cluster.memory_bytes;
      ignore clustering;
      Hashtbl.remove t.sites cluster.cid;
      touch_levels t

let detach_unused t =
  let hosting = Hashtbl.create 16 in
  Vec.iter (fun pe -> if pe_in_use pe then Hashtbl.replace hosting pe.p_id ()) t.pes;
  Vec.iter
    (fun (l : link_inst) ->
      let before = l.attached in
      let after = List.filter (fun pe_id -> Hashtbl.mem hosting pe_id) before in
      if after != before then begin
        l.attached <- after;
        record t (fun () -> l.attached <- before)
      end)
    t.links;
  note_conn t;
  touch_links t

let memory_banks pe =
  match pe.ptype.Pe.pe_class with
  | Pe.General_purpose cpu ->
      if pe.used_memory = 0 then 1
      else Crusade_util.Arith.ceil_div pe.used_memory cpu.memory_bank_bytes
  | Pe.Asic_pe _ | Pe.Programmable _ -> 0

let n_images pe =
  Vec.fold (fun acc m -> if m.m_clusters <> [] then acc + 1 else acc) 0 pe.modes

let mode_boot_us pe mode =
  match pe.ptype.Pe.pe_class with
  | Pe.Programmable info when info.partially_reconfigurable ->
      let fraction =
        max 0.1 (float_of_int mode.m_gates /. float_of_int (max 1 info.pfus))
      in
      int_of_float (fraction *. float_of_int pe.boot_full_us)
  | Pe.Programmable _ -> pe.boot_full_us
  | Pe.General_purpose _ | Pe.Asic_pe _ -> 0

let cost t =
  let pe_cost acc pe =
    if not (pe_in_use pe) then acc
    else begin
      let base = pe.ptype.Pe.cost in
      let memory =
        match pe.ptype.Pe.pe_class with
        | Pe.General_purpose cpu -> float_of_int (memory_banks pe) *. cpu.memory_bank_cost
        | Pe.Asic_pe _ | Pe.Programmable _ -> 0.0
      in
      let prom =
        (* Once interface synthesis has run, storage is in interface_cost. *)
        match (t.interface_cost, pe.ptype.Pe.pe_class) with
        | None, Pe.Programmable info ->
            float_of_int (n_images pe * info.boot_memory_bytes)
            /. 1024.0 *. prom_dollars_per_kbyte
        | Some _, _ | _, (Pe.General_purpose _ | Pe.Asic_pe _) -> 0.0
      in
      acc +. base +. memory +. prom
    end
  in
  let link_cost acc (link : link_inst) =
    if List.length link.attached < 2 then acc
    else
      acc +. link.ltype.Link.cost
      +. (float_of_int (List.length link.attached) *. link.ltype.Link.port_cost)
  in
  Vec.fold pe_cost 0.0 t.pes +. Vec.fold link_cost 0.0 t.links
  +. Option.value ~default:0.0 t.interface_cost

(* One pass over the links fills the memo for every connected pair at
   once — the former per-pair [List.filter]/[List.mem] fallback was
   quadratic in practice (candidate trials invalidate the memo, and the
   scheduler then probes many pairs per run) and dominated profiles of
   the allocation inner loop.  Pair lists keep the link-vector order the
   old filter produced; [pe = pe] pairs are populated too (a link with
   the PE attached), preserving the filter's degenerate-case answer. *)
let populate_links_cache t =
  Hashtbl.reset t.links_cache;
  Vec.iter
    (fun (l : link_inst) ->
      let att = List.sort_uniq Int.compare l.attached in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <= b then begin
                let key = (a lsl 20) lor b in
                match Hashtbl.find_opt t.links_cache key with
                | Some ls -> Hashtbl.replace t.links_cache key (l :: ls)
                | None -> Hashtbl.replace t.links_cache key [ l ]
              end)
            att)
        att)
    t.links;
  (* Each pair's list was built newest-first; flip to link-vector order. *)
  Hashtbl.filter_map_inplace (fun _ ls -> Some (List.rev ls)) t.links_cache;
  t.links_cache_full <- true

let links_between t pe_a pe_b =
  if not t.links_cache_full then populate_links_cache t;
  let key =
    if pe_a < pe_b then (pe_a lsl 20) lor pe_b else (pe_b lsl 20) lor pe_a
  in
  match Hashtbl.find_opt t.links_cache key with Some ls -> ls | None -> []

let cached_levels t spec clustering =
  match t.levels_cache with
  | Some c when c.lc_spec == spec && c.lc_clustering == clustering -> Some c.lc_levels
  | Some _ | None -> None

let set_cached_levels t spec clustering levels =
  t.levels_cache <- Some { lc_spec = spec; lc_clustering = clustering; lc_levels = levels }

let n_pes t = Vec.fold (fun acc pe -> if pe_in_use pe then acc + 1 else acc) 0 t.pes

let n_links t =
  Vec.fold
    (fun acc (l : link_inst) -> if List.length l.attached >= 2 then acc + 1 else acc)
    0 t.links

let task_site t (clustering : Clustering.t) task_id =
  site_of_cluster t clustering.of_task.(task_id)

let pp_summary fmt t =
  Format.fprintf fmt "architecture: %d PEs, %d links, cost $%.0f" (n_pes t) (n_links t)
    (cost t)
