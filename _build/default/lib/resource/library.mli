(** The resource library: the set of PE types and link types a synthesis
    run may instantiate.  Execution-time vectors of tasks are indexed by
    [Pe.t.id] and communication vectors by [Link.t.id] of the library in
    use. *)

type t = private { pes : Pe.t array; links : Link.t array }

val create : pes:Pe.t array -> links:Link.t array -> t
(** Validates that [pes.(i).id = i] and [links.(i).id = i].
    @raise Invalid_argument otherwise. *)

val n_pe_types : t -> int
val n_link_types : t -> int

val pe : t -> int -> Pe.t
val link : t -> int -> Link.t

val cpus : t -> Pe.t list
val asics : t -> Pe.t list
val ppes : t -> Pe.t list

val stock : unit -> t
(** The library used for the paper's experiments (Section 7): Motorola
    68360 / 68040 / 68060 / PowerQUICC each with and without a 256 KB
    second-level cache, sixteen ASICs, Xilinx XC3195A / XC4025 / XC6264
    FPGAs, Atmel AT6005, ORCA 2T15 / 2T40, Xilinx XC9500 / XC7300 CPLDs,
    and 680X0 / PowerQUICC buses, a 10 Mb/s LAN and a 31 Mb/s serial
    link.  Costs are plausible 1999 figures at 15K yearly volume; only
    their relative order drives synthesis. *)

val small : unit -> t
(** A compact library (two CPUs, two FPGAs, one ASIC, one bus, one serial
    link) used by the quickstart example and the unit tests. *)
