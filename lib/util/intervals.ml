type interval = { start : int; stop : int }

type t = interval list
(* Sorted by [start]; disjoint and non-adjacent (normalized). *)

let empty = []

let normalize pairs =
  let cmp a b = compare a.start b.start in
  let sorted = List.sort cmp pairs in
  let rec merge acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
        match acc with
        | prev :: acc' when iv.start <= prev.stop ->
            merge ({ prev with stop = max prev.stop iv.stop } :: acc') rest
        | _ -> merge (iv :: acc) rest)
  in
  merge [] sorted

let of_list pairs =
  let ivs =
    List.filter_map
      (fun (start, stop) ->
        if start > stop then invalid_arg "Intervals.of_list: start > stop"
        else if start = stop then None
        else Some { start; stop })
      pairs
  in
  normalize ivs

let to_list t = List.map (fun iv -> (iv.start, iv.stop)) t

let add t start stop =
  if start > stop then invalid_arg "Intervals.add: start > stop"
  else if start = stop then t
  else normalize ({ start; stop } :: t)

let union a b = normalize (a @ b)

let rec overlaps a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: xs, y :: ys ->
      if x.stop <= y.start then overlaps xs b
      else if y.stop <= x.start then overlaps a ys
      else true

let overlaps_interval t start stop =
  if start >= stop then false else overlaps t [ { start; stop } ]

let total_length t = List.fold_left (fun acc iv -> acc + (iv.stop - iv.start)) 0 t

let is_empty t = t = []

let span = function
  | [] -> None
  | first :: rest ->
      (* Total: seeded with the head, so the empty case never arises. *)
      let rec last prev = function [] -> prev | x :: xs -> last x xs in
      Some (first.start, (last first rest).stop)
