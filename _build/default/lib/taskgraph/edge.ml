type t = { id : int; src : int; dst : int; bytes : int }

let comm_vector t ~access ~n_link_types =
  Array.init n_link_types (fun link_type ->
      access ~link_type ~ports:4 ~bytes:t.bytes)
