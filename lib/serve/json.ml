type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' | '\\' | '/' ->
                   Buffer.add_char buf s.[!pos];
                   advance ()
               | 'b' ->
                   Buffer.add_char buf '\b';
                   advance ()
               | 'f' ->
                   Buffer.add_char buf '\012';
                   advance ()
               | 'n' ->
                   Buffer.add_char buf '\n';
                   advance ()
               | 'r' ->
                   Buffer.add_char buf '\r';
                   advance ()
               | 't' ->
                   Buffer.add_char buf '\t';
                   advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                   | Some code ->
                       (* Keep it simple: BMP code points as UTF-8. *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf
                           (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                   | None -> fail "bad \\u escape");
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        vs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
