lib/fault/transform.mli: Crusade_taskgraph
