lib/pnr/fabric.ml: Array Circuit Crusade_util Device List
