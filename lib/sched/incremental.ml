module Spec = Crusade_taskgraph.Spec
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Trace = Crusade_util.Trace

(* The policy layer over [Schedule.Replay]: keep recordings of recent
   full scheduler runs alive, and when the next candidate shares the
   spec/clustering of one of them, diff the candidate against that
   recording's snapshot and replay the provably identical prefix instead
   of rebuilding the timelines from scratch.  Candidate evaluation
   perturbs one cluster at a time, so successive architectures mostly
   agree and the replayable prefix is usually large.

   Recordings live in a small MRU list keyed by the recording's own
   (spec, clustering, copy_cap) identity — [Schedule.Replay.compatible]
   is exactly that key check — so a trajectory that restarts from a
   clustering it has seen before (portfolio rounds, rescheduling)
   replays against its previous basis instead of paying a cold rebuild.
   When no exact key matches, a recording under a *different* clustering
   of the same spec/copy_cap is adopted as a partial basis instead of
   being discarded ([Schedule.Replay.adoptable]): the per-task diff
   marks everything the clustering change perturbed, so the adopted
   prefix still replays bit-identically and only the cut region is
   rescheduled.  The list is a single [Atomic]: recordings are immutable
   once captured, so concurrent evaluation domains may read it safely,
   and a lost race on publication merely keeps equally valid
   recordings. *)

(* The slot store is separable from the engine so that several engines
   may share one: portfolio trajectories run content-identical but
   physically distinct clusterings over the same spec, so a basis
   recorded by one trajectory warm-starts the others via adoption. *)
module Store = struct
  type t = Schedule.Replay.recording list Atomic.t

  let create () : t = Atomic.make []
end

type t = {
  slots : Store.t;
  trace : Trace.t option;
  replay_counter : Trace.Counter.t;
  rebuild_counter : Trace.Counter.t;
  adoption_counter : Trace.Counter.t;
  basis_cut_counter : Trace.Counter.t;
}

(* How many distinct (spec, clustering, copy_cap) bases to keep.  A
   synthesis run touches one clustering at a time, but a shared
   portfolio store sees one key per trajectory plus revisits, so the
   list is sized for a typical portfolio width while keeping lookup
   O(1)-ish. *)
let slot_capacity = 8

let create ?store ?trace ?metrics () =
  let counter name =
    match metrics with
    | Some m -> Trace.Metrics.counter m name
    | None -> Trace.Counter.make ()
  in
  {
    slots = (match store with Some s -> s | None -> Store.create ());
    trace;
    replay_counter = counter "eval.replays";
    rebuild_counter = counter "eval.rebuilds";
    adoption_counter = counter "eval.basis_adoptions";
    basis_cut_counter = counter "eval.basis_cuts";
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Move the new recording to the front of the MRU list, dropping any
   stale basis for the same key and trimming to capacity.  Bounded CAS
   retries: losing every race just means concurrent publishes won, and
   any published recording is a valid basis. *)
let publish t ~copy_cap spec clustering recording =
  let attempt () =
    let cur = Atomic.get t.slots in
    let rest =
      List.filter
        (fun r ->
          not (Schedule.Replay.compatible r ~copy_cap spec clustering))
        cur
    in
    Atomic.compare_and_set t.slots cur
      (recording :: take (slot_capacity - 1) rest)
  in
  ignore (attempt () || attempt () || attempt () || attempt ())

(* Exact key match first — its diff is the cheapest and its prefix the
   longest — then fall back to adopting any same-spec/same-cap basis in
   MRU order.  Within a single trajectory the fallback never fires
   (every published basis carries the trajectory's own clustering
   identity), so plain runs behave exactly as before; adoption is what
   makes a *shared* store useful across clustering identities. *)
let lookup t ~copy_cap spec clustering =
  let slots = Atomic.get t.slots in
  match
    List.find_opt
      (fun r -> Schedule.Replay.compatible r ~copy_cap spec clustering)
      slots
  with
  | Some r -> Some (`Exact r)
  | None -> (
      match
        List.find_opt
          (fun r -> Schedule.Replay.adoptable r ~copy_cap spec)
          slots
      with
      | Some r -> Some (`Adopted r)
      | None -> None)

let replays t = Trace.Counter.get t.replay_counter
let rebuilds t = Trace.Counter.get t.rebuild_counter
let adoptions t = Trace.Counter.get t.adoption_counter
let basis_cuts t = Trace.Counter.get t.basis_cut_counter

let record t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  Trace.Counter.incr t.rebuild_counter;
  match
    Trace.span t.trace "schedule.run" (fun () ->
        Schedule.Replay.record ~copy_cap spec clustering arch)
  with
  | Error _ as e -> e  (* keep the previous recordings *)
  | Ok (sched, recording) ->
      publish t ~copy_cap spec clustering recording;
      Ok sched

(* Refresh the replay basis without materializing a schedule: the
   synthesis loops call this at commit points, where the schedule
   itself would be discarded anyway. *)
let refresh t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  Trace.Counter.incr t.rebuild_counter;
  match
    Trace.span t.trace "schedule.run" (fun () ->
        Schedule.Replay.record_only ~copy_cap spec clustering arch)
  with
  | Error _ -> ()  (* keep the previous recordings *)
  | Ok recording -> publish t ~copy_cap spec clustering recording

(* A recording never stops being a valid diff basis (it is immutable and
   the diff is computed against the candidate), so evaluation always
   replays when a compatible — or, failing that, adoptable — recording
   exists: even a zero-length prefix is a win, because the verdict-only
   run skips materialization, activity tracking and recording overhead.
   Freshness of the basis only affects the prefix length; the synthesis
   loops refresh it with a full [record] run at each commit point (every
   materializing [Memo.run] goes through [record]). *)
let evaluate t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  match lookup t ~copy_cap spec clustering with
  | Some (`Exact r) ->
      let prep = Schedule.Replay.prepare r spec clustering arch in
      Trace.Counter.incr t.replay_counter;
      Trace.instant t.trace "eval.replay";
      `Replayed (Schedule.Replay.replay_verdict prep)
  | Some (`Adopted r) ->
      let prep = Schedule.Replay.prepare r spec clustering arch in
      Trace.Counter.incr t.replay_counter;
      Trace.Counter.incr t.adoption_counter;
      (* Account the rescheduled remainder: steps the adopted basis
         could *not* cover.  A small total relative to adoptions means
         the bases transplant well across clusterings. *)
      Trace.Counter.add t.basis_cut_counter
        (Schedule.Replay.steps r - Schedule.Replay.cut prep);
      Trace.instant t.trace "eval.adopt";
      `Replayed (Schedule.Replay.replay_verdict prep)
  | None -> `Ran (record t ~copy_cap spec clustering arch)
