lib/alloc/options.mli: Arch Crusade_cluster Crusade_taskgraph
