(* Quickstart: the paper's Section 3 motivation example.

   Three FPGA-bound task graphs T1, T2, T3 occupy disjoint execution
   slots of a common 50 ms period.  Without dynamic reconfiguration every
   graph needs its own FPGA area; with it a single device carries all
   three as separate configuration images, switched at run time.

     dune exec examples/quickstart.exe *)

module C = Crusade.Crusade_core

let () =
  let lib = Crusade_resource.Library.small () in
  let spec = Crusade_workloads.Examples.figure2 lib in
  Format.printf "Specification: %d task graphs, %d tasks, hyperperiod %d us@.@."
    (Crusade_taskgraph.Spec.n_graphs spec)
    (Crusade_taskgraph.Spec.n_tasks spec)
    (Crusade_taskgraph.Spec.hyperperiod spec);
  let run reconfig =
    let options = { C.default_options with dynamic_reconfiguration = reconfig } in
    match C.synthesize ~options spec lib with
    | Ok r ->
        Format.printf "--- dynamic reconfiguration %s ---@.%a@.@."
          (if reconfig then "ON" else "OFF")
          C.pp_report r;
        r.C.cost
    | Error msg ->
        Format.printf "synthesis failed: %s@." msg;
        exit 1
  in
  let without = run false in
  let with_rc = run true in
  Format.printf "Temporal sharing of the programmable device saves %.1f%%.@."
    ((without -. with_rc) /. without *. 100.0)
