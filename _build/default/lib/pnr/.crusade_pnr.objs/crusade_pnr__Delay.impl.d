lib/pnr/delay.ml: Circuit Crusade_util Device Fabric List Printf
