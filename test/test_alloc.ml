module Spec = Crusade_taskgraph.Spec
module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Options = Crusade_alloc.Options
module Connect = Crusade_alloc.Connect
module Vec = Crusade_util.Vec

let check = Alcotest.check
let lib = Helpers.small_lib

(* Common fixture: two compatible hardware graphs, one cluster each. *)
let fixture ?(overlap = false) () =
  let spec, t1, t2 = Helpers.two_hw_graphs ~overlap () in
  let clustering = Clustering.singletons spec lib in
  (spec, clustering, t1, t2)

let arch_add_pe () =
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 3) in
  check Alcotest.int "id" 0 pe.Arch.p_id;
  check Alcotest.int "one mode" 1 (Vec.length pe.Arch.modes);
  check Alcotest.bool "boot time set" true (pe.Arch.boot_full_us > 0);
  let cpu = Arch.add_pe arch (Library.pe lib 0) in
  check Alcotest.int "cpu boot" 0 cpu.Arch.boot_full_us

let arch_add_mode_only_ppe () =
  let arch = Arch.create lib in
  let cpu = Arch.add_pe arch (Library.pe lib 0) in
  check Alcotest.bool "cpu mode rejected" true
    (try
       ignore (Arch.add_mode arch cpu);
       false
     with Invalid_argument _ -> true);
  let fpga = Arch.add_pe arch (Library.pe lib 3) in
  let mode = Arch.add_mode arch fpga in
  check Alcotest.int "mode id" 1 mode.Arch.m_id

let arch_place_and_unplace () =
  let spec, clustering, t1, _ = fixture () in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  let mode = Vec.get pe.Arch.modes 0 in
  let cluster = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  (match Arch.place_cluster arch spec clustering cluster ~pe ~mode with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "place failed: %s" msg);
  check Alcotest.int "gates accounted" 80 mode.Arch.m_gates;
  check Alcotest.bool "site recorded" true (Arch.site_of_cluster arch cluster.cid <> None);
  check Alcotest.int "one used PE" 1 (Arch.n_pes arch);
  Arch.unplace_cluster arch clustering cluster;
  check Alcotest.int "gates released" 0 mode.Arch.m_gates;
  check Alcotest.bool "site gone" true (Arch.site_of_cluster arch cluster.cid = None);
  check Alcotest.int "no used PEs" 0 (Arch.n_pes arch)

let arch_capacity_rejection () =
  let spec, clustering, t1, t2 = fixture () in
  let arch = Arch.create lib in
  (* F1 usable = 140 PFUs; two 80-gate clusters cannot share a mode. *)
  let pe = Arch.add_pe arch (Library.pe lib 3) in
  let mode = Vec.get pe.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let c2 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t2)) in
  check Alcotest.bool "first fits" true
    (Result.is_ok (Arch.place_cluster arch spec clustering c1 ~pe ~mode));
  check Alcotest.bool "second rejected" true
    (Result.is_error (Arch.place_cluster arch spec clustering c2 ~pe ~mode))

let arch_wrong_type_rejected () =
  let spec, clustering, t1, _ = fixture () in
  let arch = Arch.create lib in
  let cpu = Arch.add_pe arch (Library.pe lib 0) in
  let mode = Vec.get cpu.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  check Alcotest.bool "hw cluster on cpu rejected" true
    (Result.is_error (Arch.place_cluster arch spec clustering c1 ~pe:cpu ~mode))

let arch_exclusion_rejected () =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"g" ~period:10_000 ~deadline:8_000 () in
  let t0 = Spec.Builder.add_task b ~graph:g ~name:"a" ~exec:(Helpers.cpu_exec 100) () in
  let t1 =
    Spec.Builder.add_task b ~graph:g ~name:"b" ~exec:(Helpers.cpu_exec 100)
      ~exclusion:[ t0 ] ()
  in
  let spec = Spec.Builder.finish_exn b ~name:"excl" () in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let cpu = Arch.add_pe arch (Library.pe lib 0) in
  let mode = Vec.get cpu.Arch.modes 0 in
  let c0 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t0)) in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  check Alcotest.bool "first ok" true
    (Result.is_ok (Arch.place_cluster arch spec clustering c0 ~pe:cpu ~mode));
  (match Arch.place_cluster arch spec clustering c1 ~pe:cpu ~mode with
  | Error "exclusion vector conflict" -> ()
  | Error msg -> Alcotest.failf "unexpected error: %s" msg
  | Ok () -> Alcotest.fail "exclusion not enforced")

let arch_cost_accounting () =
  let spec, clustering, t1, _ = fixture () in
  let arch = Arch.create lib in
  check (Alcotest.float 1e-9) "empty arch free" 0.0 (Arch.cost arch);
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  (* unused PEs do not count *)
  check (Alcotest.float 1e-9) "unused PE free" 0.0 (Arch.cost arch);
  let mode = Vec.get pe.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  (match Arch.place_cluster arch spec clustering c1 ~pe ~mode with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* device cost + PROM estimate for one image *)
  let expected =
    150.0 +. (float_of_int ((72_000 + 7) / 8) /. 1024.0 *. Arch.prom_dollars_per_kbyte)
  in
  check (Alcotest.float 0.01) "pe + prom" expected (Arch.cost arch)

let arch_memory_banks () =
  let arch = Arch.create lib in
  let cpu = Arch.add_pe arch (Library.pe lib 0) in
  check Alcotest.int "idle cpu still needs a bank" 1 (Arch.memory_banks cpu);
  cpu.Arch.used_memory <- 20 * 1024 * 1024;
  check Alcotest.int "two banks for 20MB" 2 (Arch.memory_banks cpu)

let arch_copy_independent () =
  let spec, clustering, t1, _ = fixture () in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  let mode = Vec.get pe.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  (match Arch.place_cluster arch spec clustering c1 ~pe ~mode with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let snapshot = Arch.copy arch in
  Arch.unplace_cluster arch clustering c1;
  check Alcotest.bool "copy keeps placement" true
    (Arch.site_of_cluster snapshot c1.cid <> None);
  check Alcotest.int "copy keeps gates" 80
    (Vec.get (Vec.get snapshot.Arch.pes 0).Arch.modes 0).Arch.m_gates

let arch_mode_boot_partial () =
  let arch = Arch.create lib in
  (* f2 is partially reconfigurable in the small library *)
  let f2 = Arch.add_pe arch (Library.pe lib 4) in
  let mode = Vec.get f2.Arch.modes 0 in
  mode.Arch.m_gates <- 36 (* a tenth of 360 PFUs *);
  let partial_boot = Arch.mode_boot_us f2 mode in
  check Alcotest.bool "partial boot cheaper than full" true
    (partial_boot < f2.Arch.boot_full_us);
  let f1 = Arch.add_pe arch (Library.pe lib 3) in
  let m1 = Vec.get f1.Arch.modes 0 in
  m1.Arch.m_gates <- 10;
  check Alcotest.int "non-partial boots fully" f1.Arch.boot_full_us
    (Arch.mode_boot_us f1 m1)

let links_and_attach () =
  let arch = Arch.create lib in
  let a = Arch.add_pe arch (Library.pe lib 0) in
  let b = Arch.add_pe arch (Library.pe lib 0) in
  let serial = Arch.add_link arch (Library.link lib 1) in
  check Alcotest.bool "attach a" true (Result.is_ok (Arch.attach arch serial a));
  check Alcotest.bool "attach idempotent" true (Result.is_ok (Arch.attach arch serial a));
  check Alcotest.bool "attach b" true (Result.is_ok (Arch.attach arch serial b));
  check Alcotest.int "links_between" 1 (List.length (Arch.links_between arch 0 1));
  let c = Arch.add_pe arch (Library.pe lib 0) in
  check Alcotest.bool "serial full at 2 ports" true
    (Result.is_error (Arch.attach arch serial c))

let connect_creates_and_reuses () =
  let spec, clustering, t1, t2 = fixture () in
  let arch = Arch.create lib in
  (* place the two clusters on two PEs and add an artificial edge demand by
     checking pairwise connection directly *)
  ignore (spec, clustering, t1, t2);
  let a = Arch.add_pe arch (Library.pe lib 0) in
  let b = Arch.add_pe arch (Library.pe lib 0) in
  (* no placed neighbours -> Connect on a placed, isolated cluster is a
     no-op; exercise the pair primitive through ensure with real edges in
     test_core instead; here check link reuse via attach cost path. *)
  let bus = Arch.add_link arch (Library.link lib 0) in
  check Alcotest.bool "attach both" true
    (Result.is_ok (Arch.attach arch bus a) && Result.is_ok (Arch.attach arch bus b));
  check Alcotest.int "one link instance" 1 (Arch.n_links arch)

let options_new_pe_sorted () =
  let spec, clustering, t1, _ = fixture () in
  let arch = Arch.create lib in
  let cluster = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let opts = Options.enumerate arch spec clustering cluster ~allow_new_modes:true () in
  check Alcotest.bool "has options" true (opts <> []);
  (* empty architecture: only New_pe options, sorted by cost: f1 before f2 *)
  (match opts with
  | { Options.kind = Options.New_pe p; _ } :: _ ->
      check Alcotest.string "cheapest FPGA first" "fpga-f1" (Library.pe lib p).Pe.name
  | _ -> Alcotest.fail "expected New_pe first");
  let costs = List.map (fun (o : Options.t) -> o.delta_cost) opts in
  check Alcotest.bool "sorted" true (List.sort compare costs = costs)

let options_same_graph_same_mode () =
  (* Once one cluster of a graph sits in a mode, other clusters of the
     same graph are only offered that mode on that device. *)
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"g" ~period:20_000 ~deadline:6_000 () in
  let t0 =
    Spec.Builder.add_task b ~graph:g ~name:"a" ~exec:(Helpers.fpga_exec 1_000)
      ~gates:40 ~pins:4 ()
  in
  let t1 =
    Spec.Builder.add_task b ~graph:g ~name:"b" ~exec:(Helpers.fpga_exec 1_000)
      ~gates:40 ~pins:4 ()
  in
  Spec.Builder.add_edge b ~src:t0 ~dst:t1 ~bytes:16;
  let spec = Spec.Builder.finish_exn b ~name:"same-graph" () in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  let mode0 = Vec.get pe.Arch.modes 0 in
  let c0 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t0)) in
  (match Arch.place_cluster arch spec clustering c0 ~pe ~mode:mode0 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let opts = Options.enumerate arch spec clustering c1 ~allow_new_modes:true () in
  List.iter
    (fun (o : Options.t) ->
      match o.kind with
      | Options.Existing_site site ->
          check Alcotest.int "only mode 0 offered" 0 site.Arch.s_mode
      | Options.New_mode pe_id ->
          Alcotest.failf "new mode on device %d must not be offered" pe_id
      | Options.New_pe _ -> ())
    opts

let options_compat_gates_new_mode () =
  (* overlapping graphs: no new-mode option on the occupied device *)
  let spec, clustering, t1, t2 = fixture ~overlap:true () in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  let mode0 = Vec.get pe.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  (match Arch.place_cluster arch spec clustering c1 ~pe ~mode:mode0 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let c2 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t2)) in
  let opts = Options.enumerate arch spec clustering c2 ~allow_new_modes:true () in
  List.iter
    (fun (o : Options.t) ->
      match o.kind with
      | Options.New_mode _ -> Alcotest.fail "incompatible graphs cannot time-share"
      | Options.Existing_site _ | Options.New_pe _ -> ())
    opts

let options_new_mode_for_compatible () =
  let spec, clustering, t1, t2 = fixture ~overlap:false () in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  let mode0 = Vec.get pe.Arch.modes 0 in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  (match Arch.place_cluster arch spec clustering c1 ~pe ~mode:mode0 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let c2 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t2)) in
  let opts = Options.enumerate arch spec clustering c2 ~allow_new_modes:true () in
  check Alcotest.bool "new-mode offered for compatible graphs" true
    (List.exists
       (fun (o : Options.t) ->
         match o.kind with Options.New_mode _ -> true | _ -> false)
       opts);
  (* and never when reconfiguration is disabled *)
  let opts' = Options.enumerate arch spec clustering c2 ~allow_new_modes:false () in
  check Alcotest.bool "no new modes without reconfiguration" false
    (List.exists
       (fun (o : Options.t) ->
         match o.kind with Options.New_mode _ -> true | _ -> false)
       opts')

(* A star of software tasks, hub plus [n_peers] leaves, each on its own
   CPU, so every leaf demands hub connectivity through Connect.ensure. *)
let star_on_own_pes ?(lib = Helpers.small_lib) n_peers =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"star" ~period:40_000 ~deadline:30_000 () in
  let hub =
    Spec.Builder.add_task b ~graph:g ~name:"hub" ~exec:(Helpers.cpu_exec ~lib 500) ()
  in
  let peers =
    List.init n_peers (fun i ->
        let t =
          Spec.Builder.add_task b ~graph:g
            ~name:(Printf.sprintf "peer%d" i)
            ~exec:(Helpers.cpu_exec ~lib 500) ()
        in
        Spec.Builder.add_edge b ~src:hub ~dst:t ~bytes:64;
        t)
  in
  let spec = Spec.Builder.finish_exn b ~name:"star" () in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let place task =
    let pe = Arch.add_pe arch (Library.pe lib 0) in
    let mode = Vec.get pe.Arch.modes 0 in
    let cluster = clustering.Clustering.clusters.(clustering.Clustering.of_task.(task)) in
    (match Arch.place_cluster arch spec clustering cluster ~pe ~mode with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    cluster
  in
  let _hub_cluster = place hub in
  (arch, spec, clustering, List.map place peers)

let connect_empty_link_library () =
  let no_links =
    Library.create ~pes:Helpers.small_lib.Library.pes ~links:[||]
  in
  let arch, spec, clustering, peers = star_on_own_pes ~lib:no_links 1 in
  match Connect.ensure arch spec clustering (List.hd peers) with
  | Ok _ -> Alcotest.fail "connected two PEs without any link type"
  | Error msg -> check Alcotest.string "error" "empty link library" msg

let connect_bus_saturation () =
  (* bus-s has six ports: the hub plus five peers fill the first
     instance, the sixth peer must spawn a second bus. *)
  let arch, spec, clustering, peers = star_on_own_pes 6 in
  List.iteri
    (fun i cluster ->
      match Connect.ensure arch spec clustering cluster with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "peer %d: %s" i m)
    peers;
  check Alcotest.int "second bus instance spawned" 2 (Arch.n_links arch);
  (* every peer really is joined to the hub *)
  List.iteri
    (fun i _ ->
      check Alcotest.bool
        (Printf.sprintf "hub reaches peer %d" i)
        true
        (Arch.links_between arch 0 (i + 1) <> []))
    peers

let options_apply_new_pe () =
  let spec, clustering, t1, _ = fixture () in
  let arch = Arch.create lib in
  let cluster = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let opts = Options.enumerate arch spec clustering cluster ~allow_new_modes:true () in
  (match Options.apply arch spec clustering cluster (List.hd opts) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "pe instantiated" 1 (Arch.n_pes arch);
  check Alcotest.bool "cluster placed" true (Arch.site_of_cluster arch cluster.cid <> None)

let suite =
  [
    Alcotest.test_case "add pe" `Quick arch_add_pe;
    Alcotest.test_case "add mode only on PPE" `Quick arch_add_mode_only_ppe;
    Alcotest.test_case "place/unplace" `Quick arch_place_and_unplace;
    Alcotest.test_case "capacity rejection" `Quick arch_capacity_rejection;
    Alcotest.test_case "wrong type rejected" `Quick arch_wrong_type_rejected;
    Alcotest.test_case "exclusion rejected" `Quick arch_exclusion_rejected;
    Alcotest.test_case "cost accounting" `Quick arch_cost_accounting;
    Alcotest.test_case "memory banks" `Quick arch_memory_banks;
    Alcotest.test_case "copy independence" `Quick arch_copy_independent;
    Alcotest.test_case "partial reconfiguration boot" `Quick arch_mode_boot_partial;
    Alcotest.test_case "links and attach" `Quick links_and_attach;
    Alcotest.test_case "connect/links counting" `Quick connect_creates_and_reuses;
    Alcotest.test_case "connect: empty link library" `Quick connect_empty_link_library;
    Alcotest.test_case "connect: bus saturation spawns second bus" `Quick
      connect_bus_saturation;
    Alcotest.test_case "options sorted by cost" `Quick options_new_pe_sorted;
    Alcotest.test_case "same graph same mode" `Quick options_same_graph_same_mode;
    Alcotest.test_case "no mode for overlapping" `Quick options_compat_gates_new_mode;
    Alcotest.test_case "new mode for compatible" `Quick options_new_mode_for_compatible;
    Alcotest.test_case "apply new pe" `Quick options_apply_new_pe;
  ]
