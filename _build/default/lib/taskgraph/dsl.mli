(** Textual specification format.

    A line-oriented format for writing embedded-system specifications by
    hand or exchanging them between tools:

    {v
    spec radio
    boot_requirement 50000

    graph rx period 64000 est 0 deadline 16000 unavail 4.0
      task fe    exec -1,-1,120,100   gates 40 pins 6
      task demod exec -1,-1,180,150   gates 55 pins 4 deadline 9000
      task ctl   exec 300,150,-1,-1   mem 16384 8192 2048
      edge fe demod 64
      edge demod ctl 128

    graph tx period 64000 est 32000 deadline 16000 compat rx
      task mod exec -1,-1,200,170 gates 50 pins 5 exclude fe
    v}

    Execution vectors are comma-separated per PE type ([-1] =
    infeasible); [mem] takes program/data/stack bytes; [compat] names
    previously declared graphs this one may time-share devices with;
    [exclude] names tasks (of any earlier graph) that may not share a
    PE.  Lines starting with [#] are comments. *)

val parse : string -> (Spec.t, string) result
(** Parses the textual form.  Errors carry a line number. *)

val print : Spec.t -> string
(** Prints a specification in the same format; [parse (print s)] yields
    a specification equivalent to [s]. *)

val load : string -> (Spec.t, string) result
(** Reads and parses a file. *)

val save : string -> Spec.t -> unit
(** Writes [print spec] to a file. *)
