examples/video_router.mli:
