(** Dynamic-reconfiguration generation (Sections 4.1 / 4.2 / Fig. 3).

    After an architecture meets its deadlines, CRUSADE computes its merge
    potential (number of PPEs plus links), builds a merge array of PPE
    pairs that could collapse into a single multi-mode device, and
    explores the merges in decreasing-saving order; a merge is kept when
    the re-scheduled architecture still meets every deadline and costs
    less.  A second pass combines modes of the same device when capacity
    allows, cutting configuration images and reboots.  The process
    repeats until neither the cost nor the merge potential improves. *)

type stats = {
  merges_accepted : int;
  merges_tried : int;
  modes_combined : int;
  iterations : int;
}

val merge_potential : Crusade_alloc.Arch.t -> int
(** Number of (occupied) programmable PEs plus links — the quantity the
    merge loop drives down. *)

val optimize :
  ?copy_cap:int ->
  ?max_trials_per_pass:int ->
  ?jobs:int ->
  ?prune:bool ->
  ?incremental_merge:bool ->
  ?fit_scale:float * float ->
  ?on_pass:(Crusade_alloc.Arch.t -> unit) ->
  ?trace:Crusade_util.Trace.t ->
  memo:Crusade_sched.Memo.t ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (Crusade_alloc.Arch.t * Crusade_sched.Schedule.t * stats, string) result
(** Returns the improved architecture with its final schedule.  The input
    architecture is never mutated: sequential trials work on one private
    copy under the {!Crusade_alloc.Arch.checkpoint} journal, parallel
    trials on per-trial copies.

    [jobs] (default 1) evaluates the merge trials of a pass in
    index-ordered batches on the {!Crusade_util.Pool} domain pool,
    accepting in deterministic trial order: results — including the
    [stats] counters — are bit-identical to the sequential loop.

    [incremental_merge] (default true) makes sequential ([jobs = 1])
    trials mutate the live architecture under a journal checkpoint and
    roll back on rejection, instead of deep-copying the architecture per
    trial; with the incremental engine attached, each trial is then a
    prefix replay against a warm per-pass basis.  Accepted shapes, the
    final schedule and every [stats] counter are bit-identical with the
    flag off (the [--no-incremental-merge] escape hatch).

    [prune] (default true) rejects trials whose exact cost or tardiness
    bound already rules out acceptance, without scheduling them.  [memo]
    is the calling run's {!Crusade_sched.Memo} table — repeated
    schedules are served from it (create it with [~enabled:false] to
    switch stage 2 off).  Both leave the accepted architectures and the
    [stats] counters bit-identical.  [trace] adds ["merge.trial"] /
    ["merge.combine"] spans and a ["merge.pass"] instant per pass.

    [fit_scale] (default [(1.0, 1.0)]) scales the usable PFU/pin caps
    used by the fit checks; portfolio trajectories perturb it
    {e downward} only, so a scaled pass can only reject merges the
    unperturbed pass would accept — never produce an over-capacity
    architecture.  [on_pass] is called with the current architecture at
    the start of every pass; a portfolio trajectory's incumbent-bound /
    budget check may raise from it to abort the optimization. *)
