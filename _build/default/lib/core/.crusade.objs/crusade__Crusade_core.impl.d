lib/core/crusade_core.ml: Array Crusade_alloc Crusade_cluster Crusade_reconfig Crusade_resource Crusade_sched Crusade_taskgraph Crusade_util Format Hashtbl List Option Printf Sys
