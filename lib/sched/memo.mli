(** Stage-2 evaluator: a bounded, thread-safe memo table over
    {!Schedule.run}.

    Synthesis schedules structurally identical architectures many times
    over — the allocation loop re-evaluates its committed winner, merge
    trials revisit rejected shapes, repair re-runs the baseline — so
    full scheduling results are cached under a structural fingerprint of
    everything the scheduler reads: the placement map, the PE table
    (type, boot time, per-mode PFU usage), the link table (type,
    attached PE set) and the copy cap, with the spec, clustering and
    library guarded by physical identity.

    The table is a process-wide LRU of 512 entries behind a mutex (the
    parallel evaluation path calls it from several domains; scheduling
    itself runs outside the lock).  Cached {!Schedule.t} values are
    shared — callers must treat them as read-only, which every caller in
    this repository already does. *)

val run :
  ?memo:bool ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (Schedule.t, string) result
(** Exactly {!Schedule.run}, but consulting the memo table first.
    [~memo:false] bypasses the table entirely (no lookup, no counter
    traffic) — the synthesis options use it to switch stage 2 off. *)

val hits : unit -> int
(** Process-wide memo hits (schedules served from the table). *)

val misses : unit -> int
(** Process-wide memo misses (schedules actually computed via {!run}). *)

val prunes : unit -> int
(** Process-wide count of candidates rejected by the stage-1 bound
    ({!Schedule.estimate}) without any full schedule; incremented by the
    evaluation loops via {!note_prune}. *)

val note_prune : unit -> unit

val clear : unit -> unit
(** Empties the table (tests; isolates benchmark configurations). *)
