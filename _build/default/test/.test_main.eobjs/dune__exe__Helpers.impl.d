test/helpers.ml: Alcotest Array Crusade Crusade_resource Crusade_taskgraph List Printf
