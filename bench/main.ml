(* Benchmark harness: regenerates every table of the paper and registers
   one Bechamel micro-benchmark per table.

     dune exec bench/main.exe -- table1          ERUF/EPUF delay sweep
     dune exec bench/main.exe -- table2          CRUSADE with/without reconfiguration
     dune exec bench/main.exe -- table3          CRUSADE-FT with/without reconfiguration
     dune exec bench/main.exe -- figures         Fig. 2 / Fig. 4 walkthroughs
     dune exec bench/main.exe -- bench           Bechamel micro-benchmarks
     dune exec bench/main.exe -- speedup         wall-clock scaling at jobs = 1, 2, 4, ...
     dune exec bench/main.exe -- scenarios       warm re-synthesis under change vs from scratch
     dune exec bench/main.exe -- all [--scale N] everything except speedup (default)

   scenarios runs the change matrix {graph-arrival, upgrade, pe-fail,
   drift} x presets: deploy a base architecture, apply the change with
   Crusade_core.Resynth (warm repair), synthesize the post-change
   workload from scratch, and report resynth_seconds vs
   full_synth_seconds, the cost delta, whether both reached the same
   feasibility verdict, and the repaired architecture's audit.
   --gate-warm exits 4 unless every warm case (drift excluded — its
   recording is rebuilt, so it carries no replay advantage) beats the
   from-scratch wall time with matching verdicts and a clean audit.

   --scale N divides the task counts of the eight big examples by N
   (default 8; use --scale 1 to reproduce the full paper sizes, which
   takes over an hour of single-core time).

   --jobs N runs every synthesis with N domains evaluating allocation
   candidates and merge trials in parallel (results are bit-identical to
   --jobs 1; also the CRUSADE_JOBS env var).  For the speedup subcommand
   it sets the largest jobs count measured (default 4).

   --no-prune / --no-memo / --no-incremental disable the evaluator
   stages (the stage-1 tardiness lower bound, the stage-2 schedule memo
   table, the incremental prefix-replay engine); results are
   bit-identical either way, only the timings move.

   --only NAME[,NAME] restricts table2/table3 to the named examples.

   --portfolio N runs every table2/table3 synthesis as an N-trajectory
   portfolio (Crusade_core.Portfolio; 0 = one trajectory per available
   domain) and reports the best-of result.  Each row's wall/cpu columns
   then cover the whole portfolio, the JSON entry gains the portfolio
   counters and a best_cost_delta field (dollars saved vs trajectory 0,
   the unperturbed baseline — never negative), and the cost column can
   only improve on --portfolio 1.

   --audit runs the first-principles auditor (Crusade_core.audit /
   Ft.audit) on every synthesis result and records its seconds and
   violation count per entry in BENCH.json.  The audit is a single pass
   over the finished result, after the timed synthesis — the synthesis
   columns are identical with or without it.

   Alongside the text tables, every synthesis run is appended to a
   machine-readable BENCH.json (per-workload wall/cpu seconds, cost,
   prune/memo-hit counters, jobs); --bench-out PATH overrides the
   destination.

   --trace FILE writes a Chrome trace_event JSON profile covering every
   synthesis run of the invocation (one shared sink; load the file in
   chrome://tracing or Perfetto).  Tracing never changes the synthesized
   results, only adds the recording overhead to the timings. *)

module C = Crusade.Crusade_core
module F = Crusade_fault.Ft
module W = Crusade_workloads.Comm_system
module Ex = Crusade_workloads.Examples
module T = Crusade_util.Text_table

let erufs = [ 0.70; 0.75; 0.80; 0.85; 0.90; 0.95; 1.00 ]

(* Shared sink for --trace: every table's syntheses record into it, and
   main writes the file once at exit. *)
let trace_sink : Crusade_util.Trace.t option ref = ref None

(* Paper values for side-by-side comparison. *)
let paper_table1 =
  [
    ("cvs1", [ "0.0"; "0.0"; "4.6"; "7.1"; "18.2"; "42.1"; "121.6" ]);
    ("cvs2", [ "0.0"; "2.5"; "6.1"; "8.3"; "22.6"; "68.7"; "138.9" ]);
    ("xtrs1", [ "0.0"; "8.9"; "9.3"; "9.8"; "28.1"; "46.2"; "88.6" ]);
    ("xtrs2", [ "0.0"; "10.4"; "12.6"; "18.6"; "24.8"; "53.6"; "72.1" ]);
    ("rnvk", [ "0.0"; "9.1"; "9.3"; "11.9"; "18.9"; "39.6"; "88.7" ]);
    ("fcsdp", [ "0.0"; "7.4"; "7.8"; "10.6"; "29.6"; "121.8"; "156.1" ]);
    ("r2d2p", [ "0.0"; "11.1"; "11.1"; "12.8"; "24.2"; "78.6"; "NR" ]);
    ("cv46", [ "0.0"; "9.2"; "10.4"; "11.9"; "22.8"; "62.1"; "NR" ]);
    ("wamxp", [ "0.0"; "12.1"; "14.6"; "18.1"; "28.6"; "54.7"; "NR" ]);
    ("pewxfm", [ "0.0"; "8.6"; "10.2"; "16.8"; "21.7"; "39.2"; "144.5" ]);
  ]

(* (name, without: pes, links, cpu, cost; with: pes, links, cpu, cost, savings%) *)
let paper_table2 =
  [
    ("A1TR", ((74, 19, 19322.6, 26245), (61, 16, 20473.4, 16225, 38.2)));
    ("VDRTX", ((118, 33, 30118.0, 20160), (98, 21, 34665.8, 12890, 36.1)));
    ("HROST", ((244, 48, 68771.6, 34898), (219, 36, 77125.4, 24100, 30.9)));
    ("EST189A", ((334, 87, 82664.7, 48445), (312, 68, 91705.3, 33815, 30.2)));
    ("HRXC", ((388, 93, 89183.4, 51170), (348, 74, 104045.6, 37900, 25.9)));
    ("ADMR", ((406, 102, 112629.1, 64885), (375, 93, 124118.1, 40005, 38.3)));
    ("B192G", ((448, 132, 120336.2, 69745), (405, 128, 129810.6, 34030, 51.2)));
    ("NGXM", ((522, 142, 129876.1, 83885), (417, 138, 140018.2, 36325, 56.7)));
  ]

let paper_table3 =
  [
    ("A1TR", ((98, 28, 22800.6, 30815), (74, 21, 24487.8, 21355, 30.7)));
    ("VDRTX", ((144, 51, 39079.2, 27900), (130, 34, 45890.1, 18885, 32.3)));
    ("HROST", ((361, 88, 85690.6, 52830), (275, 59, 97550.4, 33075, 37.4)));
    ("EST189A", ((470, 116, 105943.1, 64965), (398, 85, 123540.2, 43115, 33.6)));
    ("HRXC", ((512, 131, 110968.9, 60688), (446, 108, 131627.7, 41930, 30.9)));
    ("ADMR", ((526, 136, 134559.8, 79025), (474, 136, 158864.7, 50810, 35.7)));
    ("B192G", ((579, 164, 146183.2, 88430), (518, 154, 161754.9, 41385, 53.2)));
    ("NGXM", ((628, 182, 168449.1, 99886), (531, 168, 183946.4, 48744, 51.2)));
  ]

let table1 () =
  print_endline "== Table 1: delay management through FPGAs/CPLDs ==";
  print_endline "   (% increase in post-route delay at EPUF = 0.80; NR = not routable)";
  let header =
    "circuit" :: "PFUs" :: "src"
    :: List.map (fun e -> Printf.sprintf "ERUF=%.2f" e) erufs
  in
  let rows =
    List.concat_map
      (fun (c : Ex.table1_circuit) ->
        let netlist = Ex.table1_netlist c in
        let measured =
          List.map
            (fun eruf ->
              match Crusade_pnr.Delay.measure netlist ~eruf ~epuf:0.80 ~seed:7 with
              | Crusade_pnr.Delay.Increase_pct p -> T.fmt_float p
              | Crusade_pnr.Delay.Unroutable -> "NR")
            erufs
        in
        let paper = List.assoc c.circuit_name paper_table1 in
        [
          (c.circuit_name :: string_of_int c.pfus :: "paper" :: paper);
          ("" :: "" :: "ours" :: measured);
        ])
      Ex.table1_circuits
  in
  print_string (T.render ~header rows);
  print_newline ()

(* --- machine-readable run log (BENCH.json) --- *)

type portfolio_info = {
  pi_n : int;
  pi_stats : C.Portfolio.stats;
  pi_best_traj : int;
  pi_best_cost_delta : float option;
      (* dollars saved vs trajectory 0 (the unperturbed baseline);
         None only when trajectory 0 failed *)
}

type bench_record = {
  br_table : string;
  br_example : string;
  br_variant : string;  (* "plain" or "reconfig" *)
  br_jobs : int;
  br_scale : int;  (* task-count divisor; 1 = full paper size *)
  br_wall : float;
  br_cpu : float;
  br_cost : float;
  br_met : bool;
  br_stats : C.eval_stats;
  br_audit : (float * int) option;  (* audit seconds, violations found *)
  br_portfolio : portfolio_info option;
}

let bench_records : bench_record list ref = ref []

(* --audit: run the first-principles auditor on every synthesis result.
   The audit is a single pass over the *finished* architecture and
   schedule, so its seconds appear as a separate JSON field and the
   synthesis wall/cpu columns are untouched — the flag demonstrably
   costs nothing on the hot path. *)
let audit_flag = ref false

let timed_audit violations_of =
  if not !audit_flag then None
  else begin
    let t0 = Sys.time () in
    let n = List.length (violations_of ()) in
    Some (Sys.time () -. t0, n)
  end

let record_run ~table ~example ~variant ~jobs ~scale ~cost ?audit ?wall ?cpu
    ?portfolio (r : C.result) =
  bench_records :=
    {
      br_table = table;
      br_example = example;
      br_variant = variant;
      br_jobs = jobs;
      br_scale = scale;
      br_wall = Option.value wall ~default:r.C.wall_seconds;
      br_cpu = Option.value cpu ~default:r.C.cpu_seconds;
      br_cost = cost;
      br_met = r.C.deadlines_met;
      br_stats = r.C.eval_stats;
      br_audit = audit;
      br_portfolio = portfolio;
    }
    :: !bench_records

(* --- scenario matrix (resynth vs from-scratch) --- *)

type scenario_record = {
  sr_example : string;
  sr_scenario : string;  (* graph-arrival | upgrade | pe-fail | drift *)
  sr_scale : int;
  sr_resynth_seconds : float;
  sr_full_synth_seconds : float;
  sr_cost_delta : float option;  (* None when the repair is infeasible *)
  sr_verdict : string;  (* images-only | needs-hardware | infeasible *)
  sr_verdict_match : bool;  (* warm feasibility = from-scratch feasibility *)
  sr_audit_violations : int;
}

let scenario_records : scenario_record list ref = ref []

let write_bench_json ~prune ~memo ~incremental ~incremental_merge path =
  let entries = List.rev !bench_records in
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"crusade-bench-2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"prune\": %b,\n" prune);
  Buffer.add_string b (Printf.sprintf "  \"memo\": %b,\n" memo);
  Buffer.add_string b (Printf.sprintf "  \"incremental\": %b,\n" incremental);
  Buffer.add_string b
    (Printf.sprintf "  \"incremental_merge\": %b,\n" incremental_merge);
  Buffer.add_string b "  \"entries\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      let audit_fields =
        match e.br_audit with
        | None -> ""
        | Some (seconds, violations) ->
            Printf.sprintf ", \"audit_seconds\": %.6f, \"audit_violations\": %d"
              seconds violations
      in
      let portfolio_fields =
        match e.br_portfolio with
        | None -> ""
        | Some p ->
            let s = p.pi_stats in
            Printf.sprintf
              ", \"portfolio_n\": %d, \"traj_launched\": %d, \
               \"traj_completed\": %d, \"traj_aborted\": %d, \
               \"bound_aborts\": %d, \"budget_aborts\": %d, \
               \"incumbent_updates\": %d, \"best_traj\": %d, \
               \"best_cost_delta\": %s"
              p.pi_n s.C.Portfolio.launched s.C.Portfolio.completed
              s.C.Portfolio.aborted s.C.Portfolio.bound_aborts
              s.C.Portfolio.budget_aborts s.C.Portfolio.incumbent_updates
              p.pi_best_traj
              (match p.pi_best_cost_delta with
              | Some d -> Printf.sprintf "%.3f" d
              | None -> "null")
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"table\": %S, \"example\": %S, \"variant\": %S, \"jobs\": %d, \
            \"scale\": %d, \
            \"wall_seconds\": %.6f, \"cpu_seconds\": %.6f, \"cost\": %.3f, \
            \"deadlines_met\": %b, \"pruned\": %d, \"memo_hits\": %d, \
            \"memo_misses\": %d, \"memo_bypassed\": %d, \"rollbacks\": %d, \
            \"replays\": %d, \"rebuilds\": %d, \"merge_replays\": %d, \
            \"merge_rebuilds\": %d, \"basis_adoptions\": %d, \
            \"basis_cuts\": %d%s%s}"
           e.br_table e.br_example e.br_variant e.br_jobs e.br_scale e.br_wall
           e.br_cpu e.br_cost e.br_met e.br_stats.C.pruned
           e.br_stats.C.memo_hits e.br_stats.C.memo_misses
           e.br_stats.C.memo_bypassed e.br_stats.C.rollbacks
           e.br_stats.C.replays e.br_stats.C.rebuilds
           e.br_stats.C.merge_replays e.br_stats.C.merge_rebuilds
           e.br_stats.C.basis_adoptions e.br_stats.C.basis_cuts audit_fields
           portfolio_fields))
    entries;
  Buffer.add_string b "\n  ]";
  let scenarios = List.rev !scenario_records in
  if scenarios <> [] then begin
    Buffer.add_string b ",\n  \"scenarios\": [";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "\n    {\"example\": %S, \"scenario\": %S, \"scale\": %d, \
              \"resynth_seconds\": %.6f, \"full_synth_seconds\": %.6f, \
              \"cost_delta\": %s, \"verdict\": %S, \"verdict_match\": %b, \
              \"audit_violations\": %d}"
             s.sr_example s.sr_scenario s.sr_scale s.sr_resynth_seconds
             s.sr_full_synth_seconds
             (match s.sr_cost_delta with
             | Some d -> Printf.sprintf "%.3f" d
             | None -> "null")
             s.sr_verdict s.sr_verdict_match s.sr_audit_violations))
      scenarios;
    Buffer.add_string b "\n  ]"
  end;
  Buffer.add_string b "\n}\n";
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s (%d entries, %d scenarios)\n%!" path
    (List.length entries) (List.length scenarios)

(* Run a flow either plainly (portfolio = 1: bit-identical to the
   pre-portfolio harness) or as an N-trajectory portfolio whose winner —
   with the portfolio counters folded into its eval_stats — is recorded
   with whole-portfolio wall/cpu seconds. *)
let run_flow ~portfolio ~jobs ~options ~flow ~cost ~met =
  if portfolio = 1 then
    match flow options with
    | Ok r -> Ok (r, None)
    | Error msg -> Error msg
  else begin
    let w0 = Unix.gettimeofday () and c0 = Sys.time () in
    match C.Portfolio.run ~jobs ~n:portfolio ~options ~flow ~cost ~met () with
    | Ok o ->
        let wall = Unix.gettimeofday () -. w0 and cpu = Sys.time () -. c0 in
        let info =
          {
            pi_n = portfolio;
            pi_stats = o.C.Portfolio.stats;
            pi_best_traj = o.C.Portfolio.best_index;
            pi_best_cost_delta =
              Option.map
                (fun b -> b -. o.C.Portfolio.best_cost)
                o.C.Portfolio.baseline_cost;
          }
        in
        Ok (o.C.Portfolio.best, Some (info, wall, cpu))
    | Error msg -> Error msg
  end

let synth_row ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
    ~scale ~table ~example spec lib reconfig =
  let options =
    {
      C.default_options with
      dynamic_reconfiguration = reconfig;
      jobs;
      prune;
      memo;
      incremental;
      incremental_merge;
      trace = !trace_sink;
    }
  in
  match
    run_flow ~portfolio ~jobs ~options
      ~flow:(fun o -> C.synthesize ~options:o spec lib)
      ~cost:(fun (r : C.result) -> r.C.cost)
      ~met:(fun (r : C.result) -> r.C.deadlines_met)
  with
  | Ok (r, pf) ->
      let r, portfolio, wall, cpu =
        match pf with
        | None -> (r, None, None, None)
        | Some (info, wall, cpu) ->
            ( {
                r with
                C.eval_stats =
                  C.Portfolio.annotate r.C.eval_stats info.pi_stats;
              },
              Some info,
              Some wall,
              Some cpu )
      in
      record_run ~table ~example
        ~variant:(if reconfig then "reconfig" else "plain")
        ~jobs ~scale ~cost:r.C.cost
        ?audit:(timed_audit (fun () -> C.audit r))
        ?wall ?cpu ?portfolio r;
      (r.C.n_pes, r.C.n_links, r.C.cpu_seconds, r.C.cost, r.C.deadlines_met)
  | Error msg -> failwith msg

let ft_row ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio ~scale
    ~table ~example spec lib reconfig =
  let options =
    {
      C.default_options with
      dynamic_reconfiguration = reconfig;
      jobs;
      prune;
      memo;
      incremental;
      incremental_merge;
      trace = !trace_sink;
    }
  in
  match
    run_flow ~portfolio ~jobs ~options
      ~flow:(fun o -> F.synthesize ~options:o spec lib)
      ~cost:(fun (r : F.result) -> r.F.total_cost)
      ~met:(fun (r : F.result) -> r.F.core.C.deadlines_met)
  with
  | Ok (r, pf) ->
      let core, portfolio, wall, cpu =
        match pf with
        | None -> (r.F.core, None, None, None)
        | Some (info, wall, cpu) ->
            ( {
                r.F.core with
                C.eval_stats =
                  C.Portfolio.annotate r.F.core.C.eval_stats info.pi_stats;
              },
              Some info,
              Some wall,
              Some cpu )
      in
      record_run ~table ~example
        ~variant:(if reconfig then "reconfig" else "plain")
        ~jobs ~scale ~cost:r.F.total_cost
        ?audit:(timed_audit (fun () -> F.audit r))
        ?wall ?cpu ?portfolio core;
      ( r.F.n_pes_with_spares,
        r.F.core.C.n_links,
        r.F.core.C.cpu_seconds,
        r.F.total_cost,
        r.F.core.C.deadlines_met )
  | Error msg -> failwith msg

let comparison_table ~title ~paper ~scale ~only ~row_of =
  Printf.printf "== %s (examples scaled 1/%d) ==\n%!" title scale;
  let header =
    [
      "example"; "tasks"; "src"; "PEs-"; "links-"; "cpu- (s)"; "cost- ($)"; "PEs+";
      "links+"; "cpu+ (s)"; "cost+ ($)"; "savings %"; "deadlines";
    ]
  in
  let lib = Crusade_resource.Library.stock () in
  let names =
    match only with
    | [] -> W.preset_names
    | picked -> List.filter (fun n -> List.mem n picked) W.preset_names
  in
  let rows =
    List.concat_map
      (fun name ->
        let params = W.scaled (W.preset name) (float_of_int scale) in
        let spec = W.generate lib params in
        let p0, l0, t0, c0, ok0 = row_of ~example:name spec lib false in
        let p1, l1, t1, c1, ok1 = row_of ~example:name spec lib true in
        let savings = (c0 -. c1) /. c0 *. 100.0 in
        let (pp0, pl0, pt0, pc0), (pp1, pl1, pt1, pc1, psav) =
          List.assoc name paper
        in
        [
          [
            name; "(paper)"; "paper"; string_of_int pp0; string_of_int pl0;
            T.fmt_float pt0; T.fmt_dollars (float_of_int pc0); string_of_int pp1;
            string_of_int pl1; T.fmt_float pt1; T.fmt_dollars (float_of_int pc1);
            T.fmt_float psav; "met";
          ];
          [
            ""; string_of_int (Crusade_taskgraph.Spec.n_tasks spec); "ours";
            string_of_int p0; string_of_int l0; T.fmt_float t0; T.fmt_dollars c0;
            string_of_int p1; string_of_int l1; T.fmt_float t1; T.fmt_dollars c1;
            T.fmt_float savings;
            (if ok0 && ok1 then "met" else "MISSED");
          ];
        ])
      names
  in
  print_string
    (T.render
       ~align:
         [
           Left; Right; Left; Right; Right; Right; Right; Right; Right; Right; Right;
           Right; Left;
         ]
       ~header rows);
  print_newline ()

let table2 ~scale ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
    ~only () =
  comparison_table
    ~title:"Table 2: efficacy of CRUSADE (- without / + with dynamic reconfiguration)"
    ~paper:paper_table2 ~scale ~only
    ~row_of:
      (synth_row ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
         ~scale ~table:"table2")

let table3 ~scale ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
    ~only () =
  comparison_table
    ~title:
      "Table 3: efficacy of CRUSADE-FT (- without / + with dynamic reconfiguration)"
    ~paper:paper_table3 ~scale ~only
    ~row_of:
      (ft_row ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
         ~scale ~table:"table3")

let figures ~prune ~memo ~incremental ~incremental_merge () =
  print_endline "== Fig. 2 motivation example (small library) ==";
  let lib = Crusade_resource.Library.small () in
  let spec = Ex.figure2 lib in
  let fig_row =
    synth_row ~jobs:1 ~prune ~memo ~incremental ~incremental_merge ~portfolio:1
      ~scale:1 ~table:"figures" ~example:"figure2"
  in
  let p0, l0, _, c0, _ = fig_row spec lib false in
  let p1, l1, _, c1, _ = fig_row spec lib true in
  Printf.printf
    "  without reconfiguration: %d FPGAs, %d links, $%.0f\n\
    \  with    reconfiguration: %d FPGA,  %d links, $%.0f (one device, multiple modes)\n\
    \  saving: %.1f%%\n\n"
    p0 l0 c0 p1 l1 c1
    ((c0 -. c1) /. c0 *. 100.0);
  print_endline "== Fig. 4 allocation walk-through (small library) ==";
  let spec4 = Ex.figure4 lib in
  let options =
    {
      C.default_options with
      dynamic_reconfiguration = true;
      prune;
      memo;
      incremental;
      incremental_merge;
      trace = !trace_sink;
    }
  in
  (match C.synthesize ~options spec4 lib with
  | Ok r ->
      record_run ~table:"figures" ~example:"figure4" ~variant:"reconfig" ~jobs:1
        ~scale:1 ~cost:r.C.cost
        ?audit:(timed_audit (fun () -> C.audit r))
        r;
      Format.printf "%a@.@." C.pp_report r
  | Error msg -> Printf.printf "  FAILED: %s\n" msg)

(* One Bechamel micro-benchmark per table: the Table 1 place-and-route
   kernel, a Table 2 co-synthesis run, a Table 3 CRUSADE-FT run (both on a
   1/16-scale A1TR so a sample stays sub-second). *)
let bechamel_benches () =
  let open Bechamel in
  print_endline "== Bechamel micro-benchmarks (ns per run, OLS estimate) ==";
  let lib = Crusade_resource.Library.stock () in
  let small_spec = W.generate lib (W.scaled (W.preset "A1TR") 16.0) in
  let circuit = Ex.table1_netlist (List.nth Ex.table1_circuits 0) in
  let tests =
    Test.make_grouped ~name:"crusade"
      [
        Test.make ~name:"table1-route-cvs1"
          (Staged.stage (fun () ->
               ignore
                 (Crusade_pnr.Delay.measure ~samples:3 circuit ~eruf:0.9 ~epuf:0.8
                    ~seed:7)));
        Test.make ~name:"table2-synthesize-A1TR/16"
          (Staged.stage (fun () ->
               ignore (C.synthesize ~options:C.default_options small_spec lib)));
        Test.make ~name:"table3-ft-synthesize-A1TR/16"
          (Staged.stage (fun () ->
               ignore (F.synthesize ~options:C.default_options small_spec lib)));
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 3.0) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (t :: _) -> Printf.sprintf "%.0f" t
        | Some [] | None -> "n/a"
      in
      rows := [ name; estimate ] :: !rows)
    analyzed;
  print_string
    (T.render ~align:[ Left; Right ] ~header:[ "benchmark"; "ns/run" ]
       (List.sort compare !rows));
  print_newline ()

(* Ablations of the design choices DESIGN.md calls out: critical-path
   clustering, the association-array copy cap, the evaluation window and
   the merge phase.  One row per variant on the 1/8-scale A1TR example. *)
let ablation () =
  print_endline "== Ablations (A1TR at 1/8 scale, dynamic reconfiguration on) ==";
  let lib = Crusade_resource.Library.stock () in
  let spec = W.generate lib (W.scaled (W.preset "A1TR") 8.0) in
  let row name options =
    match C.synthesize ~options spec lib with
    | Ok r ->
        [
          name; string_of_int r.C.n_pes; string_of_int r.C.n_links;
          string_of_int r.C.n_modes; T.fmt_dollars r.C.cost;
          (if r.C.deadlines_met then "met" else "MISSED");
          T.fmt_float ~decimals:2 r.C.cpu_seconds;
        ]
    | Error msg -> [ name; "error: " ^ msg ]
  in
  let d = C.default_options in
  let rows =
    [
      row "default" d;
      row "no clustering (singletons)" { d with C.use_clustering = false };
      row "cluster size 16" { d with C.max_cluster_size = 16 };
      row "copy cap 8" { d with C.copy_cap = 8 };
      row "copy cap 16" { d with C.copy_cap = 16 };
      row "eval window 4" { d with C.eval_window = 4 };
      row "no merge phase" { d with C.merge_trials_per_pass = 0 };
      row "no reconfiguration" { d with C.dynamic_reconfiguration = false };
      row "no incremental rescheduling" { d with C.incremental = false };
    ]
  in
  print_string
    (T.render
       ~align:[ Left; Right; Right; Right; Right; Left; Right ]
       ~header:[ "variant"; "PEs"; "links"; "images"; "cost ($)"; "deadlines"; "cpu (s)" ]
       rows);
  print_newline ()

(* Wall-clock scaling of one synthesis as the domain count doubles; the
   cost/PE/link/image columns double as a visible determinism check —
   every row must be identical to the jobs = 1 row. *)
let speedup ~max_jobs () =
  print_endline
    "== Wall-clock speedup (A1TR at 1/8 scale, dynamic reconfiguration on) ==";
  let lib = Crusade_resource.Library.stock () in
  let spec = W.generate lib (W.scaled (W.preset "A1TR") 8.0) in
  let rec doublings j acc = if j > max_jobs then List.rev acc else doublings (2 * j) (j :: acc) in
  let runs =
    List.map
      (fun jobs ->
        let options = { C.default_options with C.jobs } in
        match C.synthesize ~options spec lib with
        | Ok r -> (jobs, r)
        | Error msg -> failwith msg)
      (doublings 1 [])
  in
  let base_wall =
    match runs with (_, r) :: _ -> r.C.wall_seconds | [] -> assert false
  in
  let rows =
    List.map
      (fun (jobs, r) ->
        [
          string_of_int jobs;
          T.fmt_float ~decimals:2 r.C.wall_seconds;
          T.fmt_float ~decimals:2 r.C.cpu_seconds;
          T.fmt_float ~decimals:2 (base_wall /. r.C.wall_seconds) ^ "x";
          string_of_int r.C.n_pes;
          string_of_int r.C.n_links;
          string_of_int r.C.n_modes;
          T.fmt_dollars r.C.cost;
        ])
      runs
  in
  print_string
    (T.render
       ~align:[ Right; Right; Right; Right; Right; Right; Right; Right ]
       ~header:
         [ "jobs"; "wall (s)"; "cpu (s)"; "speedup"; "PEs"; "links"; "images"; "cost ($)" ]
       rows);
  let deterministic =
    match runs with
    | (_, first) :: rest ->
        List.for_all
          (fun (_, r) ->
            r.C.cost = first.C.cost && r.C.n_pes = first.C.n_pes
            && r.C.n_links = first.C.n_links && r.C.n_modes = first.C.n_modes)
          rest
    | [] -> true
  in
  Printf.printf "determinism across jobs: %s\n\n"
    (if deterministic then "identical results" else "MISMATCH (bug!)")

(* The change matrix: deploy, repair warm with Resynth, synthesize the
   post-change workload cold, and compare.  Drift is measured but not
   gated — every execution time changes, so the deployed recording is
   rebuilt and the warm path carries no replay advantage to assert on. *)
let scenarios ~scale ~only ~gate_warm () =
  let module R = C.Resynth in
  Printf.printf
    "== Scenario matrix: warm re-synthesis vs from scratch (1/%d scale) ==\n%!"
    scale;
  let lib = Crusade_resource.Library.stock () in
  let names = match only with [] -> [ "A1TR"; "VDRTX" ] | picked -> picked in
  let options = { C.default_options with trace = !trace_sink } in
  let gate_failures = ref [] in
  let rows =
    List.concat_map
      (fun name ->
        let params = W.scaled (W.preset name) (float_of_int scale) in
        let spec = W.generate lib params in
        let last = Array.length spec.Crusade_taskgraph.Spec.graphs - 1 in
        let cases =
          [
            ("graph-arrival", R.Graph_arrival [ last ]);
            ("upgrade", R.Upgrade [ last ]);
            ("pe-fail", R.Pe_failure 0);
            ("drift", R.Exec_drift 20);
          ]
        in
        List.map
          (fun (kind, change) ->
            let where = Printf.sprintf "%s/%s" name kind in
            let deployed_include =
              match change with
              | R.Graph_arrival gs | R.Upgrade gs ->
                  fun g -> not (List.mem g gs)
              | R.Graph_departure _ | R.Pe_failure _ | R.Exec_drift _ ->
                  fun _ -> true
            in
            let deployed =
              match
                C.synthesize ~options ~include_graph:deployed_include spec lib
              with
              | Ok r -> r
              | Error msg ->
                  failwith (where ^ ": deployed synthesis: " ^ msg)
            in
            let rep =
              match R.apply ~options deployed change with
              | Ok rep -> rep
              | Error msg -> failwith (where ^ ": resynth: " ^ msg)
            in
            let scratch =
              match change with
              | R.Graph_arrival _ | R.Upgrade _ | R.Pe_failure _ ->
                  C.synthesize ~options spec lib
              | R.Graph_departure gs ->
                  C.synthesize ~options
                    ~include_graph:(fun g -> not (List.mem g gs))
                    spec lib
              | R.Exec_drift pct -> (
                  match R.drift_spec spec pct with
                  | Ok spec' -> C.synthesize ~options spec' lib
                  | Error _ as e -> e)
            in
            let full_secs, scratch_met =
              match scratch with
              | Ok s -> (s.C.wall_seconds, s.C.deadlines_met)
              | Error msg -> failwith (where ^ ": from scratch: " ^ msg)
            in
            let resynth_feasible = R.final_result rep <> None in
            let verdict =
              match rep.R.verdict with
              | R.Images_only _ -> "images-only"
              | R.Needs_hardware _ -> "needs-hardware"
              | R.Infeasible -> "infeasible"
            in
            let verdict_match = resynth_feasible = scratch_met in
            let violations = List.length (R.audit_report rep) in
            scenario_records :=
              {
                sr_example = name;
                sr_scenario = kind;
                sr_scale = scale;
                sr_resynth_seconds = rep.R.resynth_seconds;
                sr_full_synth_seconds = full_secs;
                sr_cost_delta = rep.R.cost_delta;
                sr_verdict = verdict;
                sr_verdict_match = verdict_match;
                sr_audit_violations = violations;
              }
              :: !scenario_records;
            if gate_warm && kind <> "drift" then begin
              if not (rep.R.resynth_seconds < full_secs) then
                gate_failures :=
                  Printf.sprintf "%s: resynth %.3f s >= full %.3f s" where
                    rep.R.resynth_seconds full_secs
                  :: !gate_failures;
              if not verdict_match then
                gate_failures := (where ^ ": verdicts differ") :: !gate_failures;
              if violations > 0 then
                gate_failures :=
                  Printf.sprintf "%s: %d audit violation(s)" where violations
                  :: !gate_failures
            end;
            [
              name;
              kind;
              verdict;
              T.fmt_float ~decimals:3 rep.R.resynth_seconds;
              T.fmt_float ~decimals:3 full_secs;
              (match rep.R.cost_delta with
              | Some d ->
                  (if d < 0.0 then "-$" else "+$")
                  ^ T.fmt_dollars (Float.abs d)
              | None -> "n/a");
              (if verdict_match then "match" else "DIFFER");
              string_of_int violations;
            ])
          cases)
      names
  in
  print_string
    (T.render
       ~align:[ Left; Left; Left; Right; Right; Right; Left; Right ]
       ~header:
         [
           "example"; "scenario"; "verdict"; "resynth (s)"; "full (s)";
           "cost delta"; "verdicts"; "violations";
         ]
       rows);
  print_newline ();
  if gate_warm then
    match !gate_failures with
    | [] -> print_endline "warm gate: every warm case beats from-scratch\n"
    | fs ->
        List.iter (fun f -> Printf.printf "warm gate FAILED: %s\n" f) fs;
        exit 4

let () =
  (* The synthesis inner loops allocate short-lived scratch (site maps,
     level arrays, timelines) at a rate that makes the default 256k-word
     minor heap a measurable share of the run; a larger nursery trades a
     few MB of RSS for fewer collections. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1024 * 1024 };
  let args = Array.to_list Sys.argv in
  let int_flag ?(min = 1) flag default =
    let rec find = function
      | f :: n :: _ when f = flag -> (
          match int_of_string_opt n with
          | Some v when v >= min -> v
          | _ ->
              Printf.eprintf "%s expects an integer >= %d, got %S\n" flag min n;
              exit 2)
      | _ :: rest -> find rest
      | [] -> default
    in
    find args
  in
  let string_flag flag default =
    let rec find = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> find rest
      | [] -> default
    in
    find args
  in
  let scale = int_flag "--scale" 8 in
  let jobs = int_flag "--jobs" (Crusade_util.Pool.default_jobs ()) in
  (* 0 = one trajectory per available domain (Pool.size); resolved here
     so every row reports the concrete trajectory count. *)
  let portfolio = C.Portfolio.resolve_n (int_flag ~min:0 "--portfolio" 1) in
  let prune = not (List.mem "--no-prune" args) in
  let memo = not (List.mem "--no-memo" args) in
  let incremental = not (List.mem "--no-incremental" args) in
  let incremental_merge = not (List.mem "--no-incremental-merge" args) in
  let only =
    match string_flag "--only" "" with
    | "" -> []
    | names ->
        let picked = String.split_on_char ',' names in
        List.iter
          (fun n ->
            if not (List.mem n W.preset_names) then begin
              Printf.eprintf "--only: unknown example %S (known: %s)\n" n
                (String.concat ", " W.preset_names);
              exit 2
            end)
          picked;
        picked
  in
  audit_flag := List.mem "--audit" args;
  let bench_out = string_flag "--bench-out" "BENCH.json" in
  let trace_out =
    match string_flag "--trace" "" with "" -> None | path -> Some path
  in
  if trace_out <> None then trace_sink := Some (Crusade_util.Trace.create ());
  let wants what =
    List.exists (fun a -> a = what) args
    || not
         (List.exists
            (fun a ->
              List.mem a
                [
                  "table1"; "table2"; "table3"; "figures"; "bench"; "ablation";
                  "speedup"; "scenarios";
                ])
            args)
  in
  if wants "figures" then figures ~prune ~memo ~incremental ~incremental_merge ();
  if wants "table1" then table1 ();
  if wants "table2" then
    table2 ~scale ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
      ~only ();
  if wants "table3" then
    table3 ~scale ~jobs ~prune ~memo ~incremental ~incremental_merge ~portfolio
      ~only ();
  if wants "ablation" then ablation ();
  if wants "scenarios" then
    scenarios ~scale ~only ~gate_warm:(List.mem "--gate-warm" args) ();
  if wants "bench" then bechamel_benches ();
  (* speedup re-runs the same synthesis at every jobs count, so it only
     runs when asked for explicitly. *)
  if List.mem "speedup" args then
    speedup ~max_jobs:(int_flag "--jobs" 4) ();
  if !bench_records <> [] || !scenario_records <> [] then
    write_bench_json ~prune ~memo ~incremental ~incremental_merge bench_out;
  match (trace_out, !trace_sink) with
  | Some path, Some t ->
      Crusade_util.Trace.write_file t path;
      Printf.printf "wrote %s (%d trace events)\n%!" path
        (Crusade_util.Trace.n_events t)
  | _ -> ()
