(* The first-principles auditor (Crusade_alloc.Audit and the composed
   Crusade_core.audit / Ft.audit): accepted results must audit clean, the
   recomputed summary numbers must be bit-exact, and every seeded
   corruption of Audit.Mutate must be flagged with its expected rule. *)

module C = Crusade.Crusade_core
module Audit = Crusade_alloc.Audit
module Arch = Crusade_alloc.Arch
module Clustering = Crusade_cluster.Clustering
module Schedule = Crusade_sched.Schedule
module Compat = Crusade_reconfig.Compat
module Ft = Crusade_fault.Ft
module W = Crusade_workloads.Comm_system
module Ex = Crusade_workloads.Examples

let check = Alcotest.check
let stock = Helpers.stock_lib

let pp_violations vs =
  String.concat "; "
    (List.map (fun v -> Format.asprintf "%a" Audit.pp_violation v) vs)

let assert_clean what vs =
  if vs <> [] then Alcotest.failf "%s: %s" what (pp_violations vs)

let a1tr_16 = lazy (W.generate stock (W.scaled (W.preset "A1TR") 16.0))

let synth ?(reconfig = true) spec =
  Helpers.synthesize ~lib:stock ~reconfig spec

let clean_on_figure4 () =
  let r = Helpers.synthesize (Ex.figure4 Helpers.small_lib) in
  assert_clean "figure4 audit" (C.audit r)

let clean_on_generated () =
  let spec = Lazy.force a1tr_16 in
  assert_clean "A1TR/16 reconfig audit" (C.audit (synth spec));
  assert_clean "A1TR/16 plain audit" (C.audit (synth ~reconfig:false spec))

let clean_on_ft () =
  match Ft.synthesize (Lazy.force a1tr_16) stock with
  | Error m -> Alcotest.fail m
  | Ok fr -> assert_clean "A1TR/16 FT audit" (Ft.audit fr)

(* Without the merge phase no graph is ever split across modes, so the
   strict default (static) compatibility predicate must also audit
   clean at the architecture level. *)
let clean_under_static_compat () =
  let r = synth ~reconfig:false (Lazy.force a1tr_16) in
  let reported =
    { Audit.r_cost = r.C.cost; r_n_pes = r.C.n_pes; r_n_links = r.C.n_links;
      r_n_modes = r.C.n_modes }
  in
  assert_clean "static-compat audit"
    (Audit.check r.C.spec r.C.clustering r.C.arch reported)

let recomputed_cost_bit_exact () =
  let r = synth (Lazy.force a1tr_16) in
  check Alcotest.bool "recompute_cost is bit-exact" true
    (Float.equal (Audit.recompute_cost r.C.clustering r.C.arch) r.C.cost)

let reported_tampering_flagged () =
  let r = synth (Lazy.force a1tr_16) in
  let reported =
    { Audit.r_cost = r.C.cost +. 1.0; r_n_pes = r.C.n_pes + 1;
      r_n_links = r.C.n_links; r_n_modes = r.C.n_modes }
  in
  let rules =
    List.map (fun (v : Audit.violation) -> v.Audit.rule)
      (Audit.check_reported r.C.clustering r.C.arch reported)
  in
  check Alcotest.bool "cost tampering flagged" true
    (List.mem "cost-accounting" rules);
  check Alcotest.bool "count tampering flagged" true
    (List.mem "count-accounting" rules)

(* --- Mutate oracle: every applicable corruption kind is caught --- *)

let cluster_intervals (r : C.result) =
  let n = Array.length r.C.clustering.Clustering.clusters in
  let ivls = Array.make n [] in
  Array.iter
    (fun (i : Schedule.instance) ->
      if i.Schedule.finish > i.Schedule.start then begin
        let cid = r.C.clustering.Clustering.of_task.(i.Schedule.i_task) in
        ivls.(cid) <- (i.Schedule.start, i.Schedule.finish) :: ivls.(cid)
      end)
    r.C.schedule.Schedule.instances;
  ivls

let lists_overlap xs ys =
  List.exists (fun (s, f) -> List.exists (fun (s', f') -> s < f' && s' < f) ys) xs

let try_mutation (r : C.result) kind =
  let m = Compat.matrix r.C.spec r.C.schedule in
  let ivls = cluster_intervals r in
  let overlaps c c' = lists_overlap ivls.(c) ivls.(c') in
  let arch = Arch.copy r.C.arch in
  let reported =
    { Audit.r_cost = r.C.cost; r_n_pes = r.C.n_pes; r_n_links = r.C.n_links;
      r_n_modes = r.C.n_modes }
  in
  match
    Audit.Mutate.apply
      ~compat:(fun a b -> m.(a).(b))
      ~overlaps r.C.spec r.C.clustering arch reported kind
  with
  | Error why -> `Inapplicable why
  | Ok rep ->
      let r' =
        {
          r with
          C.arch;
          cost = rep.Audit.r_cost;
          n_pes = rep.Audit.r_n_pes;
          n_links = rep.Audit.r_n_links;
          n_modes = rep.Audit.r_n_modes;
        }
      in
      let vs = C.audit r' in
      if
        List.exists
          (fun (v : Audit.violation) ->
            v.Audit.rule = Audit.Mutate.expected_rule kind)
          vs
      then `Detected
      else `Missed vs

let mutations_all_detected () =
  let plain = synth (Lazy.force a1tr_16) in
  let ft_core =
    match Ft.synthesize (Lazy.force a1tr_16) stock with
    | Ok fr -> fr.Ft.core
    | Error m -> Alcotest.fail m
  in
  let detected = ref 0 in
  List.iter
    (fun kind ->
      let name = Audit.Mutate.name kind in
      (* A mutation inapplicable to the plain fixture gets a second
         chance on the FT core, which guarantees exclusion pairs. *)
      let outcome =
        match try_mutation plain kind with
        | `Inapplicable _ -> try_mutation ft_core kind
        | o -> o
      in
      match outcome with
      | `Detected -> incr detected
      | `Inapplicable _ -> ()
      | `Missed vs ->
          Alcotest.failf "mutation %s not flagged as %s (got: %s)" name
            (Audit.Mutate.expected_rule kind)
            (pp_violations vs))
    Audit.Mutate.all;
  check Alcotest.bool
    (Printf.sprintf "at least 9 of %d kinds applicable and detected (got %d)"
       (List.length Audit.Mutate.all) !detected)
    true (!detected >= 9)

let suite =
  [
    Alcotest.test_case "figure4 audits clean" `Quick clean_on_figure4;
    Alcotest.test_case "generated workload audits clean" `Quick clean_on_generated;
    Alcotest.test_case "FT result audits clean" `Quick clean_on_ft;
    Alcotest.test_case "static compat audits clean without merge" `Quick
      clean_under_static_compat;
    Alcotest.test_case "recomputed cost bit-exact" `Quick recomputed_cost_bit_exact;
    Alcotest.test_case "reported tampering flagged" `Quick reported_tampering_flagged;
    Alcotest.test_case "seeded corruptions all detected" `Quick mutations_all_detected;
  ]
