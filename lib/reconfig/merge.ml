module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Pe = Crusade_resource.Pe
module Caps = Crusade_resource.Caps
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Connect = Crusade_alloc.Connect
module Schedule = Crusade_sched.Schedule
module Memo = Crusade_sched.Memo
module Vec = Crusade_util.Vec
module Pool = Crusade_util.Pool
module Trace = Crusade_util.Trace

type stats = {
  merges_accepted : int;
  merges_tried : int;
  modes_combined : int;
  iterations : int;
}

let merge_potential (arch : Arch.t) =
  let ppes =
    Vec.fold
      (fun acc (pe : Arch.pe_inst) ->
        if Pe.is_programmable pe.Arch.ptype && Arch.n_images pe > 0 then acc + 1 else acc)
      0 arch.Arch.pes
  in
  ppes + Arch.n_links arch

let occupied_modes (pe : Arch.pe_inst) =
  List.filter
    (fun (m : Arch.mode) -> m.Arch.m_clusters <> [])
    (Vec.to_list pe.Arch.modes)

let graphs_of_pe (clustering : Clustering.t) (pe : Arch.pe_inst) =
  List.sort_uniq compare
    (Vec.fold
       (fun acc (m : Arch.mode) ->
         List.map (fun cid -> clustering.clusters.(cid).Clustering.graph) m.Arch.m_clusters
         @ acc)
       [] pe.Arch.modes)

(* Usable-capacity caps, optionally tightened by a portfolio
   perturbation.  Scales are in (0, 1]: a scale below 1.0 only ever
   REJECTS merges the unperturbed pass would accept, so every
   architecture a scaled pass produces is one the audit accepts. *)
let scaled_caps ~fit_scale (ptype : Pe.t) =
  let spf, spin = fit_scale in
  ( int_of_float (spf *. float_of_int (Caps.usable_pfus ptype)),
    int_of_float (spin *. float_of_int (Caps.usable_pins ptype)) )

(* Can every mode of [src] move (as a whole) onto a fresh mode of
   [dst]'s device type? *)
let modes_fit ~fit_scale (src : Arch.pe_inst) (dst : Arch.pe_inst) clustering =
  let pfus, pins = scaled_caps ~fit_scale dst.Arch.ptype in
  List.for_all
    (fun (m : Arch.mode) ->
      m.Arch.m_gates <= pfus
      && m.Arch.m_pins <= pins
      && List.for_all
           (fun cid ->
             clustering.Clustering.clusters.(cid).Clustering.feasible_mask
             land (1 lsl dst.Arch.ptype.Pe.id)
             <> 0)
           m.Arch.m_clusters)
    (occupied_modes src)

(* Move every cluster of [src] into fresh modes of [dst], mutating
   [arch] in place.  Every mutation below ([add_mode], [unplace_cluster],
   [place_cluster], the [attach]/[add_link] inside [Connect.ensure],
   [detach_unused]) journals its inverse, so callers either run this on
   a throwaway copy ([try_merge]) or under an open {!Arch.checkpoint}
   (the incremental trial path) and roll back on rejection. *)
let apply_merge spec clustering arch ~src_id ~dst_id =
  let src = Vec.get arch.Arch.pes src_id and dst = Vec.get arch.Arch.pes dst_id in
  let move_mode (m : Arch.mode) =
    let fresh = Arch.add_mode arch dst in
    List.fold_left
      (fun acc cid ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
            let cluster = clustering.Clustering.clusters.(cid) in
            Arch.unplace_cluster arch clustering cluster;
            (match Arch.place_cluster arch spec clustering cluster ~pe:dst ~mode:fresh with
            | Error _ as e -> e
            | Ok () -> Connect.ensure arch spec clustering cluster |> Result.map (fun _ -> ())))
      (Ok ()) m.Arch.m_clusters
  in
  let moved =
    List.fold_left
      (fun acc m -> match acc with Error _ as e -> e | Ok () -> move_mode m)
      (Ok ())
      (occupied_modes src)
  in
  match moved with
  | Error _ as e -> e
  | Ok () ->
      Arch.detach_unused arch;
      Ok ()

(* Move every cluster of [src] into fresh modes of [dst] on a copy of the
   architecture; returns the copy on success. *)
let try_merge spec clustering arch ~src_id ~dst_id =
  let trial = Arch.copy arch in
  apply_merge spec clustering trial ~src_id ~dst_id
  |> Result.map (fun () -> trial)

(* Combine two occupied modes of the same device when the union respects
   the ERUF/EPUF caps (Section 4.2: "we try to combine C1, C2 and C3 in
   the same FPGA mode if there exist sufficient resources").  In-place,
   journaled like [apply_merge]. *)
let apply_combine spec clustering arch ~pe_id ~mode_a ~mode_b =
  let pe = Vec.get arch.Arch.pes pe_id in
  let target = Vec.get pe.Arch.modes mode_a in
  let source = Vec.get pe.Arch.modes mode_b in
  List.fold_left
    (fun acc cid ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
          let cluster = clustering.Clustering.clusters.(cid) in
          Arch.unplace_cluster arch clustering cluster;
          Arch.place_cluster arch spec clustering cluster ~pe ~mode:target)
    (Ok ()) source.Arch.m_clusters

let try_combine spec clustering arch ~pe_id ~mode_a ~mode_b =
  let trial = Arch.copy arch in
  apply_combine spec clustering trial ~pe_id ~mode_a ~mode_b
  |> Result.map (fun () -> trial)

let feasible (v : Schedule.verdict) = v.Schedule.v_met

let optimize ?(copy_cap = Schedule.default_copy_cap) ?(max_trials_per_pass = 400)
    ?(jobs = 1) ?(prune = true) ?(incremental_merge = true)
    ?(fit_scale = (1.0, 1.0)) ?(on_pass = fun _ -> ())
    ?trace ~memo spec clustering arch =
  let jobs = max 1 jobs in
  (* Sequential trials can skip the per-trial [Arch.copy] entirely:
     mutate the live architecture under a journal checkpoint, evaluate
     the delta (the incremental engine replays the untouched prefix
     against its warm basis), and roll back unless accepted.  The
     parallel path keeps copies — concurrent trials must not share a
     mutable base. *)
  let in_place = incremental_merge && jobs = 1 in
  let pool = Pool.global () in
  let run_schedule a = Memo.run memo ~copy_cap spec clustering a in
  (* Stage-1 rejection of a trial against the base it was built from:
     acceptance needs a feasible schedule at [base_cost] or better
     ([strict] for device merges, non-strict for mode combines), so an
     exact cost excess, a positive tardiness lower bound, or the bound's
     disconnection failure (exactly [Schedule.run]'s) all reject the
     trial without building a schedule. *)
  let rejectable ~base_cost ~strict trial =
    prune
    &&
    let trial_cost = Arch.cost trial in
    (if strict then trial_cost >= base_cost else trial_cost > base_cost)
    ||
    match Memo.estimate memo ~copy_cap spec clustering trial with
    | Error _ -> true
    | Ok lb -> lb > 0
  in
  match run_schedule arch with
  | Error _ as e -> e
  | Ok initial_sched ->
      let current = ref (Arch.copy arch) in
      let current_sched = ref initial_sched in
      let merges_accepted = ref 0
      and merges_tried = ref 0
      and modes_combined = ref 0
      and iterations = ref 0 in
      let improved = ref true in
      while !improved do
        improved := false;
        incr iterations;
        Trace.instant trace "merge.pass";
        (* Portfolio hook: bound/budget checks may raise to abort the
           trajectory between passes. *)
        on_pass !current;
        let compat = Compat.matrix spec !current_sched in
        (* Merge array: candidate (src, dst) PPE pairs, best saving first. *)
        let ppes =
          Vec.fold
            (fun acc (pe : Arch.pe_inst) ->
              if Pe.is_programmable pe.Arch.ptype && Arch.n_images pe > 0 then pe :: acc
              else acc)
            [] !current.Arch.pes
        in
        let candidates = ref [] in
        List.iter
          (fun (src : Arch.pe_inst) ->
            List.iter
              (fun (dst : Arch.pe_inst) ->
                if src.Arch.p_id <> dst.Arch.p_id then begin
                  let src_graphs = graphs_of_pe clustering src
                  and dst_graphs = graphs_of_pe clustering dst in
                  if
                    Compat.graphs_compatible compat src_graphs dst_graphs
                    && modes_fit ~fit_scale src dst clustering
                  then begin
                    let saving = src.Arch.ptype.Pe.cost in
                    candidates := (saving, src.Arch.p_id, dst.Arch.p_id) :: !candidates
                  end
                end)
              ppes)
          ppes;
        let sorted =
          Array.of_list (List.sort (fun (a, _, _) (b, _, _) -> compare b a) !candidates)
        in
        (* Merge trials, evaluated in index-ordered batches of [jobs] on
           the domain pool; every trial in a batch works on its own copy
           of the same base architecture.  Results are consumed strictly
           in trial order, and the first improving feasible merge is
           accepted, after which the rest of the batch is discarded and
           collection restarts just past the accepted pair — those trials
           were speculated against a base that no longer exists, exactly
           the candidates the sequential loop would have re-examined
           against the updated architecture.  Pairs gone stale at
           collection time are skipped without counting, as before, so
           trial counts and accepted merges match [jobs = 1] exactly. *)
        let n_candidates = Array.length sorted in
        let trials = ref 0 in
        let pos = ref 0 in
        if in_place then
          (* Sequential journaled trials: same candidate walk, same
             stale-pair skipping, same acceptance rule and counter
             discipline as the batched path at [jobs = 1] — the only
             difference is that the trial architecture is the live one
             under an open checkpoint instead of a fresh copy. *)
          while !pos < n_candidates && !trials < max_trials_per_pass do
            let _, src_id, dst_id = sorted.(!pos) in
            let pos_k = !pos in
            incr pos;
            let src = Vec.get !current.Arch.pes src_id
            and dst = Vec.get !current.Arch.pes dst_id in
            if
              Arch.n_images src > 0 && Arch.n_images dst > 0
              && modes_fit ~fit_scale src dst clustering
            then begin
              incr trials;
              incr merges_tried;
              let base_cost = Arch.cost !current in
              let ck = Arch.checkpoint !current in
              let verdict_ok =
                Trace.span trace
                  ~args:[ ("trial", Trace.Num pos_k) ]
                  "merge.trial"
                  (fun () ->
                    match apply_merge spec clustering !current ~src_id ~dst_id with
                    | Error _ -> false
                    | Ok () ->
                        if rejectable ~base_cost ~strict:true !current then begin
                          Memo.note_prune memo;
                          false
                        end
                        else begin
                          match
                            Memo.evaluate memo ~copy_cap spec clustering !current
                          with
                          | Error _ -> false
                          | Ok v -> feasible v && Arch.cost !current < base_cost
                        end)
              in
              if verdict_ok then begin
                (* The verdict said feasible, so the materializing run
                   cannot fail (same inputs, bit-identical result). *)
                match run_schedule !current with
                | Error _ -> Arch.rollback !current ck
                | Ok sched ->
                    Arch.commit !current ck;
                    current_sched := sched;
                    incr merges_accepted;
                    improved := true
              end
              else Arch.rollback !current ck
            end
          done
        else
        while !pos < n_candidates && !trials < max_trials_per_pass do
          let batch = ref [] and collected = ref 0 in
          let want = min jobs (max_trials_per_pass - !trials) in
          while !collected < want && !pos < n_candidates do
            let _, src_id, dst_id = sorted.(!pos) in
            (* The pair may be stale after an accepted merge. *)
            let src = Vec.get !current.Arch.pes src_id
            and dst = Vec.get !current.Arch.pes dst_id in
            if
              Arch.n_images src > 0 && Arch.n_images dst > 0
              && modes_fit ~fit_scale src dst clustering
            then begin
              batch := (!pos, src_id, dst_id) :: !batch;
              incr collected
            end;
            incr pos
          done;
          let batch = Array.of_list (List.rev !batch) in
          let base = !current in
          let base_cost = Arch.cost base in
          let evaluate k =
            let pos_k, src_id, dst_id = batch.(k) in
            Trace.span trace
              ~args:[ ("trial", Trace.Num pos_k) ]
              "merge.trial"
              (fun () ->
                match try_merge spec clustering base ~src_id ~dst_id with
                | Error _ -> None
                | Ok trial ->
                    if rejectable ~base_cost ~strict:true trial then begin
                      Memo.note_prune memo;
                      None
                    end
                    else begin
                      (* Verdict-only: accepted trials are re-run through
                         [run_schedule] below to materialize the schedule. *)
                      match Memo.evaluate memo ~copy_cap spec clustering trial with
                      | Error _ -> None
                      | Ok v -> Some (trial, v, Arch.cost trial)
                    end)
          in
          let results = Pool.map_n ~jobs pool evaluate (Array.length batch) in
          let k = ref 0 and accepted = ref false in
          while (not !accepted) && !k < Array.length batch do
            incr trials;
            incr merges_tried;
            (match results.(!k) with
            | Some (trial, v, trial_cost)
              when feasible v && trial_cost < Arch.cost !current -> (
                (* The verdict said feasible, so the materializing run
                   cannot fail (same inputs, bit-identical result). *)
                match run_schedule trial with
                | Error _ -> ()
                | Ok sched ->
                    current := trial;
                    current_sched := sched;
                    incr merges_accepted;
                    improved := true;
                    accepted := true;
                    let accepted_pos, _, _ = batch.(!k) in
                    pos := accepted_pos + 1)
            | Some _ | None -> ());
            incr k
          done
        done;
        (* Mode-combining pass on each multi-image device.  The fit
           precheck reads a pass-entry snapshot of each device's
           occupied modes: on the copy path those are objects of the
           pass-entry architecture, untouched by accepted combines (the
           iteration walks the old PE vector while [current] moves to
           fresh copies), so the in-place path snapshots the same
           numbers explicitly and both paths attempt the identical
           trial sequence. *)
        let combine_plan =
          let acc = ref [] in
          Vec.iter
            (fun (pe : Arch.pe_inst) ->
              match occupied_modes pe with
              | (a : Arch.mode) :: (_ :: _ as rest) ->
                  acc :=
                    ( pe.Arch.p_id,
                      pe.Arch.ptype,
                      (a.Arch.m_id, a.Arch.m_gates, a.Arch.m_pins),
                      List.map
                        (fun (b : Arch.mode) ->
                          (b.Arch.m_id, b.Arch.m_gates, b.Arch.m_pins))
                        rest )
                    :: !acc
              | _ -> ())
            !current.Arch.pes;
          List.rev !acc
        in
        List.iter
          (fun (pe_id, ptype, (a_id, a_gates, a_pins), rest) ->
            List.iter
              (fun (b_id, b_gates, b_pins) ->
                let pfus, pins = scaled_caps ~fit_scale ptype in
                let fits =
                  a_gates + b_gates <= pfus && a_pins + b_pins <= pins
                in
                if fits then
                  Trace.span trace
                    ~args:[ ("pe", Trace.Num pe_id) ]
                    "merge.combine"
                    (fun () ->
                      if in_place then begin
                        let base_cost = Arch.cost !current in
                        let ck = Arch.checkpoint !current in
                        let verdict_ok =
                          match
                            apply_combine spec clustering !current ~pe_id
                              ~mode_a:a_id ~mode_b:b_id
                          with
                          | Error _ -> false
                          | Ok () ->
                              if rejectable ~base_cost ~strict:false !current
                              then begin
                                Memo.note_prune memo;
                                false
                              end
                              else begin
                                match
                                  Memo.evaluate memo ~copy_cap spec clustering
                                    !current
                                with
                                | Error _ -> false
                                | Ok v ->
                                    feasible v && Arch.cost !current <= base_cost
                              end
                        in
                        if verdict_ok then begin
                          match run_schedule !current with
                          | Error _ -> Arch.rollback !current ck
                          | Ok sched ->
                              Arch.commit !current ck;
                              current_sched := sched;
                              incr modes_combined;
                              improved := true
                        end
                        else Arch.rollback !current ck
                      end
                      else
                        match
                          try_combine spec clustering !current ~pe_id
                            ~mode_a:a_id ~mode_b:b_id
                        with
                        | Error _ -> ()
                        | Ok trial ->
                            if
                              rejectable ~base_cost:(Arch.cost !current)
                                ~strict:false trial
                            then Memo.note_prune memo
                            else begin
                              match
                                Memo.evaluate memo ~copy_cap spec clustering
                                  trial
                              with
                              | Error _ -> ()
                              | Ok v ->
                                  if
                                    feasible v
                                    && Arch.cost trial <= Arch.cost !current
                                  then begin
                                    match run_schedule trial with
                                    | Error _ -> ()
                                    | Ok sched ->
                                        current := trial;
                                        current_sched := sched;
                                        incr modes_combined;
                                        improved := true
                                  end
                            end))
              rest)
          combine_plan
      done;
      Ok
        ( !current,
          !current_sched,
          {
            merges_accepted = !merges_accepted;
            merges_tried = !merges_tried;
            modes_combined = !modes_combined;
            iterations = !iterations;
          } )
