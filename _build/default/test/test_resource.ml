module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Caps = Crusade_resource.Caps

let check = Alcotest.check

let stock = Helpers.stock_lib
let small = Helpers.small_lib

let stock_shape () =
  check Alcotest.int "8 CPUs" 8 (List.length (Library.cpus stock));
  check Alcotest.int "16 ASICs" 16 (List.length (Library.asics stock));
  check Alcotest.int "8 PPEs" 8 (List.length (Library.ppes stock));
  check Alcotest.int "4 link types" 4 (Library.n_link_types stock)

let ids_are_indices () =
  for i = 0 to Library.n_pe_types stock - 1 do
    check Alcotest.int "pe id" i (Library.pe stock i).Pe.id
  done;
  for i = 0 to Library.n_link_types stock - 1 do
    check Alcotest.int "link id" i (Library.link stock i).Link.id
  done

let create_rejects_bad_ids () =
  let pe = Library.pe stock 3 in
  check Alcotest.bool "bad id rejected" true
    (try
       ignore (Library.create ~pes:[| pe |] ~links:[||]);
       false
     with Invalid_argument _ -> true)

let partial_devices_exist () =
  let partial =
    List.filter
      (fun (pe : Pe.t) ->
        match Pe.ppe_info pe with
        | Some info -> info.Pe.partially_reconfigurable
        | None -> false)
      (Library.ppes stock)
  in
  check Alcotest.bool "XC6200/AT6000-class present" true (List.length partial >= 2)

let pe_class_predicates () =
  let cpu = Library.pe stock 0 in
  check Alcotest.bool "is_cpu" true (Pe.is_cpu cpu);
  check Alcotest.bool "cpu not programmable" false (Pe.is_programmable cpu);
  check Alcotest.int "cpu has no pfus" 0 (Pe.pfus cpu);
  let fpga = List.hd (Library.ppes stock) in
  check Alcotest.bool "fpga programmable" true (Pe.is_programmable fpga);
  check Alcotest.bool "fpga pfus > 0" true (Pe.pfus fpga > 0);
  let asic = List.hd (Library.asics stock) in
  check Alcotest.bool "asic" true (Pe.is_asic asic);
  check Alcotest.bool "asic pins > 0" true (Pe.pins asic > 0)

let caps_values () =
  check (Alcotest.float 1e-9) "ERUF is 70%" 0.70 Caps.eruf;
  check (Alcotest.float 1e-9) "EPUF is 80%" 0.80 Caps.epuf;
  let fpga = List.hd (Library.ppes stock) in
  check Alcotest.bool "usable pfus capped" true
    (Caps.usable_pfus fpga < Pe.pfus fpga);
  check Alcotest.bool "usable pins capped" true
    (Caps.usable_pins fpga < Pe.pins fpga);
  let asic = List.hd (Library.asics stock) in
  (* ASICs are fixed silicon: fully usable. *)
  check Alcotest.bool "asic fully usable" true (Caps.usable_pins asic = Pe.pins asic)

let comm_time_properties () =
  let bus = Library.link stock 0 in
  check Alcotest.int "zero bytes free" 0 (Link.comm_time bus ~ports:2 ~bytes:0);
  let t1 = Link.comm_time bus ~ports:2 ~bytes:32 in
  let t2 = Link.comm_time bus ~ports:2 ~bytes:33 in
  check Alcotest.bool "packet boundary" true (t2 > t1);
  let more_ports = Link.comm_time bus ~ports:6 ~bytes:32 in
  check Alcotest.bool "more ports slower" true (more_ports >= t1)

let access_time_clamps () =
  let bus = Library.link stock 0 in
  let lo = Link.access_time bus ~ports:0 in
  let hi = Link.access_time bus ~ports:99 in
  check Alcotest.bool "clamped below" true (lo = Link.access_time bus ~ports:2);
  check Alcotest.bool "clamped above" true
    (hi = Link.access_time bus ~ports:bus.Link.max_ports)

let serial_is_point_to_point () =
  let serial = Library.link stock 3 in
  check Alcotest.int "two ports" 2 serial.Link.max_ports;
  check Alcotest.bool "topology" true (serial.Link.topology = Link.Point_to_point)

let small_library_fig2_capacities () =
  (* The Fig. 2 story needs F1 to hold one 90-gate task per mode and F2 to
     hold two but not three. *)
  let f1 = Library.pe small 3 and f2 = Library.pe small 4 in
  check Alcotest.bool "F1 holds one" true (Caps.usable_pfus f1 >= 90);
  check Alcotest.bool "F1 not two" true (Caps.usable_pfus f1 < 180);
  check Alcotest.bool "F2 holds two" true (Caps.usable_pfus f2 >= 180);
  check Alcotest.bool "F2 not three" true (Caps.usable_pfus f2 < 270)

let boot_memory_consistent () =
  List.iter
    (fun (pe : Pe.t) ->
      match Pe.ppe_info pe with
      | Some info ->
          check Alcotest.int "boot bytes = config bits / 8"
            ((info.Pe.config_bits + 7) / 8)
            info.Pe.boot_memory_bytes
      | None -> ())
    (Library.ppes stock)

let suite =
  [
    Alcotest.test_case "stock shape" `Quick stock_shape;
    Alcotest.test_case "ids are indices" `Quick ids_are_indices;
    Alcotest.test_case "create rejects bad ids" `Quick create_rejects_bad_ids;
    Alcotest.test_case "partial devices exist" `Quick partial_devices_exist;
    Alcotest.test_case "pe class predicates" `Quick pe_class_predicates;
    Alcotest.test_case "ERUF/EPUF caps" `Quick caps_values;
    Alcotest.test_case "comm time" `Quick comm_time_properties;
    Alcotest.test_case "access time clamps" `Quick access_time_clamps;
    Alcotest.test_case "serial p2p" `Quick serial_is_point_to_point;
    Alcotest.test_case "fig2 capacities" `Quick small_library_fig2_capacities;
    Alcotest.test_case "boot memory consistent" `Quick boot_memory_consistent;
  ]
