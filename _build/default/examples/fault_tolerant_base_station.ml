(* CRUSADE-FT on a mobile base-station workload (Section 6 / Table 3).

   The A1TR-class example is annotated with assertions (parity, checksum,
   ... with fault coverages), error-transparency flags and availability
   budgets: 4 minutes/year of unavailability for transmission functions,
   12 for provisioning.  CRUSADE-FT adds assertion and
   duplicate-and-compare tasks, synthesizes the architecture, and
   provisions standby spares until the Markov availability model clears
   every budget.

     dune exec examples/fault_tolerant_base_station.exe [-- --scale N] *)

module C = Crusade.Crusade_core
module F = Crusade_fault.Ft
module W = Crusade_workloads.Comm_system

let () =
  let scale =
    match Array.to_list Sys.argv with
    | _ :: "--scale" :: n :: _ -> float_of_string n
    | _ -> 8.0
  in
  let lib = Crusade_resource.Library.stock () in
  let spec = W.generate lib (W.scaled (W.preset "A1TR") scale) in
  let run reconfig =
    let options = { C.default_options with dynamic_reconfiguration = reconfig } in
    match F.synthesize ~options spec lib with
    | Error msg ->
        Format.printf "failed: %s@." msg;
        exit 1
    | Ok r ->
        let stats = r.F.transform_stats in
        Format.printf "--- CRUSADE-FT, reconfiguration %s ---@."
          (if reconfig then "ON" else "OFF");
        Format.printf
          "fault detection: %d assertion tasks, %d duplicate-and-compare pairs,@."
          stats.Crusade_fault.Transform.assertion_tasks
          stats.Crusade_fault.Transform.duplicate_tasks;
        Format.printf
          "                 %d tasks covered through error transparency@."
          stats.Crusade_fault.Transform.shared_by_transparency;
        Format.printf "%a@." C.pp_report r.F.core;
        let p = r.F.provisioning in
        List.iter
          (fun ((pe : Crusade_resource.Pe.t), count) ->
            Format.printf "spares: %d x %s@." count pe.Crusade_resource.Pe.name)
          p.Crusade_fault.Dependability.spares;
        let worst =
          List.fold_left
            (fun acc (_, u) -> max acc u)
            0.0 p.Crusade_fault.Dependability.graph_unavailability
        in
        Format.printf "worst graph unavailability: %.3f min/year (budgets: 4 / 12)@."
          worst;
        Format.printf "total cost including spares: $%s@.@."
          (Crusade_util.Text_table.fmt_dollars r.F.total_cost);
        r.F.total_cost
  in
  let c0 = run false in
  let c1 = run true in
  Format.printf
    "dynamic reconfiguration saves %.1f%% on the fault-tolerant architecture.@."
    ((c0 -. c1) /. c0 *. 100.0)
