(** Delay management (Section 4.5): the effective resource utilization
    factor (ERUF) and effective pin utilization factor (EPUF) experiment.

    The co-synthesis scheduler trusts each task's worst-case execution
    time; that constraint only holds if place-and-route does not stretch
    the critical path.  CRUSADE caps PPE fills at ERUF = 70% of PFUs and
    EPUF = 80% of pins.  This module measures, for a circuit sharing a
    device filled to a given utilization, how much its post-route delay
    exceeds the delay constraint derived at the default caps. *)

val default_eruf : float
(** 0.70 *)

val default_epuf : float
(** 0.80 *)

type result = Increase_pct of float | Unroutable

val measure :
  ?device:Device.t ->
  ?samples:int ->
  Circuit.t ->
  eruf:float ->
  epuf:float ->
  seed:int ->
  result
(** [measure circuit ~eruf ~epuf ~seed] fills the device with synthetic
    filler functions up to [eruf * pfus] PFUs, drives [epuf * io_pins]
    pin nets, places and routes, and reports the percentage increase of
    the circuit's critical-path delay over its constraint (the delay
    measured at the default caps with the same seed).  Averaged over
    [samples] seeds (default 15).  [Unroutable] when a majority of the
    samples fail to route.  When [device] is omitted, the circuit is
    hosted on a device it occupies to about 35%, so the ERUF sweep has
    room to fill. *)

(**/**)

val one_sample_for_debug :
  Circuit.t -> eruf:float -> epuf:float -> seed:int -> float option
(** Overflow ratio of a single placement/routing sample; testing hook. *)
