(** CRUSADE: the heuristic constructive co-synthesis flow (Fig. 5).

    Pre-processing (association array, clustering) -> synthesis (cluster
    allocation with scheduling and finish-time estimation in the inner
    loop) -> dynamic-reconfiguration generation (compatibility-driven
    merging of programmable devices into multi-mode devices, and
    reconfiguration-controller interface synthesis). *)

type abort_reason =
  | Bound_abort of {
      floor : float;
          (** admissible lower bound on the cost the trajectory would
              have returned; [infinity] encodes "provably infeasible"
              (positive tardiness lower bound after repair) *)
      incumbent_cost : float;
      incumbent_index : int;
    }
  | Budget_abort
      (** the wall-clock budget expired at a cooperative check point *)

type traj
(** Per-trajectory portfolio control block carried in {!options}
    ([portfolio] field).  Constructed only by
    {!Portfolio.trajectory_options} / {!Portfolio.run}. *)

type options = {
  dynamic_reconfiguration : bool;
      (** enable multi-mode PPEs (new-mode allocations and the merge
          phase); off = every programmable device keeps one image *)
  copy_cap : int;  (** association-array explicit-copy cap per graph *)
  max_cluster_size : int;
  use_clustering : bool;  (** false = singleton clusters (ablation) *)
  eval_window : int;
      (** allocation options evaluated per cluster before falling back
          to the least-tardy one *)
  merge_trials_per_pass : int;
  allow_new_pes : bool;
      (** false restricts allocation to the existing PEs (plus new modes
          on programmable devices) — the field-upgrade scenario of
          Section 3, where features are added by reprogramming alone *)
  jobs : int;
      (** domains used for speculative candidate evaluation (allocation
          inner loop and merge trials); results are bit-identical to
          [jobs = 1] — the lowest-indexed candidate the sequential search
          would commit always wins.  Defaults to the [CRUSADE_JOBS]
          environment variable (clamped to the machine), else 1. *)
  prune : bool;
      (** stage-1 candidate evaluation (default true): consult the
          admissible tardiness lower bound
          {!Crusade_sched.Schedule.estimate} before scheduling a
          candidate, and skip the full schedule when the bound already
          proves the candidate infeasible and no better than the
          incumbent.  Synthesis results are bit-identical with pruning
          on or off. *)
  memo : bool;
      (** stage-2 candidate evaluation (default true): serve repeated
          schedules of structurally identical architectures from the
          run's bounded {!Crusade_sched.Memo} table. *)
  incremental : bool;
      (** incremental rescheduling (default true): evaluate trial
          candidates by replaying the provably unchanged prefix of the
          last full scheduler run ({!Crusade_sched.Incremental}) instead
          of rebuilding every timeline from scratch.  Synthesis results
          are bit-identical with it on or off; [--no-incremental] in the
          CLI and benchmark drivers maps here. *)
  incremental_merge : bool;
      (** incremental merge phase (default true): sequential
          ([jobs = 1]) merge trials mutate the live architecture under
          the {!Crusade_alloc.Arch.checkpoint} journal and roll back on
          rejection instead of deep-copying it per trial, so each trial
          is a delta evaluated against a warm per-pass replay basis.
          Results — accepted merges, schedules, merge stats — are
          bit-identical with it on or off; [--no-incremental-merge] in
          the CLI and benchmark drivers maps here. *)
  trace : Crusade_util.Trace.t option;
      (** when set, every synthesis phase (pre-processing, clustering,
          allocation per cluster and per candidate, repair, merge
          trials, interface synthesis) and every underlying
          [Schedule.run]/[estimate] emits span events into the sink,
          plus counter samples of the evaluator statistics at phase
          boundaries; [None] (the default) takes a no-op fast path that
          never reads the clock, and synthesis output is bit-identical
          either way.  Export with {!Crusade_util.Trace.write_file}. *)
  portfolio : traj option;
      (** portfolio trajectory control block ([None], the default, for
          plain runs — zero overhead).  When set (by {!Portfolio}), the
          flow perturbs its cluster pop order, allocation tie-breaks and
          merge knobs from the trajectory's seeded stream, and checks
          the shared incumbent bound / wall-clock budget at commit
          points, aborting when it provably cannot win. *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation hook ([None], the default, costs
          nothing): polled at the same commit points as the portfolio
          budget check — after each cluster allocation, each repair
          rip-up, each merge pass and before interface synthesis.  When
          it returns [true] the flow raises {!Cancelled}, which escapes
          {!synthesize} to the caller (a job server marks the job
          cancelled; nothing partial is returned). *)
}

exception Cancelled
(** Raised out of the synthesis flow when [options.cancel] reports the
    run should stop.  Never raised when [cancel = None]. *)

val default_options : options

type eval_stats = {
  pruned : int;
      (** candidates rejected by the stage-1 bound without a schedule *)
  memo_hits : int;  (** schedules served from the memo table *)
  memo_misses : int;  (** schedules actually computed *)
  memo_bypassed : int;
      (** verdict-only evaluations that skipped the memo table because
          the incremental engine answered instead; explains the frozen
          [memo_hits] whenever [options.incremental] is on *)
  rollbacks : int;  (** journaled trial mutations undone in place *)
  replays : int;
      (** candidate evaluations served by incremental prefix replay *)
  rebuilds : int;
      (** full scheduler runs through the incremental engine; 0 when
          [options.incremental] is off *)
  merge_replays : int;
      (** the merge phase's share of [replays] — how much of the PPE
          merge/combine trial load the incremental basis absorbed *)
  merge_rebuilds : int;  (** the merge phase's share of [rebuilds] *)
  basis_adoptions : int;
      (** replays served by a basis recorded under a different
          clustering identity (cross-basis adoption; a subset of
          [replays]).  Zero outside portfolio runs — a single
          trajectory's bases always carry its own clustering *)
  basis_cuts : int;
      (** total recording steps the adopted bases could not cover (the
          rescheduled remainders); small relative to adoptions means
          bases transplant well across clusterings *)
  traj_launched : int;
      (** portfolio trajectories launched; 0 outside portfolio runs
          (the winning result is annotated via {!Portfolio.annotate}) *)
  traj_completed : int;  (** trajectories that ran to completion *)
  traj_aborted : int;  (** bound- or budget-aborted trajectories *)
  bound_aborts : int;
      (** trajectories aborted by the shared incumbent bound; the count
          (unlike the winner) depends on domain interleaving *)
  incumbent_updates : int;
      (** times a completed feasible result improved the shared bound *)
}
(** Two-stage-evaluator counters of one synthesis flow.  Each flow owns
    its counters (and its memo table), so back-to-back or concurrent
    syntheses in one process report fully independent, exact statistics.
    The [traj_*]/[bound_aborts]/[incumbent_updates] fields are zero for
    plain flows; {!Portfolio.annotate} folds a portfolio run's counters
    into its winning result. *)

type result = {
  spec : Crusade_taskgraph.Spec.t;
  arch : Crusade_alloc.Arch.t;
  clustering : Crusade_cluster.Clustering.t;
  schedule : Crusade_sched.Schedule.t;
  cost : float;
  n_pes : int;
  n_links : int;
  n_modes : int;  (** configuration images across all PPEs *)
  deadlines_met : bool;
  cpu_seconds : float;
      (** [Sys.time] delta: processor time summed over every domain, so
          it exceeds elapsed time when [options.jobs > 1] *)
  wall_seconds : float;  (** elapsed wall-clock time of the synthesis *)
  merge_stats : Crusade_reconfig.Merge.stats option;
  chosen_interface : Crusade_reconfig.Interface.option_t option;
  eval_stats : eval_stats;
}

val synthesize :
  ?options:options ->
  ?include_graph:(int -> bool) ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  (result, string) Stdlib.result
(** Runs the full co-synthesis flow.  [Error] is returned only for
    structurally impossible inputs (a cluster no PE type can host);
    deadline misses are reported through [deadlines_met].
    [include_graph] restricts synthesis to a subset of the task graphs
    (used by {!Upgrade}); excluded graphs' clusters stay unallocated. *)

val continue_allocation :
  ?options:options -> result -> (result, string) Stdlib.result
(** Resumes a partial synthesis: allocates every still-unplaced cluster
    against (a copy of) the result's architecture, then re-runs
    dynamic-reconfiguration generation and interface synthesis.  With
    [options.allow_new_pes = false] this asks: can the remaining
    functionality be accommodated purely by reprogramming the deployed
    hardware? *)

(** Anytime portfolio-parallel search (DESIGN.md "Portfolio search").

    Runs N perturbed copies of a synthesis flow concurrently on the
    {!Crusade_util.Pool} domain pool.  Trajectory 0 is the unperturbed
    reference (bit-identical to the plain flow, exempt from aborts);
    trajectories 1..N-1 draw deterministic perturbations — cluster
    pop-order jitter, allocation tie-break jitter, evaluation-window /
    copy-cap / merge-knob variation — from a stream seeded by
    (seed, index).  Completed feasible results publish into a shared
    atomic incumbent (cost, index) bound; at its commit points a
    trajectory compares an admissible cost floor against the incumbent
    and aborts when it provably cannot win.  Because aborts only ever
    remove trajectories that could not have won, the winner — resolved
    as the lexicographic minimum of (deadlines missed, cost, index) over
    completed trajectories — is identical for a fixed (seed, N)
    whatever the domain interleaving or [jobs] value; only the abort
    counters vary.  With a [budget_ms] wall-clock budget, trajectories
    past the deadline abort at their next check point and the best
    result found so far is returned (determinism then extends only to
    the trajectories that completed). *)
module Portfolio : sig
  type stats = {
    launched : int;
    completed : int;
    failed : int;  (** flows that returned [Error] *)
    aborted : int;
    bound_aborts : int;
    budget_aborts : int;
    incumbent_updates : int;
  }

  type trajectory_report =
    | Completed of { t_cost : float; t_met : bool }
    | Failed of string
    | Aborted of abort_reason

  type 'a outcome = {
    best : 'a;
    best_index : int;
    best_cost : float;
    best_met : bool;
    baseline_cost : float option;
        (** trajectory 0's (unperturbed) cost; [None] only if it failed *)
    trajectories : trajectory_report array;
        (** per-trajectory diagnostics; which losing trajectories show
            as [Aborted] (vs [Completed]) depends on interleaving *)
    stats : stats;
  }

  val resolve_n : ?pool:Crusade_util.Pool.t -> int -> int
  (** [resolve_n n] maps the CLI convention: [n <= 0] means one
      trajectory per available domain ({!Crusade_util.Pool.size}). *)

  val trajectory_options : options -> seed:int -> index:int -> options
  (** The exact options trajectory [index] of a [run] with this [seed]
      executes, minus bound and budget — for rerunning a trajectory to
      completion (abort-soundness oracles, debugging).  [index = 0]
      returns the base options (the unperturbed reference). *)

  val annotate : eval_stats -> stats -> eval_stats
  (** Folds portfolio counters into a result's [eval_stats] (used by the
      CLI/bench drivers on the winning result). *)

  val run :
    ?pool:Crusade_util.Pool.t ->
    ?jobs:int ->
    ?budget_ms:int ->
    ?seed:int ->
    ?use_bound:bool ->
    n:int ->
    options:options ->
    flow:(options -> ('a, string) Stdlib.result) ->
    cost:('a -> float) ->
    met:('a -> bool) ->
    unit ->
    ('a outcome, string) Stdlib.result
  (** [run ~n ~options ~flow ~cost ~met ()] drives the portfolio.
      [flow] is the full synthesis entry point (e.g.
      [fun o -> synthesize ~options:o spec lib], or the fault-tolerant
      flow); it receives each trajectory's derived options and must let
      exceptions pass through.  [cost]/[met] project the comparison key
      out of a flow result.  [n <= 0] resolves via {!resolve_n};
      [n = 1] without budget is a pure passthrough of [flow options].
      [jobs] (default [min n (Pool.size pool)]) caps concurrent
      trajectory runners; leftover factors of [jobs / n] go to each
      trajectory's inner candidate evaluation.  [use_bound:false]
      disarms the incumbent bound (every trajectory runs to completion —
      the differential oracle for abort soundness).  [Error] is returned
      only when no trajectory completed — trajectory 0 cannot abort, so
      in practice exactly when the plain flow errors. *)
end

val audit : ?include_graph:(int -> bool) -> result -> Crusade_alloc.Audit.violation list
(** End-to-end first-principles audit of a synthesis result, empty when
    sound.  [include_graph] (default: all) restricts the coverage rule
    to the graphs the result is supposed to place — partial syntheses
    (an upgrade base, a post-departure repair) are otherwise flagged for
    their intentionally unplaced clusters.  Composes:
    - the architecture-level rules of {!Crusade_alloc.Audit.check}
      (placement feasibility, occupancy/capacity/cost/count accounting,
      exclusion, connectivity, mode discipline), judged against the
      schedule-discovered graph compatibility — the merge phase's own
      notion — refined by actual per-device serialization, so legal
      dynamic-reconfiguration sharings are never flagged;
    - a ["coverage"] rule: every cluster of the specification is placed;
    - a ["verdict-consistency"] rule: the result's [deadlines_met]
      agrees with its schedule;
    - the timeline rules of {!Crusade_sched.Validate.check} (precedence,
      arrivals, execution times, CPU capacity, mode exclusivity and
      boot gaps, deadline verdict).

    The audit runs once on a finished result — never inside the
    synthesis inner loop — so enabling it costs a single pass over the
    final architecture and schedule. *)

val pp_report : Format.formatter -> result -> unit
(** Human-readable architecture/synthesis report. *)

val schedule_fingerprint : Crusade_sched.Schedule.t -> int
(** Order-sensitive hash of every instance's (task, copy, start,
    finish): two schedules with equal fingerprints are the same
    timeline for differential purposes.  Deterministic within a build
    (it composes [Hashtbl.hash]). *)

val result_json : result -> string
(** Deterministic machine-readable summary of a result: spec name and
    sizes, cost, PE/link/image counts, deadline verdict, total
    tardiness, {!schedule_fingerprint} and a sorted per-PE-type tally.
    Two syntheses of the same (spec, options) — any [jobs] count, any
    evaluator configuration — produce byte-identical strings, which is
    what lets a result cache serve them interchangeably; wall/cpu times
    and interleaving-dependent counters are deliberately excluded. *)

(** Warm re-synthesis under change (DESIGN.md "Re-synthesis under
    change"): repair a deployed architecture after a change event
    instead of synthesizing from scratch.

    {!Resynth.apply} computes the invalidation closure of the change —
    the clusters it rips out of their sites — seeds the incremental
    engine's recording store from the post-change architecture so every
    schedule prefix the change provably left untouched replays verbatim,
    and re-runs the synthesis flow over only the cut tail (placed
    clusters are treated as already allocated).  Two attempts mirror the
    field-upgrade discipline: first with [allow_new_pes = false] (can
    the deployed hardware absorb the change by reprogramming alone?),
    then, if deadlines are still missed and the caller's options permit
    new parts, with new hardware allowed.  Both attempts' outcomes are
    reported, so an [Infeasible] verdict explains why each failed. *)
module Resynth : sig
  type change =
    | Graph_arrival of int list
        (** graphs (by id) previously excluded from synthesis start
            running: allocate their clusters onto the deployed
            architecture *)
    | Graph_departure of int list
        (** graphs stop running: vacate their clusters, then let repair
            and the merge phase shrink the architecture *)
    | Pe_failure of int
        (** the PE instance fails in the field: its residents are ripped
            up and restarted warm on the survivors (or, failing that, on
            replacement hardware) *)
    | Exec_drift of int
        (** measured execution times drift by the given percentage
            (e.g. [20] = 20% slower, [-10] = 10% faster); the
            specification is rebuilt with scaled execution vectors while
            clustering and placements are preserved *)
    | Upgrade of int list
        (** field upgrade: same mechanics as [Graph_arrival], reported
            in {!Upgrade.analyze}'s vocabulary *)

  type attempt_outcome = Met | Tardy of int  (** total tardiness, us *) | Failed of string

  type verdict =
    | Images_only of { result : result; added_images : int }
        (** the deployed hardware absorbs the change by reprogramming
            alone ([added_images] may be negative after a departure) *)
    | Needs_hardware of {
        result : result;
        added_pes : int;
        added_cost : float;
      }
    | Infeasible
        (** both attempts failed; see the report's attempt outcomes *)

  type report = {
    deployed : result;
    change : change;
    verdict : verdict;
    reprogram_attempt : attempt_outcome;
    hardware_attempt : attempt_outcome option;
        (** [None] when reprogramming sufficed or new parts were
            forbidden by the caller's options *)
    ripped_clusters : int list;
        (** clusters the change vacated (empty for arrivals and drift,
            where only new or repair-chosen clusters move) *)
    added_pes : int;  (** in-use PE instances gained vs. deployed *)
    removed_pes : int;  (** in-use PE instances vacated vs. deployed *)
    cost_delta : float option;  (** final - deployed; [None] if infeasible *)
    resynth_seconds : float;  (** wall-clock re-synthesis latency *)
  }

  val apply :
    ?options:options -> result -> change -> (report, string) Stdlib.result
  (** [apply deployed change] repairs the deployed result.  [Error] only
      for invalid change targets (unknown graph/PE ids, drift <= -100%)
      or structurally impossible re-synthesis; deadline misses are
      reported through the verdict. *)

  val final_result : report -> result option
  (** The repaired result, [None] when the verdict is [Infeasible]. *)

  val audit_report : report -> Crusade_alloc.Audit.violation list
  (** {!audit} of the repaired result with the coverage rule restricted
      to the graphs the change left deployed (deployed + arrivals -
      departures); empty when infeasible or sound. *)

  val expected_graphs : result -> change -> int -> bool
  (** The coverage predicate {!audit_report} uses, exposed for callers
      auditing with extra context. *)

  val drift_spec :
    Crusade_taskgraph.Spec.t ->
    int ->
    (Crusade_taskgraph.Spec.t, string) Stdlib.result
  (** The rebuilt specification an [Exec_drift] change synthesizes
      against: every feasible execution time scaled by the given
      percentage, ids/edges/compatibility preserved.  Exposed so
      differential harnesses can run the from-scratch comparison on
      exactly the same drifted workload. *)

  val describe_change : change -> string

  val pp_report : Format.formatter -> report -> unit
end
