type topology = Point_to_point | Bus | Lan

type t = {
  id : int;
  name : string;
  cost : float;
  port_cost : float;
  topology : topology;
  max_ports : int;
  access_times : int array;
  bytes_per_packet : int;
  packet_time_us : int;
}

let average_ports = 4

let access_time t ~ports =
  let n = Array.length t.access_times in
  assert (n > 0);
  let idx = Crusade_util.Arith.clamp ~lo:0 ~hi:(n - 1) (ports - 2) in
  t.access_times.(idx)

let comm_time t ~ports ~bytes =
  if bytes <= 0 then 0
  else begin
    let packets = Crusade_util.Arith.ceil_div bytes t.bytes_per_packet in
    access_time t ~ports + (packets * t.packet_time_us)
  end

let pp fmt t =
  let topo =
    match t.topology with Point_to_point -> "p2p" | Bus -> "bus" | Lan -> "LAN"
  in
  Format.fprintf fmt "%s %s ($%.0f)" topo t.name t.cost
