test/test_fault.ml: Alcotest Array Crusade Crusade_fault Crusade_resource Crusade_taskgraph Helpers List Printf
