lib/core/upgrade.mli: Crusade_core Crusade_resource Crusade_taskgraph
