module Spec = Crusade_taskgraph.Spec
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Schedule = Crusade_sched.Schedule
module Vec = Crusade_util.Vec

type step = {
  mode : int;
  load_at : int;
  active_from : int;
  active_until : int;
}

type device_program = {
  pe_id : int;
  device : string;
  steps : step list;
  switches : int;
  reboot_time_us : int;
}

let extract (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t)
    (sched : Schedule.t) =
  ignore spec;
  (* Collect execution windows per (device, mode). *)
  let windows = Hashtbl.create 16 in
  Array.iter
    (fun (i : Schedule.instance) ->
      if i.Schedule.start >= 0 then begin
        match Arch.task_site arch clustering i.Schedule.i_task with
        | Some site
          when Pe.is_programmable (Vec.get arch.Arch.pes site.Arch.s_pe).Arch.ptype ->
            let key = site.Arch.s_pe in
            let cur = Option.value ~default:[] (Hashtbl.find_opt windows key) in
            Hashtbl.replace windows key
              ((site.Arch.s_mode, i.Schedule.start, i.Schedule.finish) :: cur)
        | Some _ | None -> ()
      end)
    sched.Schedule.instances;
  let programs = ref [] in
  Hashtbl.iter
    (fun pe_id executions ->
      let pe = Vec.get arch.Arch.pes pe_id in
      if Arch.n_images pe >= 2 then begin
        (* Coalesce chronologically: consecutive executions of the same
           mode belong to one window. *)
        let sorted =
          List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2) executions
        in
        let rec coalesce acc = function
          | [] -> List.rev acc
          | (mode, s, e) :: rest -> (
              match acc with
              | (m', s', e') :: acc' when m' = mode ->
                  coalesce ((m', s', max e' e) :: acc') rest
              | _ -> coalesce ((mode, s, e) :: acc) rest)
        in
        let windows = coalesce [] sorted in
        let boot mode_id =
          if mode_id >= 0 && mode_id < Vec.length pe.Arch.modes then
            Arch.mode_boot_us pe (Vec.get pe.Arch.modes mode_id)
          else 0
        in
        let steps =
          List.map
            (fun (mode, s, e) ->
              { mode; load_at = s - boot mode; active_from = s; active_until = e })
            windows
        in
        let switches = max 0 (List.length steps - 1) in
        let reboot_time_us =
          match steps with
          | [] -> 0
          | _ :: later -> List.fold_left (fun acc st -> acc + boot st.mode) 0 later
        in
        programs :=
          {
            pe_id;
            device = pe.Arch.ptype.Pe.name;
            steps;
            switches;
            reboot_time_us;
          }
          :: !programs
      end)
    windows;
  List.sort (fun a b -> compare a.pe_id b.pe_id) !programs

let pp fmt p =
  Format.fprintf fmt "@[<v>device %d (%s): %d reconfigurations, %d us rebooting@,"
    p.pe_id p.device p.switches p.reboot_time_us;
  List.iter
    (fun st ->
      Format.fprintf fmt "  load image %d at %6d us; active %6d..%6d us@," st.mode
        st.load_at st.active_from st.active_until)
    p.steps;
  Format.fprintf fmt "@]"
