test/test_cluster.ml: Alcotest Array Crusade_cluster Crusade_taskgraph Helpers List
