test/test_workloads.ml: Alcotest Array Crusade_taskgraph Crusade_workloads Helpers List Printf String
