(* crusade — command-line front end for the co-synthesis library.

     crusade synth A1TR --scale 8 --no-reconfig
     crusade ft NGXM --scale 16
     crusade delay cvs1
     crusade list *)

module C = Crusade.Crusade_core
module F = Crusade_fault.Ft
module W = Crusade_workloads.Comm_system
module Ex = Crusade_workloads.Examples

open Cmdliner

let spec_of_name ?seed name scale =
  let lib = Crusade_resource.Library.stock () in
  let small = Crusade_resource.Library.small () in
  match name with
  | "figure2" -> Ok (Ex.figure2 small, small)
  | "figure4" -> Ok (Ex.figure4 small, small)
  | "multirate" -> Ok (Ex.multirate lib, lib)
  | _ -> (
      match W.preset name with
      | params ->
          let params = W.scaled params scale in
          let params =
            match seed with Some s -> { params with W.seed = s } | None -> params
          in
          Ok (W.generate lib params, lib)
      | exception Not_found ->
          Error
            (Printf.sprintf
               "unknown workload %s (try `crusade list`)" name))

let name_arg =
  let doc = "Workload: one of the Table 2 examples (A1TR ... NGXM), figure2, figure4, multirate." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let scale_arg =
  let doc = "Divide the example's task count by $(docv) (generated examples only)." in
  Arg.(value & opt float 8.0 & info [ "scale" ] ~docv:"N" ~doc)

let reconfig_arg =
  let doc = "Disable dynamic reconfiguration (single configuration per device)." in
  Arg.(value & flag & info [ "no-reconfig" ] ~doc)

(* Integer converters that reject non-numeric and out-of-range values
   with a message naming the flag, instead of failing deep in the flow. *)
let int_conv ~flag ~ok ~expects =
  let parse s =
    match int_of_string_opt s with
    | Some v when ok v -> Ok v
    | Some v ->
        Error (`Msg (Printf.sprintf "%s must be %s (got %d)" flag expects v))
    | None ->
        Error (`Msg (Printf.sprintf "%s expects an integer (got %s)" flag s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let positive_int flag = int_conv ~flag ~ok:(fun v -> v > 0) ~expects:"positive"

let non_negative_int flag =
  int_conv ~flag ~ok:(fun v -> v >= 0) ~expects:"non-negative"

let copy_cap_arg =
  let doc =
    "Cap on explicit association-array copies per graph (positive)."
  in
  Arg.(
    value
    & opt (some (positive_int "--copy-cap")) None
    & info [ "copy-cap" ] ~docv:"N" ~doc)

let eval_window_arg =
  let doc =
    "Allocation candidates evaluated per cluster before falling back to the \
     least-tardy one (positive)."
  in
  Arg.(
    value
    & opt (some (positive_int "--eval-window")) None
    & info [ "eval-window" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Override the workload generator seed (generated examples only)." in
  Arg.(
    value
    & opt (some (non_negative_int "--seed")) None
    & info [ "seed" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON profile of the synthesis phases to \
     $(docv) (load it in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let portfolio_arg =
  let doc =
    "Run $(docv) perturbed synthesis trajectories in parallel and keep the \
     cheapest feasible result (0 = one trajectory per available domain).  \
     Trajectory 0 is the unperturbed flow, so the portfolio never returns a \
     worse architecture than the plain run; 1 (the default) is the plain run \
     itself, bit for bit."
  in
  Arg.(
    value
    & opt (some (non_negative_int "--portfolio")) None
    & info [ "portfolio" ] ~docv:"N" ~doc)

let budget_ms_arg =
  let doc =
    "Anytime wall-clock budget in milliseconds: trajectories past the \
     deadline abort at their next check point and the best architecture \
     found so far is returned.  The unperturbed trajectory is exempt, so a \
     result is always produced."
  in
  Arg.(
    value
    & opt (some (positive_int "--budget-ms")) None
    & info [ "budget-ms" ] ~docv:"MS" ~doc)

let quality_arg =
  let doc =
    "Effort preset: $(b,fast) = single trajectory, $(b,balanced) = 4 \
     trajectories, $(b,max) = one trajectory per available domain.  An \
     explicit $(b,--portfolio) overrides it."
  in
  Arg.(
    value
    & opt (some (enum [ ("fast", `Fast); ("balanced", `Balanced); ("max", `Max) ])) None
    & info [ "quality" ] ~docv:"LEVEL" ~doc)

(* --portfolio wins over --quality; no flag at all means the plain flow. *)
let resolve_portfolio portfolio quality =
  match (portfolio, quality) with
  | Some n, _ -> n
  | None, Some `Fast -> 1
  | None, Some `Balanced -> 4
  | None, Some `Max -> 0
  | None, None -> 1

let pp_portfolio_summary (stats : C.Portfolio.stats) ~best_index ~best_cost
    ~baseline_cost =
  Format.printf
    "portfolio    : best of %d trajectories is #%d (%d completed, %d failed, \
     %d aborted: %d bound / %d budget; %d incumbent updates)@."
    stats.C.Portfolio.launched best_index stats.C.Portfolio.completed
    stats.C.Portfolio.failed stats.C.Portfolio.aborted
    stats.C.Portfolio.bound_aborts stats.C.Portfolio.budget_aborts
    stats.C.Portfolio.incumbent_updates;
  match baseline_cost with
  | Some b ->
      Format.printf "vs trajectory 0: $%s -> $%s (saved $%s)@."
        (Crusade_util.Text_table.fmt_dollars b)
        (Crusade_util.Text_table.fmt_dollars best_cost)
        (Crusade_util.Text_table.fmt_dollars (b -. best_cost))
  | None -> ()

let no_incremental_arg =
  let doc =
    "Disable incremental rescheduling (candidate evaluation by prefix replay \
     of the last full scheduler run).  Results are bit-identical with it on \
     or off; only the synthesis time moves.  Escape hatch and A/B lever."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_incremental_merge_arg =
  let doc =
    "Disable the incremental merge phase (sequential merge trials as \
     journaled in-place deltas on the live architecture instead of per-trial \
     deep copies).  Results are bit-identical with it on or off; only the \
     synthesis time moves.  Escape hatch and A/B lever."
  in
  Arg.(value & flag & info [ "no-incremental-merge" ] ~doc)

let audit_arg =
  let doc =
    "After synthesis, re-derive every architecture and schedule invariant \
     from first principles (capacities, occupancy, connectivity, exclusion, \
     mode compatibility, cost and count accounting, timeline validity) and \
     exit with code 3 if any is violated.  Runs once on the finished result, \
     off the synthesis hot path."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

(* Shared by synth/ft: print violations (if any) and fold the audit
   verdict into the exit code — violations trump a deadline miss. *)
let audit_exit ~audit violations base_exit =
  if not audit then base_exit
  else begin
    match violations with
    | [] ->
        print_endline "audit: all invariants hold";
        base_exit
    | vs ->
        List.iter
          (fun v -> Format.printf "%a@." Crusade_alloc.Audit.pp_violation v)
          vs;
        Printf.printf "audit: %d violation(s)\n" (List.length vs);
        3
  end

let options_with ~no_reconfig ~no_incremental ~no_incremental_merge ~copy_cap
    ~eval_window ~trace =
  let opts =
    {
      C.default_options with
      dynamic_reconfiguration = not no_reconfig;
      incremental = not no_incremental;
      incremental_merge = not no_incremental_merge;
    }
  in
  let opts =
    match copy_cap with Some v -> { opts with C.copy_cap = v } | None -> opts
  in
  let opts =
    match eval_window with
    | Some v -> { opts with C.eval_window = v }
    | None -> opts
  in
  { opts with C.trace }

(* The sink is flushed to disk even when synthesis fails: a trace of the
   failing run is exactly what the flag is for. *)
let with_trace trace_file k =
  let trace = Option.map (fun _ -> Crusade_util.Trace.create ()) trace_file in
  Fun.protect
    ~finally:(fun () ->
      match (trace_file, trace) with
      | Some path, Some t -> Crusade_util.Trace.write_file t path
      | _ -> ())
    (fun () -> k trace)

let synth_run name scale no_reconfig no_incremental no_incremental_merge
    copy_cap eval_window seed trace_file audit portfolio budget_ms quality =
  match spec_of_name ?seed name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, lib) ->
      with_trace trace_file (fun trace ->
          let options =
            options_with ~no_reconfig ~no_incremental ~no_incremental_merge
              ~copy_cap ~eval_window ~trace
          in
          let n = resolve_portfolio portfolio quality in
          if n = 1 && budget_ms = None then
            match C.synthesize ~options spec lib with
            | Ok r ->
                Format.printf "%a@." C.pp_report r;
                let base = if r.C.deadlines_met then 0 else 2 in
                audit_exit ~audit (if audit then C.audit r else []) base
            | Error msg ->
                prerr_endline msg;
                1
          else
            match
              C.Portfolio.run ?budget_ms ~n ~options
                ~flow:(fun o -> C.synthesize ~options:o spec lib)
                ~cost:(fun (r : C.result) -> r.C.cost)
                ~met:(fun (r : C.result) -> r.C.deadlines_met)
                ()
            with
            | Ok o ->
                let r =
                  {
                    o.C.Portfolio.best with
                    C.eval_stats =
                      C.Portfolio.annotate o.C.Portfolio.best.C.eval_stats
                        o.C.Portfolio.stats;
                  }
                in
                Format.printf "%a@." C.pp_report r;
                pp_portfolio_summary o.C.Portfolio.stats
                  ~best_index:o.C.Portfolio.best_index
                  ~best_cost:o.C.Portfolio.best_cost
                  ~baseline_cost:o.C.Portfolio.baseline_cost;
                let base = if r.C.deadlines_met then 0 else 2 in
                audit_exit ~audit (if audit then C.audit r else []) base
            | Error msg ->
                prerr_endline msg;
                1)

let ft_run name scale no_reconfig no_incremental no_incremental_merge copy_cap
    eval_window seed trace_file audit portfolio budget_ms quality =
  match spec_of_name ?seed name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, lib) ->
      with_trace trace_file (fun trace ->
      let options =
        options_with ~no_reconfig ~no_incremental ~no_incremental_merge
          ~copy_cap ~eval_window ~trace
      in
      let report (r : F.result) portfolio_outcome =
        Format.printf "%a@." C.pp_report r.F.core;
        Format.printf "spares cost $%s; total $%s@."
          (Crusade_util.Text_table.fmt_dollars
             r.F.provisioning.Crusade_fault.Dependability.spare_cost)
          (Crusade_util.Text_table.fmt_dollars r.F.total_cost);
        (match portfolio_outcome with
        | None -> ()
        | Some o ->
            pp_portfolio_summary o.C.Portfolio.stats
              ~best_index:o.C.Portfolio.best_index
              ~best_cost:o.C.Portfolio.best_cost
              ~baseline_cost:o.C.Portfolio.baseline_cost);
        let base = if r.F.core.C.deadlines_met then 0 else 2 in
        audit_exit ~audit (if audit then F.audit r else []) base
      in
      let n = resolve_portfolio portfolio quality in
      if n = 1 && budget_ms = None then
        match F.synthesize ~options spec lib with
        | Ok r -> report r None
        | Error msg ->
            prerr_endline msg;
            1
      else
        match
          C.Portfolio.run ?budget_ms ~n ~options
            ~flow:(fun o -> F.synthesize ~options:o spec lib)
            ~cost:(fun (r : F.result) -> r.F.total_cost)
            ~met:(fun (r : F.result) -> r.F.core.C.deadlines_met)
            ()
        with
        | Ok o ->
            let best = o.C.Portfolio.best in
            let r =
              {
                best with
                F.core =
                  {
                    best.F.core with
                    C.eval_stats =
                      C.Portfolio.annotate best.F.core.C.eval_stats
                        o.C.Portfolio.stats;
                  };
              }
            in
            report r (Some o)
        | Error msg ->
            prerr_endline msg;
            1)

let delay_run circuit =
  match
    List.find_opt
      (fun (c : Ex.table1_circuit) -> c.circuit_name = circuit)
      Ex.table1_circuits
  with
  | None ->
      Printf.eprintf "unknown circuit %s (cvs1 ... pewxfm)\n" circuit;
      1
  | Some c ->
      let netlist = Ex.table1_netlist c in
      Printf.printf "%s (%d PFUs, %d pins): delay increase vs ERUF at EPUF=0.80\n"
        c.circuit_name c.pfus c.pins;
      List.iter
        (fun eruf ->
          match Crusade_pnr.Delay.measure netlist ~eruf ~epuf:0.80 ~seed:7 with
          | Crusade_pnr.Delay.Increase_pct p ->
              Printf.printf "  ERUF %.2f: %6.1f %%\n" eruf p
          | Crusade_pnr.Delay.Unroutable ->
              Printf.printf "  ERUF %.2f: not routable\n" eruf)
        [ 0.70; 0.75; 0.80; 0.85; 0.90; 0.95; 1.00 ];
      0

let list_run () =
  print_endline "Generated examples (Table 2/3; use --scale to shrink):";
  List.iter
    (fun name ->
      let p = W.preset name in
      Printf.printf "  %-8s %5d tasks\n" name p.W.n_tasks)
    W.preset_names;
  print_endline "Hand-built examples: figure2, figure4, multirate";
  print_endline "Table 1 circuits:";
  List.iter
    (fun (c : Ex.table1_circuit) -> Printf.printf "  %-8s %3d PFUs\n" c.circuit_name c.pfus)
    Ex.table1_circuits;
  0

let synth_cmd =
  let doc = "co-synthesize an architecture for a workload" in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const synth_run $ name_arg $ scale_arg $ reconfig_arg $ no_incremental_arg
      $ no_incremental_merge_arg $ copy_cap_arg $ eval_window_arg $ seed_arg
      $ trace_arg $ audit_arg $ portfolio_arg $ budget_ms_arg $ quality_arg)

let ft_cmd =
  let doc = "co-synthesize a fault-tolerant architecture (CRUSADE-FT)" in
  Cmd.v (Cmd.info "ft" ~doc)
    Term.(
      const ft_run $ name_arg $ scale_arg $ reconfig_arg $ no_incremental_arg
      $ no_incremental_merge_arg $ copy_cap_arg $ eval_window_arg $ seed_arg
      $ trace_arg $ audit_arg $ portfolio_arg $ budget_ms_arg $ quality_arg)

let delay_cmd =
  let doc = "run the ERUF/EPUF delay-management sweep for a Table 1 circuit" in
  let circuit =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc:"Circuit name.")
  in
  Cmd.v (Cmd.info "delay" ~doc) Term.(const delay_run $ circuit)

let report_run name scale fmt_kind =
  match spec_of_name name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, lib) -> (
      match C.synthesize spec lib with
      | Error msg ->
          prerr_endline msg;
          1
      | Ok r ->
          (match fmt_kind with
          | "dot" ->
              print_string
                (Crusade_alloc.Export.to_dot ~title:name r.C.clustering
                   ~t_arch:r.C.arch)
          | "gantt" ->
              print_string
                (Crusade_sched.Gantt.render spec r.C.clustering r.C.arch r.C.schedule)
          | "program" ->
              List.iter
                (Format.printf "%a@." Crusade_reconfig.Program.pp)
                (Crusade_reconfig.Program.extract spec r.C.clustering r.C.arch
                   r.C.schedule)
          | "inventory" -> print_string (Crusade_alloc.Export.inventory r.C.arch)
          | other -> Printf.eprintf "unknown format %s\n" other);
          0)

let upgrade_run () =
  let lib = Crusade_resource.Library.small () in
  let spec, upgrade_graphs = Ex.upgrade_scenario lib in
  match Crusade.Upgrade.analyze spec lib ~upgrade_graphs with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok { Crusade.Upgrade.base; verdict } -> (
      Format.printf "deployed: %a@." C.pp_report base;
      match verdict with
      | Crusade.Upgrade.Reprogramming_only { added_images; _ } ->
          Format.printf "upgrade ships as %d configuration image(s)@." added_images;
          0
      | Crusade.Upgrade.Needs_hardware { added_pes; added_cost; _ } ->
          Format.printf "upgrade needs %d new PE(s), +$%.0f@." added_pes added_cost;
          0
      | Crusade.Upgrade.Infeasible msg ->
          Format.printf "upgrade infeasible: %s@." msg;
          2)

let report_cmd =
  let doc = "synthesize and export (dot | gantt | program | inventory)" in
  let fmt_arg =
    Arg.(value & opt string "inventory" & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output format.")
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const report_run $ name_arg $ scale_arg $ fmt_arg)

let upgrade_cmd =
  let doc = "run the field-upgrade analysis on the built-in scenario" in
  Cmd.v (Cmd.info "upgrade" ~doc) Term.(const upgrade_run $ const ())

let list_cmd =
  let doc = "list available workloads and circuits" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_run $ const ())

let main =
  let doc = "hardware/software co-synthesis of dynamically reconfigurable systems" in
  Cmd.group (Cmd.info "crusade" ~version:"1.0.0" ~doc)
    [ synth_cmd; ft_cmd; delay_cmd; report_cmd; upgrade_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
