(* Unit and property tests for crusade_util. *)

module Rng = Crusade_util.Rng
module Pqueue = Crusade_util.Pqueue
module Arith = Crusade_util.Arith
module Intervals = Crusade_util.Intervals
module Disjoint_set = Crusade_util.Disjoint_set
module Vec = Crusade_util.Vec
module Text_table = Crusade_util.Text_table
module Stats = Crusade_util.Stats
module Pool = Crusade_util.Pool

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Rng --- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check Alcotest.bool "different seeds differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  check Alcotest.bool "split differs from parent" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let x = Rng.int_in rng lo (lo + span) in
      x >= lo && x <= lo + span)

let rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float in [0, bound)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng 3.5 in
      x >= 0.0 && x < 3.5)

let rng_shuffle_permutation =
  QCheck.Test.make ~name:"Rng.shuffle permutes" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      let rng = Rng.create seed in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let rng_chance_extremes () =
  let rng = Rng.create 3 in
  check Alcotest.bool "p=0 never" false (Rng.chance rng 0.0);
  check Alcotest.bool "p=1 always" true (Rng.chance rng 1.0)

(* --- Pqueue --- *)

let pqueue_basic () =
  let q = Pqueue.create ~cmp:compare in
  check Alcotest.bool "empty" true (Pqueue.is_empty q);
  List.iter (Pqueue.add q) [ 5; 1; 4; 1; 3 ];
  check Alcotest.int "length" 5 (Pqueue.length q);
  check Alcotest.(option int) "peek" (Some 1) (Pqueue.peek q);
  check Alcotest.(option int) "pop1" (Some 1) (Pqueue.pop q);
  check Alcotest.(option int) "pop2" (Some 1) (Pqueue.pop q);
  check Alcotest.(option int) "pop3" (Some 3) (Pqueue.pop q)

let pqueue_pop_exn_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn q))

let pqueue_sorted_drain =
  QCheck.Test.make ~name:"Pqueue drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (Pqueue.add q) xs;
      let rec drain acc =
        match Pqueue.pop q with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let pqueue_custom_order () =
  let q = Pqueue.create ~cmp:(fun a b -> compare b a) in
  List.iter (Pqueue.add q) [ 1; 3; 2 ];
  check Alcotest.(option int) "max first" (Some 3) (Pqueue.pop q)

(* --- Arith --- *)

let arith_gcd_lcm () =
  check Alcotest.int "gcd" 6 (Arith.gcd 12 18);
  check Alcotest.int "gcd with zero" 5 (Arith.gcd 5 0);
  check Alcotest.int "lcm" 36 (Arith.lcm 12 18);
  check Alcotest.int "lcm with zero" 0 (Arith.lcm 0 7);
  check Alcotest.int "lcm_list" 24 (Arith.lcm_list [ 8; 12; 6 ])

let arith_lcm_overflow () =
  Alcotest.check_raises "hyperperiod overflow"
    (Failure "Arith.lcm: hyperperiod overflow") (fun () ->
      ignore (Arith.lcm (max_int - 1) (max_int - 2)))

(* The overflow guard is exact: products that fit in [max_int] are
   representable — the old [max_int / 2 / b] check rejected everything
   above [max_int / 2] and, for [b > max_int / 2], truncated the divisor
   to 0 and rejected even [lcm 1 b]. *)
let arith_lcm_boundaries () =
  check Alcotest.int "lcm 1 max_int" max_int (Arith.lcm 1 max_int);
  check Alcotest.int "lcm max_int 1" max_int (Arith.lcm max_int 1);
  check Alcotest.int "lcm max_int max_int" max_int (Arith.lcm max_int max_int);
  (* A large harmonic hyperperiod in (max_int/2, max_int]. *)
  check Alcotest.int "hyperperiod above max_int/2"
    3_000_000_000_000_000_003
    (Arith.lcm 3 1_000_000_000_000_000_001);
  check Alcotest.int "lcm_list harmonic" 4_400_000_000_000_000_000
    (Arith.lcm_list [ 1_100_000_000_000_000_000; 4_400_000_000_000_000_000 ]);
  Alcotest.check_raises "unrepresentable product still overflows"
    (Failure "Arith.lcm: hyperperiod overflow") (fun () ->
      (* coprime (both odd, differ by 4): product ~9e18 > max_int *)
      ignore (Arith.lcm 3_000_000_001 3_000_000_005))

let arith_lcm_divisibility =
  QCheck.Test.make ~name:"lcm divisible by both" ~count:300
    QCheck.(pair (int_range 1 10000) (int_range 1 10000))
    (fun (a, b) ->
      let l = Arith.lcm a b in
      l mod a = 0 && l mod b = 0)

let arith_ceil_div () =
  check Alcotest.int "exact" 3 (Arith.ceil_div 9 3);
  check Alcotest.int "round up" 4 (Arith.ceil_div 10 3);
  check Alcotest.int "zero" 0 (Arith.ceil_div 0 5)

let arith_clamp () =
  check Alcotest.int "below" 2 (Arith.clamp ~lo:2 ~hi:8 1);
  check Alcotest.int "above" 8 (Arith.clamp ~lo:2 ~hi:8 9);
  check Alcotest.int "inside" 5 (Arith.clamp ~lo:2 ~hi:8 5)

(* --- Intervals --- *)

let intervals_normalize () =
  let t = Intervals.of_list [ (5, 8); (1, 3); (2, 4); (8, 9) ] in
  check
    Alcotest.(list (pair int int))
    "merged and sorted"
    [ (1, 4); (5, 9) ]
    (Intervals.to_list t)

let intervals_empty_dropped () =
  let t = Intervals.of_list [ (3, 3); (1, 2) ] in
  check Alcotest.(list (pair int int)) "empty dropped" [ (1, 2) ] (Intervals.to_list t)

let intervals_invalid () =
  Alcotest.check_raises "start > stop"
    (Invalid_argument "Intervals.of_list: start > stop") (fun () ->
      ignore (Intervals.of_list [ (3, 1) ]))

let intervals_overlaps () =
  let a = Intervals.of_list [ (0, 10); (20, 30) ] in
  let b = Intervals.of_list [ (10, 20) ] in
  let c = Intervals.of_list [ (5, 15) ] in
  check Alcotest.bool "touching is disjoint" false (Intervals.overlaps a b);
  check Alcotest.bool "crossing overlaps" true (Intervals.overlaps a c);
  check Alcotest.bool "empty never overlaps" false (Intervals.overlaps a Intervals.empty)

let intervals_overlap_symmetric =
  let pairs_arb = QCheck.(small_list (pair (int_range 0 100) (int_range 0 100))) in
  let build pairs =
    Intervals.of_list (List.map (fun (a, b) -> (min a b, max a b)) pairs)
  in
  QCheck.Test.make ~name:"Intervals.overlaps symmetric" ~count:300
    (QCheck.pair pairs_arb pairs_arb)
    (fun (xs, ys) ->
      let a = build xs and b = build ys in
      Intervals.overlaps a b = Intervals.overlaps b a)

let intervals_total_length () =
  let t = Intervals.of_list [ (0, 5); (3, 8); (10, 12) ] in
  check Alcotest.int "union length" 10 (Intervals.total_length t)

let intervals_span () =
  let t = Intervals.of_list [ (4, 6); (1, 2) ] in
  check Alcotest.(option (pair int int)) "span" (Some (1, 6)) (Intervals.span t);
  check Alcotest.(option (pair int int)) "empty span" None (Intervals.span Intervals.empty)

let intervals_add_union () =
  let t = Intervals.add Intervals.empty 1 4 in
  let u = Intervals.union t (Intervals.of_list [ (2, 6) ]) in
  check Alcotest.(list (pair int int)) "union merges" [ (1, 6) ] (Intervals.to_list u);
  check Alcotest.bool "overlaps_interval" true (Intervals.overlaps_interval u 5 9);
  check Alcotest.bool "overlaps_interval disjoint" false
    (Intervals.overlaps_interval u 6 9)

(* A sorted-disjoint normal form: every interval non-empty, strictly
   ordered, and non-touching (touching intervals must have merged). *)
let rec sorted_disjoint = function
  | [] | [ _ ] -> ( function _ -> true) []
  | (s1, e1) :: ((s2, _) :: _ as rest) ->
      s1 < e1 && e1 < s2 && sorted_disjoint rest

let sorted_disjoint = function
  | [] -> true
  | [ (s, e) ] -> s < e
  | l -> sorted_disjoint l

let interval_pairs_arb =
  QCheck.(small_list (pair (int_range 0 60) (int_range 0 60)))

let build_intervals pairs =
  Intervals.of_list (List.map (fun (a, b) -> (min a b, max a b)) pairs)

let intervals_normalize_idempotent =
  QCheck.Test.make ~name:"Intervals normal form is a fixpoint" ~count:300
    interval_pairs_arb
    (fun pairs ->
      let t = build_intervals pairs in
      let l = Intervals.to_list t in
      sorted_disjoint l && Intervals.to_list (Intervals.of_list l) = l)

let intervals_overlaps_vs_naive =
  (* Reference implementation: pairwise half-open intersection over the
     raw, un-normalized input. *)
  let naive xs ys =
    List.exists
      (fun (a1, a2) ->
        List.exists (fun (b1, b2) -> max a1 b1 < min a2 b2) ys)
      xs
  in
  QCheck.Test.make ~name:"Intervals.overlaps agrees with pairwise scan" ~count:500
    (QCheck.pair interval_pairs_arb interval_pairs_arb)
    (fun (xs, ys) ->
      let norm pairs = List.map (fun (a, b) -> (min a b, max a b)) pairs in
      let xs = norm xs and ys = norm ys in
      Intervals.overlaps (Intervals.of_list xs) (Intervals.of_list ys)
      = naive xs ys)

(* span's inner [last] is total only because it is seeded with the head
   interval; this pins that it never raises and agrees with the hull of
   the normal form, on every input including the empty one. *)
let intervals_span_total =
  QCheck.Test.make ~name:"Intervals.span is total and hulls the normal form"
    ~count:300 interval_pairs_arb
    (fun pairs ->
      let t = build_intervals pairs in
      match (Intervals.span t, Intervals.to_list t) with
      | None, [] -> true
      | Some (lo, hi), ((first, _) :: _ as l) ->
          let _, last_stop = List.nth l (List.length l - 1) in
          lo = first && hi = last_stop
      | None, _ :: _ | Some _, [] -> false)

let intervals_union_add_invariant =
  QCheck.Test.make ~name:"union/add preserve the sorted-disjoint invariant"
    ~count:300
    (QCheck.triple interval_pairs_arb interval_pairs_arb
       (QCheck.pair (QCheck.int_range 0 60) (QCheck.int_range 0 60)))
    (fun (xs, ys, (a, b)) ->
      let t = Intervals.union (build_intervals xs) (build_intervals ys) in
      let u = Intervals.add t (min a b) (max a b) in
      sorted_disjoint (Intervals.to_list t) && sorted_disjoint (Intervals.to_list u))

(* --- Disjoint_set --- *)

let dsu_basic () =
  let d = Disjoint_set.create 6 in
  Disjoint_set.union d 0 1;
  Disjoint_set.union d 2 3;
  Disjoint_set.union d 1 2;
  check Alcotest.bool "same" true (Disjoint_set.same d 0 3);
  check Alcotest.bool "not same" false (Disjoint_set.same d 0 4);
  check
    Alcotest.(list (list int))
    "groups"
    [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ]
    (Disjoint_set.groups d)

let dsu_transitive =
  QCheck.Test.make ~name:"union transitivity" ~count:200
    QCheck.(small_list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let d = Disjoint_set.create 20 in
      List.iter (fun (a, b) -> Disjoint_set.union d a b) pairs;
      (* every group's members all find the same root *)
      List.for_all
        (fun group ->
          match group with
          | [] -> true
          | root :: _ -> List.for_all (fun x -> Disjoint_set.same d root x) group)
        (Disjoint_set.groups d))

(* --- Vec --- *)

let vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get" 84 (Vec.get v 42);
  Vec.set v 42 0;
  check Alcotest.int "set" 0 (Vec.get v 42);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 198) v)

let vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () -> ignore (Vec.get v 1))

let vec_map_copy_independent () =
  let v = Vec.create () in
  Vec.push v (ref 1);
  let w = Vec.map_copy (fun r -> ref !r) v in
  Vec.get w 0 := 9;
  check Alcotest.int "copy is deep" 1 !(Vec.get v 0)

let vec_fold_to_list () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  check Alcotest.int "fold" 6 (Vec.fold ( + ) 0 v);
  check Alcotest.(list int) "to_list" [ 1; 2; 3 ] (Vec.to_list v)

(* --- Text_table / Stats --- *)

let table_render () =
  let out = Text_table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check Alcotest.bool "contains header" true
    (String.length out > 0 && String.sub out 0 1 = "a")

let fmt_dollars () =
  check Alcotest.string "thousands" "26,245" (Text_table.fmt_dollars 26245.0);
  check Alcotest.string "small" "42" (Text_table.fmt_dollars 42.4);
  check Alcotest.string "million" "1,234,567" (Text_table.fmt_dollars 1234567.0)

let fmt_dollars_non_finite () =
  check Alcotest.string "nan" "n/a" (Text_table.fmt_dollars Float.nan);
  check Alcotest.string "infinity" "n/a" (Text_table.fmt_dollars Float.infinity);
  check Alcotest.string "neg infinity" "n/a"
    (Text_table.fmt_dollars Float.neg_infinity)

let stats_basic () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "median" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ])

let table_wide_row_raises () =
  Alcotest.check_raises "wider row rejected"
    (Invalid_argument
       "Text_table.render: row 1 has 3 cells but the header has 2 columns")
    (fun () ->
      ignore
        (Text_table.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "1"; "2"; "3" ] ]))

(* --- Trace --- *)

module Trace = Crusade_util.Trace

let trace_json_valid () =
  let t = Trace.create () in
  let v =
    Trace.span (Some t)
      ~args:[ ("spec", Trace.Str "a\"b\\c\n") ]
      "outer"
      (fun () ->
        Trace.instant (Some t) "tick";
        Trace.counter (Some t) "stats" [ ("hits", 3); ("misses", 4) ];
        Trace.span (Some t) ~args:[ ("index", Trace.Num 7) ] "inner" (fun () -> 42))
  in
  check Alcotest.int "span returns the body's value" 42 v;
  check Alcotest.int "six events" 6 (Trace.n_events t);
  let json = Trace.to_json t in
  (match Helpers.Json.parse json with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "invalid JSON: %s" msg);
  check Alcotest.bool "balanced spans" true (Helpers.Json.spans_balanced json)

let trace_span_balances_on_raise () =
  let t = Trace.create () in
  (try Trace.span (Some t) "boom" (fun () -> failwith "x") with Failure _ -> ());
  check Alcotest.bool "E emitted despite the raise" true
    (Helpers.Json.spans_balanced (Trace.to_json t))

let trace_none_is_noop () =
  check Alcotest.int "span still runs the body" 9
    (Trace.span None "unused" (fun () -> 9));
  Trace.instant None "unused";
  Trace.counter None "unused" [ ("x", 1) ]

let trace_concurrent_emission () =
  let t = Trace.create () in
  let pool = Pool.create () in
  ignore
    (Pool.map_n ~jobs:4 pool
       (fun i ->
         Trace.span (Some t) ~args:[ ("i", Trace.Num i) ] "work" (fun () -> i))
       64);
  Pool.shutdown pool;
  check Alcotest.int "all events captured" (2 * 64) (Trace.n_events t);
  check Alcotest.bool "balanced across domains" true
    (Helpers.Json.spans_balanced (Trace.to_json t))

let trace_write_file () =
  let path = Filename.temp_file "crusade_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = Trace.create () in
      Trace.span (Some t) "phase" (fun () -> ());
      Trace.write_file t path;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Helpers.Json.parse s with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "file not valid JSON: %s" msg)

let metrics_registry () =
  let m = Trace.Metrics.create () in
  let c = Trace.Metrics.counter m "hits" in
  Trace.Counter.incr c;
  Trace.Counter.add c 4;
  check Alcotest.int "counter reads back" 5 (Trace.Counter.get c);
  check Alcotest.int "registry lookup" 5 (Trace.Metrics.get m "hits");
  check Alcotest.int "unknown name is 0" 0 (Trace.Metrics.get m "nope");
  check Alcotest.bool "same name, same counter" true
    (Trace.Metrics.counter m "hits" == c);
  check
    Alcotest.(list (pair string int))
    "alist" [ ("hits", 5) ]
    (Trace.Metrics.to_alist m)

(* --- Pool --- *)

let pool_map_ordering () =
  let pool = Pool.create () in
  let squares = Pool.map_n ~jobs:4 pool (fun i -> i * i) 100 in
  Array.iteri (fun i v -> check Alcotest.int "index order" (i * i) v) squares;
  let incremented =
    Pool.parallel_map ~jobs:3 pool (fun x -> x + 1) (Array.init 10 Fun.id)
  in
  Array.iteri (fun i v -> check Alcotest.int "parallel_map order" (i + 1) v) incremented;
  check Alcotest.int "empty input" 0 (Array.length (Pool.map_n ~jobs:4 pool Fun.id 0));
  (* jobs = 1 must not involve any worker domain *)
  let seq = Pool.map_n ~jobs:1 pool (fun i -> 2 * i) 5 in
  check Alcotest.(array int) "sequential fallback" [| 0; 2; 4; 6; 8 |] seq;
  Pool.shutdown pool

let pool_exception_propagation () =
  let pool = Pool.create () in
  (try
     ignore
       (Pool.map_n ~jobs:4 pool
          (fun i -> if i = 11 || i = 37 then failwith (string_of_int i) else i)
          64);
     Alcotest.fail "expected an exception"
   with Failure msg ->
     (* the lowest failing index wins, as in a sequential loop *)
     check Alcotest.string "lowest index raised" "11" msg);
  (* the pool survives a failed map *)
  let again = Pool.map_n ~jobs:4 pool Fun.id 8 in
  check Alcotest.int "pool still usable" 8 (Array.length again);
  Pool.shutdown pool

let pool_size_warm_submit () =
  let pool = Pool.create () in
  let size = Pool.size pool in
  if size < 1 || size > 15 then Alcotest.failf "size out of range: %d" size;
  Pool.warm pool 2;
  Pool.warm pool 2 (* idempotent *);
  let n = 16 in
  let hits = Atomic.make 0 in
  for _ = 1 to n do
    Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  (* submit is fire-and-forget; the tasks signal completion through the
     shared counter.  Sys.time keeps ticking while we spin, so a stuck
     pool fails the test instead of hanging it. *)
  let give_up = Sys.time () +. 30.0 in
  while Atomic.get hits < n && Sys.time () < give_up do
    Domain.cpu_relax ()
  done;
  check Alcotest.int "all submitted tasks ran" n (Atomic.get hits);
  (* submitted work coexists with the map entry points on one queue *)
  let doubled = Pool.map_n ~jobs:2 pool (fun i -> 2 * i) 6 in
  check Alcotest.(array int) "map after submit" [| 0; 2; 4; 6; 8; 10 |] doubled;
  Pool.shutdown pool

let pool_find_first () =
  let pool = Pool.create () in
  check
    Alcotest.(option int)
    "lowest hit wins" (Some 13)
    (Pool.parallel_find_first ~jobs:4 pool
       (fun i -> if i >= 13 then Some i else None)
       100);
  check
    Alcotest.(option int)
    "no hit" None
    (Pool.parallel_find_first ~jobs:4 pool (fun _ -> None) 50);
  check
    Alcotest.(option int)
    "sequential path" (Some 2)
    (Pool.parallel_find_first ~jobs:1 pool
       (fun i -> if i = 2 then Some i else None)
       10);
  Pool.shutdown pool

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick rng_seed_sensitivity;
    Alcotest.test_case "rng split" `Quick rng_split_independent;
    Alcotest.test_case "rng chance extremes" `Quick rng_chance_extremes;
    qcheck rng_int_bounds;
    qcheck rng_int_in_bounds;
    qcheck rng_float_bounds;
    qcheck rng_shuffle_permutation;
    Alcotest.test_case "pqueue basics" `Quick pqueue_basic;
    Alcotest.test_case "pqueue pop_exn empty" `Quick pqueue_pop_exn_empty;
    Alcotest.test_case "pqueue custom order" `Quick pqueue_custom_order;
    qcheck pqueue_sorted_drain;
    Alcotest.test_case "gcd/lcm" `Quick arith_gcd_lcm;
    Alcotest.test_case "lcm overflow" `Quick arith_lcm_overflow;
    Alcotest.test_case "lcm boundaries" `Quick arith_lcm_boundaries;
    Alcotest.test_case "ceil_div" `Quick arith_ceil_div;
    Alcotest.test_case "clamp" `Quick arith_clamp;
    qcheck arith_lcm_divisibility;
    Alcotest.test_case "intervals normalize" `Quick intervals_normalize;
    Alcotest.test_case "intervals drop empty" `Quick intervals_empty_dropped;
    Alcotest.test_case "intervals invalid" `Quick intervals_invalid;
    Alcotest.test_case "intervals overlaps" `Quick intervals_overlaps;
    Alcotest.test_case "intervals total length" `Quick intervals_total_length;
    Alcotest.test_case "intervals span" `Quick intervals_span;
    Alcotest.test_case "intervals add/union" `Quick intervals_add_union;
    qcheck intervals_overlap_symmetric;
    qcheck intervals_normalize_idempotent;
    qcheck intervals_overlaps_vs_naive;
    qcheck intervals_span_total;
    qcheck intervals_union_add_invariant;
    Alcotest.test_case "disjoint set basics" `Quick dsu_basic;
    qcheck dsu_transitive;
    Alcotest.test_case "vec push/get" `Quick vec_push_get;
    Alcotest.test_case "vec bounds" `Quick vec_bounds;
    Alcotest.test_case "vec deep copy" `Quick vec_map_copy_independent;
    Alcotest.test_case "vec fold/to_list" `Quick vec_fold_to_list;
    Alcotest.test_case "table render" `Quick table_render;
    Alcotest.test_case "table wide row raises" `Quick table_wide_row_raises;
    Alcotest.test_case "fmt dollars" `Quick fmt_dollars;
    Alcotest.test_case "fmt dollars non-finite" `Quick fmt_dollars_non_finite;
    Alcotest.test_case "stats basics" `Quick stats_basic;
    Alcotest.test_case "trace json valid" `Quick trace_json_valid;
    Alcotest.test_case "trace balances on raise" `Quick trace_span_balances_on_raise;
    Alcotest.test_case "trace None is a no-op" `Quick trace_none_is_noop;
    Alcotest.test_case "trace concurrent emission" `Quick trace_concurrent_emission;
    Alcotest.test_case "trace write file" `Quick trace_write_file;
    Alcotest.test_case "metrics registry" `Quick metrics_registry;
    Alcotest.test_case "pool map ordering" `Quick pool_map_ordering;
    Alcotest.test_case "pool exception propagation" `Quick pool_exception_propagation;
    Alcotest.test_case "pool find first" `Quick pool_find_first;
    Alcotest.test_case "pool size/warm/submit" `Quick pool_size_warm_submit;
  ]
