(* The Section 4.2 / Fig. 4 allocation walk-through.

   Four clusters: a software pipeline C0 and hardware blocks C1, C2, C3.
   C1 and C2 occupy disjoint time slots (compatible); C3 overlaps C1.
   CRUSADE should place C0 on a CPU, C1 on an FPGA, C2 in a *new mode* of
   the same FPGA (they time-share), and C3 in C1's mode (they must be
   resident together).  Expected architecture: one CPU, one FPGA with two
   configuration images — the paper's Fig. 4(e).

     dune exec examples/allocation_walkthrough.exe *)

module C = Crusade.Crusade_core
module Arch = Crusade_alloc.Arch
module Pe = Crusade_resource.Pe

let () =
  let lib = Crusade_resource.Library.small () in
  let spec = Crusade_workloads.Examples.figure4 lib in
  match C.synthesize spec lib with
  | Error msg ->
      Format.printf "synthesis failed: %s@." msg;
      exit 1
  | Ok r ->
      Format.printf "%a@.@." C.pp_report r;
      Format.printf "Cluster placements:@.";
      Crusade_util.Vec.iter
        (fun (pe : Arch.pe_inst) ->
          Crusade_util.Vec.iter
            (fun (m : Arch.mode) ->
              if m.Arch.m_clusters <> [] then
                Format.printf "  %s (PE %d) mode %d: clusters %s@."
                  pe.Arch.ptype.Pe.name pe.Arch.p_id m.Arch.m_id
                  (String.concat ", "
                     (List.map string_of_int m.Arch.m_clusters)))
            pe.Arch.modes)
        r.C.arch.Arch.pes;
      let switches =
        Array.fold_left ( + ) 0 r.C.schedule.Crusade_sched.Schedule.mode_switches
      in
      Format.printf "Reconfigurations per hyperperiod: %d@." switches
