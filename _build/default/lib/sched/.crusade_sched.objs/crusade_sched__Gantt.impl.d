lib/sched/gantt.ml: Array Buffer Bytes Char Crusade_alloc Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util Hashtbl List Printf Schedule
