(* Field-upgrade analysis (Upgrade.analyze): one scenario per verdict. *)

module C = Crusade.Crusade_core
module Upgrade = Crusade.Upgrade
module Spec = Crusade_taskgraph.Spec
module Ex = Crusade_workloads.Examples

let check = Alcotest.check

(* The stock scenario fits the idle slots of the deployed FPGAs, so the
   feature release ships as configuration images alone. *)
let reprogramming_only () =
  let spec, upgrade_graphs = Ex.upgrade_scenario Helpers.small_lib in
  match Upgrade.analyze spec Helpers.small_lib ~upgrade_graphs with
  | Error m -> Alcotest.fail m
  | Ok { base; verdict; _ } -> (
      check Alcotest.bool "base meets deadlines" true base.C.deadlines_met;
      match verdict with
      | Upgrade.Reprogramming_only { result; added_images } ->
          check Alcotest.bool "upgraded system meets deadlines" true
            result.C.deadlines_met;
          check Alcotest.bool "ships at least one new image" true (added_images > 0);
          check Alcotest.bool "no new PEs" true (result.C.n_pes = base.C.n_pes)
      | Upgrade.Needs_hardware _ -> Alcotest.fail "expected a pure reprogramming upgrade"
      | Upgrade.Infeasible m -> Alcotest.failf "unexpectedly infeasible: %s" m)

(* Base product is pure software, so no FPGA is deployed; a hardware-only
   upgrade task then forces new parts. *)
let needs_hardware () =
  let b = Spec.Builder.create () in
  let base_g = Spec.Builder.add_graph b ~name:"base" ~period:20_000 ~deadline:8_000 () in
  let t1 =
    Spec.Builder.add_task b ~graph:base_g ~name:"base1" ~exec:(Helpers.cpu_exec 500) ()
  in
  let t2 =
    Spec.Builder.add_task b ~graph:base_g ~name:"base2" ~exec:(Helpers.cpu_exec 500) ()
  in
  Spec.Builder.add_edge b ~src:t1 ~dst:t2 ~bytes:64;
  let up_g = Spec.Builder.add_graph b ~name:"accel" ~period:20_000 ~deadline:8_000 () in
  let _u =
    Spec.Builder.add_task b ~graph:up_g ~name:"accel1"
      ~exec:(Helpers.fpga_exec 2_000) ~gates:80 ~pins:8 ()
  in
  let spec = Spec.Builder.finish_exn b ~name:"hw-upgrade" () in
  match Upgrade.analyze spec Helpers.small_lib ~upgrade_graphs:[ up_g ] with
  | Error m -> Alcotest.fail m
  | Ok { base; verdict; _ } -> (
      match verdict with
      | Upgrade.Needs_hardware { result; added_pes; added_cost } ->
          check Alcotest.bool "upgraded system meets deadlines" true
            result.C.deadlines_met;
          check Alcotest.bool "adds at least one PE" true (added_pes >= 1);
          check Alcotest.bool "added cost is positive" true (added_cost > 0.0);
          check Alcotest.bool "cost grows over the base" true
            (result.C.cost > base.C.cost)
      | Upgrade.Reprogramming_only _ ->
          Alcotest.fail "a software-only base cannot host an FPGA task"
      | Upgrade.Infeasible m -> Alcotest.failf "unexpectedly infeasible: %s" m)

(* The upgrade task cannot meet its deadline on any PE type, new hardware
   or not. *)
let doomed_spec () =
  let b = Spec.Builder.create () in
  let base_g = Spec.Builder.add_graph b ~name:"base" ~period:20_000 ~deadline:8_000 () in
  let _t =
    Spec.Builder.add_task b ~graph:base_g ~name:"base1" ~exec:(Helpers.cpu_exec 500) ()
  in
  let up_g = Spec.Builder.add_graph b ~name:"slow" ~period:20_000 ~deadline:1_000 () in
  let _u =
    Spec.Builder.add_task b ~graph:up_g ~name:"slow1" ~exec:(Helpers.cpu_exec 9_000) ()
  in
  (Spec.Builder.finish_exn b ~name:"doomed-upgrade" (), up_g)

let infeasible () =
  let spec, up_g = doomed_spec () in
  match Upgrade.analyze spec Helpers.small_lib ~upgrade_graphs:[ up_g ] with
  | Error m -> Alcotest.fail m
  | Ok { verdict; _ } -> (
      match verdict with
      | Upgrade.Infeasible _ -> ()
      | Upgrade.Reprogramming_only _ | Upgrade.Needs_hardware _ ->
          Alcotest.fail "a 9ms task cannot meet a 1ms deadline")

(* Regression: the first attempt's failure used to be discarded — an
   infeasible verdict now surfaces why each attempt failed. *)
let infeasible_reports_both_attempts () =
  let spec, up_g = doomed_spec () in
  match Upgrade.analyze spec Helpers.small_lib ~upgrade_graphs:[ up_g ] with
  | Error m -> Alcotest.fail m
  | Ok { verdict; reprogram_attempt; hardware_attempt; _ } -> (
      (match reprogram_attempt with
      | C.Resynth.Met -> Alcotest.fail "reprogramming cannot have met deadlines"
      | C.Resynth.Tardy _ | C.Resynth.Failed _ -> ());
      (match hardware_attempt with
      | None -> Alcotest.fail "the new-hardware attempt must have run"
      | Some C.Resynth.Met ->
          Alcotest.fail "new hardware cannot have met deadlines"
      | Some (C.Resynth.Tardy _ | C.Resynth.Failed _) -> ());
      match verdict with
      | Upgrade.Infeasible msg ->
          check Alcotest.bool "message names the reprogramming attempt" true
            (Helpers.contains msg "reprogramming-only:");
          check Alcotest.bool "message names the hardware attempt" true
            (Helpers.contains msg "with new hardware:")
      | Upgrade.Reprogramming_only _ | Upgrade.Needs_hardware _ ->
          Alcotest.fail "expected an infeasible verdict")

(* The audit covers both the base architecture and the upgraded one. *)
let report_audits_clean () =
  let spec, upgrade_graphs = Ex.upgrade_scenario Helpers.small_lib in
  match Upgrade.analyze spec Helpers.small_lib ~upgrade_graphs with
  | Error m -> Alcotest.fail m
  | Ok report -> (
      match Upgrade.audit report with
      | [] -> ()
      | vs -> Alcotest.failf "upgrade report fails its audit (%d)" (List.length vs))

(* The verdict is stable across the evaluator options the flow can run
   under: incremental rescheduling off, and perturbed portfolio
   trajectory options. *)
let verdict_constructor = function
  | Upgrade.Reprogramming_only _ -> "reprogramming-only"
  | Upgrade.Needs_hardware _ -> "needs-hardware"
  | Upgrade.Infeasible _ -> "infeasible"

let analyze_with options =
  let spec, upgrade_graphs = Ex.upgrade_scenario Helpers.small_lib in
  match Upgrade.analyze ~options spec Helpers.small_lib ~upgrade_graphs with
  | Error m -> Alcotest.fail m
  | Ok r -> r

let stable_under_incremental () =
  let base = analyze_with C.default_options in
  let no_inc = analyze_with { C.default_options with C.incremental = false } in
  check Alcotest.string "verdict is incremental-independent"
    (verdict_constructor base.Upgrade.verdict)
    (verdict_constructor no_inc.Upgrade.verdict)

let feasible_under_portfolio_options () =
  (* A perturbed trajectory explores a different commit order but must
     still find the stock scenario upgradable without new parts. *)
  let options = C.Portfolio.trajectory_options C.default_options ~seed:7 ~index:2 in
  let r = analyze_with options in
  match r.Upgrade.verdict with
  | Upgrade.Reprogramming_only _ | Upgrade.Needs_hardware _ -> ()
  | Upgrade.Infeasible m ->
      Alcotest.failf "perturbed trajectory lost feasibility: %s" m

let suite =
  [
    Alcotest.test_case "stock scenario is reprogramming-only" `Quick reprogramming_only;
    Alcotest.test_case "hardware-only upgrade needs new parts" `Quick needs_hardware;
    Alcotest.test_case "impossible deadline is infeasible" `Quick infeasible;
    Alcotest.test_case "infeasible reports both attempts" `Quick
      infeasible_reports_both_attempts;
    Alcotest.test_case "report audits clean" `Quick report_audits_clean;
    Alcotest.test_case "verdict stable without incremental" `Quick
      stable_under_incremental;
    Alcotest.test_case "feasible under portfolio options" `Quick
      feasible_under_portfolio_options;
  ]
