lib/alloc/connect.mli: Arch Crusade_cluster Crusade_taskgraph
