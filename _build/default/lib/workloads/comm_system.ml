module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Pe = Crusade_resource.Pe
module Library = Crusade_resource.Library
module Rng = Crusade_util.Rng

type params = {
  name : string;
  n_tasks : int;
  seed : int;
  hw_fraction : float;
  family_slots : int;
  asic_fraction : float;
  cpld_fraction : float;
}

let presets =
  [
    { name = "A1TR"; n_tasks = 1126; seed = 11; hw_fraction = 0.55; family_slots = 4; asic_fraction = 0.12; cpld_fraction = 0.15 };
    { name = "VDRTX"; n_tasks = 1634; seed = 12; hw_fraction = 0.58; family_slots = 4; asic_fraction = 0.10; cpld_fraction = 0.12 };
    { name = "HROST"; n_tasks = 2645; seed = 13; hw_fraction = 0.50; family_slots = 3; asic_fraction = 0.12; cpld_fraction = 0.15 };
    { name = "EST189A"; n_tasks = 3826; seed = 14; hw_fraction = 0.50; family_slots = 3; asic_fraction = 0.10; cpld_fraction = 0.10 };
    { name = "HRXC"; n_tasks = 4571; seed = 15; hw_fraction = 0.48; family_slots = 3; asic_fraction = 0.15; cpld_fraction = 0.10 };
    { name = "ADMR"; n_tasks = 5419; seed = 16; hw_fraction = 0.55; family_slots = 4; asic_fraction = 0.10; cpld_fraction = 0.12 };
    { name = "B192G"; n_tasks = 6815; seed = 17; hw_fraction = 0.60; family_slots = 5; asic_fraction = 0.08; cpld_fraction = 0.10 };
    { name = "NGXM"; n_tasks = 7416; seed = 18; hw_fraction = 0.60; family_slots = 6; asic_fraction = 0.08; cpld_fraction = 0.10 };
  ]

let preset_names = List.map (fun p -> p.name) presets

let preset name = List.find (fun p -> p.name = name) presets

let scaled p f =
  { p with n_tasks = max 20 (int_of_float (float_of_int p.n_tasks /. f)) }

(* Periods (us) and their sampling weights: most functionality lives at
   the slower rates, keeping the association array bounded. *)
let period_choices = [| (64_000, 50); (32_000, 25); (16_000, 15); (8_000, 10) |]

let pick_period rng =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 period_choices in
  let roll = Rng.int rng total in
  let rec walk acc i =
    let period, w = period_choices.(i) in
    if roll < acc + w then period else walk (acc + w) (i + 1)
  in
  walk 0 0

(* Layered pipeline structure: returns the layer of each local task and
   the edges (local src, local dst). *)
let layered_structure rng size =
  let n_layers = Crusade_util.Arith.clamp ~lo:2 ~hi:6 (size / 3) in
  let layer = Array.init size (fun i -> if i < n_layers then i else Rng.int rng n_layers) in
  let members l =
    let acc = ref [] in
    for i = size - 1 downto 0 do
      if layer.(i) = l then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let edges = ref [] in
  for l = 1 to n_layers - 1 do
    let prev = members (l - 1) in
    Array.iter
      (fun t ->
        let n_in = 1 + (if Rng.chance rng 0.3 then 1 else 0) in
        for _ = 1 to n_in do
          edges := (Rng.pick rng prev, t) :: !edges
        done)
      (members l)
  done;
  (layer, n_layers, List.sort_uniq compare !edges)

(* Execution-time vector over the whole PE library for a task of the
   given class. *)
let exec_vector lib rng ~hw ~base_us ~cpld_ok ~asic_type =
  let n = Library.n_pe_types lib in
  Array.init n (fun p ->
      let pe = Library.pe lib p in
      match pe.Pe.pe_class with
      | Pe.General_purpose cpu ->
          if hw then -1
          else max 10 (int_of_float (float_of_int base_us /. cpu.speed_factor))
      | Pe.Asic_pe _ ->
          if hw && asic_type = Some p then max 1 (base_us * 8 / 10) else -1
      | Pe.Programmable info ->
          if not hw then -1
          else if info.kind = Pe.Cpld && not cpld_ok then -1
          else begin
            ignore rng;
            max 1 (int_of_float (float_of_int base_us /. info.speed_factor))
          end)

let ft_annotations lib rng ~exec =
  let assertions =
    if Rng.chance rng 0.65 then begin
      let make_one idx =
        let coverage = 0.88 +. Rng.float rng 0.09 in
        let check_exec =
          Array.map (fun t -> if t < 0 then -1 else max 1 (t / 6)) exec
        in
        {
          Task.assertion_name = Printf.sprintf "assert%d" idx;
          coverage;
          check_exec;
          check_bytes = Rng.int_in rng 16 64;
        }
      in
      if Rng.chance rng 0.15 then [ make_one 0; make_one 1 ] else [ make_one 0 ]
    end
    else []
  in
  ignore lib;
  {
    Task.assertions;
    error_transparent = Rng.chance rng 0.35;
    required_coverage = 0.9;
  }

let asic_types lib =
  let acc = ref [] in
  for p = Library.n_pe_types lib - 1 downto 0 do
    if Pe.is_asic (Library.pe lib p) then acc := p :: !acc
  done;
  Array.of_list !acc

let generate lib params =
  let rng = Rng.create params.seed in
  let builder = Spec.Builder.create () in
  let asics = asic_types lib in
  let slot_counters = Hashtbl.create 8 in
  let next_slot period =
    let cur = Option.value ~default:0 (Hashtbl.find_opt slot_counters period) in
    Hashtbl.replace slot_counters period (cur + 1);
    cur mod params.family_slots
  in
  let remaining = ref params.n_tasks and graph_index = ref 0 in
  let hw_tasks = ref 0 in
  while !remaining > 0 do
    let size = min !remaining (Rng.int_in rng 6 24) in
    let hw =
      float_of_int !hw_tasks < params.hw_fraction *. float_of_int params.n_tasks
    in
    let period = pick_period rng in
    let layer, n_layers, edges = layered_structure rng size in
    let est, deadline =
      if hw then begin
        let slot_width = period / params.family_slots in
        let slot = next_slot period in
        (slot * slot_width, slot_width)
      end
      else (0, period * 6 / 10)
    in
    let gid =
      Spec.Builder.add_graph builder
        ~name:
          (Printf.sprintf "%s-%s%d" params.name (if hw then "hw" else "sw") !graph_index)
        ~period ~est ~deadline
        ~unavailability_budget:(if hw then 4.0 else 12.0)
        ()
    in
    incr graph_index;
    let slot_width = period / params.family_slots in
    let hw_base = max 50 (slot_width / (2 * (n_layers + 1))) in
    let ids = Array.make size (-1) in
    for i = 0 to size - 1 do
      let cpld_ok = hw && Rng.chance rng params.cpld_fraction in
      let asic_type =
        if hw && Array.length asics > 0 && Rng.chance rng params.asic_fraction then
          Some (Rng.pick rng asics)
        else None
      in
      let base_us =
        if hw then max 25 (hw_base / 2 + Rng.int rng (max 1 hw_base))
        else begin
          (* Keep the longest path within half the deadline even on the
             baseline processor, whatever the period. *)
          let cap = max 100 (deadline / (2 * (n_layers + 1))) in
          Rng.int_in rng (max 50 (cap / 3)) cap
        end
      in
      let exec = exec_vector lib rng ~hw ~base_us ~cpld_ok ~asic_type in
      let gates = if not hw then 0 else if cpld_ok then Rng.int_in rng 6 15 else Rng.int_in rng 20 60 in
      let pins = if hw then Rng.int_in rng 3 8 else 0 in
      let memory =
        if hw then Task.no_memory
        else
          {
            Task.program_bytes = Rng.int_in rng 8 64 * 1024;
            data_bytes = Rng.int_in rng 4 32 * 1024;
            stack_bytes = Rng.int_in rng 2 8 * 1024;
          }
      in
      (* Occasional exclusion pair inside a layer: processing bottleneck
         avoidance (Section 2.2). *)
      let exclusion =
        if i > 0 && Rng.chance rng 0.02 then begin
          let buddy = Rng.int rng i in
          if layer.(buddy) = layer.(i) && ids.(buddy) >= 0 then [ ids.(buddy) ] else []
        end
        else []
      in
      let ft = ft_annotations lib rng ~exec in
      ids.(i) <-
        Spec.Builder.add_task builder ~graph:gid
          ~name:(Printf.sprintf "t%d_%d" gid i)
          ~exec ~exclusion ~memory ~gates ~pins ~ft ();
      if hw then incr hw_tasks
    done;
    List.iter
      (fun (src, dst) ->
        let bytes = if hw then Rng.int_in rng 32 128 else Rng.int_in rng 64 512 in
        Spec.Builder.add_edge builder ~src:ids.(src) ~dst:ids.(dst) ~bytes)
      edges;
    remaining := !remaining - size
  done;
  Spec.Builder.finish_exn builder ~name:params.name ()
