(* Portfolio search (Crusade_core.Portfolio): the anytime best-of-N
   driver must be a pure passthrough at N = 1, deterministic in its
   winner for a fixed (seed, N) whatever the jobs count or the incumbent
   bound, never worse than the unperturbed trajectory 0, and its bound
   aborts must only ever kill trajectories that provably could not have
   won (checked by rerunning them to completion). *)

module C = Crusade.Crusade_core
module W = Crusade_workloads.Comm_system

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let stock = Helpers.stock_lib

let params seed n_tasks =
  {
    W.name = Printf.sprintf "pf%d" seed;
    n_tasks;
    seed;
    hw_fraction = 0.5;
    family_slots = 3;
    asic_fraction = 0.1;
    cpld_fraction = 0.1;
  }

let flow_of spec o = C.synthesize ~options:o spec stock
let cost (r : C.result) = r.C.cost
let met (r : C.result) = r.C.deadlines_met

let signature (r : C.result) =
  Printf.sprintf "cost=%h met=%b pes=%d links=%d modes=%d" r.C.cost
    r.C.deadlines_met r.C.n_pes r.C.n_links r.C.n_modes

let run ?jobs ?budget_ms ?seed ?use_bound ~n spec =
  match
    C.Portfolio.run ?jobs ?budget_ms ?seed ?use_bound ~n
      ~options:C.default_options ~flow:(flow_of spec) ~cost ~met ()
  with
  | Ok o -> o
  | Error msg -> Alcotest.failf "portfolio run failed: %s" msg

(* N = 1 without a budget must be the plain flow, bit for bit. *)
let passthrough () =
  let spec = W.generate stock (params 11 40) in
  let plain =
    match C.synthesize spec stock with
    | Ok r -> r
    | Error msg -> Alcotest.failf "plain synthesis failed: %s" msg
  in
  let o = run ~n:1 spec in
  check Alcotest.string "signature" (signature plain)
    (signature o.C.Portfolio.best);
  check Alcotest.int "best index" 0 o.C.Portfolio.best_index;
  check Alcotest.int "launched" 1 o.C.Portfolio.stats.C.Portfolio.launched

(* The winner of a fixed (seed, N) portfolio is identical whatever the
   jobs value and whether the incumbent bound is armed; only the abort
   counters may differ. *)
let winner_key (o : C.result C.Portfolio.outcome) =
  Printf.sprintf "traj=%d %s" o.C.Portfolio.best_index
    (signature o.C.Portfolio.best)

let deterministic_across_jobs () =
  let spec = W.generate stock (params 23 48) in
  let reference = run ~jobs:1 ~n:4 spec in
  List.iter
    (fun jobs ->
      let o = run ~jobs ~n:4 spec in
      check Alcotest.string
        (Printf.sprintf "winner at jobs=%d" jobs)
        (winner_key reference) (winner_key o))
    [ 2; 4 ];
  let unbounded = run ~jobs:4 ~use_bound:false ~n:4 spec in
  check Alcotest.string "winner with bound off" (winner_key reference)
    (winner_key unbounded)

(* Whatever the seed: the winner never loses to trajectory 0 (it may
   exceed its cost only by fixing a deadline miss), and bound on/off
   agree on the winner. *)
let portfolio_sound =
  QCheck.Test.make ~name:"portfolio never worse than trajectory 0"
    ~long_factor:5 ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let spec = W.generate stock (params seed 36) in
      let on = run ~jobs:4 ~n:4 spec in
      let off = run ~jobs:4 ~use_bound:false ~n:4 spec in
      let baseline_ok =
        match on.C.Portfolio.trajectories.(0) with
        | C.Portfolio.Completed { t_cost; t_met } ->
            if t_met && not on.C.Portfolio.best_met then false
            else
              t_met <> on.C.Portfolio.best_met
              || on.C.Portfolio.best_cost <= t_cost
        | C.Portfolio.Failed _ | C.Portfolio.Aborted _ -> false
      in
      baseline_ok && winner_key on = winner_key off)

(* Abort-soundness oracle: rerun every bound-aborted trajectory to
   completion (same seed, same index, bound and budget disarmed via
   trajectory_options) and demand that it indeed loses to the winner
   and that the floor it aborted on was admissible. *)
let abort_oracle () =
  let aborts = ref 0 in
  List.iter
    (fun seed ->
      let spec = W.generate stock (params seed 48) in
      let o = run ~jobs:4 ~n:6 ~seed spec in
      let winner =
        ( (if o.C.Portfolio.best_met then 0 else 1),
          o.C.Portfolio.best_cost,
          o.C.Portfolio.best_index )
      in
      Array.iteri
        (fun k report ->
          match report with
          | C.Portfolio.Aborted (C.Bound_abort { floor; _ }) -> (
              incr aborts;
              let opts =
                C.Portfolio.trajectory_options C.default_options ~seed ~index:k
              in
              match C.synthesize ~options:opts spec stock with
              | Error msg ->
                  Alcotest.failf "aborted trajectory %d fails outright: %s" k
                    msg
              | Ok r ->
                  let rerun = ((if met r then 0 else 1), cost r, k) in
                  if rerun < winner then
                    Alcotest.failf
                      "seed %d: aborted trajectory %d would have won (cost %h \
                       met %b vs winner %d cost %h)"
                      seed k (cost r) (met r) o.C.Portfolio.best_index
                      o.C.Portfolio.best_cost;
                  if floor = infinity then begin
                    if met r then
                      Alcotest.failf
                        "seed %d: trajectory %d aborted as infeasible but \
                         meets its deadlines"
                        seed k
                  end
                  else if met r && cost r +. 1e-6 < floor then
                    Alcotest.failf
                      "seed %d: trajectory %d aborted on floor %h above its \
                       true cost %h (inadmissible bound)"
                      seed k floor (cost r))
          | _ -> ())
        o.C.Portfolio.trajectories)
    [ 3; 7; 12; 19; 31 ];
  (* Informational only: with no aborts the oracle is vacuous, which is
     fine — soundness also gets exercised by the fuzz harness axis. *)
  Printf.printf "abort oracle: %d bound abort(s) replayed\n%!" !aborts

(* A 1 ms budget still returns a result (trajectory 0 is exempt), and
   it is exactly the plain result or better. *)
let tiny_budget () =
  let spec = W.generate stock (params 5 40) in
  let o = run ~jobs:2 ~budget_ms:1 ~n:4 spec in
  (match o.C.Portfolio.baseline_cost with
  | None -> Alcotest.fail "trajectory 0 missing under budget"
  | Some b ->
      if o.C.Portfolio.best_cost > b +. 1e-9 && o.C.Portfolio.best_met then
        Alcotest.failf "budgeted best %h worse than baseline %h"
          o.C.Portfolio.best_cost b);
  check Alcotest.int "all trajectories accounted" 4
    (o.C.Portfolio.stats.C.Portfolio.completed
    + o.C.Portfolio.stats.C.Portfolio.failed
    + o.C.Portfolio.stats.C.Portfolio.aborted)

(* trajectory_options: index 0 is the base options; higher indices stay
   within the documented perturbation ranges. *)
let trajectory_options () =
  let base = C.default_options in
  let t0 = C.Portfolio.trajectory_options base ~seed:42 ~index:0 in
  if t0 <> base then Alcotest.fail "trajectory 0 options differ from base";
  for k = 1 to 8 do
    let t = C.Portfolio.trajectory_options base ~seed:42 ~index:k in
    if t.C.eval_window < 4 then
      Alcotest.failf "trajectory %d eval_window %d below floor" k
        t.C.eval_window;
    if t.C.copy_cap < base.C.copy_cap then
      Alcotest.failf "trajectory %d copy_cap shrank (audit-unsafe)" k
  done

let annotate () =
  let s =
    {
      C.Portfolio.launched = 4;
      completed = 2;
      failed = 0;
      aborted = 2;
      bound_aborts = 1;
      budget_aborts = 1;
      incumbent_updates = 3;
    }
  in
  let spec = W.generate stock (params 2 30) in
  let r = Helpers.synthesize ~lib:stock spec in
  let es = C.Portfolio.annotate r.C.eval_stats s in
  check Alcotest.int "launched" 4 es.C.traj_launched;
  check Alcotest.int "completed" 2 es.C.traj_completed;
  check Alcotest.int "aborted" 2 es.C.traj_aborted;
  check Alcotest.int "bound aborts" 1 es.C.bound_aborts;
  check Alcotest.int "incumbent updates" 3 es.C.incumbent_updates;
  check Alcotest.int "replays preserved" r.C.eval_stats.C.replays es.C.replays

let resolve_n () =
  check Alcotest.int "positive passes through" 3 (C.Portfolio.resolve_n 3);
  let auto = C.Portfolio.resolve_n 0 in
  if auto < 1 then Alcotest.failf "auto resolved to %d" auto;
  check Alcotest.int "negative = auto" auto (C.Portfolio.resolve_n (-1))

let suite =
  [
    Alcotest.test_case "portfolio 1 is the plain flow" `Quick passthrough;
    Alcotest.test_case "winner deterministic across jobs and bound" `Slow
      deterministic_across_jobs;
    Alcotest.test_case "bound aborts are sound (replay oracle)" `Slow
      abort_oracle;
    Alcotest.test_case "tiny budget still answers" `Quick tiny_budget;
    Alcotest.test_case "trajectory options are reproducible" `Quick
      trajectory_options;
    Alcotest.test_case "annotate folds counters" `Quick annotate;
    Alcotest.test_case "resolve_n conventions" `Quick resolve_n;
    qcheck portfolio_sound;
  ]
