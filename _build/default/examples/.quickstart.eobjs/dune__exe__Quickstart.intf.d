examples/quickstart.mli:
