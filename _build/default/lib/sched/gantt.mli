(** Plain-text Gantt rendering of a schedule.

    One row per resource (CPU, link is omitted — links carry transfers
    too short to see at this resolution — and one row per configuration
    mode of each programmable device), columns spanning the hyperperiod.
    Mode rows make the temporal sharing visible: two modes of one device
    never overlap, and the gap between them is the reboot. *)

val render :
  ?width:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  Schedule.t ->
  string
(** [render spec clustering arch sched] draws at most [width] (default
    100) character columns. *)
