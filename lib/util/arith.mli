(** Integer arithmetic helpers for period/hyperperiod computation. *)

val gcd : int -> int -> int
(** Greatest common divisor of non-negative arguments. *)

val lcm : int -> int -> int
(** Least common multiple.  @raise Failure when the result would
    overflow [max_int] — hyperperiods that large indicate a broken
    period set.  The check is exact: every representable LCM is
    returned, including [lcm 1 max_int]. *)

val lcm_list : int list -> int
(** LCM of a non-empty list of positive periods. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the smallest [k] with [k * b >= a], for [b > 0]. *)

val clamp : lo:int -> hi:int -> int -> int

val clamp_float : lo:float -> hi:float -> float -> float
