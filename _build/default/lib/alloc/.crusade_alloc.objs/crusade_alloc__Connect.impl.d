lib/alloc/connect.ml: Arch Array Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util List
