lib/taskgraph/edge.ml: Array
