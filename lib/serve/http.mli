(** Hand-rolled HTTP/1.1 subset over the stdlib [unix] library.

    Parses exactly the request shapes the job server serves — a request
    line, headers, an optional [Content-Length] body — with hard limits
    on header and body size, and supports pipelined keep-alive: a
    {!conn} is a buffered reader, so bytes of the next request that
    arrived with the previous one are not lost.  No chunked encoding,
    no HTTP/2, no TLS; parse errors map to 4xx responses.

    The reader is abstracted over a [read] function so unit tests can
    drive the parser from strings without sockets. *)

type request = {
  meth : string;  (** verbatim, e.g. ["GET"] *)
  path : string;  (** decoded path without the query string *)
  query : (string * string) list;  (** decoded [k=v] pairs, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type error =
  | Eof  (** clean end of stream before any request byte *)
  | Truncated  (** stream ended mid-request *)
  | Too_large of string  (** header block or body over the limit *)
  | Bad of string  (** malformed request line / header / length *)

type conn

val conn_of_fd : Unix.file_descr -> conn

val conn_of_read : (bytes -> int -> int -> int) -> conn
(** A connection over an arbitrary byte source ([read buf off len]
    returning 0 at end of stream). *)

val conn_of_string : string -> conn
(** A connection that replays a fixed byte sequence — the unit-test
    harness for truncation, limits and pipelining. *)

val read_request :
  ?max_header:int -> ?max_body:int -> conn -> (request, error) result
(** Reads one request off the connection (default limits: 16 KiB of
    headers, 8 MiB of body).  Bytes past the request stay buffered for
    the next call, so pipelined requests parse back to back.  CRLF and
    bare-LF line endings are both accepted. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val wants_close : request -> bool
(** [Connection: close] requested (HTTP/1.1 defaults to keep-alive). *)

type response = { status : int; reason : string; content_type : string; body : string }

val response : ?content_type:string -> int -> string -> response
(** [response status body] with the standard reason phrase. *)

val to_bytes : ?close:bool -> response -> string
(** Serialized response with [Content-Length] (and [Connection: close]
    when requested). *)
