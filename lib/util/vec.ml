type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let pop t =
  if t.size = 0 then invalid_arg "Vec.pop: empty vector";
  t.size <- t.size - 1;
  t.data.(t.size)

let exists p t =
  let rec scan i = i < t.size && (p t.data.(i) || scan (i + 1)) in
  scan 0

let for_all p t =
  let rec scan i = i >= t.size || (p t.data.(i) && scan (i + 1)) in
  scan 0

let to_list t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i) :: acc) in
  collect (t.size - 1) []

let map_copy f t =
  { data = Array.init t.size (fun i -> f t.data.(i)); size = t.size }
