(** Synthetic communication-system workloads.

    The paper evaluates CRUSADE on proprietary Lucent task graphs (mobile
    base station, video distribution router, SONET/ATM telecom systems,
    1126-7416 tasks).  This generator reproduces their structural
    features deterministically from a seed:

    - a few hundred periodic task graphs of 6-24 tasks each, layered
      pipelines with fan-out (framing, cell processing, DSP chains,
      provisioning, performance monitoring);
    - multi-rate harmonic periods (8/16/32/64 ms) so the hyperperiod and
      association array stay bounded;
    - a hardware share of graphs whose tasks only run on programmable
      devices (or one matching function-specific ASIC type), organized in
      compatibility families: members of a family occupy disjoint time
      slots of the common period, which is precisely the temporal
      structure dynamic reconfiguration exploits (Section 3);
    - a software share of graphs for general-purpose processors with
      realistic memory vectors;
    - occasional exclusion pairs, and CRUSADE-FT annotations (assertions
      with coverage, error transparency, availability budgets:
      12 min/year for provisioning-class graphs, 4 min/year for
      transmission-class graphs, Section 7). *)

type params = {
  name : string;
  n_tasks : int;
  seed : int;
  hw_fraction : float;  (** share of tasks living in hardware-only graphs *)
  family_slots : int;  (** time slots per compatibility family; deeper
                           families leave more room for reconfiguration *)
  asic_fraction : float;  (** hw tasks that can also map to one ASIC type *)
  cpld_fraction : float;  (** hw tasks small enough for CPLD mapping *)
}

val generate : Crusade_resource.Library.t -> params -> Crusade_taskgraph.Spec.t

val preset : string -> params
(** The eight Table 2/3 examples by name: A1TR, VDRTX, HROST, EST189A,
    HRXC, ADMR, B192G, NGXM.  @raise Not_found for other names. *)

val preset_names : string list
(** In the paper's order. *)

val scaled : params -> float -> params
(** [scaled p f] shrinks the task count by factor [f] (for quick runs);
    other parameters are unchanged. *)
