lib/util/pqueue.mli:
