lib/reconfig/image.ml: Array Buffer Char Crusade_alloc Crusade_cluster Crusade_resource Crusade_taskgraph Crusade_util List String
