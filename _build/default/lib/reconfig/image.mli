(** Configuration-image (software image) construction (Section 4.3).

    Every mode of a programmable device needs its own configuration
    image stored in boot PROM (or system memory, in slave mode).  This
    module builds deterministic images — a header naming the device and
    mode, one configuration record per resident task, zero padding up to
    the device's boot-memory size, and a trailing CRC-16 — and assembles
    the PROM manifest interface synthesis prices.

    The bit patterns are synthetic (a real flow would come out of the
    vendor's bitstream generator), but their sizes, count and layout are
    exactly what reconfiguration management must handle. *)

type image = {
  pe_id : int;
  mode_id : int;
  device : string;
  bytes : string;  (** full image, header + records + padding + CRC *)
  crc : int;
}

val build :
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.pe_inst ->
  Crusade_alloc.Arch.mode ->
  image
(** Image for one occupied mode.  Deterministic: same architecture, same
    bytes.  Image length equals the device's boot-memory size. *)

val manifest :
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  image list
(** Images for every occupied mode of every programmable device, ordered
    by (PE id, mode id) — the PROM contents. *)

val total_bytes : image list -> int

val crc16 : string -> int
(** CRC-16/CCITT over a byte string (exposed for tests). *)
