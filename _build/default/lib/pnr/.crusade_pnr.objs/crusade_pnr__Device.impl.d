lib/pnr/device.ml:
