lib/workloads/examples.ml: Array Crusade_pnr Crusade_resource Crusade_taskgraph Crusade_util List
