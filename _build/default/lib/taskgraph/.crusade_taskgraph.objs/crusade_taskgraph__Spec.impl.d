lib/taskgraph/spec.ml: Array Crusade_util Edge Graph Hashtbl List Task
