(** Stage-2 evaluator: a bounded, thread-safe memo table over
    {!Schedule.run}, scoped to one synthesis run.

    Synthesis schedules structurally identical architectures many times
    over — the allocation loop re-evaluates its committed winner, merge
    trials revisit rejected shapes, repair re-runs the baseline — so
    full scheduling results are cached under a structural fingerprint of
    everything the scheduler reads: the placement map, the PE table
    (type, boot time, per-mode PFU usage), the link table (type,
    attached PE set) and the copy cap, with the spec, clustering and
    library guarded by physical identity.

    A table is created per synthesis run ({!create} at flow start), so
    entries — which retain whole specs, architectures and schedules —
    can never leak across unrelated runs, and the hit/miss/prune
    counters attribute to exactly one run instead of accumulating in
    process-global atomics.  Each table is an LRU of 64 entries behind
    its own mutex (the parallel evaluation path calls it from several
    domains; scheduling itself runs outside the lock).  Cached
    {!Schedule.t} values are shared — callers must treat them as
    read-only, which every caller in this repository already does. *)

type t
(** One run's evaluator state: the memo store plus its counters. *)

val create :
  ?enabled:bool ->
  ?incremental:bool ->
  ?basis_store:Incremental.Store.t ->
  ?trace:Crusade_util.Trace.t ->
  ?metrics:Crusade_util.Trace.Metrics.t ->
  unit ->
  t
(** A fresh, empty table.  [~enabled:false] makes {!run} bypass the
    table entirely (no lookup, no counter traffic) — the synthesis
    options use it to switch stage 2 off.  [~incremental:false] detaches
    the {!Incremental} engine, making {!evaluate} fall back to full
    scheduler runs.  [?basis_store] hands the engine a shared recording
    store ({!Incremental.Store.t}) so several evaluators — portfolio
    trajectories — can seed each other's replay bases; ignored when the
    engine is detached.  [?metrics] registers the counters as
    ["eval.memo_hits"] / ["eval.memo_misses"] / ["eval.pruned"] /
    ["eval.memo_bypassed"] (and, with the engine attached,
    ["eval.replays"] / ["eval.rebuilds"] / ["eval.basis_adoptions"] /
    ["eval.basis_cuts"]) in the given per-run registry; [?trace] emits a
    span around every underlying {!Schedule.run} / {!Schedule.estimate}
    and an instant event per memo hit or prefix replay. *)

val run :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (Schedule.t, string) result
(** Exactly {!Schedule.run}, but consulting the memo table first.  When
    the incremental engine is attached, the underlying full run also
    refreshes its recording. *)

val evaluate :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (Schedule.verdict, string) result
(** Verdict-only evaluation for trial candidates: same answer as
    {!run}'s [deadlines_met] / [total_tardiness] / [scheduled_tasks],
    bit-identical, but served where possible by an incremental prefix
    replay that materializes no schedule.  With the engine attached the
    memo table is bypassed (trial candidates are essentially unique, so
    the structural fingerprint cost more than the hits it earned);
    without it the table answers first.  Use {!run} when the schedule
    itself is needed. *)

val refresh :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  unit
(** Refreshes the incremental engine's replay basis with a record-only
    scheduler run (no schedule is materialized, nothing enters the memo
    table).  No-op when the engine is detached.  For commit points in
    the synthesis loops, where the schedule would be discarded. *)

val estimate :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (int, string) result
(** Exactly {!Schedule.estimate} (never memoized — the bound is cheaper
    than a fingerprint), wrapped in a trace span when tracing is on. *)

val hits : t -> int
(** Memo hits of this run (schedules served from the table). *)

val misses : t -> int
(** Memo misses of this run (schedules actually computed via {!run}). *)

val prunes : t -> int
(** This run's count of candidates rejected by the stage-1 bound
    ({!Schedule.estimate}) without any full schedule; incremented by the
    evaluation loops via {!note_prune}. *)

val note_prune : t -> unit

val bypasses : t -> int
(** {!evaluate} calls that skipped the memo table because the
    incremental engine answered instead; 0 when the engine is detached.
    Keeps the LRU hit/miss columns honest: with an engine attached,
    [hits] only counts {!run}-path traffic. *)

val replays : t -> int
(** Candidate evaluations served by incremental prefix replay; 0 when
    the engine is detached. *)

val rebuilds : t -> int
(** Full scheduler runs through the incremental engine (recording
    refreshes); 0 when the engine is detached. *)

val adoptions : t -> int
(** Replays served by a cross-clustering adopted basis (a subset of
    {!replays}); 0 when the engine is detached. *)

val basis_cuts : t -> int
(** Total recording steps the adopted bases could not cover; 0 when the
    engine is detached. *)

val clear : t -> unit
(** Empties the table, leaving the counters (tests; isolates benchmark
    configurations sharing one table). *)
