lib/resource/link.ml: Array Crusade_util Format
