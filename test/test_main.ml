(* Test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "crusade"
    [
      ("util", Test_util.suite);
      ("taskgraph", Test_taskgraph.suite);
      ("resource", Test_resource.suite);
      ("pnr", Test_pnr.suite);
      ("cluster", Test_cluster.suite);
      ("alloc", Test_alloc.suite);
      ("sched", Test_sched.suite);
      ("reconfig", Test_reconfig.suite);
      ("fault", Test_fault.suite);
      ("workloads", Test_workloads.suite);
      ("core", Test_core.suite);
      ("audit", Test_audit.suite);
      ("upgrade", Test_upgrade.suite);
      ("resynth", Test_resynth.suite);
      ("presets", Test_presets.suite);
      ("evaluator", Test_evaluator.suite);
      ("incremental", Test_incremental.suite);
      ("portfolio", Test_portfolio.suite);
      ("extras", Test_extras.suite);
      ("properties", Test_properties.suite);
      ("serve", Test_serve.suite);
    ]
