lib/cluster/clustering.mli: Crusade_resource Crusade_taskgraph
