test/test_pnr.ml: Alcotest Array Crusade_pnr Crusade_util Crusade_workloads List QCheck QCheck_alcotest
