(* Golden regression over the eight Comm_system presets at scale 16, with
   and without dynamic reconfiguration.  Cost, deadline verdict and the
   architecture counts are pinned exactly: synthesis is deterministic, so
   any drift here is a behaviour change that must be reviewed (and, if
   intended, re-pinned from the paste-ready block this test prints). *)

module C = Crusade.Crusade_core
module W = Crusade_workloads.Comm_system

type row = {
  cost : string;  (* "%.3f" of the dollar cost *)
  met : bool;
  n_pes : int;
  n_links : int;
  n_modes : int;
}

let golden =
  [
    (* preset, reconfig, cost, deadlines_met, pes, links, modes *)
    ("A1TR", false, { cost = "819.720"; met = true; n_pes = 9; n_links = 2; n_modes = 7 });
    ("A1TR", true, { cost = "431.320"; met = true; n_pes = 5; n_links = 1; n_modes = 7 });
    ("VDRTX", false, { cost = "1241.560"; met = true; n_pes = 13; n_links = 3; n_modes = 11 });
    ("VDRTX", true, { cost = "736.000"; met = true; n_pes = 8; n_links = 2; n_modes = 12 });
    ("HROST", false, { cost = "1529.520"; met = true; n_pes = 17; n_links = 3; n_modes = 12 });
    ("HROST", true, { cost = "979.040"; met = true; n_pes = 11; n_links = 3; n_modes = 14 });
    ("EST189A", false, { cost = "2197.751"; met = true; n_pes = 23; n_links = 6; n_modes = 17 });
    ("EST189A", true, { cost = "1608.054"; met = true; n_pes = 17; n_links = 5; n_modes = 18 });
    ("HRXC", false, { cost = "2733.120"; met = true; n_pes = 29; n_links = 7; n_modes = 22 });
    ("HRXC", true, { cost = "1792.000"; met = true; n_pes = 19; n_links = 5; n_modes = 22 });
    ("ADMR", false, { cost = "3434.880"; met = true; n_pes = 36; n_links = 9; n_modes = 28 });
    ("ADMR", true, { cost = "2030.560"; met = true; n_pes = 23; n_links = 4; n_modes = 28 });
    ("B192G", false, { cost = "4590.520"; met = true; n_pes = 46; n_links = 15; n_modes = 37 });
    ("B192G", true, { cost = "2462.120"; met = true; n_pes = 26; n_links = 8; n_modes = 37 });
    ("NGXM", false, { cost = "4684.480"; met = true; n_pes = 48; n_links = 14; n_modes = 38 });
    ("NGXM", true, { cost = "2605.920"; met = true; n_pes = 28; n_links = 8; n_modes = 39 });
  ]

let actual_row name reconfig =
  let spec = W.generate Helpers.stock_lib (W.scaled (W.preset name) 16.0) in
  let r = Helpers.synthesize ~lib:Helpers.stock_lib ~reconfig spec in
  {
    cost = Printf.sprintf "%.3f" r.C.cost;
    met = r.C.deadlines_met;
    n_pes = r.C.n_pes;
    n_links = r.C.n_links;
    n_modes = r.C.n_modes;
  }

let show name reconfig { cost; met; n_pes; n_links; n_modes } =
  Printf.sprintf
    "(%S, %b, { cost = %S; met = %b; n_pes = %d; n_links = %d; n_modes = %d });"
    name reconfig cost met n_pes n_links n_modes

let run_all () =
  let drift =
    List.filter_map
      (fun (name, reconfig, expected) ->
        let actual = actual_row name reconfig in
        if actual = expected then None else Some (show name reconfig actual))
      golden
  in
  if drift <> [] then
    Alcotest.failf
      "golden drift in %d row(s); if intended, re-pin with:\n%s"
      (List.length drift)
      (String.concat "\n" drift)

let preset_count () =
  (* The golden table must cover every preset, both variants. *)
  List.iter
    (fun name ->
      List.iter
        (fun reconfig ->
          if
            not
              (List.exists
                 (fun (n, rc, _) -> n = name && rc = reconfig)
                 golden)
          then Alcotest.failf "preset %s reconfig=%b missing from goldens" name reconfig)
        [ false; true ])
    W.preset_names

(* Portfolio goldens: best-of-4 (seed 0, reconfiguration on) is pinned
   for two presets.  The portfolio winner is deterministic for a fixed
   (seed, N) whatever the jobs count, so these rows are as stable as the
   plain goldens above — and jobs=2 here exercises the concurrent path. *)
type portfolio_row = { p_best : int; p_row : row }

let portfolio_golden =
  [
    ("A1TR", { p_best = 0; p_row = { cost = "431.320"; met = true; n_pes = 5; n_links = 1; n_modes = 7 } });
    ("B192G", { p_best = 0; p_row = { cost = "2462.120"; met = true; n_pes = 26; n_links = 8; n_modes = 37 } });
  ]

let actual_portfolio_row name =
  let spec = W.generate Helpers.stock_lib (W.scaled (W.preset name) 16.0) in
  match
    C.Portfolio.run ~jobs:2 ~n:4 ~options:C.default_options
      ~flow:(fun o -> C.synthesize ~options:o spec Helpers.stock_lib)
      ~cost:(fun (r : C.result) -> r.C.cost)
      ~met:(fun (r : C.result) -> r.C.deadlines_met)
      ()
  with
  | Error msg -> Alcotest.failf "portfolio synthesis of %s failed: %s" name msg
  | Ok o ->
      let r = o.C.Portfolio.best in
      {
        p_best = o.C.Portfolio.best_index;
        p_row =
          {
            cost = Printf.sprintf "%.3f" r.C.cost;
            met = r.C.deadlines_met;
            n_pes = r.C.n_pes;
            n_links = r.C.n_links;
            n_modes = r.C.n_modes;
          };
      }

let show_portfolio name { p_best; p_row = { cost; met; n_pes; n_links; n_modes } } =
  Printf.sprintf
    "(%S, { p_best = %d; p_row = { cost = %S; met = %b; n_pes = %d; n_links = \
     %d; n_modes = %d } });"
    name p_best cost met n_pes n_links n_modes

let run_portfolio () =
  let drift =
    List.filter_map
      (fun (name, expected) ->
        let actual = actual_portfolio_row name in
        if actual = expected then None else Some (show_portfolio name actual))
      portfolio_golden
  in
  if drift <> [] then
    Alcotest.failf "portfolio golden drift in %d row(s); if intended, re-pin with:\n%s"
      (List.length drift)
      (String.concat "\n" drift)

let suite =
  [
    Alcotest.test_case "golden table covers all presets" `Quick preset_count;
    Alcotest.test_case "preset costs and deadlines pinned" `Slow run_all;
    Alcotest.test_case "portfolio best-of-4 pinned" `Slow run_portfolio;
  ]
