examples/allocation_walkthrough.mli:
