lib/alloc/export.ml: Arch Buffer Crusade_cluster Crusade_resource Crusade_util List Printf String
