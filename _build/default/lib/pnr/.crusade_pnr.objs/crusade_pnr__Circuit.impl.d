lib/pnr/circuit.ml: Array Crusade_util Hashtbl List Option
