module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph
module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Priority = Crusade_cluster.Priority
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec
module Intervals = Crusade_util.Intervals
module Pqueue = Crusade_util.Pqueue

type instance = {
  i_task : int;
  i_copy : int;
  arrival : int;
  abs_deadline : int;
  mutable start : int;
  mutable finish : int;
}

type t = {
  instances : instance array;
  hyperperiod : int;
  deadlines_met : bool;
  total_tardiness : int;
  graph_windows : Intervals.t array;
  mode_switches : int array;
  scheduled_tasks : int;
}

let default_copy_cap = 64

(* Bytes a non-comm-processor CPU copies per microsecond when staging an
   inter-PE transfer; CPUs with a communication processor overlap
   communication with computation (Section 2.2). *)
let cpu_copy_bytes_per_us = 256

let compute_priorities (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let link_ports =
    Array.init (Vec.length arch.Arch.links) (fun i ->
        max 2 (List.length (Vec.get arch.Arch.links i).Arch.attached))
  in
  let exec_time (task : Task.t) =
    match Arch.task_site arch clustering task.id with
    | Some site ->
        let pe = Vec.get arch.pes site.Arch.s_pe in
        Option.value ~default:(Task.max_exec task)
          (Task.exec_on task pe.Arch.ptype.Pe.id)
    | None -> Task.max_exec task
  in
  let comm_time (e : Edge.t) =
    if clustering.of_task.(e.src) = clustering.of_task.(e.dst) then 0
    else begin
      match
        ( Arch.task_site arch clustering e.src,
          Arch.task_site arch clustering e.dst )
      with
      | Some a, Some b when a.Arch.s_pe = b.Arch.s_pe -> 0
      | Some a, Some b -> (
          match Arch.links_between arch a.Arch.s_pe b.Arch.s_pe with
          | [] -> Priority.unallocated_comm arch.lib e
          | links ->
              List.fold_left
                (fun acc (l : Arch.link_inst) ->
                  let time =
                    Link.comm_time l.ltype ~ports:link_ports.(l.Arch.l_id)
                      ~bytes:e.bytes
                  in
                  min acc time)
                max_int links)
      | _, _ -> Priority.unallocated_comm arch.lib e
    end
  in
  Priority.compute spec ~exec_time ~comm_time

(* Levels only change when the architecture does, and the same
   architecture is scheduled several times per synthesis (candidate
   evaluation, repair, merge validation, interface synthesis), so the
   last computation is cached on the architecture itself. *)
let priorities (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  match Arch.cached_levels arch spec clustering with
  | Some levels -> levels
  | None ->
      let levels = compute_priorities spec clustering arch in
      Arch.set_cached_levels arch spec clustering levels;
      levels

(* Per-PPE configuration-window bookkeeping.  Windows are kept in three
   parallel int arrays sorted by start; the former (mode, start, stop)
   list rebuilt an O(n) prefix on every commit and was a scheduler
   hot spot on large workloads. *)
type ppe_state = {
  mutable w_modes : int array;
  mutable w_starts : int array;
  mutable w_stops : int array;
  mutable w_n : int;
  boot_by_mode : int array;
}

let ppe_find_start state ~mode ~ready ~duration =
  let boot_self = state.boot_by_mode.(mode) in
  let t = ref ready in
  for i = 0 to state.w_n - 1 do
    let md = state.w_modes.(i) in
    if md <> mode then begin
      let s = state.w_starts.(i) and e = state.w_stops.(i) in
      let boot_next = state.boot_by_mode.(md) in
      (* Our window [t, t+duration) must leave room to boot into any
         other-mode window after it, and must itself start a boot
         after any other-mode window before it.  The scan stays linear:
         stops are not monotone in start order (same-mode windows may
         overlap), so no bisection is possible. *)
      if !t + duration + boot_next > s && !t < e + boot_self then
        if e + boot_self > !t then t := e + boot_self
    end
  done;
  !t

let ppe_commit state ~mode ~start ~stop =
  if state.w_n = Array.length state.w_starts then begin
    let ncap = if state.w_n = 0 then 16 else 2 * state.w_n in
    let grow a = Array.init ncap (fun i -> if i < state.w_n then a.(i) else 0) in
    state.w_modes <- grow state.w_modes;
    state.w_starts <- grow state.w_starts;
    state.w_stops <- grow state.w_stops
  end;
  (* Insert after every window with an equal-or-earlier start. *)
  let lo = ref 0 and hi = ref state.w_n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if state.w_starts.(mid) <= start then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  let tail = state.w_n - pos in
  if tail > 0 then begin
    Array.blit state.w_modes pos state.w_modes (pos + 1) tail;
    Array.blit state.w_starts pos state.w_starts (pos + 1) tail;
    Array.blit state.w_stops pos state.w_stops (pos + 1) tail
  end;
  state.w_modes.(pos) <- mode;
  state.w_starts.(pos) <- start;
  state.w_stops.(pos) <- stop;
  state.w_n <- state.w_n + 1

let count_switches state =
  (* Count mode alternations along the start-sorted windows. *)
  if state.w_n = 0 then 0
  else begin
    let acc = ref 0 in
    for i = 1 to state.w_n - 1 do
      if state.w_modes.(i) <> state.w_modes.(i - 1) then incr acc
    done;
    !acc
  end

exception Disconnected of int * int

(* Spec-derived data reused by every [run]/[estimate] call of a
   synthesis: each graph's topological order and the worst-case
   downstream path per task (the effective-deadline slack — an interior
   task must leave room for the worst-case completion of the chain below
   it).  Shared by [run] and [estimate] so their effective deadlines
   agree exactly.  One spec dominates a synthesis flow, so a
   single-entry cache keyed by physical identity suffices; the [Atomic]
   keeps concurrent evaluation domains safe (a race merely recomputes
   the same immutable value). *)
type spec_static = {
  ss_spec : Spec.t;
  ss_topo : Task.t list array;  (* indexed by graph id *)
  ss_downstream : int array;  (* indexed by task id *)
}

let spec_static_cache : spec_static option Atomic.t = Atomic.make None

let spec_static (spec : Spec.t) =
  match Atomic.get spec_static_cache with
  | Some s when s.ss_spec == spec -> s
  | _ ->
      let topo = Array.map Graph.topological_order spec.graphs in
      let downstream = Array.make (Spec.n_tasks spec) 0 in
      Array.iter
        (fun (g : Graph.t) ->
          List.iter
            (fun (task : Task.t) ->
              downstream.(task.id) <-
                List.fold_left
                  (fun acc (e : Edge.t) ->
                    max acc
                      (Task.max_exec (Spec.task spec e.dst) + downstream.(e.dst)))
                  0 spec.succs.(task.id))
            (List.rev topo.(g.id)))
        spec.graphs;
      let s = { ss_spec = spec; ss_topo = topo; ss_downstream = downstream } in
      Atomic.set spec_static_cache (Some s);
      s

let downstream_times (spec : Spec.t) = (spec_static spec).ss_downstream

let run ?(copy_cap = default_copy_cap) (spec : Spec.t) (clustering : Clustering.t)
    (arch : Arch.t) =
  let n_graphs = Spec.n_graphs spec in
  let hyperperiod = Spec.hyperperiod spec in
  (* Instance numbering: graph base + copy * graph size + local index. *)
  let local_index = Array.make (Spec.n_tasks spec) 0 in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iteri (fun i (task : Task.t) -> local_index.(task.id) <- i) g.tasks)
    spec.graphs;
  let explicit = Array.make n_graphs 0 in
  let bases = Array.make n_graphs 0 in
  let total = ref 0 in
  Array.iteri
    (fun gi (g : Graph.t) ->
      explicit.(gi) <- min (Spec.copies spec g) copy_cap;
      bases.(gi) <- !total;
      total := !total + (explicit.(gi) * Graph.n_tasks g))
    spec.graphs;
  let instance_id (task : Task.t) copy =
    bases.(task.graph) + (copy * Graph.n_tasks spec.graphs.(task.graph))
    + local_index.(task.id)
  in
  (* Effective deadlines: an interior task must leave room for the
     worst-case completion of its downstream path, otherwise a later
     allocation can legally squeeze the chain until the sink has no slack
     left.  Worst-case times match the paper's use of worst-case
     execution vectors in priority levels. *)
  let downstream = downstream_times spec in
  let instances =
    Array.make !total
      { i_task = 0; i_copy = 0; arrival = 0; abs_deadline = 0; start = 0; finish = 0 }
  in
  Array.iter
    (fun (g : Graph.t) ->
      for copy = 0 to explicit.(g.id) - 1 do
        Array.iter
          (fun (task : Task.t) ->
            let arrival = g.est + (copy * g.period) in
            instances.(instance_id task copy) <-
              {
                i_task = task.id;
                i_copy = copy;
                arrival;
                abs_deadline =
                  arrival + Graph.task_deadline g task - downstream.(task.id);
                start = -1;
                finish = -1;
              })
          g.tasks
      done)
    spec.graphs;
  (* Placement lookups per task; the bool mirror keeps the hot
     [placed] checks off the polymorphic option equality. *)
  let site_of =
    Array.init (Spec.n_tasks spec) (fun task_id ->
        Arch.task_site arch clustering task_id)
  in
  let is_placed = Array.map Option.is_some site_of in
  let placed task_id = is_placed.(task_id) in
  (* Resources: dense arrays indexed by instance id (p_id/l_id are the
     Vec positions), created on first touch.  [links_between] goes
     straight to the architecture's own memo. *)
  let cpu_timelines = Array.make (Vec.length arch.Arch.pes) None in
  let cpu_timeline pe_id =
    match cpu_timelines.(pe_id) with
    | Some tl -> tl
    | None ->
        let tl = Timeline.create () in
        cpu_timelines.(pe_id) <- Some tl;
        tl
  in
  let link_timelines = Array.make (Vec.length arch.Arch.links) None in
  let link_timeline l_id =
    match link_timelines.(l_id) with
    | Some tl -> tl
    | None ->
        let tl = Timeline.create () in
        link_timelines.(l_id) <- Some tl;
        tl
  in
  let ppe_states = Array.make (Vec.length arch.Arch.pes) None in
  let ppe_state (pe : Arch.pe_inst) =
    match ppe_states.(pe.Arch.p_id) with
    | Some st -> st
    | None ->
        let boots =
          Array.init (Vec.length pe.Arch.modes) (fun i ->
              Arch.mode_boot_us pe (Vec.get pe.Arch.modes i))
        in
        let st =
          { w_modes = [||]; w_starts = [||]; w_stops = [||]; w_n = 0;
            boot_by_mode = boots }
        in
        ppe_states.(pe.Arch.p_id) <- Some st;
        st
  in
  (* Dense per-run view of [Arch.links_between]: connectivity is fixed
     for the duration of one run, and the architecture-level cache pays
     a tuple allocation plus a generic hash per probe. *)
  let n_pe_insts = Vec.length arch.Arch.pes in
  let links_cache = Array.make (n_pe_insts * n_pe_insts) None in
  let links_between a b =
    let idx = (a * n_pe_insts) + b in
    match links_cache.(idx) with
    | Some ls -> ls
    | None ->
        let ls = Arch.links_between arch a b in
        links_cache.(idx) <- Some ls;
        ls
  in
  (* Port counts are fixed for the duration of one run. *)
  let link_ports =
    Array.init (Vec.length arch.Arch.links) (fun i ->
        max 2 (List.length (Vec.get arch.Arch.links i).Arch.attached))
  in
  (* Activity windows per graph (explicit copies). *)
  let graph_activity = Array.make n_graphs [] in
  let note_activity graph start stop =
    if stop > start then graph_activity.(graph) <- (start, stop) :: graph_activity.(graph)
  in
  (* Dependency counting over placed tasks only. *)
  let indegree = Array.make !total 0 in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iter
        (fun (e : Edge.t) ->
          if placed e.src && placed e.dst then
            for copy = 0 to explicit.(g.id) - 1 do
              let dst = instance_id (Spec.task spec e.dst) copy in
              indegree.(dst) <- indegree.(dst) + 1
            done)
        g.edges)
    spec.graphs;
  let levels = priorities spec clustering arch in
  (* Ready-list order: most urgent effective deadline first (the
     per-instance form of the deadline-based priority levels: the
     effective deadline already folds arrival, the task deadline and the
     worst-case downstream path); levels break ties within a deadline. *)
  let cmp a b =
    let da = instances.(a).abs_deadline and db = instances.(b).abs_deadline in
    if da <> db then Int.compare da db
    else begin
      let ta = instances.(a).i_task and tb = instances.(b).i_task in
      let la = levels.(ta) and lb = levels.(tb) in
      if la <> lb then Int.compare lb la else Int.compare a b
    end
  in
  let queue = Pqueue.create ~cmp in
  Array.iteri
    (fun idx inst ->
      if placed inst.i_task && indegree.(idx) = 0 then Pqueue.add queue idx)
    instances;
  let scheduled_tasks = ref 0 in
  let schedule_instance idx =
    let inst = instances.(idx) in
    let task = Spec.task spec inst.i_task in
    let site = Option.get site_of.(inst.i_task) in
    let pe = Vec.get arch.pes site.Arch.s_pe in
    let pe_type = pe.Arch.ptype in
    let duration = Option.value ~default:0 (Task.exec_on task pe_type.Pe.id) in
    (* Input edges: intra-PE transfers are free; inter-PE transfers are
       scheduled on the best connecting link. *)
    let copy_overhead = ref 0 in
    let ready =
      List.fold_left
        (fun acc (e : Edge.t) ->
          if not (placed e.src) then acc
          else begin
            let src_inst = instances.(instance_id (Spec.task spec e.src) inst.i_copy) in
            let src_site = Option.get site_of.(e.src) in
            if src_site.Arch.s_pe = site.Arch.s_pe then max acc src_inst.finish
            else begin
              match links_between src_site.Arch.s_pe site.Arch.s_pe with
              | [] -> raise (Disconnected (src_site.Arch.s_pe, site.Arch.s_pe))
              | links ->
                  let best =
                    List.fold_left
                      (fun best (l : Arch.link_inst) ->
                        let comm =
                          Link.comm_time l.ltype ~ports:link_ports.(l.Arch.l_id)
                            ~bytes:e.bytes
                        in
                        let _, fin =
                          Timeline.probe (link_timeline l.Arch.l_id)
                            ~ready:src_inst.finish ~duration:comm
                        in
                        match best with
                        | Some (_, _, best_fin) when best_fin <= fin -> best
                        | _ -> Some (l, comm, fin)
                      )
                      None links
                  in
                  let l, comm, _ =
                    match best with Some x -> x | None -> assert false
                  in
                  let s, f =
                    Timeline.insert (link_timeline l.Arch.l_id) ~ready:src_inst.finish
                      ~duration:comm
                  in
                  note_activity task.graph s f;
                  (match pe_type.Pe.pe_class with
                  | Pe.General_purpose cpu when not cpu.has_communication_processor ->
                      copy_overhead :=
                        !copy_overhead
                        + Crusade_util.Arith.ceil_div e.bytes cpu_copy_bytes_per_us
                  | Pe.General_purpose _ | Pe.Asic_pe _ | Pe.Programmable _ -> ());
                  max acc f
            end
          end)
        inst.arrival spec.preds.(inst.i_task)
    in
    let start, finish =
      match pe_type.Pe.pe_class with
      | Pe.General_purpose cpu ->
          Timeline.insert_preemptible (cpu_timeline pe.Arch.p_id) ~ready
            ~duration:(duration + !copy_overhead)
            ~max_chunks:3 ~chunk_penalty:cpu.preemption_overhead_us
      | Pe.Asic_pe _ -> (ready, ready + duration)
      | Pe.Programmable _ ->
          let st = ppe_state pe in
          let s = ppe_find_start st ~mode:site.Arch.s_mode ~ready ~duration in
          ppe_commit st ~mode:site.Arch.s_mode ~start:s ~stop:(s + duration);
          (s, s + duration)
    in
    inst.start <- start;
    inst.finish <- finish;
    note_activity task.graph start finish;
    incr scheduled_tasks;
    (* Release successors. *)
    List.iter
      (fun (e : Edge.t) ->
        if placed e.dst then begin
          let dst = instance_id (Spec.task spec e.dst) inst.i_copy in
          indegree.(dst) <- indegree.(dst) - 1;
          if indegree.(dst) = 0 then Pqueue.add queue dst
        end)
      spec.succs.(inst.i_task)
  in
  match
    let rec drain () =
      match Pqueue.pop queue with
      | Some idx ->
          schedule_instance idx;
          drain ()
      | None -> ()
    in
    drain ()
  with
  | exception Disconnected (a, b) ->
      Error (Printf.sprintf "no link between PE %d and PE %d" a b)
  | () ->
      (* Deadline verification over the explicit instances. *)
      let tardiness = ref 0 in
      Array.iter
        (fun inst ->
          if placed inst.i_task && inst.finish >= 0 then
            tardiness := !tardiness + max 0 (inst.finish - inst.abs_deadline))
        instances;
      (* Graph activity over the whole hyperperiod: explicit windows plus a
         conservative covering interval for the extrapolated copies. *)
      let graph_windows =
        Array.mapi
          (fun gi acts ->
            let g = spec.graphs.(gi) in
            let copies = Spec.copies spec g in
            let acts =
              if copies > explicit.(gi) && acts <> [] then begin
                let horizon_start = g.est + (explicit.(gi) * g.period) in
                (horizon_start, g.est + (copies * g.period)) :: acts
              end
              else acts
            in
            Intervals.of_list acts)
          graph_activity
      in
      let mode_switches = Array.make (Vec.length arch.pes) 0 in
      Array.iteri
        (fun pe_id st ->
          match st with
          | Some st -> mode_switches.(pe_id) <- count_switches st
          | None -> ())
        ppe_states;
      Ok
        {
          instances;
          hyperperiod;
          deadlines_met = !tardiness = 0;
          total_tardiness = !tardiness;
          graph_windows;
          mode_switches;
          scheduled_tasks = !scheduled_tasks;
        }

(* Stage-1 evaluator: an admissible lower bound on [run]'s total
   tardiness, O(V + E + I log I) with no timeline construction.

   Two bounds, both provable against the list scheduler above, combined
   by [max]:

   - Critical-path bound.  For a placed task t, every instance finishes
     no earlier than its arrival plus
       path(t) = exec(t) + max(0, max over placed preds of
                                    comm_lb(edge) + path(src))
     where exec is the placement's execution time (the same
     [Task.exec_on] default the scheduler uses) and comm_lb is zero for
     same-PE edges and the cheapest connecting link's transfer time
     otherwise — the scheduler can only pick a link at least that slow,
     and gap-search/preemption/mode reboots only push starts later.
     Since an instance's arrival and effective deadline shift together by
     copy * period, the per-instance lateness max 0 (path(t) - slack(t))
     is copy-independent and multiplies by the explicit copy count.

   - CPU-load bound.  A general-purpose PE is a serial resource: all the
     work of its resident instances occupies disjoint time.  For any
     prefix of its instances sorted by effective deadline, some instance
     finishes no earlier than (earliest arrival in prefix) + (total work
     of prefix) and has a deadline no later than the prefix's last, so
     the prefix lateness is a valid tardiness witness; distinct PEs have
     distinct witnesses, so per-PE maxima sum.  Work includes the
     deterministic copy-in overhead of inter-PE input edges on CPUs
     without a communication processor (exactly the scheduler's
     [copy_overhead]).  ASICs run in parallel and PPE same-mode windows
     may overlap, so only CPUs contribute.

   Returns [Error] exactly when [run] would: two communicating placed
   tasks on PEs with no connecting link. *)
let estimate ?(copy_cap = default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  let n_tasks = Spec.n_tasks spec in
  let site_of = Array.init n_tasks (fun tid -> Arch.task_site arch clustering tid) in
  (* Exact disconnection check: [run] computes the ready time of every
     placed instance, so it raises iff some placed-placed edge crosses
     unconnected PEs. *)
  let disconnected = ref None in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iter
        (fun (e : Edge.t) ->
          if Option.is_none !disconnected then
            match (site_of.(e.src), site_of.(e.dst)) with
            | Some a, Some b
              when a.Arch.s_pe <> b.Arch.s_pe
                   && Arch.links_between arch a.Arch.s_pe b.Arch.s_pe = [] ->
                disconnected := Some (a.Arch.s_pe, b.Arch.s_pe)
            | _ -> ())
        g.edges)
    spec.graphs;
  match !disconnected with
  | Some (a, b) -> Error (Printf.sprintf "no link between PE %d and PE %d" a b)
  | None ->
      let static = spec_static spec in
      let downstream = static.ss_downstream in
      let exec_on_site (task : Task.t) (site : Arch.site) =
        let pe = Vec.get arch.Arch.pes site.Arch.s_pe in
        Option.value ~default:0 (Task.exec_on task pe.Arch.ptype.Pe.id)
      in
      let link_ports =
        Array.init (Vec.length arch.Arch.links) (fun i ->
            max 2 (List.length (Vec.get arch.Arch.links i).Arch.attached))
      in
      let comm_lb (e : Edge.t) (src_site : Arch.site) (dst_site : Arch.site) =
        if src_site.Arch.s_pe = dst_site.Arch.s_pe then 0
        else
          List.fold_left
            (fun acc (l : Arch.link_inst) ->
              min acc
                (Link.comm_time l.ltype ~ports:link_ports.(l.Arch.l_id)
                   ~bytes:e.bytes))
            max_int
            (Arch.links_between arch src_site.Arch.s_pe dst_site.Arch.s_pe)
      in
      let path = Array.make n_tasks 0 in
      let path_bound = ref 0 in
      Array.iter
        (fun (g : Graph.t) ->
          let explicit = min (Spec.copies spec g) copy_cap in
          List.iter
            (fun (task : Task.t) ->
              match site_of.(task.id) with
              | None -> ()
              | Some site ->
                  let chain =
                    List.fold_left
                      (fun acc (e : Edge.t) ->
                        match site_of.(e.src) with
                        | Some src_site ->
                            max acc (path.(e.src) + comm_lb e src_site site)
                        | None -> acc)
                      0 spec.preds.(task.id)
                  in
                  path.(task.id) <- chain + exec_on_site task site;
                  let slack = Graph.task_deadline g task - downstream.(task.id) in
                  let late = path.(task.id) - slack in
                  if late > 0 then path_bound := !path_bound + (explicit * late))
            static.ss_topo.(g.id))
        spec.graphs;
      (* Serial-resource load bound per CPU: one pass over the tasks,
         bucketing (deadline, arrival, work) items by hosting PE, so the
         cost is O(tasks + sorting) instead of O(PEs * tasks). *)
      let buckets = Array.make (Vec.length arch.Arch.pes) [] in
      Array.iter
        (fun (g : Graph.t) ->
          let explicit = min (Spec.copies spec g) copy_cap in
          Array.iter
            (fun (task : Task.t) ->
              match site_of.(task.id) with
              | None -> ()
              | Some site -> (
                  let pe = Vec.get arch.Arch.pes site.Arch.s_pe in
                  match pe.Arch.ptype.Pe.pe_class with
                  | Pe.Asic_pe _ | Pe.Programmable _ -> ()
                  | Pe.General_purpose cpu ->
                      let overhead =
                        if cpu.Pe.has_communication_processor then 0
                        else
                          List.fold_left
                            (fun acc (e : Edge.t) ->
                              match site_of.(e.src) with
                              | Some s when s.Arch.s_pe <> site.Arch.s_pe ->
                                  acc
                                  + Crusade_util.Arith.ceil_div e.bytes
                                      cpu_copy_bytes_per_us
                              | _ -> acc)
                            0 spec.preds.(task.id)
                      in
                      let work = exec_on_site task site + overhead in
                      let slack = Graph.task_deadline g task - downstream.(task.id) in
                      for copy = 0 to explicit - 1 do
                        let arrival = g.est + (copy * g.period) in
                        buckets.(site.Arch.s_pe) <-
                          (arrival + slack, arrival, work)
                          :: buckets.(site.Arch.s_pe)
                      done))
            g.tasks)
        spec.graphs;
      let cpu_bound = ref 0 in
      Array.iter
        (fun items ->
          if items <> [] then begin
            let sorted =
              List.sort
                (fun ((d1, a1, w1) : int * int * int) (d2, a2, w2) ->
                  if d1 <> d2 then Int.compare d1 d2
                  else if a1 <> a2 then Int.compare a1 a2
                  else Int.compare w1 w2)
                items
            in
            let worst = ref 0 and work_sum = ref 0 and arr_min = ref max_int in
            List.iter
              (fun (deadline, arrival, work) ->
                work_sum := !work_sum + work;
                if arrival < !arr_min then arr_min := arrival;
                let late = !arr_min + !work_sum - deadline in
                if late > !worst then worst := late)
              sorted;
            cpu_bound := !cpu_bound + !worst
          end)
        buckets;
      Ok (max !path_bound !cpu_bound)
