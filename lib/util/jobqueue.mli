(** Thread-safe bounded FIFO used as the synthesis job queue.

    Fairness is strict arrival order: [pop] always returns the oldest
    element still queued, whichever thread or domain pushed it, so no
    submitter can starve another.  The queue is safe to share between
    sys-threads and domains (plain mutex/condition discipline, no
    busy-waiting).

    Cancellation support: [remove] deletes a queued element in place
    (the element is atomically either removed or handed to some popper,
    never both), which is how a server cancels a job that has not yet
    started running. *)

type 'a t

val create : ?cap:int -> unit -> 'a t
(** A fresh queue holding at most [cap] elements (default: unbounded).
    [cap <= 0] means unbounded. *)

val push : 'a t -> 'a -> bool
(** Appends at the tail.  Returns [false] — without blocking — when the
    queue is full or closed. *)

val pop : 'a t -> 'a option
(** Removes the head, blocking while the queue is empty and open.
    Returns [None] once the queue is closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking [pop]: [None] when currently empty (or closed). *)

val remove : 'a t -> ('a -> bool) -> bool
(** [remove t p] deletes the first queued element satisfying [p].
    Returns [false] when no queued element matches (it may already have
    been popped — the caller handles that race by checking the popped
    element's own state). *)

val length : 'a t -> int

val close : 'a t -> unit
(** Rejects further pushes and wakes every blocked popper; queued
    elements still drain through [pop]. *)
