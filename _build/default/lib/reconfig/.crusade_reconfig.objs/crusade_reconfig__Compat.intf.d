lib/reconfig/compat.mli: Crusade_sched Crusade_taskgraph
