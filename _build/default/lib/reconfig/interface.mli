(** Reconfiguration controller interface synthesis (Section 4.4).

    FPGAs are programmed serially or through an 8-bit parallel port, in
    master mode (from a standalone PROM) or slave mode (fed by a CPU);
    interface clocks range 1-10 MHz, and multiple devices may be chained
    to share one PROM and controller.  Each option trades boot time
    against dollars; CRUSADE picks the cheapest option that meets the
    system's boot-time requirement (and keeps the schedule feasible,
    since boot time enters finish-time estimation through the
    reboot task). *)

type style = Serial | Parallel8
type role = Master_prom | Slave_cpu

type option_t = {
  style : style;
  role : role;
  mhz : float;
  chained : bool;  (** devices chained on one programming bus/PROM *)
}

val all_options : option_t list
(** The full option space (2 styles x 2 roles x 4 clock rates x
    chained/unchained). *)

val boot_full_us : option_t -> Crusade_resource.Pe.ppe_info -> int
(** Time to load a full configuration image through this interface. *)

val interface_cost : option_t -> Crusade_alloc.Arch.t -> float option
(** Dollar cost of the controller(s) and image storage for the given
    architecture; [None] when the option is inapplicable (slave mode
    without any CPU in the architecture). *)

val describe : option_t -> string

val synthesize :
  Crusade_alloc.Arch.t ->
  Crusade_taskgraph.Spec.t ->
  validate:(Crusade_alloc.Arch.t -> bool) ->
  (option_t, string) result
(** Tries the applicable options in increasing cost; commits the first
    whose mode-switch boot times stay within
    [spec.boot_time_requirement] and for which [validate] (typically a
    re-schedule checking deadlines) accepts the updated architecture.
    On success the architecture's per-PPE [boot_full_us] and
    [interface_cost] are updated. *)
