type cpu_info = {
  memory_bank_bytes : int;
  max_memory_banks : int;
  memory_bank_cost : float;
  context_switch_us : int;
  preemption_overhead_us : int;
  has_communication_processor : bool;
  speed_factor : float;
}

type asic_info = { gates : int; pins : int }

type prog_kind = Fpga | Cpld

type ppe_info = {
  kind : prog_kind;
  pfus : int;
  pins : int;
  boot_memory_bytes : int;
  config_bits : int;
  partially_reconfigurable : bool;
  speed_factor : float;
}

type pe_class =
  | General_purpose of cpu_info
  | Asic_pe of asic_info
  | Programmable of ppe_info

type t = { id : int; name : string; cost : float; pe_class : pe_class }

let is_programmable t =
  match t.pe_class with Programmable _ -> true | General_purpose _ | Asic_pe _ -> false

let is_cpu t =
  match t.pe_class with General_purpose _ -> true | Programmable _ | Asic_pe _ -> false

let is_asic t =
  match t.pe_class with Asic_pe _ -> true | Programmable _ | General_purpose _ -> false

let pfus t = match t.pe_class with Programmable p -> p.pfus | General_purpose _ | Asic_pe _ -> 0

let pins t =
  match t.pe_class with
  | Programmable p -> p.pins
  | Asic_pe a -> a.pins
  | General_purpose _ -> 0

let ppe_info t =
  match t.pe_class with Programmable p -> Some p | General_purpose _ | Asic_pe _ -> None

let pp fmt t =
  let kind =
    match t.pe_class with
    | General_purpose _ -> "CPU"
    | Asic_pe _ -> "ASIC"
    | Programmable { kind = Fpga; _ } -> "FPGA"
    | Programmable { kind = Cpld; _ } -> "CPLD"
  in
  Format.fprintf fmt "%s %s ($%.0f)" kind t.name t.cost
