lib/reconfig/program.ml: Array Crusade_alloc Crusade_cluster Crusade_resource Crusade_sched Crusade_taskgraph Crusade_util Format Hashtbl List Option
