(** Phase-level tracing and per-run metrics for the synthesis flow.

    A {!t} is a thread-safe event sink: spans (begin/end pairs) and
    counter samples carry the emitting domain id and a monotonic
    timestamp in microseconds since the sink was created, and export as
    Chrome [trace_event] JSON loadable in [chrome://tracing] / Perfetto.

    Every emitting entry point takes a [t option]; [None] is the no-op
    fast path — a single match, no clock read, no allocation beyond the
    already-built closure — so disabled tracing stays within benchmark
    noise and cannot perturb synthesis results (tracing never feeds back
    into any decision).

    {!Counter} and {!Metrics} are the per-run metrics registry: named
    atomic counters created per synthesis run instead of process-global
    atomics, so concurrent or back-to-back runs report independent
    statistics. *)

type arg = Str of string | Num of int
(** Span/instant argument values ([args] payload in the JSON). *)

type t
(** A mutable trace sink.  All operations are thread-safe; events from
    concurrent domains are serialized under the sink's lock and
    timestamps are clamped monotonic (wall clocks may step). *)

val create : unit -> t

type view = {
  v_phase : string;  (** ["B"] span begin, ["E"] span end, ["i"] instant, ["C"] counter *)
  v_name : string;
  v_ts : float;  (** microseconds since sink creation, clamped monotonic *)
  v_tid : int;  (** emitting domain id *)
  v_args : (string * arg) list;
}
(** A subscriber's read-only view of one emitted event. *)

val on_event : t -> (view -> unit) -> unit
(** [on_event t f] registers [f] as the sink's event hook: every
    subsequently emitted event is passed to [f], in emission order,
    while it is appended to the sink.  The hook runs under the sink's
    lock — it must be fast and must not call back into the sink — and a
    hook that raises is silently ignored.  At most one hook is active;
    registering again replaces it.  This is how a per-run consumer
    (e.g. a job server streaming phase progress) observes spans live
    instead of waiting for {!to_json}. *)

val span : t option -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] emits a begin event, runs [f], and emits the
    matching end event on the same domain — also when [f] raises, so
    per-domain begin/end pairs always balance.  [span None name f] is
    exactly [f ()]. *)

val instant : t option -> ?args:(string * arg) list -> string -> unit
(** A zero-duration event (Chrome phase ["i"]). *)

val counter : t option -> string -> (string * int) list -> unit
(** [counter t name values] emits a Chrome counter sample (phase ["C"]):
    one track per [name], one series per value key. *)

val n_events : t -> int

val to_json : t -> string
(** The whole sink as a Chrome [trace_event] JSON object
    ([{"traceEvents": [...], ...}]), events in emission order. *)

val write_file : t -> string -> unit
(** Writes {!to_json} to a file (truncating). *)

(** A single thread-safe integer counter. *)
module Counter : sig
  type t

  val make : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

(** A per-run registry of named counters.  Creation is find-or-create
    under a lock; the returned {!Counter.t} is then lock-free. *)
module Metrics : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** The counter registered under [name], created at zero on first
      use.  Repeated calls return the same counter. *)

  val get : t -> string -> int
  (** Current value of [name], 0 when never created. *)

  val to_alist : t -> (string * int) list
  (** Every registered counter with its current value, sorted by name. *)
end
