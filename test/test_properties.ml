(* Cross-cutting properties: random workloads through the whole flow,
   checked by the independent schedule validator; plus targeted failure
   injection. *)

module C = Crusade.Crusade_core
module Spec = Crusade_taskgraph.Spec
module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe
module Validate = Crusade_sched.Validate
module W = Crusade_workloads.Comm_system

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let stock = Helpers.stock_lib

let tiny_params seed =
  {
    W.name = Printf.sprintf "prop%d" seed;
    n_tasks = 40;
    seed;
    hw_fraction = 0.5;
    family_slots = 3;
    asic_fraction = 0.1;
    cpld_fraction = 0.1;
  }

(* Counterexample printer: a bare seed number is useless in a failure
   report, so describe the workload it generates. *)
let seed_arbitrary range_hi =
  QCheck.set_print
    (fun seed ->
      let spec = W.generate stock (tiny_params seed) in
      Printf.sprintf "seed %d -> %s: %d tasks, %d graphs, %d edges" seed
        spec.Spec.name (Spec.n_tasks spec)
        (Array.length spec.Spec.graphs)
        (Spec.n_edges spec))
    QCheck.(int_range 1 range_hi)

(* The flagship property: whatever the seed, synthesis produces a
   deadline-meeting architecture whose schedule passes every invariant of
   the independent validator, and dynamic reconfiguration never costs
   more than its absence. *)
let synthesis_sound =
  QCheck.Test.make ~name:"synthesize is sound on random workloads" ~long_factor:10 ~count:12
    (seed_arbitrary 10_000)
    (fun seed ->
      let spec = W.generate stock (tiny_params seed) in
      match
        ( C.synthesize ~options:{ C.default_options with dynamic_reconfiguration = false }
            spec stock,
          C.synthesize spec stock )
      with
      | Ok plain, Ok reconf ->
          let violations =
            Validate.check spec reconf.C.clustering reconf.C.arch reconf.C.schedule
          in
          plain.C.deadlines_met && reconf.C.deadlines_met && violations = []
          && reconf.C.cost <= plain.C.cost +. 0.001
      | _ -> false)

let ft_sound =
  QCheck.Test.make ~name:"CRUSADE-FT is sound on random workloads" ~long_factor:10 ~count:6
    (seed_arbitrary 10_000)
    (fun seed ->
      let spec = W.generate stock (tiny_params seed) in
      match Crusade_fault.Ft.synthesize spec stock with
      | Ok r ->
          let core = r.Crusade_fault.Ft.core in
          core.C.deadlines_met
          && Validate.check core.C.spec core.C.clustering core.C.arch core.C.schedule
             = []
          && r.Crusade_fault.Ft.total_cost >= core.C.cost
      | Error _ -> false)

let dsl_roundtrip_generated =
  QCheck.Test.make ~name:"Dsl roundtrips generated workloads" ~long_factor:10 ~count:10
    (seed_arbitrary 10_000)
    (fun seed ->
      let spec = W.generate stock (tiny_params seed) in
      match Crusade_taskgraph.Dsl.parse (Crusade_taskgraph.Dsl.print spec) with
      | Ok again ->
          Spec.n_tasks again = Spec.n_tasks spec
          && Spec.n_edges again = Spec.n_edges spec
          && Spec.hyperperiod again = Spec.hyperperiod spec
      | Error _ -> false)

(* The property the job server's result cache stands on: printing a
   parsed spec is a fixpoint, so however a client formats its upload the
   canonical text — and therefore the cache key — is the same. *)
let dsl_print_parse_fixpoint =
  QCheck.Test.make ~name:"Dsl print/parse/print is a fixpoint" ~long_factor:10
    ~count:10 (seed_arbitrary 10_000)
    (fun seed ->
      let spec = W.generate stock (tiny_params seed) in
      let printed = Crusade_taskgraph.Dsl.print spec in
      match Crusade_taskgraph.Dsl.parse printed with
      | Ok again -> Crusade_taskgraph.Dsl.print again = printed
      | Error _ -> false)

(* --- failure injection --- *)

let cpu_less_library_rejects_software () =
  (* a library with only FPGAs cannot host software tasks *)
  let fpga = Library.pe Helpers.small_lib 3 in
  let lib = Library.create ~pes:[| { fpga with Pe.id = 0 } |] ~links:[||] in
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"g" ~period:1_000 ~deadline:800 () in
  ignore (Spec.Builder.add_task b ~graph:g ~name:"sw" ~exec:[| -1 |] ());
  let spec = Spec.Builder.finish_exn b ~name:"no-cpu" () in
  check Alcotest.bool "rejected" true (Result.is_error (C.synthesize spec lib))

let overtight_deadline_reported_not_crashed () =
  let spec, _ = Helpers.sw_chain ~exec:9_000 ~deadline:1_000 2 in
  match C.synthesize spec Helpers.small_lib with
  | Ok r -> check Alcotest.bool "reported as missed" false r.C.deadlines_met
  | Error msg -> Alcotest.failf "should degrade, not error: %s" msg

let tight_boot_requirement_buys_speed () =
  (* figure2 with a tight boot-time budget forces a faster, costlier
     programming interface than the relaxed default *)
  let relaxed = Crusade_workloads.Examples.figure2 Helpers.small_lib in
  let tight =
    Spec.build_exn ~name:"figure2-tight" ~boot_time_requirement:600
      (Array.to_list relaxed.Spec.graphs)
  in
  let run spec = Helpers.synthesize spec in
  let relaxed_r = run relaxed and tight_r = run tight in
  match (relaxed_r.C.chosen_interface, tight_r.C.chosen_interface) with
  | Some a, Some b ->
      let speed (o : Crusade_reconfig.Interface.option_t) =
        o.Crusade_reconfig.Interface.mhz
        *. float_of_int
             (match o.Crusade_reconfig.Interface.style with
             | Crusade_reconfig.Interface.Serial -> 1
             | Crusade_reconfig.Interface.Parallel8 -> 8)
      in
      check Alcotest.bool "tight budget buys bandwidth" true (speed b > speed a)
  | _ -> Alcotest.fail "both runs must synthesize an interface"

let determinism_across_option_sets =
  QCheck.Test.make ~name:"copy_cap never breaks determinism" ~long_factor:10 ~count:6
    (seed_arbitrary 1_000)
    (fun seed ->
      let spec = W.generate stock (tiny_params seed) in
      let run cap =
        match
          C.synthesize ~options:{ C.default_options with copy_cap = cap } spec stock
        with
        | Ok r -> Some (r.C.cost, r.C.n_pes)
        | Error _ -> None
      in
      (* same cap twice -> identical result *)
      run 16 = run 16)

let suite =
  [
    qcheck synthesis_sound;
    qcheck ft_sound;
    qcheck dsl_roundtrip_generated;
    qcheck dsl_print_parse_fixpoint;
    Alcotest.test_case "cpu-less library rejects software" `Quick
      cpu_less_library_rejects_software;
    Alcotest.test_case "overtight deadline degrades" `Quick
      overtight_deadline_reported_not_crashed;
    Alcotest.test_case "tight boot budget buys speed" `Quick
      tight_boot_requirement_buys_speed;
    qcheck determinism_across_option_sets;
  ]
