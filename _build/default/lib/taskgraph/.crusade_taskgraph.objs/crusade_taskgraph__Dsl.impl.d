lib/taskgraph/dsl.ml: Array Buffer Edge Graph Hashtbl In_channel List Out_channel Printf Spec String Task
