(** CRUSADE-FT: co-synthesis of fault-tolerant architectures (Section 6).

    The basic CRUSADE flow runs on the fault-detection-augmented
    specification ({!Transform}); dependability analysis then provisions
    standby spares until every task graph's availability requirement is
    met ({!Dependability}). *)

type result = {
  core : Crusade.Crusade_core.result;  (** synthesis of the augmented spec *)
  transform_stats : Transform.stats;
  provisioning : Dependability.provisioning;
  total_cost : float;  (** architecture + spares *)
  n_pes_with_spares : int;
}

val synthesize :
  ?options:Crusade.Crusade_core.options ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  (result, string) Stdlib.result
(** Runs fault-detection transformation, CRUSADE co-synthesis (with or
    without dynamic reconfiguration per [options]) and spare
    provisioning. *)

val resynth_pe_failure :
  ?options:Crusade.Crusade_core.options ->
  result ->
  pe:int ->
  ( Crusade.Crusade_core.Resynth.report * result option,
    string )
  Stdlib.result
(** Warm restart after PE instance [pe] fails in the field: the core
    architecture is repaired with {!Crusade.Crusade_core.Resynth}
    (reprogramming the survivors first, replacement hardware only if
    deadlines demand it), and the standby spares are re-provisioned
    against the repaired architecture — a failure changes the per-type
    PE pools, so the deployed spare counts no longer meet the
    availability budgets.  The returned [result option] is [None] when
    the repair verdict is infeasible. *)

val audit : result -> Crusade_alloc.Audit.violation list
(** [Crusade.Crusade_core.audit] of the core result plus the CRUSADE-FT
    invariants, empty when sound:
    - ["ft-cost"]: [total_cost] = core cost + spare cost, bit-exact;
    - ["ft-spare-cost"]: the spare bill recomputes from the per-type
      spare counts and {!Dependability.spare_link_cost};
    - ["ft-spares"]: [n_pes_with_spares] counts every provisioned spare;
    - ["ft-separation"]: every duplicate-and-compare task carries an
      exclusion vector and is placed on a different PE than the task it
      protects;
    - ["ft-availability"]: the recorded minutes/year figures recompute
      bit-exactly from the spare counts and the architecture
      ({!Dependability.achieved_unavailability});
    - ["ft-budget"]: every graph's unavailability budget is met. *)
