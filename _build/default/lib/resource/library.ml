type t = { pes : Pe.t array; links : Link.t array }

let create ~pes ~links =
  Array.iteri
    (fun i (p : Pe.t) ->
      if p.id <> i then invalid_arg "Library.create: PE ids must equal indices")
    pes;
  Array.iteri
    (fun i (l : Link.t) ->
      if l.id <> i then invalid_arg "Library.create: link ids must equal indices")
    links;
  { pes; links }

let n_pe_types t = Array.length t.pes
let n_link_types t = Array.length t.links
let pe t i = t.pes.(i)
let link t i = t.links.(i)

let cpus t = List.filter Pe.is_cpu (Array.to_list t.pes)
let asics t = List.filter Pe.is_asic (Array.to_list t.pes)
let ppes t = List.filter Pe.is_programmable (Array.to_list t.pes)

(* Builders; ids are patched by [index_pes]/[index_links]. *)

let cpu name ~cost ~speed ~comm_proc : Pe.t =
  {
    id = 0;
    name;
    cost;
    pe_class =
      General_purpose
        {
          memory_bank_bytes = 16 * 1024 * 1024;
          max_memory_banks = 4;
          memory_bank_cost = 30.0;
          context_switch_us = 12;
          preemption_overhead_us = 55;
          has_communication_processor = comm_proc;
          speed_factor = speed;
        };
  }

let asic name ~cost ~gates ~pins : Pe.t =
  { id = 0; name; cost; pe_class = Asic_pe { gates; pins } }

let ppe name ~cost ~kind ~pfus ~pins ~config_bits ~partial ~speed : Pe.t =
  {
    id = 0;
    name;
    cost;
    pe_class =
      Programmable
        {
          kind;
          pfus;
          pins;
          boot_memory_bytes = (config_bits + 7) / 8;
          config_bits;
          partially_reconfigurable = partial;
          speed_factor = speed;
        };
  }

let index_pes pes = Array.mapi (fun i (p : Pe.t) -> { p with id = i }) pes
let index_links links = Array.mapi (fun i (l : Link.t) -> { l with id = i }) links

let bus name ~cost ~max_ports ~base_access ~per_port ~bytes_per_packet ~packet_time_us
    : Link.t =
  {
    id = 0;
    name;
    cost;
    port_cost = 4.0;
    topology = Bus;
    max_ports;
    access_times =
      Array.init (max_ports - 1) (fun i -> base_access + (per_port * i));
    bytes_per_packet;
    packet_time_us;
  }

let stock_asics =
  (* Sixteen ASIC types spanning small glue logic to large datapath parts.
     Capacities are in the same area units as task gate requirements and
     PPE PFU counts; each ASIC is a function-specific part, so only tasks
     whose execution-time vector names it can map there. *)
  let spec =
    [
      ("asic-gl8", 45.0, 160, 84);
      ("asic-gl12", 60.0, 200, 100);
      ("asic-dp16", 78.0, 240, 120);
      ("asic-dp20", 95.0, 280, 144);
      ("asic-dp24", 112.0, 320, 160);
      ("asic-fe28", 128.0, 360, 160);
      ("asic-fe32", 150.0, 400, 176);
      ("asic-sw36", 170.0, 440, 208);
      ("asic-sw40", 195.0, 480, 208);
      ("asic-xc44", 215.0, 520, 240);
      ("asic-xc48", 238.0, 560, 240);
      ("asic-pm52", 262.0, 600, 256);
      ("asic-pm56", 285.0, 640, 256);
      ("asic-tr60", 310.0, 700, 304);
      ("asic-tr68", 345.0, 760, 304);
      ("asic-tr76", 390.0, 840, 352);
    ]
  in
  List.map (fun (name, cost, gates, pins) -> asic name ~cost ~gates ~pins) spec

let stock () =
  let pes =
    [
      cpu "mc68360" ~cost:28.0 ~speed:1.0 ~comm_proc:true;
      cpu "mc68360+L2" ~cost:68.0 ~speed:1.3 ~comm_proc:true;
      cpu "mc68040" ~cost:55.0 ~speed:1.9 ~comm_proc:false;
      cpu "mc68040+L2" ~cost:95.0 ~speed:2.3 ~comm_proc:false;
      cpu "mc68060" ~cost:110.0 ~speed:3.2 ~comm_proc:false;
      cpu "mc68060+L2" ~cost:150.0 ~speed:3.8 ~comm_proc:false;
      cpu "powerquicc" ~cost:75.0 ~speed:2.6 ~comm_proc:true;
      cpu "powerquicc+L2" ~cost:115.0 ~speed:3.0 ~comm_proc:true;
    ]
    @ stock_asics
    @ [
        ppe "xc3195a" ~cost:118.0 ~kind:Fpga ~pfus:484 ~pins:176
          ~config_bits:94_984 ~partial:false ~speed:1.0;
        ppe "xc4025" ~cost:340.0 ~kind:Fpga ~pfus:1024 ~pins:256
          ~config_bits:422_176 ~partial:false ~speed:1.2;
        ppe "xc6264" ~cost:190.0 ~kind:Fpga ~pfus:784 ~pins:224
          ~config_bits:180_224 ~partial:true ~speed:1.1;
        ppe "at6005" ~cost:88.0 ~kind:Fpga ~pfus:400 ~pins:120
          ~config_bits:65_536 ~partial:true ~speed:0.9;
        ppe "orca2t15" ~cost:165.0 ~kind:Fpga ~pfus:400 ~pins:208
          ~config_bits:151_552 ~partial:false ~speed:1.15;
        ppe "orca2t40" ~cost:330.0 ~kind:Fpga ~pfus:900 ~pins:304
          ~config_bits:335_872 ~partial:false ~speed:1.25;
        ppe "xc95108" ~cost:42.0 ~kind:Cpld ~pfus:108 ~pins:108
          ~config_bits:23_328 ~partial:false ~speed:1.3;
        ppe "xc7336" ~cost:24.0 ~kind:Cpld ~pfus:36 ~pins:44 ~config_bits:6_912
          ~partial:false ~speed:1.4;
      ]
  in
  let links : Link.t list =
    [
      bus "bus-680x0" ~cost:12.0 ~max_ports:6 ~base_access:3 ~per_port:2
        ~bytes_per_packet:32 ~packet_time_us:3;
      bus "bus-quicc" ~cost:18.0 ~max_ports:8 ~base_access:2 ~per_port:1
        ~bytes_per_packet:64 ~packet_time_us:3;
      {
        id = 0;
        name = "lan-10mb";
        cost = 40.0;
        port_cost = 9.0;
        topology = Lan;
        max_ports = 16;
        access_times = Array.init 15 (fun i -> 40 + (12 * i));
        bytes_per_packet = 256;
        packet_time_us = 205;
      };
      {
        id = 0;
        name = "serial-31mb";
        cost = 8.0;
        port_cost = 3.0;
        topology = Point_to_point;
        max_ports = 2;
        access_times = [| 4 |];
        bytes_per_packet = 64;
        packet_time_us = 17;
      };
    ]
  in
  create
    ~pes:(index_pes (Array.of_list pes))
    ~links:(index_links (Array.of_list links))

let small () =
  let pes =
    [
      cpu "cpu-a" ~cost:30.0 ~speed:1.0 ~comm_proc:true;
      cpu "cpu-b" ~cost:90.0 ~speed:2.5 ~comm_proc:false;
      asic "asic-s" ~cost:80.0 ~gates:20_000 ~pins:120;
      (* F1 / F2 of the paper's Fig. 2: F2 is bigger and can host all three
         task graphs when dynamic reconfiguration is used. *)
      ppe "fpga-f1" ~cost:100.0 ~kind:Fpga ~pfus:200 ~pins:96 ~config_bits:40_000
        ~partial:false ~speed:1.0;
      ppe "fpga-f2" ~cost:150.0 ~kind:Fpga ~pfus:360 ~pins:144 ~config_bits:72_000
        ~partial:true ~speed:1.0;
    ]
  in
  let links : Link.t list =
    [
      bus "bus-s" ~cost:10.0 ~max_ports:6 ~base_access:3 ~per_port:2
        ~bytes_per_packet:32 ~packet_time_us:3;
      {
        id = 0;
        name = "serial-s";
        cost = 6.0;
        port_cost = 2.0;
        topology = Point_to_point;
        max_ports = 2;
        access_times = [| 4 |];
        bytes_per_packet = 64;
        packet_time_us = 17;
      };
    ]
  in
  create
    ~pes:(index_pes (Array.of_list pes))
    ~links:(index_links (Array.of_list links))
