(** Union-find over integers [0 .. n-1], with path compression and union
    by rank.  Used for service-module grouping and merge bookkeeping. *)

type t

val create : int -> t

val find : t -> int -> int

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val groups : t -> int list list
(** Equivalence classes, each sorted ascending; classes ordered by their
    smallest member. *)
