type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row > ncols then
        invalid_arg
          (Printf.sprintf
             "Text_table.render: row %d has %d cells but the header has %d columns" i
             (List.length row) ncols))
    rows;
  let get_align i = match List.nth_opt align i with Some a -> a | None -> Left in
  let cell row i = match List.nth_opt row i with Some s -> s | None -> "" in
  let all = header :: rows in
  let width i = List.fold_left (fun acc row -> max acc (String.length (cell row i))) 0 all in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi (fun i w -> pad (get_align i) w (cell row i)) widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"

let fmt_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let fmt_dollars x =
  if not (Float.is_finite x) then "n/a"
  else
  let n = int_of_float (Float.round x) in
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf
