(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the library draws from an explicit [t]
    so that workload generation, placement and routing are reproducible
    from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split rng] derives an independent generator from [rng], advancing
    [rng] by one step.  Used to give each subsystem its own stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance rng p] is [true] with probability [p] (clamped to [0,1]). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
