(* A mutex/condition bounded FIFO.  The [Queue.t] from the stdlib has no
   in-place removal, so the queue body is a deque of list cells rebuilt
   only on [remove] — pushes and pops stay O(1) amortized via the
   classic two-list funnel. *)

type 'a t = {
  lock : Mutex.t;
  non_empty : Condition.t;
  cap : int;  (* <= 0 = unbounded *)
  mutable front : 'a list;  (* head is next to pop *)
  mutable back : 'a list;  (* newest first *)
  mutable size : int;
  mutable closed : bool;
}

let create ?(cap = 0) () =
  {
    lock = Mutex.create ();
    non_empty = Condition.create ();
    cap;
    front = [];
    back = [];
    size = 0;
    closed = false;
  }

let push t x =
  Mutex.lock t.lock;
  let ok = (not t.closed) && (t.cap <= 0 || t.size < t.cap) in
  if ok then begin
    t.back <- x :: t.back;
    t.size <- t.size + 1;
    Condition.signal t.non_empty
  end;
  Mutex.unlock t.lock;
  ok

(* Callers hold the lock. *)
let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let pop_locked t =
  normalize t;
  match t.front with
  | x :: rest ->
      t.front <- rest;
      t.size <- t.size - 1;
      Some x
  | [] -> None

let pop t =
  Mutex.lock t.lock;
  let rec wait () =
    match pop_locked t with
    | Some _ as r -> r
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.non_empty t.lock;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock t.lock;
  r

let try_pop t =
  Mutex.lock t.lock;
  let r = pop_locked t in
  Mutex.unlock t.lock;
  r

let remove t p =
  Mutex.lock t.lock;
  normalize t;
  let rec split acc = function
    | [] -> None
    | x :: rest when p x -> Some (List.rev_append acc rest)
    | x :: rest -> split (x :: acc) rest
  in
  let found =
    match split [] t.front with
    | Some front' ->
        t.front <- front';
        true
    | None -> (
        (* [back] is newest-first; scan it oldest-first. *)
        match split [] (List.rev t.back) with
        | Some back_oldest_first ->
            t.back <- List.rev back_oldest_first;
            true
        | None -> false)
  in
  if found then t.size <- t.size - 1;
  Mutex.unlock t.lock;
  found

let length t =
  Mutex.lock t.lock;
  let n = t.size in
  Mutex.unlock t.lock;
  n

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.non_empty;
  Mutex.unlock t.lock
