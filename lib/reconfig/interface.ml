module Pe = Crusade_resource.Pe
module Spec = Crusade_taskgraph.Spec
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec

type style = Serial | Parallel8
type role = Master_prom | Slave_cpu

type option_t = { style : style; role : role; mhz : float; chained : bool }

let clock_rates = [ 1.0; 2.5; 5.0; 10.0 ]

let all_options =
  List.concat_map
    (fun style ->
      List.concat_map
        (fun role ->
          List.concat_map
            (fun mhz -> [ { style; role; mhz; chained = false }; { style; role; mhz; chained = true } ])
            clock_rates)
        [ Master_prom; Slave_cpu ])
    [ Serial; Parallel8 ]

let width = function Serial -> 1 | Parallel8 -> 8

(* Chained devices share the programming bus: images stream through the
   chain, costing extra transfer time. *)
let chain_overhead = 1.2

let boot_full_us option (info : Pe.ppe_info) =
  let bits_per_us = option.mhz *. float_of_int (width option.style) in
  let raw = float_of_int info.config_bits /. bits_per_us in
  let raw = if option.chained then raw *. chain_overhead else raw in
  max 1 (int_of_float raw)

let speed_cost_factor mhz =
  if mhz <= 1.0 then 1.0
  else if mhz <= 2.5 then 1.3
  else if mhz <= 5.0 then 1.8
  else 2.8

let prom_dollars_per_kbyte = Arch.prom_dollars_per_kbyte
let dram_dollars_per_kbyte = 0.12

let ppes_of arch =
  Vec.fold
    (fun acc (pe : Arch.pe_inst) ->
      if Pe.is_programmable pe.Arch.ptype && Arch.n_images pe > 0 then pe :: acc else acc)
    [] arch.Arch.pes

let has_cpu arch =
  Vec.exists
    (fun (pe : Arch.pe_inst) ->
      Pe.is_cpu pe.Arch.ptype && Arch.pe_in_use pe)
    arch.Arch.pes

let interface_cost option arch =
  let ppes = ppes_of arch in
  if ppes = [] then Some 0.0
  else if option.role = Slave_cpu && not (has_cpu arch) then None
  else begin
    let image_kbytes =
      List.fold_left
        (fun acc (pe : Arch.pe_inst) ->
          match Pe.ppe_info pe.Arch.ptype with
          | Some info ->
              acc
              +. (float_of_int (Arch.n_images pe * info.boot_memory_bytes) /. 1024.0)
          | None -> acc)
        0.0 ppes
    in
    let n_devices = float_of_int (List.length ppes) in
    let speed = speed_cost_factor option.mhz in
    let style = match option.style with Serial -> 1.0 | Parallel8 -> 1.8 in
    let storage, controllers =
      match option.role with
      | Master_prom ->
          let storage = image_kbytes *. prom_dollars_per_kbyte in
          let controllers =
            if option.chained then (6.0 *. speed *. style) +. (1.5 *. n_devices)
            else 4.0 *. speed *. style *. n_devices
          in
          (storage, controllers)
      | Slave_cpu ->
          (* Images live in system DRAM; the CPU drives the interface. *)
          let storage = image_kbytes *. dram_dollars_per_kbyte in
          let controllers =
            if option.chained then (2.0 *. speed *. style) +. (1.0 *. n_devices)
            else 2.0 *. speed *. style *. n_devices
          in
          (storage, controllers)
    in
    Some (storage +. controllers)
  end

let describe option =
  Printf.sprintf "%s %s %.1fMHz%s"
    (match option.style with Serial -> "serial" | Parallel8 -> "parallel8")
    (match option.role with Master_prom -> "master" | Slave_cpu -> "slave")
    option.mhz
    (if option.chained then " chained" else "")

let apply option arch =
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      match Pe.ppe_info pe.Arch.ptype with
      | Some info -> pe.Arch.boot_full_us <- boot_full_us option info
      | None -> ())
    arch.Arch.pes

let boot_requirement_met arch requirement =
  Vec.fold
    (fun acc (pe : Arch.pe_inst) ->
      acc
      && (Arch.n_images pe <= 1
         || Vec.for_all
              (fun (m : Arch.mode) ->
                m.Arch.m_clusters = [] || Arch.mode_boot_us pe m <= requirement)
              pe.Arch.modes))
    true arch.Arch.pes

let synthesize arch (spec : Spec.t) ~validate =
  let candidates =
    List.filter_map
      (fun option ->
        match interface_cost option arch with
        | Some cost -> Some (cost, option)
        | None -> None)
      all_options
  in
  let sorted = List.sort compare candidates in
  let saved_boots =
    Vec.fold (fun acc (pe : Arch.pe_inst) -> (pe.Arch.p_id, pe.Arch.boot_full_us) :: acc)
      [] arch.Arch.pes
  in
  let restore () =
    List.iter
      (fun (p_id, boot) -> (Vec.get arch.Arch.pes p_id).Arch.boot_full_us <- boot)
      saved_boots
  in
  let rec try_options = function
    | [] ->
        restore ();
        Error "no programming interface meets the boot-time requirement"
    | (cost, option) :: rest ->
        apply option arch;
        if boot_requirement_met arch spec.boot_time_requirement && validate arch then begin
          arch.Arch.interface_cost <- Some cost;
          Ok option
        end
        else try_options rest
  in
  try_options sorted
