(** Stage-2 evaluator: a bounded, thread-safe memo table over
    {!Schedule.run}, scoped to one synthesis run.

    Synthesis schedules structurally identical architectures many times
    over — the allocation loop re-evaluates its committed winner, merge
    trials revisit rejected shapes, repair re-runs the baseline — so
    full scheduling results are cached under a structural fingerprint of
    everything the scheduler reads: the placement map, the PE table
    (type, boot time, per-mode PFU usage), the link table (type,
    attached PE set) and the copy cap, with the spec, clustering and
    library guarded by physical identity.

    A table is created per synthesis run ({!create} at flow start), so
    entries — which retain whole specs, architectures and schedules —
    can never leak across unrelated runs, and the hit/miss/prune
    counters attribute to exactly one run instead of accumulating in
    process-global atomics.  Each table is an LRU of 64 entries behind
    its own mutex (the parallel evaluation path calls it from several
    domains; scheduling itself runs outside the lock).  Cached
    {!Schedule.t} values are shared — callers must treat them as
    read-only, which every caller in this repository already does. *)

type t
(** One run's evaluator state: the memo store plus its counters. *)

val create :
  ?enabled:bool ->
  ?trace:Crusade_util.Trace.t ->
  ?metrics:Crusade_util.Trace.Metrics.t ->
  unit ->
  t
(** A fresh, empty table.  [~enabled:false] makes {!run} bypass the
    table entirely (no lookup, no counter traffic) — the synthesis
    options use it to switch stage 2 off.  [?metrics] registers the
    counters as ["eval.memo_hits"] / ["eval.memo_misses"] /
    ["eval.pruned"] in the given per-run registry; [?trace] emits a
    span around every underlying {!Schedule.run} / {!Schedule.estimate}
    and an instant event per memo hit. *)

val run :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (Schedule.t, string) result
(** Exactly {!Schedule.run}, but consulting the memo table first. *)

val estimate :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (int, string) result
(** Exactly {!Schedule.estimate} (never memoized — the bound is cheaper
    than a fingerprint), wrapped in a trace span when tracing is on. *)

val hits : t -> int
(** Memo hits of this run (schedules served from the table). *)

val misses : t -> int
(** Memo misses of this run (schedules actually computed via {!run}). *)

val prunes : t -> int
(** This run's count of candidates rejected by the stage-1 bound
    ({!Schedule.estimate}) without any full schedule; incremented by the
    evaluation loops via {!note_prune}. *)

val note_prune : t -> unit

val clear : t -> unit
(** Empties the table, leaving the counters (tests; isolates benchmark
    configurations sharing one table). *)
