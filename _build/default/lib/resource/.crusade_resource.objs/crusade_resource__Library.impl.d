lib/resource/library.ml: Array Link List Pe
