module Spec = Crusade_taskgraph.Spec
module Pe = Crusade_resource.Pe
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Options = Crusade_alloc.Options
module Schedule = Crusade_sched.Schedule
module Memo = Crusade_sched.Memo
module Incremental = Crusade_sched.Incremental
module Merge = Crusade_reconfig.Merge
module Interface = Crusade_reconfig.Interface
module Vec = Crusade_util.Vec
module Pool = Crusade_util.Pool
module Rng = Crusade_util.Rng
module Trace = Crusade_util.Trace

(* ---------------- Portfolio trajectory control ----------------

   A portfolio run launches N perturbed copies of the synthesis flow.
   Each copy carries a [traj] control block in its options: its index,
   the seed of its perturbation stream, the shared incumbent bound, and
   its wall-clock deadline.  The flow raises [Trajectory_abort] from its
   commit points when the incumbent bound proves the trajectory can
   never produce the winning result, or when the budget expired. *)

type bound_state = {
  b_best : (float * int) option Atomic.t;
      (* best completed feasible (cost, trajectory index), lexicographic
         minimum; only completed results are published, so an abort
         decision never depends on a speculative value *)
  b_updates : int Atomic.t;
}

type abort_reason =
  | Bound_abort of {
      floor : float;
      incumbent_cost : float;
      incumbent_index : int;
    }
  | Budget_abort

exception Trajectory_abort of abort_reason

exception Cancelled

type traj = {
  t_index : int;
  t_seed : int;  (* perturbation stream seed; unused when t_index = 0 *)
  t_bound : bound_state option;
  t_deadline : float option;  (* absolute wall clock *)
  t_fit_scale : float * float;  (* merge PFU/pin cap scale, each <= 1.0 *)
  t_basis : Incremental.Store.t option;
      (* shared recording store: perturbed trajectories (index >= 1)
         publish and adopt replay bases across their physically distinct
         clusterings; [None] for trajectory 0, which stays bit-identical
         to a plain run down to its counters *)
}

type options = {
  dynamic_reconfiguration : bool;
  copy_cap : int;
  max_cluster_size : int;
  use_clustering : bool;
  eval_window : int;
  merge_trials_per_pass : int;
  allow_new_pes : bool;
  jobs : int;
  prune : bool;
  memo : bool;
  incremental : bool;
  incremental_merge : bool;
  trace : Trace.t option;
  portfolio : traj option;
  cancel : (unit -> bool) option;
}

let default_options =
  {
    dynamic_reconfiguration = true;
    copy_cap = Schedule.default_copy_cap;
    max_cluster_size = 8;
    use_clustering = true;
    eval_window = 24;
    merge_trials_per_pass = 400;
    allow_new_pes = true;
    jobs = Pool.default_jobs ();
    prune = true;
    memo = true;
    incremental = true;
    incremental_merge = true;
    trace = None;
    portfolio = None;
    cancel = None;
  }

type eval_stats = {
  pruned : int;
  memo_hits : int;
  memo_misses : int;
  memo_bypassed : int;
  rollbacks : int;
  replays : int;
  rebuilds : int;
  merge_replays : int;
  merge_rebuilds : int;
  basis_adoptions : int;
  basis_cuts : int;
  traj_launched : int;
  traj_completed : int;
  traj_aborted : int;
  bound_aborts : int;
  incumbent_updates : int;
}

type result = {
  spec : Spec.t;
  arch : Arch.t;
  clustering : Clustering.t;
  schedule : Schedule.t;
  cost : float;
  n_pes : int;
  n_links : int;
  n_modes : int;
  deadlines_met : bool;
  cpu_seconds : float;
  wall_seconds : float;
  merge_stats : Merge.stats option;
  chosen_interface : Interface.option_t option;
  eval_stats : eval_stats;
}

(* Wall clock for the [wall_seconds] report: [Sys.time] sums processor
   time over every domain, so it overstates elapsed time as soon as
   [jobs > 1]. *)
let wall_now () = Unix.gettimeofday ()

(* Per-run evaluator state, created at flow start and dropped with the
   run: the stage-2 memo table (entries retain whole specs and
   architectures, so it must not outlive the run), the metrics registry
   its counters live in, and the trace sink.  Nothing here is
   process-global — back-to-back or concurrent syntheses report fully
   independent [eval_stats] and can never share a memo entry. *)
type ctx = {
  memo : Memo.t;
  metrics : Trace.Metrics.t;
  rollback_counter : Trace.Counter.t;
  trace : Trace.t option;
  check_budget : unit -> unit;
      (* raises [Trajectory_abort Budget_abort] past the deadline; a
         no-op closure outside portfolio runs *)
  perturb : Rng.t option;
      (* the trajectory's perturbation stream; [None] for trajectory 0
         and plain runs, which therefore stay bit-identical *)
  mutable merge_replays : int;
  mutable merge_rebuilds : int;
      (* the merge phase's slice of the replay/rebuild counters, sampled
         around the [Merge.optimize] span in [run_flow] *)
}

let make_ctx (opts : options) =
  let metrics = Trace.Metrics.create () in
  (* Cooperative cancellation shares the budget check's commit points:
     a flow is cancellable exactly where it is budget-abortable. *)
  let check_cancel =
    match opts.cancel with
    | Some cancelled -> fun () -> if cancelled () then raise Cancelled
    | None -> fun () -> ()
  in
  let check_budget =
    match opts.portfolio with
    | Some { t_deadline = Some d; _ } ->
        fun () ->
          check_cancel ();
          if Unix.gettimeofday () > d then
            raise (Trajectory_abort Budget_abort)
    | Some { t_deadline = None; _ } | None -> check_cancel
  in
  let perturb =
    match opts.portfolio with
    | Some t when t.t_index > 0 -> Some (Rng.create t.t_seed)
    | Some _ | None -> None
  in
  let basis_store =
    match opts.portfolio with
    | Some { t_basis; _ } -> t_basis
    | None -> None
  in
  {
    memo =
      Memo.create ~enabled:opts.memo ~incremental:opts.incremental
        ?basis_store ?trace:opts.trace ~metrics ();
    metrics;
    rollback_counter = Trace.Metrics.counter metrics "eval.rollbacks";
    trace = opts.trace;
    check_budget;
    perturb;
    merge_replays = 0;
    merge_rebuilds = 0;
  }

let eval_stats_of ctx =
  {
    pruned = Memo.prunes ctx.memo;
    memo_hits = Memo.hits ctx.memo;
    memo_misses = Memo.misses ctx.memo;
    memo_bypassed = Memo.bypasses ctx.memo;
    rollbacks = Trace.Counter.get ctx.rollback_counter;
    replays = Memo.replays ctx.memo;
    rebuilds = Memo.rebuilds ctx.memo;
    merge_replays = ctx.merge_replays;
    merge_rebuilds = ctx.merge_rebuilds;
    basis_adoptions = Memo.adoptions ctx.memo;
    basis_cuts = Memo.basis_cuts ctx.memo;
    traj_launched = 0;
    traj_completed = 0;
    traj_aborted = 0;
    bound_aborts = 0;
    incumbent_updates = 0;
  }

(* ---------------- Incumbent-bound cost floors ----------------

   A trajectory may abort only when its floor — an admissible lower
   bound on the cost of the result it would eventually return — already
   loses to the incumbent (a *completed* feasible result), because then
   the trajectory provably cannot become the portfolio winner, whatever
   the interleaving.  Soundness rests on what the remaining phases can
   remove:

   - the merge phase only collapses programmable devices and drops
     detached links; it never vacates a CPU or ASIC, and mode combining
     stays on one device.  So the base + memory cost of in-use
     non-programmable PEs survives merging, and if any programmable
     device hosts clusters, at least one (from the current in-use set)
     survives too;
   - repair performs at most 20 rip-up attempts, each vacating at most
     the one PE the ripped cluster sat on (re-allocation only adds), so
     during allocation the floor is discounted by the costliest in-use
     PEs repair could still vacate — all 20 slots during allocation,
     only the remaining attempts once repair is under way.  With
     reconfiguration off the merge phase never runs, so the floor counts
     *every* in-use PE (headroom then also ranges over every in-use PE,
     as rip-ups can vacate programmable devices too); with it on, only
     non-programmable PEs are entitled to survive, and the headroom
     ranges over those;
   - interface synthesis replaces the PROM component of the cost with
     [interface_cost >= 0], so every floor excludes PROM and link terms
     it is not entitled to; fault-tolerance spare provisioning only adds
     cost on top of the core result. *)

let pe_floor_cost (pe : Arch.pe_inst) =
  pe.Arch.ptype.Pe.cost
  +.
  match pe.Arch.ptype.Pe.pe_class with
  | Pe.General_purpose cpu ->
      float_of_int (Arch.memory_banks pe) *. cpu.Pe.memory_bank_cost
  | Pe.Asic_pe _ | Pe.Programmable _ -> 0.0

let floor_nonprog arch =
  Vec.fold
    (fun acc (pe : Arch.pe_inst) ->
      if Arch.pe_in_use pe && not (Pe.is_programmable pe.Arch.ptype) then
        acc +. pe_floor_cost pe
      else acc)
    0.0 arch.Arch.pes

(* Sum of the [rip_budget] costliest in-use PEs repair could still
   vacate or shrink: each remaining rip-up attempt vacates at most one
   PE.  [all] widens the candidate set to programmable devices — needed
   when the floor itself counts them (reconfiguration off). *)
let repair_headroom ?(rip_budget = 20) ~all arch =
  let costs =
    Vec.fold
      (fun acc (pe : Arch.pe_inst) ->
        if Arch.pe_in_use pe && (all || not (Pe.is_programmable pe.Arch.ptype))
        then pe_floor_cost pe :: acc
        else acc)
      [] arch.Arch.pes
  in
  let sorted = List.sort (fun a b -> compare b a) costs in
  let rec top n acc = function
    | [] -> acc
    | _ when n <= 0 -> acc
    | c :: tl -> top (n - 1) (acc +. c) tl
  in
  top rip_budget 0.0 sorted

(* Cheapest in-use programmable device: merging can collapse the PPEs
   down to (at least) one of the current in-use set when any cluster
   lives on a programmable device. *)
let floor_min_ppe arch =
  Vec.fold
    (fun acc (pe : Arch.pe_inst) ->
      if Arch.pe_in_use pe && Pe.is_programmable pe.Arch.ptype then
        match acc with
        | None -> Some pe.Arch.ptype.Pe.cost
        | Some m -> Some (Float.min m pe.Arch.ptype.Pe.cost)
      else acc)
    None arch.Arch.pes
  |> Option.value ~default:0.0

(* Once the PE set is final (post-merge, or post-repair without the
   merge phase): base + memory of everything in use; PROM and links
   still excluded (interface synthesis is pending). *)
let floor_all arch =
  Vec.fold
    (fun acc (pe : Arch.pe_inst) ->
      if Arch.pe_in_use pe then acc +. pe_floor_cost pe else acc)
    0.0 arch.Arch.pes

(* One counter sample per phase boundary: the evaluator counters as a
   Chrome counter track, so the trace shows where the prunes/hits
   accumulate. *)
let sample_eval_counters ctx =
  Trace.counter ctx.trace "eval_stats"
    [
      ("pruned", Memo.prunes ctx.memo);
      ("memo_hits", Memo.hits ctx.memo);
      ("memo_misses", Memo.misses ctx.memo);
      ("memo_bypassed", Memo.bypasses ctx.memo);
      ("rollbacks", Trace.Counter.get ctx.rollback_counter);
      ("replays", Memo.replays ctx.memo);
      ("rebuilds", Memo.rebuilds ctx.memo);
      ("basis_adoptions", Memo.adoptions ctx.memo);
      ("basis_cuts", Memo.basis_cuts ctx.memo);
    ]

let n_modes arch =
  Vec.fold
    (fun acc (pe : Arch.pe_inst) ->
      if Pe.is_programmable pe.Arch.ptype then acc + Arch.n_images pe else acc)
    0 arch.Arch.pes

(* Allocate one cluster: evaluate the allocation array in increasing-cost
   order; commit the first allocation whose schedule meets all deadlines,
   falling back to the least-tardy evaluated option.

   Candidate evaluation is two-staged.  Stage 1 is the admissible bound
   [Schedule.estimate]: a candidate whose bound is already positive
   cannot be feasible, and when the bound paired with the candidate's
   exact cost does not beat the incumbent fallback score either, the
   full schedule can change nothing — the candidate is dropped without
   timeline construction (counted against the window exactly like its
   full evaluation would have been).  Stage 2 is the memoized scheduler
   [Memo.run].  Both stages preserve the committed candidate bit for
   bit; [opts.prune]/[opts.memo] switch them off for A/B runs.

   With [opts.jobs = 1] candidates are trialled directly on the base
   architecture under the undo journal (checkpoint, mutate, schedule,
   rollback), sparing a deep [Arch.copy] per candidate; the winner is
   re-applied to the pristine base, which reproduces the deep-copy
   path's architecture exactly because rollback restores the base bit
   for bit.  With [opts.jobs > 1] the candidates are evaluated
   speculatively in index-ordered batches on the domain pool — each
   evaluation works on its own [Arch.copy], so they are independent —
   and the batch results are then consumed in index order through
   exactly the sequential search's state machine (window guard,
   first-feasible commit, least-tardy fallback).  The committed
   candidate is therefore the one the sequential search would have
   committed; parallelism only changes how many candidates past the
   commit point were (wastefully) evaluated, and its stage-1 incumbent
   is snapshotted at batch dispatch, which can only prune less than the
   sequential search, never differently. *)
let allocate_cluster ~opts ~ctx spec clustering arch cluster =
  let candidates =
    Options.enumerate arch spec clustering cluster
      ~allow_new_modes:opts.dynamic_reconfiguration
      ~max_new_pe:(if opts.allow_new_pes then 16 else 0)
      ()
  in
  if candidates = [] then
    Error
      (Printf.sprintf "cluster %d (graph %d) fits no PE type" cluster.Clustering.cid
         cluster.Clustering.graph)
  else begin
    let debug = Sys.getenv_opt "CRUSADE_DEBUG" <> None in
    let candidates = Array.of_list candidates in
    (* Portfolio perturbation: allocation tie-break jitter.  The
       candidate array arrives sorted by (delta cost, affinity desc); a
       multiplicative jitter on the delta-cost key reorders near-ties so
       perturbed trajectories explore different commit orders.  The sort
       falls back to the original index, so equal keys keep the
       unperturbed order, and exactly one draw per candidate keeps the
       trajectory's stream aligned whatever the evaluation path does. *)
    let candidates =
      match ctx.perturb with
      | None -> candidates
      | Some rng ->
          let keyed =
            Array.mapi
              (fun i (c : Options.t) ->
                (c.Options.delta_cost *. (1.0 +. Rng.float rng 0.15), i, c))
              candidates
          in
          Array.sort
            (fun (ka, ia, _) (kb, ib, _) ->
              match compare (ka : float) kb with 0 -> compare ia ib | c -> c)
            keyed;
          Array.map (fun (_, _, c) -> c) keyed
    in
    let n = Array.length candidates in
    let jobs = max 1 opts.jobs in
    let rollback a ck =
      Trace.Counter.incr ctx.rollback_counter;
      Arch.rollback a ck
    in
    (* Stage 1 on an applied candidate: [Some] iff the bound alone
       settles it — [`Unschedulable] when the disconnection check
       matches [run]'s failure, [`Dominated] when the bound proves the
       candidate infeasible and no better than the incumbent score. *)
    let stage1 incumbent trial =
      (* Without an incumbent the bound cannot settle anything (an
         infeasible candidate must still be evaluated to seed the
         least-tardy fallback), so it isn't worth computing. *)
      match incumbent with
      | None -> None
      | Some best_score when opts.prune -> (
          match Memo.estimate ctx.memo ~copy_cap:opts.copy_cap spec clustering trial with
          | Error _ ->
              Memo.note_prune ctx.memo;
              Some `Unschedulable
          | Ok lb ->
              if lb > 0 && best_score <= (lb, Arch.cost trial) then begin
                Memo.note_prune ctx.memo;
                Some `Dominated
              end
              else None)
      | Some _ -> None
    in
    (* Trials only need the verdict; [Memo.evaluate] routes through the
       incremental engine (prefix replay of the last full run) and skips
       materializing a schedule.  The winner is re-applied and scheduled
       through [Memo.run] by the caller, so nothing downstream misses
       the schedule object. *)
    let schedule_trial trial =
      Memo.evaluate ctx.memo ~copy_cap:opts.copy_cap spec clustering trial
    in
    if jobs = 1 then begin
      (* Sequential path: journaled trials on the base architecture.
         The fallback holds the candidate *index* — re-applying it to
         the rolled-back base reproduces the winning architecture. *)
      let best_fallback = ref None in
      let tried = ref 0 in
      let window_open () = !tried < opts.eval_window || !best_fallback = None in
      let exception Commit in
      let reapply idx =
        match Options.apply arch spec clustering cluster candidates.(idx) with
        | Ok () -> Ok arch
        | Error msg -> Error msg
      in
      match
        let i = ref 0 in
        while !i < n && window_open () do
          ctx.check_budget ();
          Trace.span ctx.trace
            ~args:[ ("index", Trace.Num !i) ]
            "alloc.candidate"
            (fun () ->
              let ck = Arch.checkpoint arch in
              match Options.apply arch spec clustering cluster candidates.(!i) with
              | Error _ -> rollback arch ck
              | Ok () -> (
                  match stage1 (Option.map fst !best_fallback) arch with
                  | Some (`Unschedulable | `Dominated) ->
                      rollback arch ck;
                      incr tried
                  | None -> (
                      match schedule_trial arch with
                      | Error _ ->
                          rollback arch ck;
                          incr tried
                      | Ok v ->
                          if v.Schedule.v_met then begin
                            Arch.commit arch ck;
                            raise Commit
                          end
                          else begin
                            let score =
                              (v.Schedule.v_tardiness, Arch.cost arch)
                            in
                            (match !best_fallback with
                            | Some (best_score, _) when best_score <= score -> ()
                            | _ -> best_fallback := Some (score, !i));
                            rollback arch ck;
                            incr tried
                          end)));
          incr i
        done;
        if !i >= n then begin
          match !best_fallback with
          | Some (score, idx) ->
              if debug then
                Printf.eprintf
                  "fallback commit: cluster %d (graph %d) tardiness %d after %d evals\n%!"
                  cluster.Clustering.cid cluster.Clustering.graph (fst score) !tried;
              reapply idx
          | None ->
              Error
                (Printf.sprintf "no applicable allocation for cluster %d"
                   cluster.Clustering.cid)
        end
        else begin
          (* Evaluation window exhausted: settle for the least-tardy
             option seen. *)
          match !best_fallback with
          | Some (_, idx) -> reapply idx
          | None ->
              (* The window only closes once a fallback exists
                 ([window_open]), so this branch is unreachable. *)
              failwith
                (Printf.sprintf
                   "allocate_cluster: evaluation window closed with no \
                    fallback for cluster %d (graph %d) after %d of %d \
                    candidates"
                   cluster.Clustering.cid cluster.Clustering.graph !tried n)
        end
      with
      | result -> result
      | exception Commit -> Ok arch
    end
    else begin
      let pool = Pool.global () in
      let best_fallback = ref None in
      let tried = ref 0 in
      let window_open () = !tried < opts.eval_window || !best_fallback = None in
      (* Pure w.r.t. [arch]: every evaluation mutates only its own copy. *)
      let evaluate_candidate incumbent i =
        Trace.span ctx.trace
          ~args:[ ("index", Trace.Num i) ]
          "alloc.candidate"
          (fun () ->
            let trial = Arch.copy arch in
            match Options.apply trial spec clustering cluster candidates.(i) with
            | Error _ -> `Inapplicable
            | Ok () -> (
                match stage1 incumbent trial with
                | Some (`Unschedulable | `Dominated) -> `Pruned
                | None -> (
                    match schedule_trial trial with
                    | Error _ -> `Unschedulable
                    | Ok v ->
                        if v.Schedule.v_met then `Feasible trial
                        else
                          `Tardy
                            (trial, (v.Schedule.v_tardiness, Arch.cost trial)))))
      in
      let exception Commit of Arch.t in
      let consume = function
        | `Inapplicable -> ()
        | `Unschedulable | `Pruned -> incr tried
        | `Feasible trial -> raise (Commit trial)
        | `Tardy (trial, score) ->
            (match !best_fallback with
            | Some (best_score, _) when best_score <= score -> ()
            | _ -> best_fallback := Some (score, trial));
            incr tried
      in
      match
        let i = ref 0 in
        while !i < n && window_open () do
          ctx.check_budget ();
          let base = !i in
          let batch = min jobs (n - base) in
          let incumbent = Option.map fst !best_fallback in
          let results =
            Pool.map_n ~jobs pool
              (fun k -> evaluate_candidate incumbent (base + k))
              batch
          in
          (* In-order consumption; once the window closes mid-batch the
             remaining speculative results are discarded, as the sequential
             search would never have evaluated them. *)
          Array.iter (fun r -> if window_open () then consume r) results;
          i := base + batch
        done;
        if !i >= n then begin
          match !best_fallback with
          | Some (score, trial) ->
              if debug then
                Printf.eprintf
                  "fallback commit: cluster %d (graph %d) tardiness %d after %d evals\n%!"
                  cluster.Clustering.cid cluster.Clustering.graph (fst score) !tried;
              Ok trial
          | None ->
              Error
                (Printf.sprintf "no applicable allocation for cluster %d"
                   cluster.Clustering.cid)
        end
        else begin
          (* Evaluation window exhausted: settle for the least-tardy
             option seen. *)
          match !best_fallback with
          | Some (_, trial) -> Ok trial
          | None ->
              (* The window only closes once a fallback exists
                 ([window_open]), so this branch is unreachable. *)
              failwith
                (Printf.sprintf
                   "allocate_cluster: evaluation window closed with no \
                    fallback for cluster %d (graph %d) after %d of %d \
                    candidates"
                   cluster.Clustering.cid cluster.Clustering.graph !tried n)
        end
      with
      | result -> result
      | exception Commit trial -> Ok trial
    end
  end

(* The synthesis flow proper, shared by [synthesize] (fresh architecture)
   and [continue_allocation] (extend a partial result): allocate every
   cluster not yet placed and not skipped, repair residual tardiness,
   run dynamic-reconfiguration generation, synthesize the programming
   interface and assemble the result. *)
let run_flow ~opts ~t0 ~w0 (spec : Spec.t) lib (clustering : Clustering.t) arch0 ~skip =
  ignore lib;
  let ctx = make_ctx opts in
  let traj = opts.portfolio in
  (* Incumbent-bound check: abort iff (floor, index) strictly loses to
     the incumbent (cost, index) lexicographically — the final result's
     cost is >= floor, so it would lose too, whatever the interleaving.
     The floor thunk only runs when a bound is armed. *)
  let check_bound floor_of =
    match traj with
    | Some { t_bound = Some b; t_index; _ } -> (
        match Atomic.get b.b_best with
        | Some (bc, bi) ->
            let floor = floor_of () in
            if floor > bc || (floor = bc && t_index > bi) then
              raise
                (Trajectory_abort
                   (Bound_abort
                      { floor; incumbent_cost = bc; incumbent_index = bi }))
        | None -> ())
    | Some { t_bound = None; _ } | None -> ()
  in
  let arch = ref arch0 in
  (* Admissible floor while repair (and, with reconfiguration on, the
     merge phase) is still ahead.  [rip_budget] is how many rip-up
     attempts remain: 20 during allocation, fewer once repair runs. *)
  let pre_merge_floor ?rip_budget () =
    if opts.dynamic_reconfiguration then
      floor_nonprog !arch -. repair_headroom ?rip_budget ~all:false !arch
    else floor_all !arch -. repair_headroom ?rip_budget ~all:true !arch
  in
  let total = Array.length clustering.Clustering.clusters in
  let allocated = Array.make total false in
  let remaining = ref 0 in
  Array.iter
    (fun (c : Clustering.cluster) ->
      if skip c || Arch.site_of_cluster !arch c.cid <> None then
        allocated.(c.cid) <- true
      else incr remaining)
    clustering.Clustering.clusters;
  (* Portfolio perturbation: cluster pop-order jitter.  A fixed additive
     offset per cluster, drawn once in cid order with an amplitude set
     by the spread of the initial priority levels, nudges the
     greedy pop order without drowning the levels themselves. *)
  let pop_jitter =
    match ctx.perturb with
    | Some rng when total > 1 ->
        let levels = Schedule.priorities spec clustering !arch in
        let lo = ref max_int and hi = ref min_int in
        Array.iter
          (fun (c : Clustering.cluster) ->
            let l = Clustering.cluster_priority clustering levels c.cid in
            if l < !lo then lo := l;
            if l > !hi then hi := l)
          clustering.Clustering.clusters;
        let amp = max 1 ((!hi - !lo) / 6) in
        Some (Array.init total (fun _ -> Rng.int rng (amp + 1)))
    | Some _ | None -> None
  in
  let rec allocate_all remaining =
    if remaining = 0 then Ok ()
    else begin
      let levels = Schedule.priorities spec clustering !arch in
      let next = ref (-1) and next_level = ref min_int in
      Array.iter
        (fun (c : Clustering.cluster) ->
          if not allocated.(c.cid) then begin
            let level =
              Clustering.cluster_priority clustering levels c.cid
              + (match pop_jitter with Some j -> j.(c.cid) | None -> 0)
            in
            if !next < 0 || level > !next_level then begin
              next := c.cid;
              next_level := level
            end
          end)
        clustering.Clustering.clusters;
      let cluster = clustering.Clustering.clusters.(!next) in
      match
        Trace.span ctx.trace
          ~args:
            [
              ("cluster", Trace.Num cluster.Clustering.cid);
              ("graph", Trace.Num cluster.Clustering.graph);
            ]
          "alloc.cluster"
          (fun () -> allocate_cluster ~opts ~ctx spec clustering !arch cluster)
      with
      | Error _ as e -> e
      | Ok trial ->
          arch := trial;
          (* Refresh the incremental engine's recording on the committed
             architecture: the next cluster's trials then diff against a
             basis that differs only by their own placement, maximizing
             the replayable prefix.  One record-only run per cluster
             against dozens of trials served by replay. *)
          if opts.incremental then
            Memo.refresh ctx.memo ~copy_cap:opts.copy_cap spec clustering !arch;
          allocated.(cluster.cid) <- true;
          ctx.check_budget ();
          (* During allocation, repair (<= 20 vacating rip-ups) and the
             merge phase are still ahead: discount accordingly. *)
          check_bound (fun () -> pre_merge_floor ());
          allocate_all (remaining - 1)
    end
  in
  (* Repair: when the constructive pass ends tardy (a fallback commit
     cascaded), rip up the cluster carrying the worst tardiness and
     re-allocate it against the now-complete architecture; the evaluation
     loop will find it a feasible (possibly fresh) site. *)
  let repair () =
    let blacklist = Hashtbl.create 8 in
    (* Tardy clusters, worst first, not yet tried. *)
    let tardy_clusters sched =
      let tally = Hashtbl.create 8 in
      let note cid late =
        if not (Hashtbl.mem blacklist cid) then begin
          let cur = Option.value ~default:0 (Hashtbl.find_opt tally cid) in
          Hashtbl.replace tally cid (max cur late)
        end
      in
      Array.iter
        (fun (inst : Schedule.instance) ->
          let late = inst.Schedule.finish - inst.Schedule.abs_deadline in
          if late > 0 then begin
            let cid = clustering.Clustering.of_task.(inst.Schedule.i_task) in
            note cid late;
            (* The blockers sharing the tardy cluster's PE are candidates
               too: moving one of them can free the needed slot. *)
            match Arch.site_of_cluster !arch cid with
            | None -> ()
            | Some site ->
                let pe = Vec.get !arch.Arch.pes site.Arch.s_pe in
                Vec.iter
                  (fun (m : Arch.mode) ->
                    List.iter (fun other -> if other <> cid then note other (late / 2))
                      m.Arch.m_clusters)
                  pe.Arch.modes
          end)
        sched.Schedule.instances;
      Hashtbl.fold (fun cid late acc -> (late, cid) :: acc) tally []
      |> List.sort (fun a b -> compare (fst b) (fst a))
      |> List.map snd
    in
    (* Does [trial] strictly beat the current schedule?  Stage 1 first:
       acceptance needs strictly lower tardiness, so a bound already at
       or above the incumbent tardiness — or a disconnection, which is
       exactly [run]'s failure — rejects without a full schedule. *)
    let improves (sched : Schedule.t) trial =
      let verdict =
        if not opts.prune then None
        else begin
          match Memo.estimate ctx.memo ~copy_cap:opts.copy_cap spec clustering trial with
          | Error _ -> Some false
          | Ok lb -> if lb >= sched.Schedule.total_tardiness then Some false else None
        end
      in
      match verdict with
      | Some v ->
          Memo.note_prune ctx.memo;
          v
      | None -> (
          match
            Memo.evaluate ctx.memo ~copy_cap:opts.copy_cap spec clustering trial
          with
          | Ok after -> after.Schedule.v_tardiness < sched.Schedule.total_tardiness
          | Error _ -> false)
    in
    let rec attempt k =
      if k > 0 then begin
        ctx.check_budget ();
        (* Each attempt is a full rip-up/re-allocate cycle; at most [k]
           remain, so the headroom discount shrinks as repair proceeds. *)
        check_bound (fun () -> pre_merge_floor ~rip_budget:k ());
        match Memo.run ctx.memo ~copy_cap:opts.copy_cap spec clustering !arch with
        | Error _ -> ()
        | Ok sched ->
            if not sched.Schedule.deadlines_met then begin
              match tardy_clusters sched with
              | [] -> ()
              | cid :: _ ->
                  Hashtbl.replace blacklist cid ();
                  let cluster = clustering.Clustering.clusters.(cid) in
                  Trace.span ctx.trace
                    ~args:[ ("cluster", Trace.Num cid) ]
                    "repair.attempt"
                    (fun () ->
                      if opts.jobs <= 1 then begin
                        (* Sequential path: rip-up and retry under the undo
                           journal instead of a deep safety copy. *)
                        let ck = Arch.checkpoint !arch in
                        Arch.unplace_cluster !arch clustering cluster;
                        match allocate_cluster ~opts ~ctx spec clustering !arch cluster with
                        | Ok trial ->
                            (* [trial == !arch]: the sequential allocator
                               commits into the base it was handed. *)
                            if improves sched trial then Arch.commit !arch ck
                            else begin
                              Trace.Counter.incr ctx.rollback_counter;
                              Arch.rollback !arch ck
                            end
                        | Error _ ->
                            Trace.Counter.incr ctx.rollback_counter;
                            Arch.rollback !arch ck
                      end
                      else begin
                        let saved = Arch.copy !arch in
                        Arch.unplace_cluster !arch clustering cluster;
                        match allocate_cluster ~opts ~ctx spec clustering !arch cluster with
                        | Ok trial -> if improves sched trial then arch := trial else arch := saved
                        | Error _ -> arch := saved
                      end);
                  attempt (k - 1)
            end
      end
    in
    attempt 20
  in
  match Trace.span ctx.trace "allocation" (fun () -> allocate_all !remaining) with
  | Error msg -> Error msg
  | Ok () -> (
      sample_eval_counters ctx;
      Trace.span ctx.trace "repair" repair;
      sample_eval_counters ctx;
      ctx.check_budget ();
      (* Post-repair, a positive tardiness lower bound is terminal: the
         merge phase only accepts feasible trials and interface
         synthesis never flips a missed verdict, so the trajectory ends
         infeasible and loses to any feasible incumbent. *)
      (match traj with
      | Some { t_bound = Some b; _ } -> (
          match Atomic.get b.b_best with
          | Some (bc, bi) -> (
              match
                Memo.estimate ctx.memo ~copy_cap:opts.copy_cap spec clustering
                  !arch
              with
              | Ok lb when lb > 0 ->
                  raise
                    (Trajectory_abort
                       (Bound_abort
                          {
                            floor = infinity;
                            incumbent_cost = bc;
                            incumbent_index = bi;
                          }))
              | Ok _ | Error _ -> ())
          | None -> ())
      | Some { t_bound = None; _ } | None -> ());
      check_bound (fun () ->
          if opts.dynamic_reconfiguration then
            floor_nonprog !arch +. floor_min_ppe !arch
          else floor_all !arch);
      (* Dynamic-reconfiguration generation. *)
      let fit_scale =
        match traj with Some t -> t.t_fit_scale | None -> (1.0, 1.0)
      in
      let on_pass a =
        ctx.check_budget ();
        check_bound (fun () -> floor_nonprog a +. floor_min_ppe a)
      in
      let merged =
        if opts.dynamic_reconfiguration then begin
          let replays0 = Memo.replays ctx.memo
          and rebuilds0 = Memo.rebuilds ctx.memo in
          let outcome =
            Trace.span ctx.trace "merge" (fun () ->
                Merge.optimize ~copy_cap:opts.copy_cap
                  ~max_trials_per_pass:opts.merge_trials_per_pass ~jobs:opts.jobs
                  ~prune:opts.prune ~incremental_merge:opts.incremental_merge
                  ~fit_scale ~on_pass ?trace:ctx.trace
                  ~memo:ctx.memo spec clustering !arch)
          in
          ctx.merge_replays <- Memo.replays ctx.memo - replays0;
          ctx.merge_rebuilds <- Memo.rebuilds ctx.memo - rebuilds0;
          match outcome with
          | Ok (better, sched, stats) -> Ok (better, sched, Some stats)
          | Error msg -> Error msg
        end
        else begin
          match Memo.run ctx.memo ~copy_cap:opts.copy_cap spec clustering !arch with
          | Ok sched -> Ok (!arch, sched, None)
          | Error msg -> Error msg
        end
      in
      match merged with
      | Error msg -> Error msg
      | Ok (final_arch, sched, merge_stats) ->
          sample_eval_counters ctx;
          ctx.check_budget ();
          check_bound (fun () -> floor_all final_arch);
          (* Reconfiguration controller interface synthesis (Section 4.4):
             cheapest interface meeting the boot-time requirement without
             breaking deadlines. *)
          let sched = ref sched in
          let validate a =
            match Memo.run ctx.memo ~copy_cap:opts.copy_cap spec clustering a with
            | Ok s when s.Schedule.deadlines_met || not !sched.Schedule.deadlines_met ->
                sched := s;
                true
            | Ok _ | Error _ -> false
          in
          let chosen_interface =
            match
              Trace.span ctx.trace "interface" (fun () ->
                  Interface.synthesize final_arch spec ~validate)
            with
            | Ok option -> Some option
            | Error _ -> None
          in
          sample_eval_counters ctx;
          let cost = Arch.cost final_arch in
          Ok
            {
              spec;
              arch = final_arch;
              clustering;
              schedule = !sched;
              cost;
              n_pes = Arch.n_pes final_arch;
              n_links = Arch.n_links final_arch;
              n_modes = n_modes final_arch;
              deadlines_met = !sched.Schedule.deadlines_met;
              cpu_seconds = Sys.time () -. t0;
              wall_seconds = wall_now () -. w0;
              merge_stats;
              chosen_interface;
              eval_stats = eval_stats_of ctx;
            })

let synthesize ?(options = default_options) ?(include_graph = fun _ -> true)
    (spec : Spec.t) lib =
  let t0 = Sys.time () in
  let w0 = wall_now () in
  let opts = options in
  Trace.span opts.trace
    ~args:[ ("spec", Trace.Str spec.Spec.name) ]
    "synthesize"
    (fun () ->
      (* Pre-processing: every task must be mappable somewhere. *)
      let unmappable =
        Trace.span opts.trace "preprocess" (fun () ->
            Array.fold_left
              (fun acc (task : Crusade_taskgraph.Task.t) ->
                match acc with
                | Some _ -> acc
                | None ->
                    if Crusade_cluster.Clustering.task_mask lib task = 0 then
                      Some task.name
                    else None)
              None spec.Spec.tasks)
      in
      match unmappable with
      | Some name -> Error (Printf.sprintf "task %s can run on no PE type" name)
      | None ->
          (* Pre-processing: clustering (Fig. 5). *)
          let clustering =
            Trace.span opts.trace "clustering" (fun () ->
                if opts.use_clustering then
                  Clustering.run ~max_cluster_size:opts.max_cluster_size spec lib
                else Clustering.singletons spec lib)
          in
          run_flow ~opts ~t0 ~w0 spec lib clustering (Arch.create lib)
            ~skip:(fun (c : Clustering.cluster) -> not (include_graph c.graph)))

let continue_allocation ?(options = default_options) (base : result) =
  let t0 = Sys.time () in
  let w0 = wall_now () in
  Trace.span options.trace
    ~args:[ ("spec", Trace.Str base.spec.Spec.name) ]
    "synthesize.continue"
    (fun () ->
      let arch = Arch.copy base.arch in
      (* The interface chosen for the partial architecture is re-synthesized
         at the end of the extended flow. *)
      arch.Arch.interface_cost <- None;
      run_flow ~opts:options ~t0 ~w0 base.spec base.arch.Arch.lib base.clustering
        arch
        ~skip:(fun _ -> false))

(* ---------------- Anytime portfolio search ---------------- *)

module Portfolio = struct
  type stats = {
    launched : int;
    completed : int;
    failed : int;
    aborted : int;
    bound_aborts : int;
    budget_aborts : int;
    incumbent_updates : int;
  }

  type trajectory_report =
    | Completed of { t_cost : float; t_met : bool }
    | Failed of string
    | Aborted of abort_reason

  type 'a outcome = {
    best : 'a;
    best_index : int;
    best_cost : float;
    best_met : bool;
    baseline_cost : float option;
    trajectories : trajectory_report array;
    stats : stats;
  }

  let resolve_n ?pool n =
    if n > 0 then n
    else Pool.size (match pool with Some p -> p | None -> Pool.global ())

  (* Knob derivation for trajectory [index]: a short dedicated stream
     seeded from (seed, index) draws the option-level knobs in a fixed
     order, plus the seed of the flow-level jitter stream.  Trajectory 0
     is the unperturbed reference — no control block at all, so it is
     bit-identical to the plain flow and exempt from bound and budget
     aborts (it is the anytime fallback and the [baseline_cost]). *)
  let make_traj_options (base : options) ~seed ~index ~inner_jobs ~bound
      ~deadline ~basis =
    if index = 0 then { base with jobs = inner_jobs }
    else begin
      let kr = Rng.create ((seed * 1_000_003) + (index * 7919)) in
      let flow_seed = Rng.int_in kr 1 max_int in
      let eval_window =
        let w = base.eval_window in
        max 4 (w + Rng.int_in kr (-(w / 3)) (w / 2))
      in
      let copy_cap =
        (* Upward only: the scheduler may exploit more copies; the audit
           never re-derives the cap, so any value is sound. *)
        if Rng.chance kr 0.25 then min 128 (base.copy_cap * 2)
        else base.copy_cap
      in
      let merge_trials_per_pass =
        if Rng.chance kr 0.25 then base.merge_trials_per_pass * 2
        else base.merge_trials_per_pass
      in
      let scales = [| 1.0; 0.95; 0.9; 0.8 |] in
      let t_fit_scale = (Rng.pick kr scales, Rng.pick kr scales) in
      {
        base with
        jobs = inner_jobs;
        eval_window;
        copy_cap;
        merge_trials_per_pass;
        portfolio =
          Some
            {
              t_index = index;
              t_seed = flow_seed;
              t_bound = bound;
              t_deadline = deadline;
              t_fit_scale;
              t_basis = basis;
            };
      }
    end

  let trajectory_options (base : options) ~seed ~index =
    make_traj_options base ~seed ~index ~inner_jobs:base.jobs ~bound:None
      ~deadline:None ~basis:None

  let offer_incumbent bound ~cost ~index =
    match bound with
    | None -> ()
    | Some b ->
        let rec loop () =
          let cur = Atomic.get b.b_best in
          let better =
            match cur with
            | None -> true
            | Some (c, i) -> cost < c || (cost = c && index < i)
          in
          if better then
            if Atomic.compare_and_set b.b_best cur (Some (cost, index)) then
              Atomic.incr b.b_updates
            else loop ()
        in
        loop ()

  let annotate (es : eval_stats) (s : stats) =
    {
      es with
      traj_launched = s.launched;
      traj_completed = s.completed;
      traj_aborted = s.aborted;
      bound_aborts = s.bound_aborts;
      incumbent_updates = s.incumbent_updates;
    }

  let run ?pool ?jobs ?budget_ms ?(seed = 0) ?(use_bound = true) ~n ~options
      ~flow ~cost ~met () =
    let pool = match pool with Some p -> p | None -> Pool.global () in
    let n = if n > 0 then n else Pool.size pool in
    if n = 1 && budget_ms = None then
      (* Pure passthrough: [--portfolio 1] is the plain flow, options
         untouched, bit for bit. *)
      match flow options with
      | Error _ as e -> e
      | Ok r ->
          let c = cost r and m = met r in
          Ok
            {
              best = r;
              best_index = 0;
              best_cost = c;
              best_met = m;
              baseline_cost = Some c;
              trajectories = [| Completed { t_cost = c; t_met = m } |];
              stats =
                {
                  launched = 1;
                  completed = 1;
                  failed = 0;
                  aborted = 0;
                  bound_aborts = 0;
                  budget_aborts = 0;
                  incumbent_updates = 0;
                };
            }
    else begin
      let jobs =
        match jobs with
        | Some j -> max 1 j
        | None -> min n (Pool.size pool)
      in
      (* Cores are spent across trajectories first; leftover factors go
         to each trajectory's inner candidate evaluation (results are
         bit-identical for any inner [jobs], so this only affects
         speed). *)
      let inner_jobs = max 1 (jobs / n) in
      let w0 = wall_now () in
      let deadline =
        Option.map (fun ms -> w0 +. (float_of_int ms /. 1000.0)) budget_ms
      in
      let bound =
        if use_bound then
          Some { b_best = Atomic.make None; b_updates = Atomic.make 0 }
        else None
      in
      (* One shared recording store for the perturbed trajectories: they
         run content-identical (or near-identical) clusterings over the
         same physical spec, so a basis recorded by one seeds the others
         through cross-clustering adoption.  Results are unaffected —
         adopted replays are bit-identical by construction and the
         copy-cap check excludes cap-perturbed trajectories — only
         wall-clock and the replay/adoption counters move. *)
      let basis = Some (Incremental.Store.create ()) in
      let run_traj k =
        let expired =
          k > 0
          &&
          match deadline with Some d -> wall_now () > d | None -> false
        in
        if expired then `Abort Budget_abort
        else begin
          let opts_k =
            make_traj_options options ~seed ~index:k ~inner_jobs
              ~bound:(if k = 0 then None else bound)
              ~deadline:(if k = 0 then None else deadline)
              ~basis
          in
          match flow opts_k with
          | Ok r ->
              let c = cost r and m = met r in
              (* Only completed feasible results arm the bound: an abort
                 decision can then never rest on a result that is not in
                 the final pool, which is what makes the winner
                 interleaving-independent. *)
              if m then offer_incumbent bound ~cost:c ~index:k;
              `Done (r, c, m)
          | Error e -> `Err e
          | exception Trajectory_abort reason -> `Abort reason
        end
      in
      let cells = Pool.map_n ~jobs pool run_traj n in
      let best = ref None in
      Array.iteri
        (fun k cell ->
          match cell with
          | `Done (r, c, m) ->
              let key = ((if m then 0 else 1), c, k) in
              (match !best with
              | Some (bkey, _) when bkey <= key -> ()
              | _ -> best := Some (key, (r, c, m, k)))
          | `Err _ | `Abort _ -> ())
        cells;
      let trajectories =
        Array.map
          (function
            | `Done (_, c, m) -> Completed { t_cost = c; t_met = m }
            | `Err e -> Failed e
            | `Abort reason -> Aborted reason)
          cells
      in
      let count p = Array.fold_left (fun a t -> if p t then a + 1 else a) 0 trajectories in
      let stats =
        {
          launched = n;
          completed = count (function Completed _ -> true | _ -> false);
          failed = count (function Failed _ -> true | _ -> false);
          aborted = count (function Aborted _ -> true | _ -> false);
          bound_aborts =
            count (function Aborted (Bound_abort _) -> true | _ -> false);
          budget_aborts =
            count (function Aborted Budget_abort -> true | _ -> false);
          incumbent_updates =
            (match bound with Some b -> Atomic.get b.b_updates | None -> 0);
        }
      in
      let baseline_cost =
        match trajectories.(0) with
        | Completed { t_cost; _ } -> Some t_cost
        | Failed _ | Aborted _ -> None
      in
      match !best with
      | Some (_, (r, c, m, k)) ->
          Ok
            {
              best = r;
              best_index = k;
              best_cost = c;
              best_met = m;
              baseline_cost;
              trajectories;
              stats;
            }
      | None -> (
          match cells.(0) with
          | `Err e -> Error e
          | `Done _ | `Abort _ -> Error "portfolio: no trajectory completed")
    end
end

module Audit = Crusade_alloc.Audit
module Validate = Crusade_sched.Validate
module Compat = Crusade_reconfig.Compat

(* The merge phase co-locates graphs using the schedule-*discovered*
   compatibility (Fig. 3), which is strictly more permissive than the
   design-time [Spec.static_compatible]; auditing a scheduled result must
   therefore judge mode sharing against the same discovered matrix, or
   legal merges would be flagged.  The matrix itself is conservative too
   (it compares whole-graph activity windows, while mode exclusivity only
   needs the two graphs' executions on the *shared device* to be
   disjoint), so it is further refined by the actual per-device
   occupancy: a sharing is accepted when every device the two graphs
   time-share serializes them.  Genuine temporal overlap on a device is
   still caught — both here and by [Validate]'s mode-exclusivity rule. *)
let discovered_compat (r : result) =
  let m = Compat.matrix r.spec r.schedule in
  let occ : (int * int * int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let modes_of : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (inst : Schedule.instance) ->
      if inst.Schedule.finish > inst.Schedule.start then
        match Arch.task_site r.arch r.clustering inst.Schedule.i_task with
        | None -> ()
        | Some site ->
            let g = (Spec.task r.spec inst.Schedule.i_task).Crusade_taskgraph.Task.graph in
            let key = (site.Arch.s_pe, g, site.Arch.s_mode) in
            let ivls = Option.value ~default:[] (Hashtbl.find_opt occ key) in
            Hashtbl.replace occ key
              ((inst.Schedule.start, inst.Schedule.finish) :: ivls);
            let mkey = (site.Arch.s_pe, g) in
            let ms = Option.value ~default:[] (Hashtbl.find_opt modes_of mkey) in
            if not (List.mem site.Arch.s_mode ms) then
              Hashtbl.replace modes_of mkey (site.Arch.s_mode :: ms))
    r.schedule.Schedule.instances;
  let intervals pid g mode =
    Option.value ~default:[] (Hashtbl.find_opt occ (pid, g, mode))
  in
  let overlapping xs ys =
    List.exists
      (fun (s, f) -> List.exists (fun (s', f') -> s < f' && s' < f) ys)
      xs
  in
  (* Only executions in *distinct* modes of the shared device must be
     disjoint — two graphs resident in one mode share a single image and
     may legally overlap there (exactly [Validate]'s mode-exclusivity
     semantics). *)
  let device_serialized a b =
    let ok = ref true in
    Vec.iter
      (fun (pe : Arch.pe_inst) ->
        let pid = pe.Arch.p_id in
        match (Hashtbl.find_opt modes_of (pid, a), Hashtbl.find_opt modes_of (pid, b)) with
        | Some ma, Some mb ->
            List.iter
              (fun x ->
                List.iter
                  (fun y ->
                    if
                      x <> y
                      && overlapping (intervals pid a x) (intervals pid b y)
                    then ok := false)
                  mb)
              ma
        | (Some _ | None), (Some _ | None) -> ())
      r.arch.Arch.pes;
    !ok
  in
  (* A graph split across several modes of one device (the merge phase
     produces these: two devices hosting the same graph merge) is sound
     only if the schedule never runs the graph in two of those modes at
     once — the device reconfigures between them mid-iteration. *)
  let self_serialized g =
    let ok = ref true in
    Vec.iter
      (fun (pe : Arch.pe_inst) ->
        let pid = pe.Arch.p_id in
        match Hashtbl.find_opt modes_of (pid, g) with
        | Some (_ :: _ :: _ as ms) ->
            let rec pairs = function
              | [] -> ()
              | m1 :: rest ->
                  List.iter
                    (fun m2 ->
                      if overlapping (intervals pid g m1) (intervals pid g m2)
                      then ok := false)
                    rest;
                  pairs rest
            in
            pairs ms
        | Some _ | None -> ())
      r.arch.Arch.pes;
    !ok
  in
  fun a b ->
    if a = b then self_serialized a else m.(a).(b) || device_serialized a b

let audit ?(include_graph = fun _ -> true) (r : result) =
  let compat = discovered_compat r in
  let reported =
    {
      Audit.r_cost = r.cost;
      r_n_pes = r.n_pes;
      r_n_links = r.n_links;
      r_n_modes = r.n_modes;
    }
  in
  let arch_violations = Audit.check ~compat r.spec r.clustering r.arch reported in
  let coverage =
    Array.to_list r.clustering.Clustering.clusters
    |> List.filter_map (fun (c : Clustering.cluster) ->
           if
             include_graph c.Clustering.graph
             && Arch.site_of_cluster r.arch c.Clustering.cid = None
           then
             Some
               {
                 Audit.rule = "coverage";
                 detail =
                   Printf.sprintf "cluster %d (graph %d) is not placed"
                     c.Clustering.cid c.Clustering.graph;
               }
           else None)
  in
  let verdict =
    if r.deadlines_met <> r.schedule.Schedule.deadlines_met then
      [
        {
          Audit.rule = "verdict-consistency";
          detail =
            Printf.sprintf "result says deadlines %s, schedule says %s"
              (if r.deadlines_met then "met" else "missed")
              (if r.schedule.Schedule.deadlines_met then "met" else "missed");
        };
      ]
    else []
  in
  let schedule_violations =
    Validate.check r.spec r.clustering r.arch r.schedule
    |> List.map (fun (v : Validate.violation) ->
           { Audit.rule = v.Validate.rule; detail = v.Validate.detail })
  in
  coverage @ verdict @ arch_violations @ schedule_violations

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "specification: %s (%d tasks, %d graphs)@," r.spec.Spec.name
    (Spec.n_tasks r.spec) (Spec.n_graphs r.spec);
  Format.fprintf fmt "architecture : %d PEs, %d links, %d configuration images@,"
    r.n_pes r.n_links r.n_modes;
  Format.fprintf fmt "cost         : $%s@,"
    (Crusade_util.Text_table.fmt_dollars r.cost);
  Format.fprintf fmt "deadlines    : %s (tardiness %d us)@,"
    (if r.deadlines_met then "met" else "MISSED")
    r.schedule.Schedule.total_tardiness;
  (match r.merge_stats with
  | Some s ->
      Format.fprintf fmt "merging      : %d device merges (%d tried), %d mode combines@,"
        s.Merge.merges_accepted s.Merge.merges_tried s.Merge.modes_combined
  | None -> ());
  (match r.chosen_interface with
  | Some option ->
      Format.fprintf fmt "programming  : %s@," (Interface.describe option)
  | None -> ());
  Format.fprintf fmt "cpu time     : %.2f s (wall %.2f s)@," r.cpu_seconds
    r.wall_seconds;
  let pes = ref [] in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      let images = Arch.n_images pe in
      if Arch.pe_in_use pe then
        pes := (pe.Arch.ptype.Pe.name, images) :: !pes)
    r.arch.Arch.pes;
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (name, images) ->
      let count, total_images =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tally name)
      in
      Hashtbl.replace tally name (count + 1, total_images + images))
    !pes;
  Format.fprintf fmt "PEs          :";
  Hashtbl.iter
    (fun name (count, images) ->
      Format.fprintf fmt " %dx%s%s" count name
        (if images > count then Printf.sprintf "(%d images)" images else ""))
    tally;
  Format.fprintf fmt "@]"

(* ---------------- Deterministic result JSON ----------------

   The machine-readable counterpart of [pp_report], built for the job
   server's content-addressed result cache: two syntheses of the same
   (spec, options) must produce byte-identical JSON, so every field is a
   deterministic function of the synthesis result — no wall/cpu times,
   no interleaving-dependent evaluator counters, and the PE tally is
   emitted in sorted order. *)

let schedule_fingerprint (s : Schedule.t) =
  Array.fold_left
    (fun h (i : Schedule.instance) ->
      Hashtbl.hash
        (h, i.Schedule.i_task, i.Schedule.i_copy, i.Schedule.start, i.Schedule.finish))
    0 s.Schedule.instances

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let result_json (r : result) =
  let pes = Hashtbl.create 8 in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      if Arch.pe_in_use pe then begin
        let name = pe.Arch.ptype.Pe.name in
        let count, images =
          Option.value ~default:(0, 0) (Hashtbl.find_opt pes name)
        in
        Hashtbl.replace pes name (count + 1, images + Arch.n_images pe)
      end)
    r.arch.Arch.pes;
  let pe_rows =
    Hashtbl.fold (fun name (count, images) acc -> (name, count, images) :: acc) pes []
    |> List.sort compare
    |> List.map (fun (name, count, images) ->
           Printf.sprintf "{\"type\":\"%s\",\"count\":%d,\"images\":%d}"
             (json_escape name) count images)
  in
  Printf.sprintf
    "{\"schema\":\"crusade-result-1\",\"spec\":\"%s\",\"n_tasks\":%d,\
     \"n_graphs\":%d,\"cost\":%.17g,\"n_pes\":%d,\"n_links\":%d,\
     \"n_modes\":%d,\"deadlines_met\":%b,\"total_tardiness\":%d,\
     \"schedule_fingerprint\":\"%08x\",\"pes\":[%s]}"
    (json_escape r.spec.Spec.name)
    (Spec.n_tasks r.spec) (Spec.n_graphs r.spec) r.cost r.n_pes r.n_links
    r.n_modes r.deadlines_met r.schedule.Schedule.total_tardiness
    (schedule_fingerprint r.schedule land 0xFFFFFFFF)
    (String.concat "," pe_rows)

(* ---------------- Warm re-synthesis under change ----------------

   Repair a deployed architecture after a change event instead of
   synthesizing from scratch: compute the invalidation closure of the
   change (the clusters it rips up), seed the incremental engine's
   recording store from the post-change architecture so untouched
   schedule prefixes replay verbatim, and re-run the flow over only the
   cut tail — placed clusters are treated as already allocated by
   [run_flow], so allocation touches exactly the ripped/arriving set. *)

module Resynth = struct
  module Task = Crusade_taskgraph.Task
  module Graph = Crusade_taskgraph.Graph

  let pp_result = pp_report

  type change =
    | Graph_arrival of int list
    | Graph_departure of int list
    | Pe_failure of int
    | Exec_drift of int
    | Upgrade of int list

  type attempt_outcome = Met | Tardy of int | Failed of string

  type verdict =
    | Images_only of { result : result; added_images : int }
    | Needs_hardware of {
        result : result;
        added_pes : int;
        added_cost : float;
      }
    | Infeasible

  type report = {
    deployed : result;
    change : change;
    verdict : verdict;
    reprogram_attempt : attempt_outcome;
    hardware_attempt : attempt_outcome option;
    ripped_clusters : int list;
    added_pes : int;
    removed_pes : int;
    cost_delta : float option;
    resynth_seconds : float;
  }

  let describe_change = function
    | Graph_arrival gs ->
        Printf.sprintf "graph arrival [%s]"
          (String.concat "," (List.map string_of_int gs))
    | Graph_departure gs ->
        Printf.sprintf "graph departure [%s]"
          (String.concat "," (List.map string_of_int gs))
    | Pe_failure pid -> Printf.sprintf "PE %d failure" pid
    | Exec_drift pct -> Printf.sprintf "execution-time drift %+d%%" pct
    | Upgrade gs ->
        Printf.sprintf "field upgrade [%s]"
          (String.concat "," (List.map string_of_int gs))

  let final_result rep =
    match rep.verdict with
    | Images_only { result; _ } | Needs_hardware { result; _ } -> Some result
    | Infeasible -> None

  (* Carry a replay-basis store through the options without perturbing
     anything else: a [t_index = 0] trajectory with no bound, no
     deadline and neutral fit scales runs bit-identically to the plain
     flow — its only effect is that [make_ctx] hands the store to the
     incremental engine. *)
  let with_basis_store (opts : options) store =
    let traj =
      match opts.portfolio with
      | Some t -> { t with t_basis = Some store }
      | None ->
          {
            t_index = 0;
            t_seed = 0;
            t_bound = None;
            t_deadline = None;
            t_fit_scale = (1.0, 1.0);
            t_basis = Some store;
          }
    in
    { opts with portfolio = Some traj }

  (* Rebuild the specification with every feasible execution time scaled
     by [pct] percent.  Ids, edges, compatibility vectors and the
     boot-time requirement are preserved verbatim, so the deployed
     clustering (pure task/cluster ids; its feasibility masks do not
     depend on execution magnitudes) and placements stay valid. *)
  let drift_spec (spec : Spec.t) pct =
    if pct <= -100 then
      Error (Printf.sprintf "drift of %d%% leaves no execution time" pct)
    else
    let scale e = if e <= 0 then e else max 1 (e * (100 + pct) / 100) in
    let scale_task (t : Task.t) =
      { t with Task.exec = Array.map scale t.Task.exec }
    in
    let graphs =
      Array.to_list spec.Spec.graphs
      |> List.map (fun (g : Graph.t) ->
             { g with Graph.tasks = Array.map scale_task g.Graph.tasks })
    in
    Spec.build ~name:spec.Spec.name
      ~boot_time_requirement:spec.Spec.boot_time_requirement graphs

  (* In-use PE delta by instance id: the repaired architecture is always
     grown from a copy of the deployed one, so instance ids align and
     the diff is exact (a replacement part counts once on each side). *)
  let pe_diff (deployed : result) (final : result) =
    let used (a : Arch.t) pid =
      pid < Vec.length a.Arch.pes
      &&
      let pe = Vec.get a.Arch.pes pid in
      (not pe.Arch.p_failed) && Arch.pe_in_use pe
    in
    let n =
      max (Vec.length deployed.arch.Arch.pes) (Vec.length final.arch.Arch.pes)
    in
    let added = ref 0 and removed = ref 0 in
    for pid = 0 to n - 1 do
      let before = used deployed.arch pid and after = used final.arch pid in
      if after && not before then incr added;
      if before && not after then incr removed
    done;
    (!added, !removed)

  (* Which graphs the repaired result must cover: what was deployed,
     plus arrivals, minus departures.  Drives the coverage rule of
     {!audit} — a graph that was never synthesized (e.g. the upgrade
     graphs of the deployed base) must not be flagged as unplaced. *)
  let expected_graphs (deployed : result) change =
    let n = Spec.n_graphs deployed.spec in
    let placed = Array.make n true in
    Array.iter
      (fun (c : Clustering.cluster) ->
        if Arch.site_of_cluster deployed.arch c.Clustering.cid = None then
          placed.(c.Clustering.graph) <- false)
      deployed.clustering.Clustering.clusters;
    match change with
    | Graph_arrival gs | Upgrade gs ->
        fun g -> (g >= 0 && g < n && placed.(g)) || List.mem g gs
    | Graph_departure gs ->
        fun g -> g >= 0 && g < n && placed.(g) && not (List.mem g gs)
    | Pe_failure _ | Exec_drift _ -> fun g -> g >= 0 && g < n && placed.(g)

  let audit_report rep =
    match final_result rep with
    | None -> []
    | Some r -> audit ~include_graph:(expected_graphs rep.deployed rep.change) r

  let validate_change (deployed : result) change =
    let n_graphs = Spec.n_graphs deployed.spec in
    let check_graphs what gs =
      match List.find_opt (fun g -> g < 0 || g >= n_graphs) gs with
      | Some g -> Error (Printf.sprintf "%s: unknown graph %d" what g)
      | None -> if gs = [] then Error (what ^ ": no graphs given") else Ok ()
    in
    match change with
    | Graph_arrival gs -> check_graphs "graph arrival" gs
    | Upgrade gs -> check_graphs "upgrade" gs
    | Graph_departure gs -> check_graphs "graph departure" gs
    | Pe_failure pid ->
        if pid < 0 || pid >= Vec.length deployed.arch.Arch.pes then
          Error (Printf.sprintf "PE failure: unknown PE %d" pid)
        else Ok ()
    | Exec_drift pct ->
        if pct <= -100 then
          Error (Printf.sprintf "drift of %d%% leaves no execution time" pct)
        else Ok ()

  let apply ?(options = default_options) (deployed : result) change =
    let w0 = wall_now () in
    let t0 = Sys.time () in
    match validate_change deployed change with
    | Error _ as e -> e
    | Ok () -> (
        let clustering = deployed.clustering in
        let placed0 cid = Arch.site_of_cluster deployed.arch cid <> None in
        let clusters_of gs =
          Array.fold_left
            (fun acc (c : Clustering.cluster) ->
              if List.mem c.Clustering.graph gs && placed0 c.Clustering.cid
              then c.Clustering.cid :: acc
              else acc)
            [] clustering.Clustering.clusters
          |> List.rev
        in
        (* The invalidation closure: [spec'] (rebuilt only under drift),
           the skip predicate for [run_flow], a thunk producing the
           post-change architecture (each attempt mutates its own copy),
           and the clusters the change rips out of their sites. *)
        let prepared =
          match change with
          | Graph_arrival gs | Upgrade gs ->
              let arriving (c : Clustering.cluster) =
                List.mem c.Clustering.graph gs
              in
              Ok
                ( deployed.spec,
                  (fun (c : Clustering.cluster) ->
                    not (placed0 c.Clustering.cid || arriving c)),
                  (fun () -> Arch.copy deployed.arch),
                  [] )
          | Graph_departure gs ->
              let departing (c : Clustering.cluster) =
                List.mem c.Clustering.graph gs
              in
              Ok
                ( deployed.spec,
                  (fun (c : Clustering.cluster) ->
                    departing c || not (placed0 c.Clustering.cid)),
                  (fun () ->
                    let a = Arch.copy deployed.arch in
                    Array.iter
                      (fun (c : Clustering.cluster) ->
                        if departing c then Arch.unplace_cluster a clustering c)
                      clustering.Clustering.clusters;
                    Arch.detach_unused a;
                    a),
                  clusters_of gs )
          | Pe_failure pid ->
              let victims =
                Array.fold_left
                  (fun acc (c : Clustering.cluster) ->
                    match Arch.site_of_cluster deployed.arch c.Clustering.cid with
                    | Some site when site.Arch.s_pe = pid ->
                        c.Clustering.cid :: acc
                    | Some _ | None -> acc)
                  [] clustering.Clustering.clusters
                |> List.rev
              in
              Ok
                ( deployed.spec,
                  (fun (c : Clustering.cluster) -> not (placed0 c.Clustering.cid)),
                  (fun () ->
                    let a = Arch.copy deployed.arch in
                    Arch.fail_pe a (Vec.get a.Arch.pes pid);
                    List.iter
                      (fun cid ->
                        Arch.unplace_cluster a clustering
                          clustering.Clustering.clusters.(cid))
                      victims;
                    Arch.detach_unused a;
                    a),
                  victims )
          | Exec_drift pct -> (
              match drift_spec deployed.spec pct with
              | Error msg -> Error ("drift: " ^ msg)
              | Ok spec' ->
                  Ok
                    ( spec',
                      (fun (c : Clustering.cluster) ->
                        not (placed0 c.Clustering.cid)),
                      (fun () -> Arch.copy deployed.arch),
                      [] ))
        in
        match prepared with
        | Error _ as e -> e
        | Ok (spec', skip, mk_arch, ripped) ->
            (* Warm start: record one schedule of the post-change
               architecture into a shared store; both attempts' engines
               then replay every schedule prefix the change provably
               left untouched.  (Under drift the recording is taken
               against the rebuilt spec — every execution time changed,
               so the deployed recording itself is useless, but the
               still-placed architecture is rescheduled once and that
               recording serves the repair trials.) *)
            let store = Incremental.Store.create () in
            if options.incremental then begin
              let eng = Incremental.create ~store () in
              Incremental.refresh eng ~copy_cap:options.copy_cap spec'
                clustering (mk_arch ())
            end;
            let attempt ~allow_new_pes =
              let opts = { options with allow_new_pes } in
              let opts =
                if opts.incremental then with_basis_store opts store else opts
              in
              let arch0 = mk_arch () in
              arch0.Arch.interface_cost <- None;
              Trace.span options.trace
                ~args:[ ("new_pes", Trace.Str (string_of_bool allow_new_pes)) ]
                "resynth.attempt"
                (fun () ->
                  run_flow ~opts ~t0 ~w0 spec' deployed.arch.Arch.lib
                    clustering arch0 ~skip)
            in
            let outcome = function
              | Ok (r : result) ->
                  if r.deadlines_met then (Met, Some r)
                  else (Tardy r.schedule.Schedule.total_tardiness, Some r)
              | Error msg -> (Failed msg, None)
            in
            let reprogram_attempt, rep_res =
              outcome (attempt ~allow_new_pes:false)
            in
            let verdict, hardware_attempt =
              match (reprogram_attempt, rep_res) with
              | Met, Some r ->
                  (* The reprogramming attempt forbids buying PE types,
                     but the architecture may carry instances a past
                     rip-up vacated — they cost nothing and are not on
                     the shipped board, so re-placing onto one is new
                     hardware no matter which attempt did it.  Classify
                     by the physical PE diff, not by the attempt. *)
                  let added, _ = pe_diff deployed r in
                  if added = 0 then
                    ( Images_only
                        {
                          result = r;
                          added_images = r.n_modes - deployed.n_modes;
                        },
                      None )
                  else
                    ( Needs_hardware
                        {
                          result = r;
                          added_pes = added;
                          added_cost = r.cost -. deployed.cost;
                        },
                      None )
              | _ ->
                  if not options.allow_new_pes then (Infeasible, None)
                  else begin
                    match outcome (attempt ~allow_new_pes:true) with
                    | Met, Some r ->
                        let added, _ = pe_diff deployed r in
                        ( Needs_hardware
                            {
                              result = r;
                              added_pes = added;
                              added_cost = r.cost -. deployed.cost;
                            },
                          Some Met )
                    | out, _ -> (Infeasible, Some out)
                  end
            in
            let final =
              match verdict with
              | Images_only { result; _ } | Needs_hardware { result; _ } ->
                  Some result
              | Infeasible -> None
            in
            let added_pes, removed_pes =
              match final with Some r -> pe_diff deployed r | None -> (0, 0)
            in
            Ok
              {
                deployed;
                change;
                verdict;
                reprogram_attempt;
                hardware_attempt;
                ripped_clusters = ripped;
                added_pes;
                removed_pes;
                cost_delta =
                  Option.map (fun (r : result) -> r.cost -. deployed.cost) final;
                resynth_seconds = wall_now () -. w0;
              })

  let pp_outcome fmt = function
    | Met -> Format.fprintf fmt "deadlines met"
    | Tardy t -> Format.fprintf fmt "deadlines missed by %d us" t
    | Failed msg -> Format.fprintf fmt "failed (%s)" msg

  let pp_report fmt rep =
    Format.fprintf fmt "@[<v>";
    Format.fprintf fmt "change       : %s@," (describe_change rep.change);
    Format.fprintf fmt "ripped       : %d cluster(s)@,"
      (List.length rep.ripped_clusters);
    Format.fprintf fmt "reprogramming: %a@," pp_outcome rep.reprogram_attempt;
    (match rep.hardware_attempt with
    | Some out -> Format.fprintf fmt "new hardware : %a@," pp_outcome out
    | None -> ());
    (match rep.verdict with
    | Images_only { added_images; _ } ->
        Format.fprintf fmt "verdict      : images only (%+d image(s))@,"
          added_images
    | Needs_hardware { added_pes; added_cost; _ } ->
        Format.fprintf fmt "verdict      : needs hardware (%d PE(s), $%s)@,"
          added_pes
          (Crusade_util.Text_table.fmt_dollars added_cost)
    | Infeasible -> Format.fprintf fmt "verdict      : INFEASIBLE@,");
    (match rep.cost_delta with
    | Some d ->
        Format.fprintf fmt "cost delta   : %s$%s (+%d/-%d PEs)@,"
          (if d < 0.0 then "-" else "+")
          (Crusade_util.Text_table.fmt_dollars (Float.abs d))
          rep.added_pes rep.removed_pes
    | None -> ());
    Format.fprintf fmt "latency      : %.2f s@," rep.resynth_seconds;
    (match final_result rep with
    | Some r -> Format.fprintf fmt "%a" pp_result r
    | None -> ());
    Format.fprintf fmt "@]"
end
