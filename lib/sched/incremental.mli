(** Incremental rescheduling: persistent timelines with downstream-only
    repair (DESIGN.md "Incremental rescheduling").

    Candidate evaluation schedules thousands of architectures per
    synthesis that differ from their predecessor by one cluster's
    placement.  This engine keeps a recording of the latest full
    scheduler run — the pop sequence, every resource reservation, and a
    snapshot of what the scheduler read from the architecture — and
    evaluates the next candidate by diffing it against the snapshot,
    replaying the provably unchanged prefix of the recording, and
    list-scheduling only the remainder.  Replayed verdicts are
    bit-identical to a fresh {!Schedule.run} by construction (the diff
    marks every task whose scheduling inputs changed, closes the set
    downstream, and cuts the prefix before the first pop any marked
    instance could influence).

    One engine is scoped to a synthesis trajectory, like {!Memo}; the
    recording slots form a small MRU list keyed by (spec, clustering,
    copy_cap) identity, so revisiting a clustering seen earlier (a
    portfolio trajectory restart, a rescheduling round) replays against
    the retained basis instead of paying a cold rebuild.  When no exact
    key matches, a basis recorded under a different clustering of the
    same spec/copy_cap is {e adopted} ({!Schedule.Replay.adoptable}):
    the per-task diff already covers clustering-induced changes, so the
    adopted prefix replays bit-identically and only the cut region is
    rescheduled.  Within one trajectory adoption never fires (all of its
    bases share its clustering identity); it pays off when several
    engines share a {!Store.t}, as portfolio trajectories do.  The list
    is an atomic holding immutable values, so the parallel evaluation
    path may share it across domains. *)

(** A shareable slot store.  Engines created over the same store publish
    and look up recordings in one MRU list, letting portfolio
    trajectories seed each other's bases via adoption. *)
module Store : sig
  type t

  val create : unit -> t
end

type t

val create :
  ?store:Store.t ->
  ?trace:Crusade_util.Trace.t ->
  ?metrics:Crusade_util.Trace.Metrics.t ->
  unit ->
  t
(** A fresh engine; private empty slots unless [?store] is given.
    [?metrics] registers the counters as ["eval.replays"] /
    ["eval.rebuilds"] / ["eval.basis_adoptions"] / ["eval.basis_cuts"];
    [?trace] emits an instant event per replayed evaluation. *)

val record :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (Schedule.t, string) result
(** A full scheduler run, bit-identical to {!Schedule.run}, that also
    refreshes the engine's recording (kept unchanged on [Error]). *)

val refresh :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  unit
(** Refreshes the recording without materializing a schedule (cheaper
    than {!record}; the recording is kept unchanged if the run fails).
    For commit points where the schedule would be discarded. *)

val evaluate :
  t ->
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  [ `Replayed of (Schedule.verdict, string) result
  | `Ran of (Schedule.t, string) result ]
(** Evaluates a candidate.  [`Replayed] carries the verdict of a prefix
    replay — bit-identical to a fresh run's verdict, but without
    materializing a schedule; returned whenever a compatible (exact-key)
    or adoptable (cross-clustering) recording exists (even a zero-length
    prefix wins: the verdict-only run skips materialization and
    recording overhead).  [`Ran] carries a full {!record} run (the
    fallback, which also refreshes the recording). *)

val replays : t -> int
(** Evaluations served by prefix replay (exact or adopted basis). *)

val rebuilds : t -> int
(** Full scheduler runs through {!record} (including fallbacks). *)

val adoptions : t -> int
(** Replayed evaluations that used a cross-clustering adopted basis
    (a subset of {!replays}). *)

val basis_cuts : t -> int
(** Total steps the adopted bases could not cover (sum over adopted
    replays of recording steps minus replayed prefix).  Small relative
    to adoptions means the bases transplant well. *)
