lib/reconfig/image.mli: Crusade_alloc Crusade_cluster Crusade_taskgraph
