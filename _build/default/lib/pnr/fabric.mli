(** Seeded placement and channelled routing of circuits onto a device.

    Placement takes the circuits in order, giving each a compact cluster
    of the cells still free — so a fuller device forces more scattered
    placements.  Routing uses L-shaped paths through inter-row/column
    channels; a segment loaded beyond [wires_per_channel] slows every net
    through it, and heavy aggregate overflow makes the design unroutable.
    Together these reproduce the delay-vs-utilization law of Table 1. *)

type outcome =
  | Routed of { critical_delay_ns : float; overflow_ratio : float }
  | Unroutable

val place_and_route :
  Device.t ->
  fillers:Circuit.t list ->
  circuit:Circuit.t ->
  extra_pin_nets:int ->
  seed:int ->
  outcome
(** Places [fillers] first (they model the other functions sharing the
    device), then [circuit] (the function whose delay constraint is being
    checked), routes all nets plus [extra_pin_nets] periphery-to-core pin
    nets, and reports the critical-path delay of [circuit].
    Returns [Unroutable] when the device cannot absorb the demand. *)
