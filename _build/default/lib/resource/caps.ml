let eruf = 0.70
let epuf = 0.80

let usable_pfus (pe : Pe.t) =
  match pe.pe_class with
  | Pe.Programmable p -> int_of_float (eruf *. float_of_int p.pfus)
  | Pe.Asic_pe a -> a.gates
  | Pe.General_purpose _ -> 0

let usable_pins (pe : Pe.t) =
  match pe.pe_class with
  | Pe.Programmable p -> int_of_float (epuf *. float_of_int p.pins)
  | Pe.Asic_pe a -> a.pins
  | Pe.General_purpose _ -> 0
