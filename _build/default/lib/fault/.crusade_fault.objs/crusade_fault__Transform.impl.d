lib/fault/transform.ml: Array Crusade_taskgraph Hashtbl List Printf
