(** The static scheduler and finish-time estimator (Section 5).

    Deadline-based priority-level list scheduling over the hyperperiod:
    - every task-graph copy in the hyperperiod is instantiated (the
      association array), up to [copy_cap] explicit copies per graph —
      beyond the cap the explicit schedule is extrapolated periodically;
    - tasks become ready when their intra-copy predecessors finish and
      their input edges have been transferred over a connecting link;
    - general-purpose processors and links are serial resources scheduled
      by gap insertion, with restricted preemption on processors;
    - ASIC tasks own their circuits and run as soon as ready;
    - programmable-PE tasks additionally wait for their configuration
      mode: windows of different modes may not overlap, and switching
      modes costs the reboot task (Section 4.3).

    The same run yields finish-time estimation (deadline check and total
    tardiness), the per-graph activity windows used for compatibility
    detection (Fig. 3), and the per-device mode windows and switch counts
    used by reconfiguration generation. *)

type instance = {
  i_task : int;  (** global task id *)
  i_copy : int;
  arrival : int;
  abs_deadline : int;
  mutable start : int;
  mutable finish : int;
}

type t = {
  instances : instance array;
  hyperperiod : int;
  deadlines_met : bool;
  total_tardiness : int;
  graph_windows : Crusade_util.Intervals.t array;
      (** activity (execution + communication) per graph over the full
          hyperperiod, capped copies replicated periodically *)
  mode_switches : int array;  (** reconfigurations per PE instance *)
  scheduled_tasks : int;  (** tasks covered (placed clusters only) *)
}

val default_copy_cap : int
(** 64: graphs with more copies in the hyperperiod than this are
    scheduled for the first [copy_cap] copies and extrapolated — the
    association-array compromise documented in DESIGN.md. *)

val run :
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (t, string) result
(** Schedules every task whose cluster is placed in the architecture.
    Fails only when two communicating placed tasks sit on PEs with no
    connecting link (a broken allocation). *)

val estimate :
  ?copy_cap:int ->
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  (int, string) result
(** Stage-1 evaluator: an admissible lower bound on {!run}'s
    [total_tardiness] for the same placement, in O(V + E + I log I)
    without building any timeline.  Guarantees, for every architecture:
    - [estimate] never exceeds [run]'s total tardiness, so a positive
      bound proves the placement misses deadlines and a bound that
      already loses to the incumbent proves the candidate cannot win;
    - [estimate] is [Error] exactly when [run] is (two communicating
      placed tasks on unconnected PEs).
    Candidate evaluation consults it before paying for a full schedule;
    see DESIGN.md "Two-stage candidate evaluation". *)

val priorities :
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  int array
(** Deadline-based priority levels under the current (partial)
    allocation: allocated tasks use their actual execution time, edges
    internal to a cluster or PE cost zero. *)

type verdict = {
  v_tardiness : int;  (** {!t}[.total_tardiness] of the same run *)
  v_met : bool;  (** {!t}[.deadlines_met] *)
  v_scheduled : int;  (** {!t}[.scheduled_tasks] *)
}
(** What candidate evaluation actually consumes from a schedule.  The
    incremental engine returns verdicts without materializing instance
    records, activity windows or mode-switch counts. *)

(** Low-level record/replay interface of the incremental engine (see
    DESIGN.md "Incremental rescheduling").  [record] captures, alongside
    a normal run, the pop sequence and the exact resource reservations of
    every step plus a snapshot of everything the scheduler read from the
    architecture.  [prepare] diffs a candidate architecture against that
    snapshot and computes the provably identical prefix; [replay_verdict]
    / [replay_run] fast-forward through it and schedule only the
    remainder.  Exposed for {!Incremental} (the policy layer), the
    differential tests and the fuzzer's self-test. *)
module Replay : sig
  type recording

  val steps : recording -> int
  (** Number of recorded scheduling steps (pops). *)

  val compatible :
    recording ->
    ?copy_cap:int ->
    Crusade_taskgraph.Spec.t ->
    Crusade_cluster.Clustering.t ->
    bool
  (** A recording only applies to the same spec and clustering (by
      physical identity) and the same copy cap it was captured with. *)

  val adoptable :
    recording -> ?copy_cap:int -> Crusade_taskgraph.Spec.t -> bool
  (** Weaker than {!compatible}: the recording may be used as a diff
      basis under a {e different} clustering identity as long as the
      physical spec and copy cap match.  Sound because the recording's
      snapshot and {!prepare}'s diff are entirely task- and
      resource-indexed — every clustering-induced change shows up as a
      per-task placement/priority delta and lands in the rescheduled
      cut; the adopted prefix replays bit-identically. *)

  val record :
    ?copy_cap:int ->
    Crusade_taskgraph.Spec.t ->
    Crusade_cluster.Clustering.t ->
    Crusade_alloc.Arch.t ->
    (t * recording, string) result
  (** Runs the scheduler exactly as {!run} does while capturing a
      recording of the run.  The schedule returned is bit-identical to
      {!run}'s. *)

  val record_only :
    ?copy_cap:int ->
    Crusade_taskgraph.Spec.t ->
    Crusade_cluster.Clustering.t ->
    Crusade_alloc.Arch.t ->
    (recording, string) result
  (** Like {!record} but skips schedule materialization (no instance
      records, activity intervals or mode-switch counts are built).  For
      commit points that only need to refresh the replay basis. *)

  type prep

  val prepare :
    recording ->
    Crusade_taskgraph.Spec.t ->
    Crusade_cluster.Clustering.t ->
    Crusade_alloc.Arch.t ->
    prep
  (** Diffs [arch] against the recording's snapshot and computes the
      replayable prefix.  The caller must have checked {!compatible}. *)

  val cut : prep -> int
  (** Steps of the recording that will be replayed verbatim — equals
      {!steps} when the candidate provably schedules identically. *)

  val replay_verdict : prep -> (verdict, string) result
  (** Replays the prefix and schedules the remainder, returning only the
      verdict (no instance records, activity windows or mode-switch
      counts are materialized).  Bit-identical to the verdict of a fresh
      {!run} against the same architecture. *)

  val replay_run : prep -> (t, string) result
  (** Like {!replay_verdict} but materializes the full schedule;
      bit-identical to a fresh {!run}. *)

  val corrupt_for_selftest : ?step:int -> recording -> bool
  (** Mutates the recording at [step] (default: the last step) so that
      any replay whose prefix includes it diverges from a fresh run
      (testing only: proves differential checks can fail).  Returns
      [false] when the recording has no such step. *)
end
