lib/resource/caps.mli: Pe
