type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (next_int64 t) land max_int in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0,1), scaled. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
