module Spec = Crusade_taskgraph.Spec
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Options = Crusade_alloc.Options
module Timeline = Crusade_sched.Timeline
module Schedule = Crusade_sched.Schedule

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let lib = Helpers.small_lib

(* --- Timeline --- *)

let timeline_insert_gap () =
  let tl = Timeline.create () in
  let s1, f1 = Timeline.insert tl ~ready:10 ~duration:5 in
  check Alcotest.(pair int int) "first" (10, 15) (s1, f1);
  let s2, f2 = Timeline.insert tl ~ready:0 ~duration:5 in
  check Alcotest.(pair int int) "fills gap before" (0, 5) (s2, f2);
  let s3, _ = Timeline.insert tl ~ready:0 ~duration:10 in
  check Alcotest.int "after existing work" 15 s3

let timeline_exact_gap () =
  let tl = Timeline.create () in
  ignore (Timeline.insert tl ~ready:0 ~duration:10);
  ignore (Timeline.insert tl ~ready:20 ~duration:10);
  let s, f = Timeline.insert tl ~ready:0 ~duration:10 in
  check Alcotest.(pair int int) "exact middle gap" (10, 20) (s, f)

let timeline_probe_pure () =
  let tl = Timeline.create () in
  ignore (Timeline.insert tl ~ready:0 ~duration:10);
  let before = Timeline.busy tl in
  ignore (Timeline.probe tl ~ready:0 ~duration:5);
  check Alcotest.(list (pair int int)) "probe mutates nothing" before (Timeline.busy tl)

let timeline_preemptible_splits () =
  let tl = Timeline.create () in
  (* resident work at [10,20): a 16-unit task ready at 0 can run [0,10)
     then resume after, paying the penalty *)
  ignore (Timeline.insert tl ~ready:10 ~duration:10);
  let start, finish =
    Timeline.insert_preemptible tl ~ready:0 ~duration:16 ~max_chunks:3 ~chunk_penalty:2
  in
  check Alcotest.int "starts immediately" 0 start;
  check Alcotest.int "finish pays penalty" 28 finish

let timeline_preemptible_contiguous_when_easy () =
  let tl = Timeline.create () in
  let start, finish =
    Timeline.insert_preemptible tl ~ready:5 ~duration:10 ~max_chunks:3 ~chunk_penalty:7
  in
  check Alcotest.(pair int int) "no split needed" (5, 15) (start, finish)

let timeline_small_fragment_skipped () =
  let tl = Timeline.create () in
  (* a 1-unit gap before resident work is below the quarter-duration
     minimum chunk: the work should skip it *)
  ignore (Timeline.insert tl ~ready:1 ~duration:20);
  let start, _ =
    Timeline.insert_preemptible tl ~ready:0 ~duration:16 ~max_chunks:3 ~chunk_penalty:1
  in
  check Alcotest.int "fragment skipped" 21 start

let timeline_busy_invariant =
  QCheck.Test.make ~name:"timeline stays sorted and disjoint" ~count:200
    QCheck.(small_list (pair (int_range 0 100) (int_range 1 20)))
    (fun jobs ->
      let tl = Timeline.create () in
      List.iter (fun (r, d) -> ignore (Timeline.insert tl ~ready:r ~duration:d)) jobs;
      let rec ok = function
        | (s1, e1) :: ((s2, _) :: _ as rest) -> s1 < e1 && e1 <= s2 && ok rest
        | [ (s, e) ] -> s < e
        | [] -> true
      in
      ok (Timeline.busy tl))

let timeline_work_conserved =
  QCheck.Test.make ~name:"inserted work equals busy growth" ~count:200
    QCheck.(small_list (pair (int_range 0 100) (int_range 1 20)))
    (fun jobs ->
      let tl = Timeline.create () in
      let total = List.fold_left (fun acc (_, d) -> acc + d) 0 jobs in
      List.iter (fun (r, d) -> ignore (Timeline.insert tl ~ready:r ~duration:d)) jobs;
      let busy =
        List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 (Timeline.busy tl)
      in
      busy = total)

(* --- Schedule --- *)

(* Allocate every cluster onto a forced option list; returns arch. *)
let place_all spec clustering choose =
  let arch = Arch.create lib in
  Array.iter
    (fun (cluster : Clustering.cluster) ->
      let opts = Options.enumerate arch spec clustering cluster ~allow_new_modes:true () in
      let opt = choose cluster opts in
      match Options.apply arch spec clustering cluster opt with
      | Ok () -> ()
      | Error m -> Alcotest.failf "placement failed: %s" m)
    clustering.Clustering.clusters;
  arch

let schedule_chain_on_one_cpu () =
  let spec, ids = Helpers.sw_chain ~exec:100 3 in
  let clustering = Clustering.run spec lib in
  let arch = place_all spec clustering (fun _ opts -> List.hd opts) in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      check Alcotest.bool "deadlines met" true sched.Schedule.deadlines_met;
      check Alcotest.int "all scheduled" 3 sched.Schedule.scheduled_tasks;
      (* same cluster, same PE: chain executes back to back *)
      let by_task t =
        Array.to_list sched.Schedule.instances
        |> List.find (fun (i : Schedule.instance) -> i.i_task = t && i.i_copy = 0)
      in
      let f0 = (by_task (List.nth ids 0)).finish in
      let s1 = (by_task (List.nth ids 1)).start in
      check Alcotest.bool "precedence kept" true (s1 >= f0)

let schedule_precedence_property () =
  let spec, _ = Helpers.sw_chain ~exec:173 5 in
  let clustering = Clustering.run spec lib in
  let arch = place_all spec clustering (fun _ opts -> List.hd opts) in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      let inst = Array.to_list sched.Schedule.instances in
      Array.iter
        (fun (e : Crusade_taskgraph.Edge.t) ->
          List.iter
            (fun (i : Schedule.instance) ->
              if i.i_task = e.dst then begin
                let src =
                  List.find
                    (fun (j : Schedule.instance) ->
                      j.i_task = e.src && j.i_copy = i.i_copy)
                    inst
                in
                check Alcotest.bool "src finishes first" true (src.finish <= i.start)
              end)
            inst)
        spec.Spec.edges

let schedule_copies_instantiated () =
  let spec, _ = Helpers.sw_chain ~period:5_000 ~deadline:4_000 2 in
  (* second graph with period 10_000 to force hyperperiod 10_000: chain has
     1 graph only, so instead check copies = 1 here and multirate below *)
  let clustering = Clustering.run spec lib in
  let arch = place_all spec clustering (fun _ opts -> List.hd opts) in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      check Alcotest.int "instances = tasks x copies" 2
        (Array.length sched.Schedule.instances)

let schedule_multirate_copies () =
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"fast" ~period:2_000 ~deadline:1_500 () in
  let g2 = Spec.Builder.add_graph b ~name:"slow" ~period:8_000 ~deadline:6_000 () in
  ignore (Spec.Builder.add_task b ~graph:g1 ~name:"f" ~exec:(Helpers.cpu_exec 100) ());
  ignore (Spec.Builder.add_task b ~graph:g2 ~name:"s" ~exec:(Helpers.cpu_exec 100) ());
  let spec = Spec.Builder.finish_exn b ~name:"mr" () in
  let clustering = Clustering.singletons spec lib in
  let arch = place_all spec clustering (fun _ opts -> List.hd opts) in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      check Alcotest.int "4 + 1 instances" 5 (Array.length sched.Schedule.instances);
      (* each fast copy arrives on its period boundary *)
      Array.iter
        (fun (i : Schedule.instance) ->
          if i.i_task = 0 then
            check Alcotest.int "arrival" (i.i_copy * 2_000) i.arrival)
        sched.Schedule.instances

let schedule_copy_cap_extrapolates () =
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"veryfast" ~period:10 ~deadline:8 () in
  let g2 = Spec.Builder.add_graph b ~name:"slow" ~period:100_000 ~deadline:60_000 () in
  ignore (Spec.Builder.add_task b ~graph:g1 ~name:"f" ~exec:(Helpers.cpu_exec 2) ());
  ignore (Spec.Builder.add_task b ~graph:g2 ~name:"s" ~exec:(Helpers.cpu_exec 100) ());
  let spec = Spec.Builder.finish_exn b ~name:"assoc" () in
  let clustering = Clustering.singletons spec lib in
  let arch = place_all spec clustering (fun _ opts -> List.hd opts) in
  match Schedule.run ~copy_cap:16 spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      (* 10,000 copies exist; only 16 are explicit *)
      check Alcotest.int "capped instances" 17 (Array.length sched.Schedule.instances);
      check Alcotest.bool "windows cover the extrapolated copies" true
        (Crusade_util.Intervals.overlaps_interval
           sched.Schedule.graph_windows.(0) 50_000 50_010)

let schedule_deadline_miss_detected () =
  (* Exec longer than the deadline can never fit. *)
  let spec, _ = Helpers.sw_chain ~exec:9_000 ~deadline:4_000 1 in
  let clustering = Clustering.singletons spec lib in
  let arch = place_all spec clustering (fun _ opts -> List.hd opts) in
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      check Alcotest.bool "missed" false sched.Schedule.deadlines_met;
      check Alcotest.bool "tardiness positive" true (sched.Schedule.total_tardiness > 0)

let schedule_partial_allocation () =
  let spec, _ = Helpers.sw_chain 4 in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  (* place only the first cluster *)
  let c0 = clustering.Clustering.clusters.(0) in
  let opts = Options.enumerate arch spec clustering c0 ~allow_new_modes:false () in
  (match Options.apply arch spec clustering c0 (List.hd opts) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched -> check Alcotest.int "only placed tasks" 1 sched.Schedule.scheduled_tasks

let schedule_hw_concurrency () =
  (* Two independent FPGA tasks in the same mode run concurrently. *)
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"par" ~period:20_000 ~deadline:6_000 () in
  let t0 =
    Spec.Builder.add_task b ~graph:g ~name:"a" ~exec:(Helpers.fpga_exec 3_000)
      ~gates:50 ~pins:4 ()
  in
  let t1 =
    Spec.Builder.add_task b ~graph:g ~name:"b" ~exec:(Helpers.fpga_exec 3_000)
      ~gates:50 ~pins:4 ()
  in
  let spec = Spec.Builder.finish_exn b ~name:"par" () in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 4) in
  let mode = Crusade_util.Vec.get pe.Arch.modes 0 in
  Array.iter
    (fun (c : Clustering.cluster) ->
      match Arch.place_cluster arch spec clustering c ~pe ~mode with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    clustering.Clustering.clusters;
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      Array.iter
        (fun (i : Schedule.instance) ->
          check Alcotest.int "both start at arrival" 0 i.start)
        sched.Schedule.instances;
      ignore (t0, t1)

let schedule_mode_serialization_with_boot () =
  (* Two compatible graphs in different modes of one device: the second
     window must wait for the reboot after the first. *)
  let spec, t1, t2 = Helpers.two_hw_graphs ~overlap:false () in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let pe = Arch.add_pe arch (Library.pe lib 3) in
  (* force a noticeable boot time *)
  pe.Arch.boot_full_us <- 6_000;
  let mode0 = Crusade_util.Vec.get pe.Arch.modes 0 in
  let mode1 = Arch.add_mode arch pe in
  let c1 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t1)) in
  let c2 = clustering.Clustering.clusters.(clustering.Clustering.of_task.(t2)) in
  (match
     ( Arch.place_cluster arch spec clustering c1 ~pe ~mode:mode0,
       Arch.place_cluster arch spec clustering c2 ~pe ~mode:mode1 )
   with
  | Ok (), Ok () -> ()
  | Error m, _ | _, Error m -> Alcotest.fail m);
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      let inst t =
        Array.to_list sched.Schedule.instances
        |> List.find (fun (i : Schedule.instance) -> i.i_task = t)
      in
      let i1 = inst t1 and i2 = inst t2 in
      (* g2 arrives at 10_000 but g1's window [0,3000] plus 6ms boot push
         the second mode to 9_000 at the earliest; arrival already covers
         that, so what matters is the boot margin *)
      check Alcotest.bool "boot respected" true (i2.start >= i1.finish + 6_000);
      check Alcotest.int "one reconfiguration" 1 sched.Schedule.mode_switches.(0)

let schedule_disconnected_edge_error () =
  let spec, _ = Helpers.sw_chain 2 in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let a = Arch.add_pe arch (Library.pe lib 0) in
  let b = Arch.add_pe arch (Library.pe lib 0) in
  let c0 = clustering.Clustering.clusters.(0) in
  let c1 = clustering.Clustering.clusters.(1) in
  (match
     ( Arch.place_cluster arch spec clustering c0 ~pe:a ~mode:(Crusade_util.Vec.get a.Arch.modes 0),
       Arch.place_cluster arch spec clustering c1 ~pe:b ~mode:(Crusade_util.Vec.get b.Arch.modes 0) )
   with
  | Ok (), Ok () -> ()
  | Error m, _ | _, Error m -> Alcotest.fail m);
  (* no link between the two CPUs *)
  check Alcotest.bool "disconnected detected" true
    (Result.is_error (Schedule.run spec clustering arch))

let schedule_comm_on_link_delays () =
  let spec, ids = Helpers.sw_chain ~exec:100 2 in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let a = Arch.add_pe arch (Library.pe lib 0) in
  let b = Arch.add_pe arch (Library.pe lib 0) in
  let c0 = clustering.Clustering.clusters.(0) in
  let c1 = clustering.Clustering.clusters.(1) in
  ignore (Arch.place_cluster arch spec clustering c0 ~pe:a ~mode:(Crusade_util.Vec.get a.Arch.modes 0));
  ignore (Arch.place_cluster arch spec clustering c1 ~pe:b ~mode:(Crusade_util.Vec.get b.Arch.modes 0));
  let bus = Arch.add_link arch (Library.link lib 0) in
  ignore (Arch.attach arch bus a);
  ignore (Arch.attach arch bus b);
  match Schedule.run spec clustering arch with
  | Error m -> Alcotest.fail m
  | Ok sched ->
      let inst t =
        Array.to_list sched.Schedule.instances
        |> List.find (fun (i : Schedule.instance) -> i.i_task = t)
      in
      let producer = inst (List.nth ids 0) and consumer = inst (List.nth ids 1) in
      check Alcotest.bool "communication adds latency" true
        (consumer.start > producer.finish)

let priorities_allocated_uses_actual_exec () =
  let spec, ids = Helpers.sw_chain ~exec:100 1 in
  let clustering = Clustering.singletons spec lib in
  let arch = Arch.create lib in
  let levels_before = Schedule.priorities spec clustering arch in
  (* place on cpu-b (faster in small lib? both speed given by exec vector,
     equal here) and check levels remain well-defined *)
  let c0 = clustering.Clustering.clusters.(0) in
  let opts = Options.enumerate arch spec clustering c0 ~allow_new_modes:false () in
  ignore (Options.apply arch spec clustering c0 (List.hd opts));
  let levels_after = Schedule.priorities spec clustering arch in
  check Alcotest.int "single task level unchanged" levels_before.(List.hd ids)
    levels_after.(List.hd ids)

let suite =
  [
    Alcotest.test_case "timeline insert/gap" `Quick timeline_insert_gap;
    Alcotest.test_case "timeline exact gap" `Quick timeline_exact_gap;
    Alcotest.test_case "timeline probe pure" `Quick timeline_probe_pure;
    Alcotest.test_case "timeline preemption split" `Quick timeline_preemptible_splits;
    Alcotest.test_case "timeline contiguous" `Quick timeline_preemptible_contiguous_when_easy;
    Alcotest.test_case "timeline fragment skipped" `Quick timeline_small_fragment_skipped;
    qcheck timeline_busy_invariant;
    qcheck timeline_work_conserved;
    Alcotest.test_case "chain on one cpu" `Quick schedule_chain_on_one_cpu;
    Alcotest.test_case "precedence property" `Quick schedule_precedence_property;
    Alcotest.test_case "copies instantiated" `Quick schedule_copies_instantiated;
    Alcotest.test_case "multirate copies" `Quick schedule_multirate_copies;
    Alcotest.test_case "copy cap extrapolates" `Quick schedule_copy_cap_extrapolates;
    Alcotest.test_case "deadline miss detected" `Quick schedule_deadline_miss_detected;
    Alcotest.test_case "partial allocation" `Quick schedule_partial_allocation;
    Alcotest.test_case "hw concurrency" `Quick schedule_hw_concurrency;
    Alcotest.test_case "mode serialization + boot" `Quick schedule_mode_serialization_with_boot;
    Alcotest.test_case "disconnected edge" `Quick schedule_disconnected_edge_error;
    Alcotest.test_case "link communication delays" `Quick schedule_comm_on_link_delays;
    Alcotest.test_case "priorities with allocation" `Quick priorities_allocated_uses_actual_exec;
  ]
