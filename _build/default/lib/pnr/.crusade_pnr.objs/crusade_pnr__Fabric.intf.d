lib/pnr/fabric.mli: Circuit Device
