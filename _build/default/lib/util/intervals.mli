(** Half-open time intervals [\[start, stop)] and busy-window sets.

    The scheduler represents the activity of a task-graph copy, a PE
    timeline slot or a mode's occupation as interval sets; compatibility of
    two task graphs (Section 4.1 of the paper) is the emptiness of the
    intersection of their busy-window sets over the hyperperiod. *)

type interval = { start : int; stop : int }
(** Invariant: [start <= stop].  The interval is empty when [start = stop]. *)

type t
(** An immutable normalized set of disjoint, sorted intervals. *)

val empty : t

val of_list : (int * int) list -> t
(** Builds a set from arbitrary (possibly overlapping, unsorted) pairs;
    empty pairs are dropped.  @raise Invalid_argument if any pair has
    [start > stop]. *)

val to_list : t -> (int * int) list
(** Sorted disjoint intervals. *)

val add : t -> int -> int -> t
(** [add t start stop] inserts one interval. *)

val union : t -> t -> t

val overlaps : t -> t -> bool
(** Whether the two sets share any instant. *)

val overlaps_interval : t -> int -> int -> bool

val total_length : t -> int

val is_empty : t -> bool

val span : t -> (int * int) option
(** Smallest interval covering the whole set, or [None] when empty. *)
