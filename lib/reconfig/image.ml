module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Pe = Crusade_resource.Pe
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec

type image = {
  pe_id : int;
  mode_id : int;
  device : string;
  bytes : string;
  crc : int;
}

let crc16 data =
  let crc = ref 0xFFFF in
  String.iter
    (fun c ->
      crc := !crc lxor (Char.code c lsl 8);
      for _ = 1 to 8 do
        if !crc land 0x8000 <> 0 then crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
        else crc := (!crc lsl 1) land 0xFFFF
      done)
    data;
  !crc

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let build (spec : Spec.t) (clustering : Clustering.t) (pe : Arch.pe_inst)
    (mode : Arch.mode) =
  let info =
    match Pe.ppe_info pe.Arch.ptype with
    | Some info -> info
    | None -> invalid_arg "Image.build: not a programmable PE"
  in
  let buf = Buffer.create info.Pe.boot_memory_bytes in
  (* Header: magic, device name (fixed 12 bytes), mode id, PFU usage. *)
  Buffer.add_string buf "CRSD";
  let name = pe.Arch.ptype.Pe.name in
  Buffer.add_string buf
    (if String.length name >= 12 then String.sub name 0 12
     else name ^ String.make (12 - String.length name) '\000');
  add_u16 buf mode.Arch.m_id;
  add_u16 buf mode.Arch.m_gates;
  add_u16 buf mode.Arch.m_pins;
  (* One configuration record per resident task: id, area, then that many
     synthetic configuration words from a stream keyed by the task. *)
  let tasks =
    List.concat_map
      (fun cid -> clustering.Clustering.clusters.(cid).Clustering.members)
      (List.sort compare mode.Arch.m_clusters)
  in
  List.iter
    (fun task_id ->
      let task = Spec.task spec task_id in
      add_u16 buf task.Task.id;
      add_u16 buf task.Task.gates;
      let rng = Crusade_util.Rng.create ((task.Task.id * 65_599) + mode.Arch.m_id) in
      for _ = 1 to task.Task.gates do
        add_u16 buf (Crusade_util.Rng.int rng 0x10000)
      done)
    (List.sort compare tasks);
  (* Pad to the boot-memory size, leaving room for the CRC. *)
  let body_limit = max (Buffer.length buf) (info.Pe.boot_memory_bytes - 2) in
  let padding = body_limit - Buffer.length buf in
  if padding > 0 then Buffer.add_string buf (String.make padding '\000');
  let body = Buffer.contents buf in
  let crc = crc16 body in
  add_u16 buf crc;
  {
    pe_id = pe.Arch.p_id;
    mode_id = mode.Arch.m_id;
    device = pe.Arch.ptype.Pe.name;
    bytes = Buffer.contents buf;
    crc;
  }

let manifest (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let images = ref [] in
  Vec.iter
    (fun (pe : Arch.pe_inst) ->
      if Pe.is_programmable pe.Arch.ptype then
        Vec.iter
          (fun (mode : Arch.mode) ->
            if mode.Arch.m_clusters <> [] then
              images := build spec clustering pe mode :: !images)
          pe.Arch.modes)
    arch.Arch.pes;
  List.sort (fun a b -> compare (a.pe_id, a.mode_id) (b.pe_id, b.mode_id)) !images

let total_bytes images =
  List.fold_left (fun acc img -> acc + String.length img.bytes) 0 images
