test/test_taskgraph.ml: Alcotest Array Crusade_taskgraph Crusade_util Hashtbl Helpers List Printf QCheck QCheck_alcotest Result
