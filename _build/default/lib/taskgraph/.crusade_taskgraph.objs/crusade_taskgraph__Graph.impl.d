lib/taskgraph/graph.ml: Array Edge Hashtbl List Option Printf Queue Task
