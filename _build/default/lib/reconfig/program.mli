(** Reconfiguration management output: the per-device mode-switch program.

    Once the architecture and schedule are fixed, each multi-mode
    programmable device follows a periodic program: load image m1, run
    its window, reboot into m2, and so on over the hyperperiod.  This
    module extracts that program from the schedule — the artefact a
    run-time reconfiguration controller would execute — and reports the
    reconfiguration count and the total time spent rebooting. *)

type step = {
  mode : int;  (** configuration image to load *)
  load_at : int;  (** time (us) the reboot must start *)
  active_from : int;  (** first execution in this window *)
  active_until : int;  (** last execution finish in this window *)
}

type device_program = {
  pe_id : int;
  device : string;  (** PE type name *)
  steps : step list;  (** chronological within the hyperperiod *)
  switches : int;  (** reconfigurations per hyperperiod *)
  reboot_time_us : int;  (** total time spent reconfiguring *)
}

val extract :
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  Crusade_sched.Schedule.t ->
  device_program list
(** Programs for every device with at least two occupied modes, ordered
    by PE id. *)

val pp : Format.formatter -> device_program -> unit
