lib/resource/library.mli: Link Pe
