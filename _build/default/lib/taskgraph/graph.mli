(** A periodic acyclic task graph (Fig. 1): earliest start time, period and
    deadline, plus the optional compatibility vector of Section 4.1. *)

type t = {
  id : int;
  name : string;
  period : int;  (** period (us); the graph re-arrives every [period] *)
  est : int;  (** earliest start time of the first copy (us) *)
  deadline : int;
      (** end-to-end deadline (us, relative to each copy's arrival);
          applies to sink tasks that carry no own deadline *)
  tasks : Task.t array;
  edges : Edge.t array;
  compat : bool array option;
      (** [compat.(j)] = this graph is compatible with graph [j] (their
          execution slots never overlap, so they may time-share PPEs);
          [None] = unknown, to be discovered from the schedule (Fig. 3) *)
  unavailability_budget : float option;
      (** CRUSADE-FT: maximum unavailability in minutes/year *)
}

val n_tasks : t -> int

val task_ids : t -> int list
(** Global ids of the member tasks. *)

val sinks : t -> Task.t list
(** Tasks with no outgoing edge. *)

val sources : t -> Task.t list
(** Tasks with no incoming edge. *)

val task_deadline : t -> Task.t -> int
(** Effective deadline of a task relative to copy arrival: its own
    [deadline] if set, otherwise the graph deadline (sinks), otherwise
    the graph deadline too — interior tasks inherit the end-to-end
    deadline as a latest-completion bound. *)

val validate : t -> (unit, string) result
(** Checks that the graph is acyclic, edges reference member tasks, the
    period is positive and the deadline positive. *)

val topological_order : t -> Task.t list
(** Member tasks in a topological order.  @raise Failure on a cycle. *)
