test/test_core.ml: Alcotest Array Crusade Crusade_alloc Crusade_resource Crusade_sched Crusade_taskgraph Crusade_util Crusade_workloads Format Helpers List String
