(** Independent schedule validation.

    The scheduler is trusted inside the synthesis inner loop; this module
    re-derives the invariants a correct CRUSADE schedule must satisfy
    from first principles, so tests (and sceptical users) can check any
    produced schedule without trusting the scheduler's own bookkeeping:

    - precedence: a consumer instance never starts before its producer
      instance finishes;
    - arrival: no instance starts before its copy's arrival;
    - placement: every scheduled task's cluster is placed, and the task
      can execute on its PE type;
    - execution time: an instance occupies at least its worst-case
      execution time on its PE (CPU instances may stretch further due to
      preemption and staging overheads);
    - processor capacity: the work packed onto a CPU fits the
      hyperperiod;
    - mode exclusivity: executions of different configuration modes of
      one programmable device never overlap, and consecutive windows of
      different modes are separated by at least the mode's boot time;
    - deadline verdict: [deadlines_met] and [total_tardiness] agree with
      the instance table. *)

type violation = { rule : string; detail : string }

val check :
  Crusade_taskgraph.Spec.t ->
  Crusade_cluster.Clustering.t ->
  Crusade_alloc.Arch.t ->
  Schedule.t ->
  violation list
(** Empty when the schedule is sound. *)

val pp_violation : Format.formatter -> violation -> unit
