lib/util/stats.mli:
