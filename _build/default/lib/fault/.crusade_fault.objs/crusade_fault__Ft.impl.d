lib/fault/ft.ml: Crusade Dependability List Transform
