module Spec = Crusade_taskgraph.Spec
module Edge = Crusade_taskgraph.Edge
module Link = Crusade_resource.Link
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Vec = Crusade_util.Vec

(* PEs a cluster must talk to: those hosting placed clusters joined to it
   by an edge crossing PE boundaries. *)
let peer_pes arch (spec : Spec.t) (clustering : Clustering.t)
    (cluster : Clustering.cluster) my_pe =
  let peers = ref [] in
  let note task_id =
    match Arch.task_site arch clustering task_id with
    | Some site when site.Arch.s_pe <> my_pe ->
        if not (List.mem site.Arch.s_pe !peers) then peers := site.Arch.s_pe :: !peers
    | Some _ | None -> ()
  in
  List.iter
    (fun member ->
      List.iter (fun (e : Edge.t) -> note e.dst) spec.succs.(member);
      List.iter (fun (e : Edge.t) -> note e.src) spec.preds.(member))
    cluster.members;
  !peers

let connect_pair arch pe_a pe_b =
  if Arch.links_between arch pe_a pe_b <> [] then Ok 0.0
  else begin
    let a = Vec.get arch.Arch.pes pe_a and b = Vec.get arch.Arch.pes pe_b in
    (* Cheapest repair: add the missing port(s) to an existing bus/LAN
       with free ports (this is how architectures end up with a few
       shared buses instead of a point-to-point web); otherwise
       instantiate a new link. *)
    let extension =
      Vec.fold
        (fun best (l : Arch.link_inst) ->
          let has_a = List.mem pe_a l.attached and has_b = List.mem pe_b l.attached in
          let missing = (if has_a then 0 else 1) + (if has_b then 0 else 1) in
          if List.length l.attached + missing > l.ltype.Link.max_ports then best
          else begin
            let cost = float_of_int missing *. l.ltype.Link.port_cost in
            match best with
            | Some (_, best_cost) when best_cost <= cost -> best
            | _ -> Some (l, cost)
          end)
        None arch.Arch.links
    in
    match extension with
    | Some (l, cost) ->
        let attach_missing pe =
          if List.mem pe.Arch.p_id l.Arch.attached then Ok ()
          else Arch.attach arch l pe
        in
        (match (attach_missing a, attach_missing b) with
        | Ok (), Ok () -> Ok cost
        | Error msg, _ | _, Error msg -> Error msg)
    | None ->
        let cheapest =
          (* Score amortizes the link cost over the PE pairs it can
             eventually serve, so multi-drop buses beat point-to-point
             links for anything that will grow. *)
          let rec scan best i =
            if i >= Library.n_link_types arch.Arch.lib then best
            else begin
              let lt = Library.link arch.Arch.lib i in
              let cost = lt.Link.cost +. (2.0 *. lt.Link.port_cost) in
              let score = cost /. float_of_int (max 1 (lt.Link.max_ports - 1)) in
              let best =
                match best with
                | Some (_, best_score, _) when best_score <= score -> best
                | _ -> Some (lt, score, cost)
              in
              scan best (i + 1)
            end
          in
          match scan None 0 with Some (lt, _, cost) -> Some (lt, cost) | None -> None
        in
        (match cheapest with
        | None -> Error "empty link library"
        | Some (lt, cost) ->
            let l = Arch.add_link arch lt in
            (match (Arch.attach arch l a, Arch.attach arch l b) with
            | Ok (), Ok () -> Ok cost
            | Error msg, _ | _, Error msg -> Error msg))
  end

let ensure arch spec clustering (cluster : Clustering.cluster) =
  match Arch.site_of_cluster arch cluster.cid with
  | None -> Error "cluster is not placed"
  | Some site ->
      let peers = peer_pes arch spec clustering cluster site.Arch.s_pe in
      List.fold_left
        (fun acc peer ->
          match acc with
          | Error _ as e -> e
          | Ok total -> (
              match connect_pair arch site.Arch.s_pe peer with
              | Ok cost -> Ok (total +. cost)
              | Error _ as e -> e))
        (Ok 0.0) peers
