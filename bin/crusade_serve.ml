(* crusade-serve — synthesis as a service.

     crusade_serve --port 8080
     crusade_serve --port 0            # ephemeral port, printed on stdout

   The server runs in the foreground; the listening address is printed
   once the socket is bound, so scripts can start it in the background
   and scrape the port. *)

module S = Crusade_serve.Server

open Cmdliner

let addr_arg =
  let doc = "Address to bind." in
  Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"ADDR" ~doc)

let port_arg =
  let doc = "Port to listen on (0 picks an ephemeral port)." in
  Arg.(value & opt int 8080 & info [ "port"; "p" ] ~docv:"PORT" ~doc)

let max_in_flight_arg =
  let doc = "Jobs synthesizing concurrently on the shared domain pool." in
  Arg.(value & opt int 2 & info [ "max-in-flight" ] ~docv:"N" ~doc)

let queue_cap_arg =
  let doc = "Admitted-but-waiting job bound; submissions past it get 503." in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Default per-job evaluation parallelism (a job's own $(b,jobs) option \
     overrides it)."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let run addr port max_in_flight queue_cap jobs =
  if max_in_flight <= 0 then begin
    prerr_endline "--max-in-flight must be positive";
    1
  end
  else begin
    let base = S.default_config () in
    let cfg =
      {
        base with
        S.max_in_flight;
        S.queue_cap;
        S.default_jobs = Option.value jobs ~default:base.S.default_jobs;
      }
    in
    let t = S.create cfg in
    let fd, actual = S.listen ~addr ~port t in
    Printf.printf "crusade-serve listening on http://%s:%d\n%!" addr actual;
    S.serve t fd;
    0
  end

let main =
  let doc = "co-synthesis job server with a content-addressed result cache" in
  Cmd.v
    (Cmd.info "crusade_serve" ~version:"1.0.0" ~doc)
    Term.(
      const run $ addr_arg $ port_arg $ max_in_flight_arg $ queue_cap_arg
      $ jobs_arg)

let () = exit (Cmd.eval' main)
