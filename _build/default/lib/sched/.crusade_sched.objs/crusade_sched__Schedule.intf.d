lib/sched/schedule.mli: Crusade_alloc Crusade_cluster Crusade_taskgraph Crusade_util
