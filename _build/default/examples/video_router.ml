(* Video distribution router (the paper's VDRTX-class workload).

   Generates the MPEG-flavoured video-router example at a reduced scale,
   synthesizes it with and without dynamic reconfiguration against the
   stock 1999 resource library, and prints the resulting architectures —
   the per-example view of Table 2.

     dune exec examples/video_router.exe [-- --scale N]   (default 8) *)

module C = Crusade.Crusade_core
module W = Crusade_workloads.Comm_system

let () =
  let scale =
    match Array.to_list Sys.argv with
    | _ :: "--scale" :: n :: _ -> float_of_string n
    | _ -> 8.0
  in
  let lib = Crusade_resource.Library.stock () in
  let params = W.scaled (W.preset "VDRTX") scale in
  let spec = W.generate lib params in
  Format.printf "VDRTX at 1/%.0f scale: %d tasks in %d graphs@.@." scale
    (Crusade_taskgraph.Spec.n_tasks spec)
    (Crusade_taskgraph.Spec.n_graphs spec);
  let run reconfig =
    let options = { C.default_options with dynamic_reconfiguration = reconfig } in
    match C.synthesize ~options spec lib with
    | Ok r ->
        Format.printf "--- reconfiguration %s ---@.%a@.@."
          (if reconfig then "ON" else "OFF")
          C.pp_report r;
        r.C.cost
    | Error msg ->
        Format.printf "failed: %s@." msg;
        exit 1
  in
  let c0 = run false in
  let c1 = run true in
  Format.printf "cost savings from dynamic reconfiguration: %.1f%%@."
    ((c0 -. c1) /. c0 *. 100.0)
