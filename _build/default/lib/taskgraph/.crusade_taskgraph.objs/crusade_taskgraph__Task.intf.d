lib/taskgraph/task.mli:
