module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Priority = Crusade_cluster.Priority
module Clustering = Crusade_cluster.Clustering

let check = Alcotest.check

let lib = Helpers.small_lib

let priorities_chain () =
  (* In a chain, upstream tasks carry longer remaining paths, hence
     higher priority levels. *)
  let spec, ids = Helpers.sw_chain 4 in
  let levels =
    Priority.compute spec ~exec_time:Priority.unallocated_exec
      ~comm_time:(Priority.unallocated_comm lib)
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> levels.(a) > levels.(b) && decreasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "levels decrease downstream" true (decreasing ids)

let priorities_deadline_effect () =
  (* A tighter deadline raises the whole graph's levels. *)
  let tight, tight_ids = Helpers.sw_chain ~deadline:1_000 3 in
  let loose, loose_ids = Helpers.sw_chain ~deadline:8_000 3 in
  let level spec ids =
    let l =
      Priority.compute spec ~exec_time:Priority.unallocated_exec
        ~comm_time:(Priority.unallocated_comm lib)
    in
    l.(List.hd ids)
  in
  check Alcotest.bool "tighter deadline higher level" true
    (level tight tight_ids > level loose loose_ids)

let priorities_sink_formula () =
  (* Single task: level = exec - deadline. *)
  let spec, ids = Helpers.sw_chain ~exec:500 ~deadline:8_000 1 in
  let levels =
    Priority.compute spec ~exec_time:Priority.unallocated_exec ~comm_time:(fun _ -> 0)
  in
  check Alcotest.int "sink level" (500 - 8_000) levels.(List.hd ids)

let task_mask_matches_exec () =
  let spec, ids = Helpers.sw_chain 1 in
  let task = Spec.task spec (List.hd ids) in
  let mask = Clustering.task_mask lib task in
  (* cpu-a and cpu-b are PE types 0 and 1 of the small library *)
  check Alcotest.int "cpu mask" 0b00011 mask

let feasibility_mask_capacity () =
  (* A cluster too large for F1 under ERUF but fine for F2. *)
  let mask =
    Clustering.feasibility_mask lib ~gates:200 ~pins:10 ~memory_bytes:0
      ~task_mask:0b11000
  in
  check Alcotest.int "only F2 fits 200 gates" 0b10000 mask

let feasibility_mask_memory () =
  (* cpu capacity in the small library is 4 banks x 16 MB *)
  let fits =
    Clustering.feasibility_mask lib ~gates:0 ~pins:0
      ~memory_bytes:(16 * 1024 * 1024) ~task_mask:0b00011
  in
  let too_big =
    Clustering.feasibility_mask lib ~gates:0 ~pins:0
      ~memory_bytes:(65 * 1024 * 1024) ~task_mask:0b00011
  in
  check Alcotest.int "16MB fits" 0b00011 fits;
  check Alcotest.int "65MB does not" 0 too_big

let clustering_total () =
  let spec, _ = Helpers.sw_chain 6 in
  let c = Clustering.run spec lib in
  (* every task belongs to exactly one cluster *)
  Array.iter
    (fun cid -> check Alcotest.bool "assigned" true (cid >= 0))
    c.Clustering.of_task;
  let members =
    Array.fold_left
      (fun acc (cl : Clustering.cluster) -> acc + List.length cl.members)
      0 c.Clustering.clusters
  in
  check Alcotest.int "partition" (Spec.n_tasks spec) members

let clustering_chains_merge () =
  (* A pure software chain should collapse into few clusters. *)
  let spec, _ = Helpers.sw_chain 6 in
  let c = Clustering.run spec lib in
  check Alcotest.bool "chain clustered" true (Array.length c.Clustering.clusters <= 2)

let clustering_max_size () =
  let spec, _ = Helpers.sw_chain 12 in
  let c = Clustering.run ~max_cluster_size:3 spec lib in
  Array.iter
    (fun (cl : Clustering.cluster) ->
      check Alcotest.bool "size cap" true (List.length cl.members <= 3))
    c.Clustering.clusters

let clustering_same_graph () =
  let spec, _, _ = Helpers.two_hw_graphs ~overlap:false () in
  let c = Clustering.run spec lib in
  Array.iter
    (fun (cl : Clustering.cluster) ->
      List.iter
        (fun m ->
          check Alcotest.int "member graph" cl.graph (Spec.task spec m).Task.graph)
        cl.members)
    c.Clustering.clusters

let clustering_respects_exclusion () =
  let b = Spec.Builder.create () in
  let g = Spec.Builder.add_graph b ~name:"x" ~period:10_000 ~deadline:8_000 () in
  let t0 =
    Spec.Builder.add_task b ~graph:g ~name:"a" ~exec:(Helpers.cpu_exec 100) ()
  in
  let t1 =
    Spec.Builder.add_task b ~graph:g ~name:"b" ~exec:(Helpers.cpu_exec 100)
      ~exclusion:[ t0 ] ()
  in
  Spec.Builder.add_edge b ~src:t0 ~dst:t1 ~bytes:8;
  let spec = Spec.Builder.finish_exn b ~name:"excl" () in
  let c = Clustering.run spec lib in
  check Alcotest.bool "excluded pair split" true
    (c.Clustering.of_task.(t0) <> c.Clustering.of_task.(t1))

let clustering_nonempty_masks () =
  let spec, _, _ = Helpers.two_hw_graphs ~overlap:true () in
  let c = Clustering.run spec lib in
  Array.iter
    (fun (cl : Clustering.cluster) ->
      check Alcotest.bool "feasible somewhere" true (cl.feasible_mask <> 0))
    c.Clustering.clusters

let singletons_shape () =
  let spec, _ = Helpers.sw_chain 5 in
  let c = Clustering.singletons spec lib in
  check Alcotest.int "one task per cluster" 5 (Array.length c.Clustering.clusters);
  Array.iteri
    (fun i cid -> check Alcotest.int "identity" i cid)
    c.Clustering.of_task

let cluster_priority_is_max () =
  let spec, _ = Helpers.sw_chain 4 in
  let c = Clustering.run spec lib in
  let levels =
    Priority.compute spec ~exec_time:Priority.unallocated_exec ~comm_time:(fun _ -> 0)
  in
  Array.iter
    (fun (cl : Clustering.cluster) ->
      let expect = List.fold_left (fun acc m -> max acc levels.(m)) min_int cl.members in
      check Alcotest.int "max member" expect
        (Clustering.cluster_priority c levels cl.cid))
    c.Clustering.clusters

let suite =
  [
    Alcotest.test_case "priorities decrease downstream" `Quick priorities_chain;
    Alcotest.test_case "deadline raises priority" `Quick priorities_deadline_effect;
    Alcotest.test_case "sink level formula" `Quick priorities_sink_formula;
    Alcotest.test_case "task mask" `Quick task_mask_matches_exec;
    Alcotest.test_case "feasibility mask capacity" `Quick feasibility_mask_capacity;
    Alcotest.test_case "feasibility mask memory" `Quick feasibility_mask_memory;
    Alcotest.test_case "clustering is a partition" `Quick clustering_total;
    Alcotest.test_case "chains merge" `Quick clustering_chains_merge;
    Alcotest.test_case "max cluster size" `Quick clustering_max_size;
    Alcotest.test_case "clusters stay in one graph" `Quick clustering_same_graph;
    Alcotest.test_case "exclusion splits clusters" `Quick clustering_respects_exclusion;
    Alcotest.test_case "masks nonempty" `Quick clustering_nonempty_masks;
    Alcotest.test_case "singletons" `Quick singletons_shape;
    Alcotest.test_case "cluster priority = max member" `Quick cluster_priority_is_max;
  ]
