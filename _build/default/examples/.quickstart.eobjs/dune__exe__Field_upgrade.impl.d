examples/field_upgrade.ml: Array Crusade Crusade_resource Crusade_taskgraph Crusade_workloads Format List String
