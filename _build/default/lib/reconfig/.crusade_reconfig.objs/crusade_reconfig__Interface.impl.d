lib/reconfig/interface.ml: Crusade_alloc Crusade_resource Crusade_taskgraph Crusade_util List Printf
