lib/reconfig/merge.mli: Crusade_alloc Crusade_cluster Crusade_sched Crusade_taskgraph
