type t = { mutable busy : (int * int) list }
(* Sorted by start, disjoint, non-adjacent. *)

let create () = { busy = [] }

let busy t = t.busy

let busy_until t =
  let rec last = function [] -> 0 | [ (_, stop) ] -> stop | _ :: rest -> last rest in
  last t.busy

let merge_insert busy (start, stop) =
  let rec go acc = function
    | [] -> List.rev ((start, stop) :: acc)
    | (s, e) :: rest when e < start -> go ((s, e) :: acc) rest
    | rest ->
        (* [rest] begins at or after our interval; coalesce adjacency. *)
        let rec absorb start stop = function
          | (s, e) :: more when s <= stop -> absorb (min s start) (max e stop) more
          | more -> ((start, stop), more)
        in
        let (start, stop), more = absorb start stop rest in
        List.rev_append acc ((start, stop) :: more)
  in
  go [] busy

(* Find the earliest gap of length [duration] starting at or after
   [ready]. *)
let find_gap busy ~ready ~duration =
  let rec go t = function
    | [] -> t
    | (s, e) :: rest ->
        if t + duration <= s then t else go (max t e) rest
  in
  go ready busy

let insert t ~ready ~duration =
  let start = find_gap t.busy ~ready ~duration in
  let finish = start + duration in
  if duration > 0 then t.busy <- merge_insert t.busy (start, finish);
  (start, finish)

let insert_preemptible t ~ready ~duration ~max_chunks ~chunk_penalty =
  if duration <= 0 then begin
    let start = find_gap t.busy ~ready ~duration:0 in
    (start, start)
  end
  else begin
    let min_chunk = max 1 (duration / 4) in
    (* Walk the gaps from [ready], filling as much work as allowed. *)
    let rec fill acc_busy chunks placed t remaining first_start = function
      | _ when chunks = max_chunks - 1 || remaining <= 0 ->
          (acc_busy, chunks, placed, t, remaining, first_start)
      | [] -> (acc_busy, chunks, placed, t, remaining, first_start)
      | (s, e) :: rest ->
          if t >= s then fill acc_busy chunks placed (max t e) remaining first_start rest
          else begin
            let gap = s - t in
            if gap >= remaining then
              (* Everything fits here: done. *)
              (acc_busy, chunks, placed @ [ (t, t + remaining) ], t + remaining, 0,
               (match first_start with None -> Some t | some -> some))
            else if gap >= min_chunk then begin
              (* Partial chunk; the resident work at [s] preempts us. *)
              let placed = placed @ [ (t, t + gap) ] in
              let remaining = remaining - gap + chunk_penalty in
              fill acc_busy (chunks + 1) placed e remaining
                (match first_start with None -> Some t | some -> some)
                rest
            end
            else fill acc_busy chunks placed e remaining first_start rest
          end
    in
    let _, _, placed, cursor, remaining, first_start =
      fill t.busy 0 [] ready duration None t.busy
    in
    let placed, finish, first_start =
      if remaining > 0 then begin
        (* Tail (or whole) of the work runs after the scanned gaps. *)
        let start = find_gap t.busy ~ready:cursor ~duration:remaining in
        ( placed @ [ (start, start + remaining) ],
          start + remaining,
          match first_start with None -> Some start | some -> some )
      end
      else (placed, cursor, first_start)
    in
    List.iter (fun iv -> t.busy <- merge_insert t.busy iv) placed;
    (Option.value ~default:finish first_start, finish)
  end

let probe t ~ready ~duration =
  let start = find_gap t.busy ~ready ~duration in
  (start, start + duration)
