let default_eruf = 0.70
let default_epuf = 0.80

type result = Increase_pct of float | Unroutable

let fillers_for rng ~target_pfus ~circuit_pfus =
  let budget = max 0 (target_pfus - circuit_pfus) in
  let rec build acc remaining idx =
    if remaining <= 0 then List.rev acc
    else begin
      let size = min remaining (Crusade_util.Rng.int_in rng 6 14) in
      if size < 2 then List.rev acc
      else begin
        let filler =
          Circuit.generate rng ~name:(Printf.sprintf "filler%d" idx) ~pfus:size ~pins:4
        in
        build (filler :: acc) (remaining - size) (idx + 1)
      end
    end
  in
  build [] budget 0

(* The circuit under test occupies roughly 35% of its host device; the
   remaining capacity is what the ERUF sweep fills with other functions. *)
let host_device (circuit : Circuit.t) =
  let side =
    int_of_float (ceil (sqrt (float_of_int circuit.pfu_count /. 0.35)))
  in
  let side = max side 6 in
  (* Real fabrics widen channels with array size; without this the model
     over-congests large devices at every utilization. *)
  let wires = Crusade_util.Arith.clamp ~lo:4 ~hi:5 (side * 2 / 5) in
  Device.make ~rows:side ~cols:side ~wires_per_channel:wires ~io_pins:(3 * side) ()

let one_sample (d : Device.t) (circuit : Circuit.t) ~eruf ~epuf ~seed =
  let rng = Crusade_util.Rng.create (seed * 7919) in
  let target_pfus = int_of_float (eruf *. float_of_int (Device.pfus d)) in
  let fillers = fillers_for rng ~target_pfus ~circuit_pfus:circuit.Circuit.pfu_count in
  let pin_nets = int_of_float (epuf *. float_of_int d.io_pins) in
  Fabric.place_and_route d ~fillers ~circuit ~extra_pin_nets:pin_nets ~seed

let measure ?device ?(samples = 15) circuit ~eruf ~epuf ~seed =
  let device = match device with Some d -> d | None -> host_device circuit in
  let increases = ref [] and ratios = ref [] and failures = ref 0 in
  for k = 0 to samples - 1 do
    let sample_seed = seed + (1000 * k) in
    let baseline =
      one_sample device circuit ~eruf:default_eruf ~epuf:default_epuf ~seed:sample_seed
    in
    let measured = one_sample device circuit ~eruf ~epuf ~seed:sample_seed in
    match (baseline, measured) with
    | ( Fabric.Routed { critical_delay_ns = base; _ },
        Fabric.Routed { critical_delay_ns = got; overflow_ratio } )
      when base > 0.0 ->
        (* Signed per-sample difference; clamping happens on the mean so
           paired placement noise cancels instead of biasing upward. *)
        let pct = (got -. base) /. base *. 100.0 in
        increases := pct :: !increases;
        ratios := overflow_ratio :: !ratios
    | _, Fabric.Unroutable | Fabric.Unroutable, _ -> incr failures
    | Fabric.Routed _, Fabric.Routed _ -> incr failures
  done;
  ignore !ratios;
  if !failures * 2 > samples then Unroutable
  else begin
    match !increases with
    | [] -> Unroutable
    | xs -> Increase_pct (max 0.0 (Crusade_util.Stats.mean xs))
  end

let one_sample_for_debug circuit ~eruf ~epuf ~seed =
  let device = host_device circuit in
  match one_sample device circuit ~eruf ~epuf ~seed with
  | Fabric.Routed { overflow_ratio; _ } -> Some overflow_ratio
  | Fabric.Unroutable -> None
