module Spec = Crusade_taskgraph.Spec
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Trace = Crusade_util.Trace

(* The policy layer over [Schedule.Replay]: keep the latest recording of
   a full scheduler run alive, and when the next candidate shares its
   spec/clustering, diff the candidate against the recording's snapshot
   and replay the provably identical prefix instead of rebuilding the
   timelines from scratch.  Candidate evaluation perturbs one cluster at
   a time, so successive architectures mostly agree and the replayable
   prefix is usually large.

   The slot is a single [Atomic]: recordings are immutable once
   captured, so concurrent evaluation domains may read one slot safely,
   and a lost race on publication merely keeps an equally valid
   recording. *)
type t = {
  slot : Schedule.Replay.recording option Atomic.t;
  trace : Trace.t option;
  replay_counter : Trace.Counter.t;
  rebuild_counter : Trace.Counter.t;
}

let create ?trace ?metrics () =
  let counter name =
    match metrics with
    | Some m -> Trace.Metrics.counter m name
    | None -> Trace.Counter.make ()
  in
  {
    slot = Atomic.make None;
    trace;
    replay_counter = counter "eval.replays";
    rebuild_counter = counter "eval.rebuilds";
  }

let replays t = Trace.Counter.get t.replay_counter
let rebuilds t = Trace.Counter.get t.rebuild_counter

let record t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  Trace.Counter.incr t.rebuild_counter;
  match
    Trace.span t.trace "schedule.run" (fun () ->
        Schedule.Replay.record ~copy_cap spec clustering arch)
  with
  | Error _ as e -> e  (* keep the previous recording *)
  | Ok (sched, recording) ->
      Atomic.set t.slot (Some recording);
      Ok sched

(* Refresh the replay basis without materializing a schedule: the
   synthesis loops call this at commit points, where the schedule
   itself would be discarded anyway. *)
let refresh t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  Trace.Counter.incr t.rebuild_counter;
  match
    Trace.span t.trace "schedule.run" (fun () ->
        Schedule.Replay.record_only ~copy_cap spec clustering arch)
  with
  | Error _ -> ()  (* keep the previous recording *)
  | Ok recording -> Atomic.set t.slot (Some recording)

(* A recording never stops being a valid diff basis (it is immutable and
   the diff is computed against the candidate), so evaluation always
   replays when a compatible recording exists — even a zero-length
   prefix is a win, because the verdict-only run skips materialization,
   activity tracking and recording overhead.  Freshness of the basis
   only affects the prefix length; the synthesis loops refresh it with a
   full [record] run at each commit point (every materializing
   [Memo.run] goes through [record]). *)
let evaluate t ?(copy_cap = Schedule.default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  match Atomic.get t.slot with
  | Some r when Schedule.Replay.compatible r ~copy_cap spec clustering ->
      let prep = Schedule.Replay.prepare r spec clustering arch in
      Trace.Counter.incr t.replay_counter;
      Trace.instant t.trace "eval.replay";
      `Replayed (Schedule.Replay.replay_verdict prep)
  | Some _ | None -> `Ran (record t ~copy_cap spec clustering arch)
