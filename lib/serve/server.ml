module C = Crusade.Crusade_core
module Dsl = Crusade_taskgraph.Dsl
module Pool = Crusade_util.Pool
module Jobqueue = Crusade_util.Jobqueue
module Trace = Crusade_util.Trace

type config = {
  max_in_flight : int;
  queue_cap : int;
  default_jobs : int;
  lib : Crusade_resource.Library.t;
  pre_run : (string -> unit) option;
}

let default_config () =
  {
    max_in_flight = 2;
    queue_cap = 64;
    default_jobs = Pool.default_jobs ();
    lib = Crusade_resource.Library.stock ();
    pre_run = None;
  }

(* Everything a job needs to run, resolved and validated at submission
   time so POST can reject bad requests with a 400 instead of failing
   later on a worker domain. *)
type job_request = {
  spec : Crusade_taskgraph.Spec.t;
  reconfig : bool;
  copy_cap : int option;
  eval_window : int option;
  jobs : int;
  portfolio_n : int;  (* resolved: explicit --portfolio > quality > 1 *)
  budget_ms : int option;
  audit : bool;
  change : C.Resynth.change option;
}

type t = {
  cfg : config;
  store : Store.t;
  cache : Cache.t;
  queue : Store.job Jobqueue.t;
  reqs : (string, job_request) Hashtbl.t;  (* job id -> request, under [lock] *)
  lock : Mutex.t;
  mutable in_flight : int;
  metrics : Trace.Metrics.t;
  mutable listener : Unix.file_descr option;
  mutable stopped : bool;
}

let create cfg =
  Pool.warm (Pool.global ()) cfg.max_in_flight;
  {
    cfg;
    store = Store.create ();
    cache = Cache.create ();
    queue = Jobqueue.create ~cap:cfg.queue_cap ();
    reqs = Hashtbl.create 64;
    lock = Mutex.create ();
    in_flight = 0;
    metrics = Trace.Metrics.create ();
    listener = None;
    stopped = false;
  }

let bump t name = Trace.Counter.incr (Trace.Metrics.counter t.metrics name)

(* ---- request parsing ---- *)

let obj_keys = function Json.Obj kvs -> List.map fst kvs | _ -> []

let check_keys what allowed json =
  match
    List.find_opt (fun k -> not (List.mem k allowed)) (obj_keys json)
  with
  | Some k -> Error (Printf.sprintf "%s: unknown key %S" what k)
  | None -> Ok ()

let want what conv field json =
  match Json.member field json with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "%s: bad %S" what field))

let ( let* ) = Result.bind

(* The CLI's --change-json shape, read from the request's [resynth]
   member. *)
let parse_change json =
  let* () =
    check_keys "resynth" [ "kind"; "graphs"; "pe"; "percent"; "drift" ] json
  in
  let* kind =
    match Json.member "kind" json with
    | Some (Json.Str k) -> Ok k
    | Some _ | None -> Error "resynth: missing \"kind\""
  in
  let* graphs =
    want "resynth"
      (function
        | Json.Arr vs ->
            List.fold_left
              (fun acc v ->
                match (acc, Json.int v) with
                | Some gs, Some g -> Some (g :: gs)
                | _ -> None)
              (Some []) vs
            |> Option.map List.rev
        | _ -> None)
      "graphs" json
  in
  let need_graphs k =
    match graphs with
    | Some (_ :: _ as gs) -> Ok (k gs)
    | Some [] | None ->
        Error (Printf.sprintf "resynth: %S needs \"graphs\"" kind)
  in
  match kind with
  | "arrival" | "graph-arrival" -> need_graphs (fun gs -> C.Resynth.Graph_arrival gs)
  | "departure" | "graph-departure" ->
      need_graphs (fun gs -> C.Resynth.Graph_departure gs)
  | "upgrade" -> need_graphs (fun gs -> C.Resynth.Upgrade gs)
  | "pe-fail" | "pe-failure" -> (
      let* pe = want "resynth" Json.int "pe" json in
      match pe with
      | Some p -> Ok (C.Resynth.Pe_failure p)
      | None -> Error "resynth: \"pe-fail\" needs \"pe\"")
  | "drift" -> (
      let* p1 = want "resynth" Json.int "percent" json in
      let* p2 = want "resynth" Json.int "drift" json in
      match (p1, p2) with
      | Some p, _ | None, Some p -> Ok (C.Resynth.Exec_drift p)
      | None, None -> Error "resynth: \"drift\" needs \"percent\"")
  | other -> Error (Printf.sprintf "resynth: unknown kind %S" other)

let parse_request cfg body =
  let* json =
    Result.map_error (fun m -> "bad JSON: " ^ m) (Json.parse body)
  in
  let* () = check_keys "body" [ "spec"; "options"; "resynth" ] json in
  let* spec_text =
    match Json.member "spec" json with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error "\"spec\" must be a string"
    | None -> Error "missing \"spec\""
  in
  let* spec = Result.map_error (fun m -> "spec: " ^ m) (Dsl.parse spec_text) in
  let opts = Option.value (Json.member "options" json) ~default:(Json.Obj []) in
  let* () =
    check_keys "options"
      [
        "reconfig"; "jobs"; "portfolio"; "quality"; "budget_ms"; "audit";
        "copy_cap"; "eval_window";
      ]
      opts
  in
  let pos what v =
    match v with
    | Some n when n <= 0 -> Error (Printf.sprintf "options: %s must be positive" what)
    | _ -> Ok v
  in
  let* reconfig = want "options" Json.bool "reconfig" opts in
  let* audit = want "options" Json.bool "audit" opts in
  let* jobs = Result.bind (want "options" Json.int "jobs" opts) (pos "jobs") in
  let* portfolio = want "options" Json.int "portfolio" opts in
  let* () =
    match portfolio with
    | Some n when n < 0 -> Error "options: portfolio must be non-negative"
    | _ -> Ok ()
  in
  let* quality =
    want "options"
      (fun v ->
        match Json.str v with
        | Some ("fast" | "balanced" | "max") as q -> q
        | _ -> None)
      "quality" opts
  in
  let* budget_ms =
    Result.bind (want "options" Json.int "budget_ms" opts) (pos "budget_ms")
  in
  let* copy_cap =
    Result.bind (want "options" Json.int "copy_cap" opts) (pos "copy_cap")
  in
  let* eval_window =
    Result.bind (want "options" Json.int "eval_window" opts) (pos "eval_window")
  in
  let* change =
    match Json.member "resynth" json with
    | None -> Ok None
    | Some j -> Result.map Option.some (parse_change j)
  in
  (* Same precedence as the CLI: an explicit portfolio count wins over
     the quality preset; 0 means one trajectory per available domain,
     resolved here so the cache key is explicit about it. *)
  let n =
    match (portfolio, quality) with
    | Some n, _ -> n
    | None, Some "fast" -> 1
    | None, Some "balanced" -> 4
    | None, Some "max" -> 0
    | None, (Some _ | None) -> 1
  in
  let portfolio_n = if n = 0 then Pool.size (Pool.global ()) else n in
  Ok
    ( Dsl.print spec,
      {
        spec;
        reconfig = Option.value reconfig ~default:true;
        copy_cap;
        eval_window;
        jobs = Option.value jobs ~default:cfg.default_jobs;
        portfolio_n;
        budget_ms;
        audit = Option.value audit ~default:false;
        change;
      } )

(* The half of the request that determines the result.  [jobs] is
   deliberately absent: synthesis results are bit-identical across jobs
   counts, so runs differing only in parallelism share a cache line. *)
let options_canonical req =
  String.concat ";"
    [
      Printf.sprintf "audit=%b" req.audit;
      Printf.sprintf "budget_ms=%s"
        (match req.budget_ms with Some v -> string_of_int v | None -> "none");
      Printf.sprintf "change=%s"
        (match req.change with
        | Some c -> C.Resynth.describe_change c
        | None -> "none");
      Printf.sprintf "copy_cap=%d"
        (Option.value req.copy_cap ~default:C.default_options.C.copy_cap);
      Printf.sprintf "eval_window=%d"
        (Option.value req.eval_window ~default:C.default_options.C.eval_window);
      Printf.sprintf "portfolio=%d" req.portfolio_n;
      Printf.sprintf "reconfig=%b" req.reconfig;
    ]

(* ---- job execution (on pool worker domains) ---- *)

let core_options req ~trace ~cancel =
  let o =
    {
      C.default_options with
      C.dynamic_reconfiguration = req.reconfig;
      C.jobs = req.jobs;
      C.trace;
      C.cancel;
    }
  in
  let o =
    match req.copy_cap with Some v -> { o with C.copy_cap = v } | None -> o
  in
  match req.eval_window with
  | Some v -> { o with C.eval_window = v }
  | None -> o

let line_of_view (v : Trace.view) =
  let args =
    List.map
      (fun (k, a) ->
        ( k,
          match a with
          | Trace.Str s -> Json.Str s
          | Trace.Num n -> Json.Num (float_of_int n) ))
      v.Trace.v_args
  in
  Json.to_string
    (Json.Obj
       [
         ("phase", Json.Str v.Trace.v_phase);
         ("name", Json.Str v.Trace.v_name);
         ("ts", Json.Num v.Trace.v_ts);
         ("tid", Json.Num (float_of_int v.Trace.v_tid));
         ("args", Json.Obj args);
       ])

(* Stream every trace event into the job's NDJSON log, and fold closed
   spans into the server-wide per-phase latency counters.  The hook runs
   under the sink's lock; it only takes the store and metrics locks,
   neither of which ever takes a sink lock back. *)
let attach_events t job sink =
  let open_spans : (int * string, float list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  Trace.on_event sink (fun v ->
      Store.append_event t.store job (line_of_view v);
      let key = (v.Trace.v_tid, v.Trace.v_name) in
      match v.Trace.v_phase with
      | "B" -> (
          match Hashtbl.find_opt open_spans key with
          | Some stack -> stack := v.Trace.v_ts :: !stack
          | None -> Hashtbl.add open_spans key (ref [ v.Trace.v_ts ]))
      | "E" -> (
          match Hashtbl.find_opt open_spans key with
          | Some ({ contents = start :: rest } as stack) ->
              stack := rest;
              Trace.Counter.add
                (Trace.Metrics.counter t.metrics
                   ("phase_us/" ^ v.Trace.v_name))
                (int_of_float (v.Trace.v_ts -. start))
          | Some { contents = [] } | None -> ())
      | _ -> ())

let synth_result req options spec lib =
  if req.portfolio_n = 1 && req.budget_ms = None then
    C.synthesize ~options spec lib
  else
    match
      C.Portfolio.run ?budget_ms:req.budget_ms ~n:req.portfolio_n ~options
        ~flow:(fun o -> C.synthesize ~options:o spec lib)
        ~cost:(fun (r : C.result) -> r.C.cost)
        ~met:(fun (r : C.result) -> r.C.deadlines_met)
        ()
    with
    | Ok o -> Ok o.C.Portfolio.best
    | Error _ as e -> e

let resynth_result options spec lib change =
  (* Arrivals/upgrades are deployed without the arriving graphs; every
     other change starts from the full system (the CLI's convention). *)
  let deployed_include =
    match change with
    | C.Resynth.Graph_arrival gs | C.Resynth.Upgrade gs ->
        fun g -> not (List.mem g gs)
    | C.Resynth.Graph_departure _ | C.Resynth.Pe_failure _
    | C.Resynth.Exec_drift _ ->
        fun _ -> true
  in
  match C.synthesize ~options ~include_graph:deployed_include spec lib with
  | Error msg -> Error ("deployed synthesis: " ^ msg)
  | Ok deployed -> C.Resynth.apply ~options deployed change

let resynth_payload (rep : C.Resynth.report) =
  match rep.C.Resynth.verdict with
  | C.Resynth.Images_only { result; added_images } ->
      Printf.sprintf
        "{\"schema\":\"crusade-resynth-1\",\"verdict\":\"images-only\",\"added_images\":%d,\"result\":%s}"
        added_images (C.result_json result)
  | C.Resynth.Needs_hardware { result; added_pes; added_cost } ->
      Printf.sprintf
        "{\"schema\":\"crusade-resynth-1\",\"verdict\":\"needs-hardware\",\"added_pes\":%d,\"added_cost\":%.17g,\"result\":%s}"
        added_pes added_cost (C.result_json result)
  | C.Resynth.Infeasible ->
      "{\"schema\":\"crusade-resynth-1\",\"verdict\":\"infeasible\",\"result\":null}"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rec pump t =
  let claimed =
    locked t (fun () ->
        if t.in_flight >= t.cfg.max_in_flight then None
        else
          match Jobqueue.try_pop t.queue with
          | Some job ->
              t.in_flight <- t.in_flight + 1;
              Some job
          | None -> None)
  in
  match claimed with
  | None -> ()
  | Some job ->
      Pool.submit (Pool.global ()) (fun () -> run_job t job);
      pump t

and release_slot t =
  locked t (fun () -> t.in_flight <- t.in_flight - 1);
  pump t

and run_job t job =
  Fun.protect ~finally:(fun () -> release_slot t) @@ fun () ->
  ignore (Store.transition t.store job Store.Running);
  (match t.cfg.pre_run with
  | Some f -> ( try f job.Store.id with _ -> ())
  | None -> ());
  if Atomic.get job.Store.cancel_requested then begin
    ignore (Store.transition t.store job Store.Cancelled);
    bump t "jobs_cancelled"
  end
  else begin
    let req = locked t (fun () -> Hashtbl.find t.reqs job.Store.id) in
    bump t "synth_runs";
    let sink = Trace.create () in
    attach_events t job sink;
    let cancel = Some (fun () -> Atomic.get job.Store.cancel_requested) in
    let options = core_options req ~trace:(Some sink) ~cancel in
    let fail msg =
      job.Store.error <- Some msg;
      ignore (Store.transition t.store job Store.Failed);
      bump t "jobs_failed"
    in
    match
      match req.change with
      | None ->
          Result.map
            (fun r -> `Plain r)
            (synth_result req options req.spec t.cfg.lib)
      | Some change ->
          Result.map
            (fun rep -> `Resynth rep)
            (resynth_result options req.spec t.cfg.lib change)
    with
    | exception C.Cancelled ->
        ignore (Store.transition t.store job Store.Cancelled);
        bump t "jobs_cancelled"
    | exception e -> fail ("synthesis raised: " ^ Printexc.to_string e)
    | Error msg -> fail msg
    | Ok outcome -> (
        let violations =
          if not req.audit then []
          else
            match outcome with
            | `Plain r -> C.audit r
            | `Resynth rep -> C.Resynth.audit_report rep
        in
        match violations with
        | _ :: _ ->
            fail (Printf.sprintf "audit: %d violation(s)" (List.length violations))
        | [] ->
            let payload =
              match outcome with
              | `Plain r -> C.result_json r
              | `Resynth rep -> resynth_payload rep
            in
            job.Store.payload <- Some payload;
            if job.Store.cacheable then
              Cache.add t.cache job.Store.cache_key payload;
            ignore (Store.transition t.store job Store.Done);
            bump t "jobs_completed")
  end

(* ---- HTTP handlers ---- *)

let err_body msg = Printf.sprintf "{\"error\":\"%s\"}" (Json.escape msg)
let not_found () = Http.response 404 (err_body "not found")

let submit t body =
  if t.stopped then Http.response 503 (err_body "server stopping")
  else
    match parse_request t.cfg body with
    | Error msg -> Http.response 400 (err_body msg)
    | Ok (spec_canonical, req) -> (
        let cache_key =
          Cache.key ~spec_canonical ~options_canonical:(options_canonical req)
        in
        (* Anytime (budgeted) results are time-dependent, never cached. *)
        let cacheable = req.budget_ms = None in
        let born id state cache_hit =
          Printf.sprintf
            "{\"id\":\"%s\",\"state\":\"%s\",\"cache_hit\":%b,\"cache_key\":\"%s\"}"
            id (Store.state_name state) cache_hit cache_key
        in
        let cached =
          if cacheable then Cache.find t.cache cache_key else None
        in
        match cached with
        | Some payload ->
            (* Serve without running: the payload is byte-identical to a
               fresh synthesis by construction. *)
            let job =
              Store.add t.store ~spec_text:spec_canonical ~cache_key ~cacheable
            in
            job.Store.cache_hit <- true;
            job.Store.payload <- Some payload;
            ignore (Store.transition t.store job Store.Done);
            bump t "cache_served";
            Http.response 201 (born job.Store.id Store.Done true)
        | None ->
            let job =
              Store.add t.store ~spec_text:spec_canonical ~cache_key ~cacheable
            in
            locked t (fun () -> Hashtbl.replace t.reqs job.Store.id req);
            if Jobqueue.push t.queue job then begin
              bump t "jobs_submitted";
              pump t;
              Http.response 201 (born job.Store.id Store.Queued false)
            end
            else begin
              ignore (Store.transition t.store job Store.Cancelled);
              Http.response 503 (err_body "job queue full")
            end)

let status_json t job =
  let log = Store.log_of t.store job in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str job.Store.id);
         ("state", Json.Str (Store.state_name job.Store.state));
         ("cache_hit", Json.Bool job.Store.cache_hit);
         ("cacheable", Json.Bool job.Store.cacheable);
         ("cache_key", Json.Str job.Store.cache_key);
         ( "error",
           match job.Store.error with
           | Some e -> Json.Str e
           | None -> Json.Null );
         ("n_events", Json.Num (float_of_int job.Store.n_events));
         ("has_result", Json.Bool (job.Store.payload <> None));
         ( "log",
           Json.Arr
             (List.map
                (fun (ts, s) ->
                  Json.Obj
                    [
                      ("state", Json.Str (Store.state_name s));
                      ("t", Json.Num ts);
                    ])
                log) );
       ])

let job_result job =
  match (job.Store.state, job.Store.payload) with
  | Store.Done, Some payload -> Http.response 200 payload
  | Store.Failed, _ ->
      Http.response 409
        (err_body
           ("failed: "
           ^ Option.value job.Store.error ~default:"unknown error"))
  | state, _ ->
      Http.response 409
        (err_body ("no result yet: job is " ^ Store.state_name state))

let job_events t req job =
  let since =
    match Option.bind (Http.query_param req "since") int_of_string_opt with
    | Some n when n >= 0 -> n
    | Some _ | None -> 0
  in
  let lines, _total = Store.events_since t.store job since in
  Http.response ~content_type:"application/x-ndjson" 200
    (String.concat "" (List.map (fun l -> l ^ "\n") lines))

let cancel t job =
  match job.Store.state with
  | Store.Done | Store.Failed | Store.Cancelled ->
      Http.response 409
        (err_body ("already " ^ Store.state_name job.Store.state))
  | Store.Queued ->
      if Jobqueue.remove t.queue (fun j -> j == job) then begin
        ignore (Store.transition t.store job Store.Cancelled);
        bump t "jobs_cancelled";
        Http.response 200 "{\"cancelled\":true,\"was\":\"queued\"}"
      end
      else begin
        (* Already claimed by the pump: signal the run instead. *)
        Atomic.set job.Store.cancel_requested true;
        Http.response 202 "{\"cancelling\":true}"
      end
  | Store.Running ->
      Atomic.set job.Store.cancel_requested true;
      Http.response 202 "{\"cancelling\":true}"

let stats_json t =
  let hits, misses, entries = Cache.stats t.cache in
  let in_flight = locked t (fun () -> t.in_flight) in
  let counters, phases =
    List.partition
      (fun (name, _) ->
        not (String.length name > 9 && String.sub name 0 9 = "phase_us/"))
      (Trace.Metrics.to_alist t.metrics)
  in
  let obj_of kvs strip =
    Json.Obj
      (List.map
         (fun (name, v) ->
           let name =
             if strip then String.sub name 9 (String.length name - 9)
             else name
           in
           (name, Json.Num (float_of_int v)))
         kvs)
  in
  Json.to_string
    (Json.Obj
       [
         ("queue_depth", Json.Num (float_of_int (Jobqueue.length t.queue)));
         ("in_flight", Json.Num (float_of_int in_flight));
         ("max_in_flight", Json.Num (float_of_int t.cfg.max_in_flight));
         ( "jobs",
           Json.Obj
             (List.map
                (fun s ->
                  ( Store.state_name s,
                    Json.Num (float_of_int (Store.count_in t.store s)) ))
                [ Store.Queued; Store.Running; Store.Done; Store.Failed;
                  Store.Cancelled ]) );
         ( "cache",
           Json.Obj
             [
               ("hits", Json.Num (float_of_int hits));
               ("misses", Json.Num (float_of_int misses));
               ("entries", Json.Num (float_of_int entries));
             ] );
         ("counters", obj_of counters false);
         ("phases_us", obj_of phases true);
       ])

let handle t (req : Http.request) =
  let segments =
    String.split_on_char '/' req.Http.path |> List.filter (fun s -> s <> "")
  in
  let with_job id k =
    match Store.find t.store id with None -> not_found () | Some job -> k job
  in
  match (req.Http.meth, segments) with
  | "GET", [ "healthz" ] -> Http.response 200 "{\"ok\":true}"
  | "GET", [ "stats" ] -> Http.response 200 (stats_json t)
  | "POST", [ "jobs" ] -> submit t req.Http.body
  | "GET", [ "jobs"; id ] ->
      with_job id (fun job -> Http.response 200 (status_json t job))
  | "GET", [ "jobs"; id; "result" ] -> with_job id job_result
  | "GET", [ "jobs"; id; "events" ] -> with_job id (job_events t req)
  | "DELETE", [ "jobs"; id ] -> with_job id (cancel t)
  | ("GET" | "POST" | "DELETE" | "PUT" | "HEAD" | "PATCH"), _ -> not_found ()
  | _, _ -> Http.response 405 (err_body "method not allowed")

(* ---- sockets ---- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let handle_conn t fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let conn = Http.conn_of_fd fd in
  let rec loop () =
    match Http.read_request conn with
    | Error (Http.Eof | Http.Truncated) -> ()
    | Error (Http.Too_large what) ->
        write_all fd
          (Http.to_bytes ~close:true (Http.response 413 (err_body what)))
    | Error (Http.Bad msg) ->
        write_all fd
          (Http.to_bytes ~close:true (Http.response 400 (err_body msg)))
    | Ok req ->
        let resp =
          try handle t req
          with e -> Http.response 500 (err_body (Printexc.to_string e))
        in
        let close = Http.wants_close req in
        write_all fd (Http.to_bytes ~close resp);
        if not close then loop ()
  in
  try loop () with Unix.Unix_error _ -> ()

let listen ?(addr = "127.0.0.1") ~port t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd 64;
  let actual =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  t.listener <- Some fd;
  (fd, actual)

let serve t fd =
  let rec loop () =
    match Unix.accept fd with
    | cfd, _ ->
        ignore (Thread.create (fun () -> handle_conn t cfd) ());
        loop ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> if not t.stopped then () else ()
  in
  loop ()

let start ?addr ~port t =
  let fd, actual = listen ?addr ~port t in
  ignore (Thread.create (fun () -> serve t fd) ());
  actual

let stop t =
  t.stopped <- true;
  (match t.listener with
  | Some fd ->
      t.listener <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Jobqueue.close t.queue;
  (* Queued jobs never run once the queue is closed; cancel them so
     their state is terminal and auditable. *)
  let rec drain () =
    match Jobqueue.try_pop t.queue with
    | Some job ->
        ignore (Store.transition t.store job Store.Cancelled);
        bump t "jobs_cancelled";
        drain ()
    | None -> ()
  in
  drain ()
