(** Growable vector (amortized O(1) push), used for the mutable PE and
    link tables of an architecture under construction. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element (the inverse of {!push}, used by
    the architecture undo journal).
    @raise Invalid_argument on an empty vector. *)

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val map_copy : ('a -> 'a) -> 'a t -> 'a t
(** Fresh vector whose elements are [f] of the originals; used to deep
    copy architectures in the allocation inner loop. *)
