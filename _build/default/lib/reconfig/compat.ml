module Spec = Crusade_taskgraph.Spec
module Graph = Crusade_taskgraph.Graph
module Schedule = Crusade_sched.Schedule
module Intervals = Crusade_util.Intervals

let matrix (spec : Spec.t) (schedule : Schedule.t) =
  let n = Spec.n_graphs spec in
  let m = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let declared =
          match spec.graphs.(i).Graph.compat with
          | Some vector when j < Array.length vector -> Some vector.(j)
          | Some _ | None -> None
        in
        m.(i).(j) <-
          (match declared with
          | Some c -> c
          | None ->
              not
                (Intervals.overlaps schedule.Schedule.graph_windows.(i)
                   schedule.Schedule.graph_windows.(j)))
      end
    done
  done;
  (* Enforce symmetry conservatively: both directions must agree. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let both = m.(i).(j) && m.(j).(i) in
      m.(i).(j) <- both;
      m.(j).(i) <- both
    done
  done;
  m

let graphs_compatible m set_a set_b =
  List.for_all
    (fun a -> List.for_all (fun b -> a = b || m.(a).(b)) set_b)
    set_a
