lib/sched/gantt.mli: Crusade_alloc Crusade_cluster Crusade_taskgraph Schedule
