module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph
module Pe = Crusade_resource.Pe
module Link = Crusade_resource.Link
module Library = Crusade_resource.Library
module Clustering = Crusade_cluster.Clustering
module Priority = Crusade_cluster.Priority
module Arch = Crusade_alloc.Arch
module Vec = Crusade_util.Vec
module Intervals = Crusade_util.Intervals

type instance = {
  i_task : int;
  i_copy : int;
  arrival : int;
  abs_deadline : int;
  mutable start : int;
  mutable finish : int;
}

type t = {
  instances : instance array;
  hyperperiod : int;
  deadlines_met : bool;
  total_tardiness : int;
  graph_windows : Intervals.t array;
  mode_switches : int array;
  scheduled_tasks : int;
}

let default_copy_cap = 64

(* Bytes a non-comm-processor CPU copies per microsecond when staging an
   inter-PE transfer; CPUs with a communication processor overlap
   communication with computation (Section 2.2). *)
let cpu_copy_bytes_per_us = 256

(* [compute_priorities]/[priorities] are defined after [spec_static]
   below: level recomputation reuses the cached per-spec reverse
   topological orders. *)

(* Per-PPE configuration-window bookkeeping.  Windows are kept in three
   parallel int arrays sorted by start; the former (mode, start, stop)
   list rebuilt an O(n) prefix on every commit and was a scheduler
   hot spot on large workloads. *)
type ppe_state = {
  mutable w_modes : int array;
  mutable w_starts : int array;
  mutable w_stops : int array;
  mutable w_n : int;
  boot_by_mode : int array;
}

let ppe_find_start state ~mode ~ready ~duration =
  let boot_self = state.boot_by_mode.(mode) in
  let t = ref ready in
  for i = 0 to state.w_n - 1 do
    let md = state.w_modes.(i) in
    if md <> mode then begin
      let s = state.w_starts.(i) and e = state.w_stops.(i) in
      let boot_next = state.boot_by_mode.(md) in
      (* Our window [t, t+duration) must leave room to boot into any
         other-mode window after it, and must itself start a boot
         after any other-mode window before it.  The scan stays linear:
         stops are not monotone in start order (same-mode windows may
         overlap), so no bisection is possible. *)
      if !t + duration + boot_next > s && !t < e + boot_self then
        if e + boot_self > !t then t := e + boot_self
    end
  done;
  !t

let ppe_commit state ~mode ~start ~stop =
  if state.w_n = Array.length state.w_starts then begin
    let ncap = if state.w_n = 0 then 16 else 2 * state.w_n in
    let grow a = Array.init ncap (fun i -> if i < state.w_n then a.(i) else 0) in
    state.w_modes <- grow state.w_modes;
    state.w_starts <- grow state.w_starts;
    state.w_stops <- grow state.w_stops
  end;
  (* Insert after every window with an equal-or-earlier start. *)
  let lo = ref 0 and hi = ref state.w_n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if state.w_starts.(mid) <= start then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  let tail = state.w_n - pos in
  if tail > 0 then begin
    Array.blit state.w_modes pos state.w_modes (pos + 1) tail;
    Array.blit state.w_starts pos state.w_starts (pos + 1) tail;
    Array.blit state.w_stops pos state.w_stops (pos + 1) tail
  end;
  state.w_modes.(pos) <- mode;
  state.w_starts.(pos) <- start;
  state.w_stops.(pos) <- stop;
  state.w_n <- state.w_n + 1

let count_switches state =
  (* Count mode alternations along the start-sorted windows. *)
  if state.w_n = 0 then 0
  else begin
    let acc = ref 0 in
    for i = 1 to state.w_n - 1 do
      if state.w_modes.(i) <> state.w_modes.(i - 1) then incr acc
    done;
    !acc
  end

exception Disconnected of int * int

(* Per-(spec, copy_cap) instance skeleton: everything about the
   association array that does not depend on the architecture.  Flat int
   arrays replace the per-run allocation of one record per instance —
   candidate evaluation runs the scheduler thousands of times per
   synthesis, and the skeleton (numbering, arrivals, effective
   deadlines) is identical every time. *)
type inst_static = {
  is_copy_cap : int;
  is_total : int;  (* explicit instances across all graphs *)
  is_bases : int array;  (* per graph: first instance id *)
  is_explicit : int array;  (* per graph: explicit copies *)
  is_gsize : int array;  (* per graph: task count *)
  is_task : int array;  (* per instance: global task id *)
  is_copy : int array;
  is_arrival : int array;
  is_deadline : int array;  (* effective (downstream-adjusted) deadline *)
  is_tie : bool array;
      (* per task: some instance of this task shares an effective
         deadline with an instance of a *different* task, so the
         ready-queue comparator can reach its priority level.  The
         incremental engine must treat a level change of such a task as
         invalidating; level changes of tie-free tasks cannot influence
         any comparison. *)
}

(* Spec-derived data reused by every [run]/[estimate] call of a
   synthesis: each graph's topological order and the worst-case
   downstream path per task (the effective-deadline slack — an interior
   task must leave room for the worst-case completion of the chain below
   it).  Shared by [run] and [estimate] so their effective deadlines
   agree exactly. *)
type spec_static = {
  ss_spec : Spec.t;
  ss_topo : Task.t list array;  (* indexed by graph id *)
  ss_rev_topo : Task.t list array;  (* indexed by graph id *)
  ss_hyperperiod : int;
  ss_downstream : int array;  (* indexed by task id *)
  ss_local_index : int array;  (* task id -> index within its graph *)
  ss_graph_of : int array;  (* task id -> graph id *)
  ss_max_exec : int array;  (* task id -> worst feasible execution time *)
  ss_insts : inst_static list Atomic.t;  (* per copy_cap, newest first *)
  ss_unalloc_comm : (Library.t * int array) list Atomic.t;
      (* per library (identity-keyed): worst link-library communication
         time per edge id.  Level recomputation hits this for every edge
         whose endpoints are not both placed, which during allocation is
         most of them. *)
}

(* Keyed by spec identity, bounded: processes that alternate specs
   (crusade_fuzz, batch drivers) previously thrashed a single slot and
   recomputed the statics on every switch.  The [Atomic] keeps
   concurrent evaluation domains safe: a lost CAS race merely leaves an
   equivalent immutable value uncached. *)
let spec_static_capacity = 8

let spec_static_cache : spec_static list Atomic.t = Atomic.make []

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let spec_static (spec : Spec.t) =
  let cached = Atomic.get spec_static_cache in
  match List.find_opt (fun s -> s.ss_spec == spec) cached with
  | Some s -> s
  | None ->
      let n_tasks = Spec.n_tasks spec in
      let topo = Array.map Graph.topological_order spec.graphs in
      let downstream = Array.make n_tasks 0 in
      Array.iter
        (fun (g : Graph.t) ->
          List.iter
            (fun (task : Task.t) ->
              downstream.(task.id) <-
                List.fold_left
                  (fun acc (e : Edge.t) ->
                    max acc
                      (Task.max_exec (Spec.task spec e.dst) + downstream.(e.dst)))
                  0 spec.succs.(task.id))
            (List.rev topo.(g.id)))
        spec.graphs;
      let local_index = Array.make n_tasks 0 in
      let graph_of = Array.make n_tasks 0 in
      Array.iter
        (fun (g : Graph.t) ->
          Array.iteri
            (fun i (task : Task.t) ->
              local_index.(task.id) <- i;
              graph_of.(task.id) <- g.id)
            g.tasks)
        spec.graphs;
      let s =
        {
          ss_spec = spec;
          ss_topo = topo;
          ss_rev_topo = Array.map List.rev topo;
          ss_hyperperiod = Spec.hyperperiod spec;
          ss_downstream = downstream;
          ss_local_index = local_index;
          ss_graph_of = graph_of;
          ss_max_exec =
            Array.map (fun (t : Task.t) -> Task.max_exec t) spec.tasks;
          ss_insts = Atomic.make [];
          ss_unalloc_comm = Atomic.make [];
        }
      in
      ignore
        (Atomic.compare_and_set spec_static_cache cached
           (s :: take (spec_static_capacity - 1) cached));
      s

let unalloc_comm_table (static : spec_static) (lib : Library.t) =
  let cached = Atomic.get static.ss_unalloc_comm in
  match List.find_opt (fun (l, _) -> l == lib) cached with
  | Some (_, table) -> table
  | None ->
      let spec = static.ss_spec in
      let table =
        Array.init (Spec.n_edges spec) (fun i ->
            Priority.unallocated_comm lib (Spec.edge spec i))
      in
      ignore
        (Atomic.compare_and_set static.ss_unalloc_comm cached
           ((lib, table) :: take 1 cached));
      table

(* Levels are recomputed for every candidate architecture (any placement
   mutation clears the cache below), so the time providers avoid the
   per-task placement-map probes of [Arch.task_site]: cluster sites are
   resolved once into an array and each task reaches its PE through
   [Clustering.of_task], the per-graph reverse topological orders come
   from the spec statics instead of being re-sorted per call, and the
   unplaced fallbacks (worst feasible execution, worst library
   communication) are constant tables instead of per-call folds. *)
let compute_priorities (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let static = spec_static spec in
  let ucomm = unalloc_comm_table static arch.Arch.lib in
  let link_ports =
    Array.init (Vec.length arch.Arch.links) (fun i ->
        max 2 (List.length (Vec.get arch.Arch.links i).Arch.attached))
  in
  let nc = Array.length clustering.Clustering.clusters in
  let cl_pe = Array.make nc (-1) in
  for c = 0 to nc - 1 do
    match Arch.site_of_cluster arch c with
    | Some s -> cl_pe.(c) <- s.Arch.s_pe
    | None -> ()
  done;
  let pe_of_task id = cl_pe.(clustering.Clustering.of_task.(id)) in
  let exec_time (task : Task.t) =
    let pe = pe_of_task task.Task.id in
    if pe < 0 then static.ss_max_exec.(task.Task.id)
    else begin
      let t =
        Task.exec_us_on task (Vec.get arch.Arch.pes pe).Arch.ptype.Pe.id
      in
      if t >= 0 then t else static.ss_max_exec.(task.Task.id)
    end
  in
  let comm_time (e : Edge.t) =
    if clustering.Clustering.of_task.(e.src) = clustering.Clustering.of_task.(e.dst)
    then 0
    else begin
      let pa = pe_of_task e.src and pb = pe_of_task e.dst in
      if pa < 0 || pb < 0 then ucomm.(e.id)
      else if pa = pb then 0
      else
        match Arch.links_between arch pa pb with
        | [] -> ucomm.(e.id)
        | links ->
            List.fold_left
              (fun acc (l : Arch.link_inst) ->
                let time =
                  Link.comm_time l.Arch.ltype ~ports:link_ports.(l.Arch.l_id)
                    ~bytes:e.bytes
                in
                min acc time)
              max_int links
    end
  in
  Priority.compute ~rev_orders:static.ss_rev_topo spec ~exec_time ~comm_time

(* Levels only change when the architecture does, and the same
   architecture is scheduled several times per synthesis (candidate
   evaluation, repair, merge validation, interface synthesis), so the
   last computation is cached on the architecture itself. *)
let priorities (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  match Arch.cached_levels arch spec clustering with
  | Some levels -> levels
  | None ->
      let levels = compute_priorities spec clustering arch in
      Arch.set_cached_levels arch spec clustering levels;
      levels

let inst_static (ss : spec_static) ~copy_cap =
  let cached = Atomic.get ss.ss_insts in
  match List.find_opt (fun i -> i.is_copy_cap = copy_cap) cached with
  | Some i -> i
  | None ->
      let spec = ss.ss_spec in
      let n_graphs = Spec.n_graphs spec in
      let explicit = Array.make n_graphs 0 in
      let bases = Array.make n_graphs 0 in
      let gsize = Array.make n_graphs 0 in
      let total = ref 0 in
      Array.iteri
        (fun gi (g : Graph.t) ->
          explicit.(gi) <- min (Spec.copies spec g) copy_cap;
          bases.(gi) <- !total;
          gsize.(gi) <- Graph.n_tasks g;
          total := !total + (explicit.(gi) * gsize.(gi)))
        spec.graphs;
      let total = !total in
      let i_task = Array.make total 0 in
      let i_copy = Array.make total 0 in
      let i_arrival = Array.make total 0 in
      let i_deadline = Array.make total 0 in
      let downstream = ss.ss_downstream in
      Array.iter
        (fun (g : Graph.t) ->
          for copy = 0 to explicit.(g.id) - 1 do
            Array.iter
              (fun (task : Task.t) ->
                let idx =
                  bases.(g.id) + (copy * gsize.(g.id)) + ss.ss_local_index.(task.id)
                in
                let arrival = g.est + (copy * g.period) in
                i_task.(idx) <- task.id;
                i_copy.(idx) <- copy;
                i_arrival.(idx) <- arrival;
                i_deadline.(idx) <-
                  arrival + Graph.task_deadline g task - downstream.(task.id))
              g.tasks
          done)
        spec.graphs;
      (* Deadline collisions across distinct tasks; same-task copies never
         collide (periods are positive, so copy deadlines are strictly
         increasing). *)
      let tie = Array.make (Spec.n_tasks spec) false in
      let seen : (int, int) Hashtbl.t = Hashtbl.create (2 * max 1 total) in
      for idx = 0 to total - 1 do
        let d = i_deadline.(idx) and t = i_task.(idx) in
        match Hashtbl.find_opt seen d with
        | None -> Hashtbl.add seen d t
        | Some r when r = t -> ()
        | Some r ->
            tie.(r) <- true;
            tie.(t) <- true
      done;
      let i =
        {
          is_copy_cap = copy_cap;
          is_total = total;
          is_bases = bases;
          is_explicit = explicit;
          is_gsize = gsize;
          is_task = i_task;
          is_copy = i_copy;
          is_arrival = i_arrival;
          is_deadline = i_deadline;
          is_tie = tie;
        }
      in
      ignore (Atomic.compare_and_set ss.ss_insts cached (i :: take 3 cached));
      i

(* Per-task placement as two flat int arrays (-1 = unplaced), derived
   per cluster first: [Arch.task_site] is a hash probe per call, and the
   scheduler needs every task's site several times per run. *)
let site_arrays (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) =
  let n_tasks = Spec.n_tasks spec in
  let nc = Array.length clustering.Clustering.clusters in
  let c_pe = Array.make nc (-1) and c_mode = Array.make nc (-1) in
  for c = 0 to nc - 1 do
    match Arch.site_of_cluster arch c with
    | Some s ->
        c_pe.(c) <- s.Arch.s_pe;
        c_mode.(c) <- s.Arch.s_mode
    | None -> ()
  done;
  let site_pe = Array.make n_tasks (-1) and site_mode = Array.make n_tasks (-1) in
  for t = 0 to n_tasks - 1 do
    let c = clustering.Clustering.of_task.(t) in
    site_pe.(t) <- c_pe.(c);
    site_mode.(t) <- c_mode.(c)
  done;
  (site_pe, site_mode)

(* Growable int buffer for the recorder's event logs. *)
module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push b x =
    if b.n = Array.length b.a then begin
      let ncap = if b.n = 0 then 32 else 2 * b.n in
      let na = Array.make ncap 0 in
      Array.blit b.a 0 na 0 b.n;
      b.a <- na
    end;
    b.a.(b.n) <- x;
    b.n <- b.n + 1

  let trimmed b = Array.sub b.a 0 b.n
end

type verdict = { v_tardiness : int; v_met : bool; v_scheduled : int }

(* One full scheduler run, captured for prefix replay: the pop sequence
   with per-step deadlines and start/finish times, the exact resource
   reservations each step committed (CPU chunks and link transfers as
   (start, stop, step) triples sorted by start; PPE windows as
   (mode, start, stop, step) quadruples in final window order), the
   activity events, and a snapshot of everything the scheduler read from
   the architecture — enough for a later candidate to be diffed against
   this base.  Immutable once built; shared read-only across domains. *)
type recording = {
  r_spec : Spec.t;
  r_clustering : Clustering.t;
  r_copy_cap : int;
  r_steps : int;
  r_pop_inst : int array;
  r_pop_deadline : int array;
  r_pop_start : int array;
  r_pop_finish : int array;
  r_cpu_logs : int array array;  (* per PE: (start, stop, step)* by start *)
  r_link_logs : int array array;  (* per link: (start, stop, step)* by start *)
  r_ppe_logs : int array array;
      (* per PE: (mode, start, stop, step)* in final window order *)
  r_act : int array;  (* (graph, start, stop, step)* in emission order *)
  r_site_pe : int array;
  r_site_mode : int array;
  r_levels : int array;
  r_pe_types : Pe.t array;
  r_pe_boots : int array array;  (* per PE: boot time per mode; [||] non-PPE *)
  r_link_types : Link.t array;
  r_link_attached : int array array;  (* per link: sorted attached PEs *)
}

type recorder = {
  c_pop_inst : Ibuf.t;
  c_pop_deadline : Ibuf.t;
  c_pop_start : Ibuf.t;
  c_pop_finish : Ibuf.t;
  c_cpu : Ibuf.t array;
  c_link : Ibuf.t array;
  c_ppe : Ibuf.t array;
  c_act : Ibuf.t;
}

type exec_out = {
  x_verdict : verdict;
  x_sched : t option;
  x_recording : recording option;
}

(* Stable sort of a strided int-entry log by the field at [key_off]
   (entry order breaks ties, which keeps PPE windows in commit order
   within an equal start — exactly the order [ppe_commit]'s
   insert-after-equal-start maintains). *)
let sort_stride stride key_off (a : int array) =
  let m = Array.length a / stride in
  if m <= 1 then a
  else begin
    let idx = Array.init m (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = Int.compare a.((stride * i) + key_off) a.((stride * j) + key_off) in
        if c <> 0 then c else Int.compare i j)
      idx;
    let out = Array.make (Array.length a) 0 in
    Array.iteri
      (fun pos i ->
        for k = 0 to stride - 1 do
          out.((stride * pos) + k) <- a.((stride * i) + k)
        done)
      idx;
    out
  end

(* The list scheduler proper, shared by the plain, recording and replay
   entry points.  [replay = Some (r, s)] fast-forwards through the first
   [s] recorded steps — writing the recorded starts/finishes, rebuilding
   the resource timelines from the recorded reservations and decrementing
   indegrees — then runs the normal algorithm on the remainder.  The
   caller guarantees (see [replay_cut]) that those [s] steps are exactly
   what a full run against [arch] would have scheduled. *)
let exec ~copy_cap ~materialize ~record ~(replay : (recording * int) option)
    (spec : Spec.t) (clustering : Clustering.t) (arch : Arch.t) ~site_pe ~site_mode
    ~(levels : int array) =
  let ss = spec_static spec in
  let ist = inst_static ss ~copy_cap in
  let n_graphs = Spec.n_graphs spec in
  let total = ist.is_total in
  let i_task = ist.is_task
  and i_copy = ist.is_copy
  and i_arrival = ist.is_arrival
  and i_deadline = ist.is_deadline in
  let bases = ist.is_bases and gsize = ist.is_gsize in
  let local_index = ss.ss_local_index and graph_of = ss.ss_graph_of in
  let inst_id tid copy = bases.(graph_of.(tid)) + (copy * gsize.(graph_of.(tid))) + local_index.(tid) in
  let placed tid = site_pe.(tid) >= 0 in
  let starts = Array.make total (-1) and finishes = Array.make total (-1) in
  let n_pe_insts = Vec.length arch.Arch.pes in
  let n_link_insts = Vec.length arch.Arch.links in
  let cpu_timelines = Array.make n_pe_insts None in
  let cpu_timeline pe_id =
    match cpu_timelines.(pe_id) with
    | Some tl -> tl
    | None ->
        let tl = Timeline.create () in
        cpu_timelines.(pe_id) <- Some tl;
        tl
  in
  let link_timelines = Array.make n_link_insts None in
  let link_timeline l_id =
    match link_timelines.(l_id) with
    | Some tl -> tl
    | None ->
        let tl = Timeline.create () in
        link_timelines.(l_id) <- Some tl;
        tl
  in
  let ppe_states = Array.make n_pe_insts None in
  let ppe_state (pe : Arch.pe_inst) =
    match ppe_states.(pe.Arch.p_id) with
    | Some st -> st
    | None ->
        let boots =
          Array.init (Vec.length pe.Arch.modes) (fun i ->
              Arch.mode_boot_us pe (Vec.get pe.Arch.modes i))
        in
        let st =
          { w_modes = [||]; w_starts = [||]; w_stops = [||]; w_n = 0;
            boot_by_mode = boots }
        in
        ppe_states.(pe.Arch.p_id) <- Some st;
        st
  in
  (* [Arch.links_between] is an int-keyed probe of a memo that persists
     across runs of the same architecture family (candidate trials share
     connectivity most of the time), so no per-run dense view is needed —
     the former [n_pe * n_pe] option array was a measurable allocation on
     every trial. *)
  let links_between a b = Arch.links_between arch a b in
  (* Port counts are fixed for the duration of one run. *)
  let link_ports =
    Array.init n_link_insts (fun i ->
        max 2 (List.length (Vec.get arch.Arch.links i).Arch.attached))
  in
  let track_activity = materialize || record in
  let graph_activity = Array.make n_graphs [] in
  let recorder =
    if not record then None
    else
      Some
        {
          c_pop_inst = Ibuf.create ();
          c_pop_deadline = Ibuf.create ();
          c_pop_start = Ibuf.create ();
          c_pop_finish = Ibuf.create ();
          c_cpu = Array.init n_pe_insts (fun _ -> Ibuf.create ());
          c_link = Array.init n_link_insts (fun _ -> Ibuf.create ());
          c_ppe = Array.init n_pe_insts (fun _ -> Ibuf.create ());
          c_act = Ibuf.create ();
        }
  in
  let step = ref 0 in
  let note_activity graph s f =
    if track_activity && f > s then begin
      graph_activity.(graph) <- (s, f) :: graph_activity.(graph);
      match recorder with
      | Some rc ->
          Ibuf.push rc.c_act graph;
          Ibuf.push rc.c_act s;
          Ibuf.push rc.c_act f;
          Ibuf.push rc.c_act !step
      | None -> ()
    end
  in
  (* Dependency counting over placed tasks only. *)
  let indegree = Array.make total 0 in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iter
        (fun (e : Edge.t) ->
          if placed e.src && placed e.dst then
            for copy = 0 to ist.is_explicit.(g.id) - 1 do
              let dst = inst_id e.dst copy in
              indegree.(dst) <- indegree.(dst) + 1
            done)
        g.edges)
    spec.graphs;
  (* Prefix replay: fast-forward through the recorded steps below the
     cut. *)
  (match replay with
  | None -> ()
  | Some (r, s_stop) ->
      step := s_stop;
      for k = 0 to s_stop - 1 do
        let idx = r.r_pop_inst.(k) in
        starts.(idx) <- r.r_pop_start.(k);
        finishes.(idx) <- r.r_pop_finish.(k);
        let tid = i_task.(idx) and copy = i_copy.(idx) in
        List.iter
          (fun (e : Edge.t) ->
            if placed e.dst then begin
              let dst = inst_id e.dst copy in
              indegree.(dst) <- indegree.(dst) - 1
            end)
          spec.succs.(tid)
      done;
      (* Timelines: the per-resource logs are sorted by start, so the
         filtered prefix rebuilds via [Timeline.append] in O(prefix). *)
      let replay_log3 get_timeline (log : int array) =
        let m = Array.length log / 3 in
        let tl = ref None in
        for j = 0 to m - 1 do
          if log.((3 * j) + 2) < s_stop then begin
            let t =
              match !tl with
              | Some t -> t
              | None ->
                  let t = get_timeline () in
                  tl := Some t;
                  t
            in
            Timeline.append t log.(3 * j) log.((3 * j) + 1)
          end
        done
      in
      let np = min (Array.length r.r_cpu_logs) n_pe_insts in
      for p = 0 to np - 1 do
        if Array.length r.r_cpu_logs.(p) > 0 then
          replay_log3 (fun () -> cpu_timeline p) r.r_cpu_logs.(p)
      done;
      let nl = min (Array.length r.r_link_logs) n_link_insts in
      for l = 0 to nl - 1 do
        if Array.length r.r_link_logs.(l) > 0 then
          replay_log3 (fun () -> link_timeline l) r.r_link_logs.(l)
      done;
      (* PPE windows: the log is already in final window order (start,
         then commit order); the prefix subsequence keeps exactly the
         relative order [ppe_commit] would have produced. *)
      for p = 0 to min (Array.length r.r_ppe_logs) n_pe_insts - 1 do
        let log = r.r_ppe_logs.(p) in
        let m = Array.length log / 4 in
        if m > 0 then begin
          let cnt = ref 0 in
          for j = 0 to m - 1 do
            if log.((4 * j) + 3) < s_stop then incr cnt
          done;
          if !cnt > 0 then begin
            let st = ppe_state (Vec.get arch.Arch.pes p) in
            let wm = Array.make !cnt 0
            and ws = Array.make !cnt 0
            and we = Array.make !cnt 0 in
            let j2 = ref 0 in
            for j = 0 to m - 1 do
              if log.((4 * j) + 3) < s_stop then begin
                wm.(!j2) <- log.(4 * j);
                ws.(!j2) <- log.((4 * j) + 1);
                we.(!j2) <- log.((4 * j) + 2);
                incr j2
              end
            done;
            st.w_modes <- wm;
            st.w_starts <- ws;
            st.w_stops <- we;
            st.w_n <- !cnt
          end
        end
      done;
      if track_activity then begin
        let a = r.r_act in
        let m = Array.length a / 4 in
        for j = 0 to m - 1 do
          if a.((4 * j) + 3) < s_stop then
            graph_activity.(a.(4 * j)) <-
              (a.((4 * j) + 1), a.((4 * j) + 2)) :: graph_activity.(a.(4 * j))
        done
      end);
  (* Ready-list order: most urgent effective deadline first (the
     per-instance form of the deadline-based priority levels: the
     effective deadline already folds arrival, the task deadline and the
     worst-case downstream path); levels break ties within a deadline,
     and the instance index makes the order total — so ANY correct
     min-heap pops the same sequence, and this specialized one inlines
     the comparison the generic [Pqueue] paid an indirect call for on
     every sift step of the innermost loop. *)
  (* Per-instance priority level, precomputed so the sift loops load one
     array instead of chasing [levels.(i_task.(_))]. *)
  let i_level = Array.make total 0 in
  for idx = 0 to total - 1 do
    i_level.(idx) <- levels.(i_task.(idx))
  done;
  let less a b =
    let da = i_deadline.(a) and db = i_deadline.(b) in
    if da <> db then da < db
    else begin
      let la = i_level.(a) and lb = i_level.(b) in
      if la <> lb then la > lb else a < b
    end
  in
  let heap = ref (Array.make 64 0) in
  let heap_n = ref 0 in
  let hpush x =
    (if !heap_n = Array.length !heap then begin
       let nd = Array.make (2 * !heap_n) 0 in
       Array.blit !heap 0 nd 0 !heap_n;
       heap := nd
     end);
    let d = !heap in
    let i = ref !heap_n in
    incr heap_n;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let p = (!i - 1) / 2 in
      if less x d.(p) then begin
        d.(!i) <- d.(p);
        i := p
      end
      else sifting := false
    done;
    d.(!i) <- x
  in
  let hpop () =
    let d = !heap in
    let top = d.(0) in
    decr heap_n;
    let n = !heap_n in
    if n > 0 then begin
      let x = d.(n) in
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 in
        if l >= n then sifting := false
        else begin
          let r = l + 1 in
          let c = if r < n && less d.(r) d.(l) then r else l in
          if less d.(c) x then begin
            d.(!i) <- d.(c);
            i := c
          end
          else sifting := false
        end
      done;
      d.(!i) <- x
    end;
    top
  in
  for idx = 0 to total - 1 do
    if starts.(idx) < 0 && placed i_task.(idx) && indegree.(idx) = 0 then
      hpush idx
  done;
  let exec_us = Array.make (Spec.n_tasks spec) (-1) in
  let edge_links = Array.make (Spec.n_edges spec) None in
  let schedule_instance idx =
    let tid = i_task.(idx) in
    let copy = i_copy.(idx) in
    let task = Spec.task spec tid in
    let s_pe = site_pe.(tid) and s_mode = site_mode.(tid) in
    let pe = Vec.get arch.Arch.pes s_pe in
    let pe_type = pe.Arch.ptype in
    let duration =
      (* Fixed per task within one run (placement is fixed), so the
         execution-table probe is paid once per task, not once per copy. *)
      let d = exec_us.(tid) in
      if d >= 0 then d
      else begin
        let d = max 0 (Task.exec_us_on task pe_type.Pe.id) in
        exec_us.(tid) <- d;
        d
      end
    in
    (* Input edges: intra-PE transfers are free; inter-PE transfers are
       scheduled on the best connecting link. *)
    let copy_overhead = ref 0 in
    let ready =
      List.fold_left
        (fun acc (e : Edge.t) ->
          if not (placed e.src) then acc
          else begin
            let src_fin = finishes.(inst_id e.src copy) in
            let src_pe = site_pe.(e.src) in
            if src_pe = s_pe then max acc src_fin
            else begin
              (* The edge's PE pair — hence its candidate links and their
                 transfer times — is fixed within one run; resolve both
                 once per edge instead of once per copy. *)
              let links =
                match edge_links.(e.id) with
                | Some ls -> ls
                | None ->
                    let ls =
                      List.map
                        (fun (l : Arch.link_inst) ->
                          ( l,
                            Link.comm_time l.Arch.ltype
                              ~ports:link_ports.(l.Arch.l_id) ~bytes:e.bytes ))
                        (links_between src_pe s_pe)
                    in
                    edge_links.(e.id) <- Some ls;
                    ls
              in
              match links with
              | [] -> raise (Disconnected (src_pe, s_pe))
              | links ->
                  let best =
                    List.fold_left
                      (fun best ((l : Arch.link_inst), comm) ->
                        let _, fin =
                          Timeline.probe (link_timeline l.Arch.l_id)
                            ~ready:src_fin ~duration:comm
                        in
                        match best with
                        | Some (_, _, best_fin) when best_fin <= fin -> best
                        | _ -> Some (l, comm, fin)
                      )
                      None links
                  in
                  let l, comm, _ =
                    match best with
                    | Some x -> x
                    | None ->
                        (* [links] is non-empty here, so the fold always
                           produces a best candidate. *)
                        failwith
                          (Printf.sprintf
                             "Schedule: no best link for edge %d (task %d, PE \
                              %d -> PE %d) despite %d candidate links"
                             e.Edge.id tid src_pe s_pe (List.length links))
                  in
                  let s, f =
                    Timeline.insert (link_timeline l.Arch.l_id) ~ready:src_fin
                      ~duration:comm
                  in
                  (match recorder with
                  | Some rc when f > s ->
                      let lb = rc.c_link.(l.Arch.l_id) in
                      Ibuf.push lb s;
                      Ibuf.push lb f;
                      Ibuf.push lb !step
                  | Some _ | None -> ());
                  note_activity graph_of.(tid) s f;
                  (match pe_type.Pe.pe_class with
                  | Pe.General_purpose cpu when not cpu.has_communication_processor ->
                      copy_overhead :=
                        !copy_overhead
                        + Crusade_util.Arith.ceil_div e.bytes cpu_copy_bytes_per_us
                  | Pe.General_purpose _ | Pe.Asic_pe _ | Pe.Programmable _ -> ());
                  max acc f
            end
          end)
        i_arrival.(idx) spec.preds.(tid)
    in
    let start, finish =
      match pe_type.Pe.pe_class with
      | Pe.General_purpose cpu -> (
          let tl = cpu_timeline pe.Arch.p_id in
          match recorder with
          | Some rc ->
              let cb = rc.c_cpu.(pe.Arch.p_id) in
              Timeline.insert_preemptible tl ~ready
                ~duration:(duration + !copy_overhead)
                ~max_chunks:3 ~chunk_penalty:cpu.preemption_overhead_us
                ~on_commit:(fun s f ->
                  Ibuf.push cb s;
                  Ibuf.push cb f;
                  Ibuf.push cb !step)
          | None ->
              Timeline.insert_preemptible tl ~ready
                ~duration:(duration + !copy_overhead)
                ~max_chunks:3 ~chunk_penalty:cpu.preemption_overhead_us)
      | Pe.Asic_pe _ -> (ready, ready + duration)
      | Pe.Programmable _ ->
          let st = ppe_state pe in
          let s = ppe_find_start st ~mode:s_mode ~ready ~duration in
          ppe_commit st ~mode:s_mode ~start:s ~stop:(s + duration);
          (match recorder with
          | Some rc ->
              let pb = rc.c_ppe.(pe.Arch.p_id) in
              Ibuf.push pb s_mode;
              Ibuf.push pb s;
              Ibuf.push pb (s + duration);
              Ibuf.push pb !step
          | None -> ());
          (s, s + duration)
    in
    starts.(idx) <- start;
    finishes.(idx) <- finish;
    note_activity graph_of.(tid) start finish;
    (match recorder with
    | Some rc ->
        Ibuf.push rc.c_pop_inst idx;
        Ibuf.push rc.c_pop_deadline i_deadline.(idx);
        Ibuf.push rc.c_pop_start start;
        Ibuf.push rc.c_pop_finish finish
    | None -> ());
    incr step;
    (* Release successors. *)
    List.iter
      (fun (e : Edge.t) ->
        if placed e.dst then begin
          let dst = inst_id e.dst copy in
          indegree.(dst) <- indegree.(dst) - 1;
          if indegree.(dst) = 0 then hpush dst
        end)
      spec.succs.(tid)
  in
  match
    while !heap_n > 0 do
      schedule_instance (hpop ())
    done
  with
  | exception Disconnected (a, b) ->
      Error (Printf.sprintf "no link between PE %d and PE %d" a b)
  | () ->
      (* Deadline verification over the explicit instances. *)
      let tardiness = ref 0 in
      for idx = 0 to total - 1 do
        if placed i_task.(idx) && finishes.(idx) >= 0 then
          tardiness := !tardiness + max 0 (finishes.(idx) - i_deadline.(idx))
      done;
      let verdict =
        { v_tardiness = !tardiness; v_met = !tardiness = 0; v_scheduled = !step }
      in
      let sched =
        if not materialize then None
        else begin
          let instances =
            Array.init total (fun idx ->
                {
                  i_task = i_task.(idx);
                  i_copy = i_copy.(idx);
                  arrival = i_arrival.(idx);
                  abs_deadline = i_deadline.(idx);
                  start = starts.(idx);
                  finish = finishes.(idx);
                })
          in
          (* Graph activity over the whole hyperperiod: explicit windows
             plus a conservative covering interval for the extrapolated
             copies. *)
          let graph_windows =
            Array.mapi
              (fun gi acts ->
                let g = spec.graphs.(gi) in
                let copies = Spec.copies spec g in
                let acts =
                  if copies > ist.is_explicit.(gi) && acts <> [] then begin
                    let horizon_start = g.est + (ist.is_explicit.(gi) * g.period) in
                    (horizon_start, g.est + (copies * g.period)) :: acts
                  end
                  else acts
                in
                Intervals.of_list acts)
              graph_activity
          in
          let mode_switches = Array.make n_pe_insts 0 in
          Array.iteri
            (fun pe_id st ->
              match st with
              | Some st -> mode_switches.(pe_id) <- count_switches st
              | None -> ())
            ppe_states;
          Some
            {
              instances;
              hyperperiod = Spec.hyperperiod spec;
              deadlines_met = verdict.v_met;
              total_tardiness = !tardiness;
              graph_windows;
              mode_switches;
              scheduled_tasks = !step;
            }
        end
      in
      let recording =
        match recorder with
        | None -> None
        | Some rc ->
            Some
              {
                r_spec = spec;
                r_clustering = clustering;
                r_copy_cap = copy_cap;
                r_steps = !step;
                r_pop_inst = Ibuf.trimmed rc.c_pop_inst;
                r_pop_deadline = Ibuf.trimmed rc.c_pop_deadline;
                r_pop_start = Ibuf.trimmed rc.c_pop_start;
                r_pop_finish = Ibuf.trimmed rc.c_pop_finish;
                r_cpu_logs =
                  Array.map (fun b -> sort_stride 3 0 (Ibuf.trimmed b)) rc.c_cpu;
                r_link_logs =
                  Array.map (fun b -> sort_stride 3 0 (Ibuf.trimmed b)) rc.c_link;
                r_ppe_logs =
                  Array.map (fun b -> sort_stride 4 1 (Ibuf.trimmed b)) rc.c_ppe;
                r_act = Ibuf.trimmed rc.c_act;
                r_site_pe = Array.copy site_pe;
                r_site_mode = Array.copy site_mode;
                r_levels = Array.copy levels;
                r_pe_types =
                  Array.init n_pe_insts (fun p -> (Vec.get arch.Arch.pes p).Arch.ptype);
                r_pe_boots =
                  Array.init n_pe_insts (fun p ->
                      let pe = Vec.get arch.Arch.pes p in
                      match pe.Arch.ptype.Pe.pe_class with
                      | Pe.Programmable _ ->
                          Array.init (Vec.length pe.Arch.modes) (fun i ->
                              Arch.mode_boot_us pe (Vec.get pe.Arch.modes i))
                      | Pe.General_purpose _ | Pe.Asic_pe _ -> [||]);
                r_link_types =
                  Array.init n_link_insts (fun l ->
                      (Vec.get arch.Arch.links l).Arch.ltype);
                r_link_attached =
                  Array.init n_link_insts (fun l ->
                      Array.of_list
                        (List.sort_uniq Int.compare
                           (Vec.get arch.Arch.links l).Arch.attached));
              }
      in
      Ok { x_verdict = verdict; x_sched = sched; x_recording = recording }

(* Where an exact prefix replay of [r] must stop for the candidate
   [arch]: diff the candidate against the recorded snapshot, mark the
   tasks whose scheduling inputs changed — placement (including to/from
   unplaced), residence on a PE whose type or per-mode boot vector
   changed, destination of a cross-PE edge whose connecting-link set
   changed, or a priority-level change on a task that can tie on an
   effective deadline — close the set downstream over the precedence
   edges, and take D* = the earliest effective deadline among the marked
   tasks' instances (copy 0, deadlines increase with the copy index).
   Every recorded pop strictly before the first pop with deadline >= D*
   is provably identical in a full run against [arch]: by induction the
   resource state and ready sets agree, marked instances cannot out-rank
   a sub-D* pop — their deadlines are at least D* — and ties among unmarked
   instances resolve identically (a level change on a tie-capable task
   marks it).  Returns the step count to replay — [r_steps] when the
   candidate's schedule provably equals the base's. *)
let replay_cut (r : recording) (spec : Spec.t) (arch : Arch.t) ~site_pe ~site_mode
    ~(levels : int array) =
  let ss = spec_static spec in
  let ist = inst_static ss ~copy_cap:r.r_copy_cap in
  let n_tasks = Spec.n_tasks spec in
  let dirty = Array.make n_tasks false in
  let any = ref false in
  let mark t =
    if not dirty.(t) then begin
      dirty.(t) <- true;
      any := true
    end
  in
  (* Placement changes. *)
  for t = 0 to n_tasks - 1 do
    if site_pe.(t) <> r.r_site_pe.(t) || site_mode.(t) <> r.r_site_mode.(t) then
      mark t
  done;
  (* PE-level changes: type identity (id reuse across rollbacks) and the
     per-mode boot vector over the common mode prefix (interface
     synthesis rewrites boot_full_us; placing into an existing mode
     changes its partial-reconfiguration fraction; either moves every
     window interaction on the device).  Added/removed PEs and modes
     only host placement-changed tasks, already marked above. *)
  let base_np = Array.length r.r_pe_types in
  let cand_np = Vec.length arch.Arch.pes in
  let pe_dirty = Array.make (max 1 (max base_np cand_np)) false in
  let any_pe_dirty = ref false in
  for p = 0 to min base_np cand_np - 1 do
    let pe = Vec.get arch.Arch.pes p in
    let changed =
      pe.Arch.ptype != r.r_pe_types.(p)
      ||
      match pe.Arch.ptype.Pe.pe_class with
      | Pe.Programmable _ ->
          let boots = r.r_pe_boots.(p) in
          let m = min (Array.length boots) (Vec.length pe.Arch.modes) in
          let diff = ref false in
          for i = 0 to m - 1 do
            if Arch.mode_boot_us pe (Vec.get pe.Arch.modes i) <> boots.(i) then
              diff := true
          done;
          !diff
      | Pe.General_purpose _ | Pe.Asic_pe _ -> false
    in
    if changed then begin
      pe_dirty.(p) <- true;
      any_pe_dirty := true
    end
  done;
  if !any_pe_dirty then
    for t = 0 to n_tasks - 1 do
      let bp = r.r_site_pe.(t) and cp = site_pe.(t) in
      if (bp >= 0 && pe_dirty.(bp)) || (cp >= 0 && pe_dirty.(cp)) then mark t
    done;
  (* Link changes: a changed type, attached set, or an added/removed
     link taints every PE pair it (before or after) connects — port
     counts, transfer times and the connecting-link sets all derive from
     the attached lists.  Destinations of cross-PE edges over a tainted
     pair are marked. *)
  let base_nl = Array.length r.r_link_types in
  let cand_nl = Vec.length arch.Arch.links in
  let max_np = max 1 (max base_np cand_np) in
  let pair_tainted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let taint_set (pes : int array) =
    Array.iter
      (fun a ->
        Array.iter
          (fun b -> if a <> b then Hashtbl.replace pair_tainted ((a * max_np) + b) ())
          pes)
      pes
  in
  let sorted_attached l =
    Array.of_list
      (List.sort_uniq Int.compare (Vec.get arch.Arch.links l).Arch.attached)
  in
  let same_int_array (a : int array) (b : int array) =
    Array.length a = Array.length b
    &&
    let ok = ref true in
    Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
    !ok
  in
  for l = 0 to max base_nl cand_nl - 1 do
    if l >= base_nl then taint_set (sorted_attached l)
    else if l >= cand_nl then taint_set r.r_link_attached.(l)
    else begin
      let cur = sorted_attached l in
      if
        (Vec.get arch.Arch.links l).Arch.ltype != r.r_link_types.(l)
        || not (same_int_array cur r.r_link_attached.(l))
      then begin
        taint_set cur;
        taint_set r.r_link_attached.(l)
      end
    end
  done;
  if Hashtbl.length pair_tainted > 0 then
    Array.iter
      (fun (g : Graph.t) ->
        Array.iter
          (fun (e : Edge.t) ->
            if not dirty.(e.src) && not dirty.(e.dst) then begin
              (* Both endpoints unmoved, so base and candidate pairs
                 coincide. *)
              let a = site_pe.(e.src) and b = site_pe.(e.dst) in
              if a >= 0 && b >= 0 && a <> b
                 && Hashtbl.mem pair_tainted ((a * max_np) + b)
              then mark e.dst
            end)
          g.edges)
      spec.graphs;
  (* Priority-level changes on tie-capable tasks (the comparator only
     reads levels inside an equal effective deadline). *)
  for t = 0 to n_tasks - 1 do
    if ist.is_tie.(t) && levels.(t) <> r.r_levels.(t) then mark t
  done;
  (* Downstream closure: a changed finish propagates along precedence. *)
  if !any then begin
    let stack = ref [] in
    for t = 0 to n_tasks - 1 do
      if dirty.(t) then stack := t :: !stack
    done;
    let rec go () =
      match !stack with
      | [] -> ()
      | t :: rest ->
          stack := rest;
          List.iter
            (fun (e : Edge.t) ->
              if not dirty.(e.dst) then begin
                dirty.(e.dst) <- true;
                stack := e.dst :: !stack
              end)
            spec.succs.(t);
          go ()
    in
    go ()
  end;
  (* D*: earliest effective deadline among marked tasks placed in either
     run (unplaced-in-both marked tasks schedule in neither). *)
  let dstar = ref max_int in
  for t = 0 to n_tasks - 1 do
    if dirty.(t) && (site_pe.(t) >= 0 || r.r_site_pe.(t) >= 0) then begin
      let idx0 = ist.is_bases.(ss.ss_graph_of.(t)) + ss.ss_local_index.(t) in
      if ist.is_deadline.(idx0) < !dstar then dstar := ist.is_deadline.(idx0)
    end
  done;
  if !dstar = max_int then r.r_steps
  else begin
    (* Pop deadlines are not monotone (the heap pops the min of the
       *ready* set), so the cut is the first recorded pop at or past D*;
       later sub-D* pops re-run in the suffix. *)
    let s = ref 0 in
    while !s < r.r_steps && r.r_pop_deadline.(!s) < !dstar do incr s done;
    !s
  end

let run ?(copy_cap = default_copy_cap) (spec : Spec.t) (clustering : Clustering.t)
    (arch : Arch.t) =
  let site_pe, site_mode = site_arrays spec clustering arch in
  let levels = priorities spec clustering arch in
  match
    exec ~copy_cap ~materialize:true ~record:false ~replay:None spec clustering
      arch ~site_pe ~site_mode ~levels
  with
  | Error _ as e -> e
  | Ok out -> Ok (Option.get out.x_sched)

(* The incremental engine's low-level interface: capture a recording
   alongside a full run, diff a candidate architecture against it, and
   replay the provably unchanged prefix.  [Incremental] wraps this with
   a policy; the raw operations stay exposed for the differential tests
   and the fuzzer's self-test. *)
module Replay = struct
  type nonrec recording = recording

  let steps (r : recording) = r.r_steps

  let compatible (r : recording) ?(copy_cap = default_copy_cap) (spec : Spec.t)
      (clustering : Clustering.t) =
    r.r_spec == spec && r.r_clustering == clustering && r.r_copy_cap = copy_cap

  (* Cross-basis adoption: a recording taken under a *different*
     clustering identity is still a sound diff basis as long as the
     physical spec and copy cap match.  The scheduler consumes the
     clustering only through the task-indexed site/priority arrays —
     recomputed for the candidate by [prepare] — and the recording's
     snapshot is entirely task- and resource-indexed (no cluster ids),
     so [replay_cut]'s per-task diff already accounts for every
     clustering-induced change: tasks whose placement, levels or
     resource environment moved are marked dirty and rescheduled, the
     rest replay verbatim.  Spec identity must still be physical
     ([==]): the diff indexes the recording's arrays by task id. *)
  let adoptable (r : recording) ?(copy_cap = default_copy_cap) (spec : Spec.t) =
    r.r_spec == spec && r.r_copy_cap = copy_cap

  let record ?(copy_cap = default_copy_cap) (spec : Spec.t)
      (clustering : Clustering.t) (arch : Arch.t) =
    let site_pe, site_mode = site_arrays spec clustering arch in
    let levels = priorities spec clustering arch in
    match
      exec ~copy_cap ~materialize:true ~record:true ~replay:None spec clustering
        arch ~site_pe ~site_mode ~levels
    with
    | Error _ as e -> e
    | Ok out -> Ok (Option.get out.x_sched, Option.get out.x_recording)

  (* Recording capture without schedule materialization: the commit
     points of the synthesis loops refresh the replay basis but discard
     the schedule, so building the instance records and activity
     intervals there is pure waste. *)
  let record_only ?(copy_cap = default_copy_cap) (spec : Spec.t)
      (clustering : Clustering.t) (arch : Arch.t) =
    let site_pe, site_mode = site_arrays spec clustering arch in
    let levels = priorities spec clustering arch in
    match
      exec ~copy_cap ~materialize:false ~record:true ~replay:None spec
        clustering arch ~site_pe ~site_mode ~levels
    with
    | Error _ as e -> e
    | Ok out -> Ok (Option.get out.x_recording)

  type prep = {
    p_recording : recording;
    p_spec : Spec.t;
    p_clustering : Clustering.t;
    p_arch : Arch.t;
    p_site_pe : int array;
    p_site_mode : int array;
    p_levels : int array;
    p_cut : int;
  }

  let prepare (r : recording) (spec : Spec.t) (clustering : Clustering.t)
      (arch : Arch.t) =
    let site_pe, site_mode = site_arrays spec clustering arch in
    let levels = priorities spec clustering arch in
    let cut = replay_cut r spec arch ~site_pe ~site_mode ~levels in
    {
      p_recording = r;
      p_spec = spec;
      p_clustering = clustering;
      p_arch = arch;
      p_site_pe = site_pe;
      p_site_mode = site_mode;
      p_levels = levels;
      p_cut = cut;
    }

  let cut p = p.p_cut

  let replay_verdict p =
    match
      exec ~copy_cap:p.p_recording.r_copy_cap ~materialize:false ~record:false
        ~replay:(Some (p.p_recording, p.p_cut)) p.p_spec p.p_clustering p.p_arch
        ~site_pe:p.p_site_pe ~site_mode:p.p_site_mode ~levels:p.p_levels
    with
    | Error _ as e -> e
    | Ok out -> Ok out.x_verdict

  let replay_run p =
    match
      exec ~copy_cap:p.p_recording.r_copy_cap ~materialize:true ~record:false
        ~replay:(Some (p.p_recording, p.p_cut)) p.p_spec p.p_clustering p.p_arch
        ~site_pe:p.p_site_pe ~site_mode:p.p_site_mode ~levels:p.p_levels
    with
    | Error _ as e -> e
    | Ok out -> Ok (Option.get out.x_sched)

  (* Damage the recording so a subsequent replay that includes the
     corrupted step diverges from a fresh run: proves the differential
     harness can detect a broken replay.  [step] selects which pop to
     corrupt (default: the last, so a full-prefix replay is always
     poisoned); callers replaying a partial prefix must pick a step
     below their cut.  Returns false when the recording has no such
     step. *)
  let corrupt_for_selftest ?step (r : recording) =
    let step = match step with Some s -> s | None -> r.r_steps - 1 in
    if step < 0 || step >= r.r_steps then false
    else begin
      r.r_pop_finish.(step) <- r.r_pop_finish.(step) + 1;
      true
    end
end


(* Stage-1 evaluator: an admissible lower bound on [run]'s total
   tardiness, O(V + E + I log I) with no timeline construction.

   Two bounds, both provable against the list scheduler above, combined
   by [max]:

   - Critical-path bound.  For a placed task t, every instance finishes
     no earlier than its arrival plus
       path(t) = exec(t) + max(0, max over placed preds of
                                    comm_lb(edge) + path(src))
     where exec is the placement's execution time (the same
     [Task.exec_on] default the scheduler uses) and comm_lb is zero for
     same-PE edges and the cheapest connecting link's transfer time
     otherwise — the scheduler can only pick a link at least that slow,
     and gap-search/preemption/mode reboots only push starts later.
     Since an instance's arrival and effective deadline shift together by
     copy * period, the per-instance lateness max 0 (path(t) - slack(t))
     is copy-independent and multiplies by the explicit copy count.

   - CPU-load bound.  A general-purpose PE is a serial resource: all the
     work of its resident instances occupies disjoint time.  For any
     prefix of its instances sorted by effective deadline, some instance
     finishes no earlier than (earliest arrival in prefix) + (total work
     of prefix) and has a deadline no later than the prefix's last, so
     the prefix lateness is a valid tardiness witness; distinct PEs have
     distinct witnesses, so per-PE maxima sum.  Work includes the
     deterministic copy-in overhead of inter-PE input edges on CPUs
     without a communication processor (exactly the scheduler's
     [copy_overhead]).  ASICs run in parallel and PPE same-mode windows
     may overlap, so only CPUs contribute.

   Returns [Error] exactly when [run] would: two communicating placed
   tasks on PEs with no connecting link. *)
let estimate ?(copy_cap = default_copy_cap) (spec : Spec.t)
    (clustering : Clustering.t) (arch : Arch.t) =
  let n_tasks = Spec.n_tasks spec in
  (* Placement as int arrays: the estimator runs once per pruned
     candidate, and per-task placement-map probes plus the option boxes
     they allocated were a measurable share of its cost. *)
  let site_pe, _ = site_arrays spec clustering arch in
  (* Exact disconnection check: [run] computes the ready time of every
     placed instance, so it raises iff some placed-placed edge crosses
     unconnected PEs. *)
  let disconnected = ref None in
  Array.iter
    (fun (g : Graph.t) ->
      Array.iter
        (fun (e : Edge.t) ->
          if Option.is_none !disconnected then begin
            let pa = site_pe.(e.src) and pb = site_pe.(e.dst) in
            if
              pa >= 0 && pb >= 0 && pa <> pb
              && Arch.links_between arch pa pb = []
            then disconnected := Some (pa, pb)
          end)
        g.edges)
    spec.graphs;
  match !disconnected with
  | Some (a, b) -> Error (Printf.sprintf "no link between PE %d and PE %d" a b)
  | None ->
      let static = spec_static spec in
      let downstream = static.ss_downstream in
      let exec_on_site (task : Task.t) pe =
        let pe = Vec.get arch.Arch.pes pe in
        max 0 (Task.exec_us_on task pe.Arch.ptype.Pe.id)
      in
      let link_ports =
        Array.init (Vec.length arch.Arch.links) (fun i ->
            max 2 (List.length (Vec.get arch.Arch.links i).Arch.attached))
      in
      let comm_lb (e : Edge.t) src_pe dst_pe =
        if src_pe = dst_pe then 0
        else
          List.fold_left
            (fun acc (l : Arch.link_inst) ->
              min acc
                (Link.comm_time l.ltype ~ports:link_ports.(l.Arch.l_id)
                   ~bytes:e.bytes))
            max_int
            (Arch.links_between arch src_pe dst_pe)
      in
      let path = Array.make n_tasks 0 in
      let path_bound = ref 0 in
      Array.iter
        (fun (g : Graph.t) ->
          let explicit = min (static.ss_hyperperiod / g.Graph.period) copy_cap in
          List.iter
            (fun (task : Task.t) ->
              let pe = site_pe.(task.id) in
              if pe >= 0 then begin
                let chain =
                  List.fold_left
                    (fun acc (e : Edge.t) ->
                      let ps = site_pe.(e.src) in
                      if ps >= 0 then max acc (path.(e.src) + comm_lb e ps pe)
                      else acc)
                    0 spec.preds.(task.id)
                in
                path.(task.id) <- chain + exec_on_site task pe;
                let slack = Graph.task_deadline g task - downstream.(task.id) in
                let late = path.(task.id) - slack in
                if late > 0 then path_bound := !path_bound + (explicit * late)
              end)
            static.ss_topo.(g.id))
        spec.graphs;
      (* Serial-resource load bound per CPU: one pass over the tasks,
         bucketing (deadline, arrival, work) items by hosting PE, so the
         cost is O(tasks + sorting) instead of O(PEs * tasks). *)
      let buckets = Array.make (Vec.length arch.Arch.pes) [] in
      Array.iter
        (fun (g : Graph.t) ->
          let explicit = min (static.ss_hyperperiod / g.Graph.period) copy_cap in
          Array.iter
            (fun (task : Task.t) ->
              let s_pe = site_pe.(task.id) in
              if s_pe >= 0 then begin
                let pe = Vec.get arch.Arch.pes s_pe in
                match pe.Arch.ptype.Pe.pe_class with
                | Pe.Asic_pe _ | Pe.Programmable _ -> ()
                | Pe.General_purpose cpu ->
                    let overhead =
                      if cpu.Pe.has_communication_processor then 0
                      else
                        List.fold_left
                          (fun acc (e : Edge.t) ->
                            let ps = site_pe.(e.src) in
                            if ps >= 0 && ps <> s_pe then
                              acc
                              + Crusade_util.Arith.ceil_div e.bytes
                                  cpu_copy_bytes_per_us
                            else acc)
                          0 spec.preds.(task.id)
                    in
                    let work = exec_on_site task s_pe + overhead in
                    let slack = Graph.task_deadline g task - downstream.(task.id) in
                    for copy = 0 to explicit - 1 do
                      let arrival = g.est + (copy * g.period) in
                      buckets.(s_pe) <-
                        (arrival + slack, arrival, work) :: buckets.(s_pe)
                    done
              end)
            g.tasks)
        spec.graphs;
      let cpu_bound = ref 0 in
      Array.iter
        (fun items ->
          if items <> [] then begin
            let sorted =
              List.sort
                (fun ((d1, a1, w1) : int * int * int) (d2, a2, w2) ->
                  if d1 <> d2 then Int.compare d1 d2
                  else if a1 <> a2 then Int.compare a1 a2
                  else Int.compare w1 w2)
                items
            in
            let worst = ref 0 and work_sum = ref 0 and arr_min = ref max_int in
            List.iter
              (fun (deadline, arrival, work) ->
                work_sum := !work_sum + work;
                if arrival < !arr_min then arr_min := arrival;
                let late = !arr_min + !work_sum - deadline in
                if late > !worst then worst := late)
              sorted;
            cpu_bound := !cpu_bound + !worst
          end)
        buckets;
      Ok (max !path_bound !cpu_bound)
