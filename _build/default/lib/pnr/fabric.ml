type outcome =
  | Routed of { critical_delay_ns : float; overflow_ratio : float }
  | Unroutable

(* Channel occupancy: [h.(r).(c)] counts nets in the horizontal channel
   segment between rows [r] and [r+1] at column [c]; [v] symmetrically. *)
type channels = { h : int array array; v : int array array }

let make_channels (d : Device.t) =
  {
    h = Array.make_matrix (d.rows - 1) d.cols 0;
    v = Array.make_matrix d.rows (d.cols - 1) 0;
  }

(* Walk an L-shaped route from [(r0,c0)] to [(r1,c1)], applying [f] to
   every channel segment crossed.  [hv] selects horizontal-then-vertical
   or the opposite. *)
let walk_l channels ~hv (r0, c0) (r1, c1) f =
  let walk_horizontal r ca cb =
    let lo = min ca cb and hi = max ca cb in
    for c = lo to hi - 1 do
      f channels.v.(r) c
    done
  in
  let walk_vertical c ra rb =
    let lo = min ra rb and hi = max ra rb in
    for r = lo to hi - 1 do
      f channels.h.(r) c
    done
  in
  if hv then begin
    walk_horizontal r0 c0 c1;
    walk_vertical c1 r0 r1
  end
  else begin
    walk_vertical c0 r0 r1;
    walk_horizontal r1 c0 c1
  end

let segment_count (r0, c0) (r1, c1) = abs (r0 - r1) + abs (c0 - c1)

(* Choose the L orientation with the smaller peak occupancy. *)
let route_connection channels src dst =
  let peak hv =
    let m = ref 0 in
    walk_l channels ~hv src dst (fun row c -> m := max !m row.(c));
    !m
  in
  let hv = peak true <= peak false in
  walk_l channels ~hv src dst (fun row c -> row.(c) <- row.(c) + 1);
  hv

(* Congestion-aware delay of a connection routed with orientation [hv]. *)
let connection_delay (d : Device.t) channels ~hv src dst =
  let overflow_penalty = 5.0 in
  let total = ref 0.0 in
  walk_l channels ~hv src dst (fun row c ->
      let over = max 0 (row.(c) - d.wires_per_channel) in
      total := !total +. d.segment_delay_ns *. (1.0 +. (overflow_penalty *. float_of_int over)));
  !total

let place ?center rng (d : Device.t) ~occupied ~count =
  (* Compact placement: pick a seed cell ([center] when given, otherwise a
     random free cell), then grab the nearest free cells (Manhattan). *)
  let free = ref [] in
  for r = d.rows - 1 downto 0 do
    for c = d.cols - 1 downto 0 do
      if not occupied.(r).(c) then free := (r, c) :: !free
    done
  done;
  let free = Array.of_list !free in
  if Array.length free < count then None
  else begin
    let seed_r, seed_c =
      match center with
      | Some cell -> cell
      | None -> free.(Crusade_util.Rng.int rng (Array.length free))
    in
    let dist (r, c) = abs (r - seed_r) + abs (c - seed_c) in
    let keyed =
      Array.map (fun cell -> (dist cell, Crusade_util.Rng.int rng 4, cell)) free
    in
    Array.sort compare keyed;
    let chosen = Array.init count (fun i -> let _, _, cell = keyed.(i) in cell) in
    Array.iter (fun (r, c) -> occupied.(r).(c) <- true) chosen;
    Some chosen
  end

(* Long connections need repeater cells (unused PFUs acting as
   feed-throughs) inside their bounding box; a net that cannot find them
   takes a slow scenic detour, and too many such nets make the design
   unroutable.  This is what breaks designs at 100% PFU utilization while
   95% still routes. *)
let repeater_reach = 8

let repeaters_missing ~occupied (r0, c0) (r1, c1) =
  let length = segment_count (r0, c0) (r1, c1) in
  let needed = (max 0 (length - 1)) / repeater_reach in
  if needed = 0 then 0
  else begin
    let rows = Array.length occupied and cols = Array.length occupied.(0) in
    (* Routers detour a little outside the bounding box: search a
       2-cell-dilated window. *)
    let free = ref 0 in
    for r = max 0 (min r0 r1 - 2) to min (rows - 1) (max r0 r1 + 2) do
      for c = max 0 (min c0 c1 - 2) to min (cols - 1) (max c0 c1 + 2) do
        if not occupied.(r).(c) then incr free
      done
    done;
    max 0 (needed - !free)
  end

type route_stats = { mutable connections : int; mutable starved : int }

(* Route every net of a placed circuit; returns per-net (level, delay). *)
let route_circuit (d : Device.t) channels ~occupied ~stats (circuit : Circuit.t) cells =
  Array.map
    (fun (net : Circuit.net) ->
      let src = cells.(net.driver) in
      let delay =
        List.fold_left
          (fun acc sink ->
            let dst = cells.(sink) in
            if segment_count src dst = 0 then acc
            else begin
              stats.connections <- stats.connections + 1;
              let missing = repeaters_missing ~occupied src dst in
              if missing > 0 then stats.starved <- stats.starved + 1;
              let hv = route_connection channels src dst in
              let base = connection_delay d channels ~hv src dst in
              max acc (base *. (1.0 +. (0.8 *. float_of_int missing)))
            end)
          0.0 net.sinks
      in
      (net.level, delay))
    circuit.nets

let route_pin_nets rng (d : Device.t) channels ~count =
  (* Periphery pads to random core cells: consumes edge-adjacent capacity. *)
  for _ = 1 to count do
    let side = Crusade_util.Rng.int rng 4 in
    let pad =
      match side with
      | 0 -> (0, Crusade_util.Rng.int rng d.cols)
      | 1 -> (d.rows - 1, Crusade_util.Rng.int rng d.cols)
      | 2 -> (Crusade_util.Rng.int rng d.rows, 0)
      | _ -> (Crusade_util.Rng.int rng d.rows, d.cols - 1)
    in
    let core = (Crusade_util.Rng.int rng d.rows, Crusade_util.Rng.int rng d.cols) in
    if segment_count pad core > 0 then ignore (route_connection channels pad core)
  done

let overflow_ratio (d : Device.t) channels =
  let over = ref 0 and capacity = ref 0 in
  let scan rows =
    Array.iter
      (fun row ->
        Array.iter
          (fun usage ->
            capacity := !capacity + d.wires_per_channel;
            over := !over + max 0 (usage - d.wires_per_channel))
          row)
      rows
  in
  scan channels.h;
  scan channels.v;
  if !capacity = 0 then 0.0 else float_of_int !over /. float_of_int !capacity

let starvation_limit = 0.20

let place_and_route (d : Device.t) ~fillers ~circuit ~extra_pin_nets ~seed =
  let rng = Crusade_util.Rng.create seed in
  let occupied = Array.make_matrix d.rows d.cols false in
  let channels = make_channels d in
  (* Place everything first so repeater availability reflects the final
     occupancy, then route. *)
  let placements =
    List.map
      (fun (f : Circuit.t) -> (f, place rng d ~occupied ~count:f.pfu_count))
      fillers
  in
  let fillers_ok = List.for_all (fun (_, p) -> p <> None) placements in
  if not fillers_ok then Unroutable
  else begin
    match
      place ~center:(d.rows / 2, d.cols / 2) rng d ~occupied
        ~count:circuit.Circuit.pfu_count
    with
    | None -> Unroutable
    | Some cells ->
        let stats = { connections = 0; starved = 0 } in
        List.iter
          (fun ((f : Circuit.t), p) ->
            match p with
            | Some fcells -> ignore (route_circuit d channels ~occupied ~stats f fcells)
            | None -> ())
          placements;
        route_pin_nets rng d channels ~count:extra_pin_nets;
        let routed = route_circuit d channels ~occupied ~stats circuit cells in
        let starved_fraction =
          if stats.connections = 0 then 0.0
          else float_of_int stats.starved /. float_of_int stats.connections
        in
        if starved_fraction > starvation_limit then Unroutable
        else
        let ratio = overflow_ratio d channels in
        (* Critical path: logic depth plus, per level, the slowest net. *)
        let level_max = Array.make circuit.depth 0.0 in
        Array.iter
          (fun (level, delay) ->
            if level >= 0 && level < circuit.depth then
              level_max.(level) <- max level_max.(level) delay)
          routed;
        let wire = Array.fold_left ( +. ) 0.0 level_max in
        let logic = float_of_int circuit.depth *. d.pfu_delay_ns in
        Routed { critical_delay_ns = logic +. wire; overflow_ratio = ratio }
  end
