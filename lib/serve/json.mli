(** Minimal JSON for the job server: a strict recursive-descent parser
    for request bodies and a printer for responses.

    The build deliberately has no JSON dependency; the server's needs
    are small (flat objects, string/int/bool fields, one level of
    nesting for options and change events) and a strict parser that
    rejects malformed input early is exactly what an HTTP surface
    wants. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict parse of a complete JSON value; trailing garbage is an
    error.  Errors carry a byte offset. *)

val to_string : t -> string
(** Compact (no-whitespace) rendering.  Object fields print in the
    order given; integers render without a fractional part, so a value
    that round-trips through [parse] of integer-only input prints
    identically. *)

val escape : string -> string
(** The body of a JSON string literal for [s] (no surrounding quotes). *)

val member : string -> t -> t option
(** Field lookup on objects; [None] on other constructors. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option
