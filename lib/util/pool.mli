(** Deterministic work pool over OCaml 5 domains.

    Worker domains are spawned once (lazily, on first parallel call) and
    reused; jobs are index-ordered and results are returned in index
    order, so a parallel map is observably identical to its sequential
    counterpart.  When an exception escapes a job, the exception of the
    {e lowest} job index is re-raised in the caller — again matching what
    the sequential loop would have raised first.

    With [jobs <= 1] (or a single element) every entry point degrades to
    a plain inline loop in the calling domain: no domains are spawned,
    no locks are taken, and single-core behaviour is untouched. *)

type t

val create : unit -> t
(** A fresh pool with no workers; workers are spawned on demand by the
    parallel entry points, up to the requested [jobs] minus the calling
    domain (which always participates). *)

val global : unit -> t
(** The shared process-wide pool used by the synthesis hot loops.  Its
    workers are joined automatically at exit. *)

val recommended_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: the parallelism
    the machine can actually deliver while leaving a core for the
    caller's bookkeeping. *)

val default_jobs : unit -> int
(** Value of the [CRUSADE_JOBS] environment variable clamped to
    [1 .. recommended_jobs ()]; [1] when unset or unparsable. *)

val size : t -> int
(** Number of concurrent tasks this pool can usefully run: the worker
    ceiling clamped to what the machine delivers ({!recommended_jobs}).
    [--portfolio 0] resolves to this many trajectories. *)

val warm : t -> int -> unit
(** [warm t n] grows the pool to [n] worker domains (clamped to the
    internal ceiling) without submitting work.  Idempotent; spawned
    domains are reused across successive rounds rather than torn down
    per batch. *)

val submit : t -> (unit -> unit) -> unit
(** [submit t task] enqueues [task] to run on some worker domain and
    returns immediately.  The task must catch its own exceptions (a
    stray raise is swallowed by the worker backstop) and signal its own
    completion.  Pair with {!warm}: submission does not spawn workers,
    so an unwarmed pool only drains tasks once a parallel entry point
    spawns some. *)

val map_n : ?jobs:int -> t -> (int -> 'a) -> int -> 'a array
(** [map_n ~jobs t f n] computes [|f 0; f 1; ...; f (n-1)|] with up to
    [jobs] domains (default {!recommended_jobs}).  An explicit [jobs]
    is capped at [Domain.recommended_domain_count ()] — surplus runners
    would only time-share cores — and the cap never changes results,
    which are in index order; the lowest-index exception is
    re-raised. *)

val parallel_map : ?jobs:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Element-wise {!map_n} over an array. *)

val parallel_find_first : ?jobs:int -> t -> (int -> 'a option) -> int -> 'a option
(** [parallel_find_first ~jobs t f n] returns [f i] for the {e smallest}
    [i < n] with [f i <> None], evaluating candidates in index-ordered
    batches of [jobs]; later batches are not evaluated once an earlier
    batch produced a hit.  Deterministic: the winner never depends on
    relative domain speed. *)

val shutdown : t -> unit
(** Joins all workers.  The pool remains usable afterwards only
    sequentially ([jobs <= 1] paths); parallel calls respawn workers. *)
