let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b =
  if a = 0 || b = 0 then 0
  else begin
    let g = gcd a b in
    let q = a / g in
    (* Exact pre-multiplication check: [q * b] fits iff [q <= max_int / b]. *)
    if q > max_int / b then failwith "Arith.lcm: hyperperiod overflow"
    else q * b
  end

let lcm_list = function
  | [] -> invalid_arg "Arith.lcm_list: empty list"
  | p :: rest -> List.fold_left lcm p rest

let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let clamp_float ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
