test/test_util.ml: Alcotest Array Crusade_util List QCheck QCheck_alcotest String
