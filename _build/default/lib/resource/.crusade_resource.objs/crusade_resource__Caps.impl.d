lib/resource/caps.ml: Pe
