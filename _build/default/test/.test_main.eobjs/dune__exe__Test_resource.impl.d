test/test_resource.ml: Alcotest Crusade_resource Helpers List
