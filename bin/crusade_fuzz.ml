(* crusade_fuzz — deterministic fuzz / differential harness.

   Seeds drive [Comm_system.generate] parameters; every seed is
   synthesized under the full evaluator-configuration matrix
   ({prune,memo} on/off x incremental rescheduling on/off x incremental
   merge on/off x jobs 1/N x dynamic reconfiguration on/off) and the
   harness asserts that

   (a) within each reconfiguration flavor, every evaluator configuration
       produces a bit-identical result (cost, counts, verdict and the
       full schedule fingerprint);
   (b) the reference result passes the end-to-end audit
       ([Crusade_core.audit] / [Ft.audit]), which includes the
       independent schedule validation;
   (b') on the reconfiguration flavor, a portfolio axis: --portfolio 1
       reproduces the plain flow bit for bit, and at --portfolio 4 the
       winner passes the audit, is never worse than the unperturbed
       trajectory 0, and is identical with the shared incumbent bound
       on or off (so bound aborts provably never kill a would-be
       winner);
   (b'') on the reconfiguration flavor, a serve axis: the spec pushed
       through the in-process job server (DSL text in, JSON result out)
       is byte-identical to [Core.result_json] of the direct flow, and
       an identical re-submission is served from the result cache with
       the same bytes;
   (c) on any failure, a minimized repro (seed + generator parameters +
       configuration + findings) is written as JSON and the exit status
       is nonzero.

   [--selftest] turns the harness on itself: it corrupts an accepted
   architecture with every [Audit.Mutate] kind (plus schedule-level
   tamperings) and asserts the auditor flags each one, and corrupts a
   live scheduler recording to prove a broken prefix replay would
   diverge from a fresh run — so the oracles are tested, not trusted. *)

module Core = Crusade.Crusade_core
module Ft = Crusade_fault.Ft
module Audit = Crusade_alloc.Audit
module Arch = Crusade_alloc.Arch
module Compat = Crusade_reconfig.Compat
module Schedule = Crusade_sched.Schedule
module Clustering = Crusade_cluster.Clustering
module Spec = Crusade_taskgraph.Spec
module W = Crusade_workloads.Comm_system
module Rng = Crusade_util.Rng
module Pool = Crusade_util.Pool

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

type args = {
  mutable seed_lo : int;
  mutable seed_hi : int;
  mutable ft_every : int;
  mutable jobs_max : int;
  mutable out : string;
  mutable selftest : bool;
}

let usage () =
  prerr_endline
    "usage: crusade_fuzz [--seeds A..B] [--ft-every N] [--jobs N] [--out FILE] \
     [--selftest]";
  exit 2

let parse_args () =
  let a =
    {
      seed_lo = 1;
      seed_hi = 50;
      ft_every = 10;
      jobs_max = max 2 (Pool.default_jobs ());
      out = "fuzz-repro.json";
      selftest = false;
    }
  in
  let rec loop = function
    | [] -> ()
    | "--seeds" :: range :: rest -> (
        match String.index_opt range '.' with
        | Some i
          when i + 1 < String.length range
               && range.[i + 1] = '.'
               && i > 0
               && i + 2 < String.length range -> (
            match
              ( int_of_string_opt (String.sub range 0 i),
                int_of_string_opt
                  (String.sub range (i + 2) (String.length range - i - 2)) )
            with
            | Some lo, Some hi when lo <= hi ->
                a.seed_lo <- lo;
                a.seed_hi <- hi;
                loop rest
            | _ -> usage ())
        | _ -> usage ())
    | "--ft-every" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            a.ft_every <- n;
            loop rest
        | _ -> usage ())
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 1 ->
            a.jobs_max <- n;
            loop rest
        | _ -> usage ())
    | "--out" :: file :: rest ->
        a.out <- file;
        loop rest
    | "--selftest" :: rest ->
        a.selftest <- true;
        loop rest
    | _ -> usage ()
  in
  loop (List.tl (Array.to_list Sys.argv));
  a

(* ------------------------------------------------------------------ *)
(* Minimized JSON repros                                               *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_list items = "[" ^ String.concat ", " items ^ "]"

let json_params (p : W.params) =
  Printf.sprintf
    "{\"name\": %s, \"n_tasks\": %d, \"seed\": %d, \"hw_fraction\": %.17g, \
     \"family_slots\": %d, \"asic_fraction\": %.17g, \"cpld_fraction\": %.17g}"
    (json_string p.W.name) p.W.n_tasks p.W.seed p.W.hw_fraction p.W.family_slots
    p.W.asic_fraction p.W.cpld_fraction

type config = {
  reconfig : bool;
  prune : bool;
  memo : bool;
  inc : bool;  (* incremental rescheduling *)
  inc_merge : bool;  (* in-place journaled merge trials *)
  jobs : int;
}

let json_config c =
  Printf.sprintf
    "{\"reconfig\": %b, \"prune\": %b, \"memo\": %b, \"incremental\": %b, \
     \"incremental_merge\": %b, \"jobs\": %d}"
    c.reconfig c.prune c.memo c.inc c.inc_merge c.jobs

let describe_config c =
  Printf.sprintf
    "reconfig=%b prune=%b memo=%b incremental=%b incremental_merge=%b jobs=%d"
    c.reconfig c.prune c.memo c.inc c.inc_merge c.jobs

(* One failure is enough: the repro is minimized by construction (a
   single seed, its generator parameters and the offending
   configuration reproduce it deterministically). *)
let fail ~out ~kind ?seed ?params ?config details =
  let fields =
    [ ("schema", json_string "crusade-fuzz-repro-1"); ("kind", json_string kind) ]
    @ (match seed with Some s -> [ ("seed", string_of_int s) ] | None -> [])
    @ (match params with Some p -> [ ("params", json_params p) ] | None -> [])
    @ (match config with Some c -> [ ("config", json_config c) ] | None -> [])
    @ [ ("details", json_list (List.map json_string details)) ]
  in
  let json =
    "{"
    ^ String.concat ", " (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
    ^ "}\n"
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.eprintf "FAIL [%s]%s\n" kind
    (match seed with Some s -> Printf.sprintf " seed %d" s | None -> "");
  List.iter (fun d -> Printf.eprintf "  %s\n" d) details;
  Printf.eprintf "repro written to %s\n%!" out;
  exit 1

(* ------------------------------------------------------------------ *)
(* Differential synthesis                                              *)

let lib = Crusade_resource.Library.stock ()

let params_of_seed seed =
  let rng = Rng.create (0x5EED0 + seed) in
  {
    W.name = Printf.sprintf "fuzz-%d" seed;
    n_tasks = Rng.int_in rng 24 64;
    seed;
    hw_fraction = 0.3 +. Rng.float rng 0.4;
    family_slots = Rng.int_in rng 2 4;
    asic_fraction = Rng.float rng 0.2;
    cpld_fraction = Rng.float rng 0.2;
  }

let configs_of ~jobs_max reconfig =
  [
    { reconfig; prune = true; memo = true; inc = true; inc_merge = true; jobs = 1 };
    { reconfig; prune = false; memo = false; inc = true; inc_merge = true; jobs = 1 };
    { reconfig; prune = true; memo = true; inc = false; inc_merge = true; jobs = 1 };
    { reconfig; prune = false; memo = false; inc = false; inc_merge = true; jobs = 1 };
    (* incremental-merge off: batch per-trial copies must reproduce the
       in-place journaled merge loop bit for bit *)
    { reconfig; prune = true; memo = true; inc = true; inc_merge = false; jobs = 1 };
    { reconfig; prune = true; memo = true; inc = true; inc_merge = true; jobs = jobs_max };
    { reconfig; prune = false; memo = false; inc = false; inc_merge = true; jobs = jobs_max };
  ]

let options_of (c : config) =
  {
    Core.default_options with
    Core.dynamic_reconfiguration = c.reconfig;
    prune = c.prune;
    memo = c.memo;
    incremental = c.inc;
    incremental_merge = c.inc_merge;
    jobs = c.jobs;
  }

let schedule_fingerprint (s : Schedule.t) =
  Array.fold_left
    (fun h (i : Schedule.instance) ->
      Hashtbl.hash
        (h, i.Schedule.i_task, i.Schedule.i_copy, i.Schedule.start, i.Schedule.finish))
    0 s.Schedule.instances

let signature_of (r : Core.result) =
  Printf.sprintf
    "cost=%h n_pes=%d n_links=%d n_modes=%d deadlines_met=%b tardiness=%d \
     schedule=%08x"
    r.Core.cost r.Core.n_pes r.Core.n_links r.Core.n_modes r.Core.deadlines_met
    r.Core.schedule.Schedule.total_tardiness
    (schedule_fingerprint r.Core.schedule)

let violation_strings vs =
  List.map (fun (v : Audit.violation) -> Printf.sprintf "[%s] %s" v.Audit.rule v.Audit.detail) vs

(* Portfolio axis (reconfig flavor only, to bound the per-seed cost):
   --portfolio 1 must be the plain flow bit for bit; at --portfolio 4
   the winner must pass the end-to-end audit, must never be worse than
   trajectory 0 (the unperturbed baseline), and must be the same with
   the incumbent bound on or off — the differential oracle that a bound
   abort never killed a trajectory that would have won. *)
let portfolio_checks ~out ~jobs_max ~seed ~params ~spec ~ref_sig reconfig =
  let config jobs =
    { reconfig; prune = true; memo = true; inc = true; inc_merge = true; jobs }
  in
  let flow o = Core.synthesize ~options:o spec lib in
  let cost (r : Core.result) = r.Core.cost in
  let met (r : Core.result) = r.Core.deadlines_met in
  (match
     Core.Portfolio.run ~n:1 ~options:(options_of (config 1)) ~flow ~cost ~met
       ()
   with
  | Error msg ->
      fail ~out ~kind:"portfolio-error" ~seed ~params ~config:(config 1) [ msg ]
  | Ok o ->
      let s = signature_of o.Core.Portfolio.best in
      if s <> ref_sig then
        fail ~out ~kind:"portfolio-passthrough-mismatch" ~seed ~params
          ~config:(config 1)
          [
            Printf.sprintf "plain flow:    %s" ref_sig;
            Printf.sprintf "portfolio 1:   %s" s;
          ]);
  let pf_config = config jobs_max in
  let run_4 use_bound =
    match
      Core.Portfolio.run ~n:4 ~use_bound ~options:(options_of pf_config) ~flow
        ~cost ~met ()
    with
    | Error msg ->
        fail ~out ~kind:"portfolio-error" ~seed ~params ~config:pf_config [ msg ]
    | Ok o -> o
  in
  let on = run_4 true in
  let off = run_4 false in
  let key (o : Core.result Core.Portfolio.outcome) =
    ( o.Core.Portfolio.best_index,
      signature_of o.Core.Portfolio.best )
  in
  if key on <> key off then
    fail ~out ~kind:"portfolio-bound-mismatch" ~seed ~params ~config:pf_config
      [
        Printf.sprintf "bound on:  trajectory %d, %s" on.Core.Portfolio.best_index
          (signature_of on.Core.Portfolio.best);
        Printf.sprintf "bound off: trajectory %d, %s"
          off.Core.Portfolio.best_index
          (signature_of off.Core.Portfolio.best);
      ];
  (match on.Core.Portfolio.trajectories.(0) with
  | Core.Portfolio.Completed { t_cost; t_met } ->
      (* The winner may only beat trajectory 0 (feasibility first, then
         cost); it can exceed its cost only by fixing a deadline miss. *)
      let best_met = on.Core.Portfolio.best_met in
      if (t_met && not best_met)
         || (t_met = best_met && on.Core.Portfolio.best_cost > t_cost)
      then
        fail ~out ~kind:"portfolio-worse-than-baseline" ~seed ~params
          ~config:pf_config
          [
            Printf.sprintf "trajectory 0: cost=%h met=%b" t_cost t_met;
            Printf.sprintf "winner (%d):  cost=%h met=%b"
              on.Core.Portfolio.best_index on.Core.Portfolio.best_cost best_met;
          ]
  | Core.Portfolio.Failed msg ->
      fail ~out ~kind:"portfolio-baseline-failed" ~seed ~params ~config:pf_config
        [ msg ]
  | Core.Portfolio.Aborted _ ->
      fail ~out ~kind:"portfolio-baseline-aborted" ~seed ~params
        ~config:pf_config
        [ "trajectory 0 is exempt from bound and budget; it cannot abort" ]);
  match Core.audit on.Core.Portfolio.best with
  | [] -> ()
  | vs ->
      fail ~out ~kind:"portfolio-audit-violation" ~seed ~params ~config:pf_config
        (violation_strings vs)

(* Resynth axis (reconfig flavor only, to bound the per-seed cost): take
   the already-synthesized reference as the deployed system, apply a
   change event with [Core.Resynth], and assert that (a) the repaired
   architecture audits clean and (b) the warm repair reaches the same
   feasibility verdict as synthesizing the post-change workload from
   scratch.  Costs may legitimately differ — the repair is constrained
   by the deployed placement — so the oracle is the verdict, not the
   signature.  The change kind rotates with the seed so a seed range
   covers the whole matrix. *)
let resynth_checks ~out ~seed ~params ~spec ~options ~reference =
  let module R = Core.Resynth in
  let n_graphs = Array.length spec.Spec.graphs in
  let last = n_graphs - 1 in
  let kind, change =
    match if n_graphs < 2 then 2 else seed mod 4 with
    | 0 -> ("graph-arrival", R.Graph_arrival [ last ])
    | 1 -> ("upgrade", R.Upgrade [ last ])
    | 2 -> ("pe-fail", R.Pe_failure 0)
    | _ -> ("drift", R.Exec_drift 20)
  in
  let deployed =
    match change with
    | R.Graph_arrival gs | R.Upgrade gs -> (
        match
          Core.synthesize ~options
            ~include_graph:(fun g -> not (List.mem g gs))
            spec lib
        with
        | Ok r -> r
        | Error msg ->
            fail ~out
              ~kind:("resynth-" ^ kind ^ "-deploy-error")
              ~seed ~params [ msg ])
    | R.Graph_departure _ | R.Pe_failure _ | R.Exec_drift _ -> reference
  in
  let rep =
    match R.apply ~options deployed change with
    | Ok rep -> rep
    | Error msg ->
        fail ~out ~kind:("resynth-" ^ kind ^ "-error") ~seed ~params [ msg ]
  in
  (match R.audit_report rep with
  | [] -> ()
  | vs ->
      fail ~out
        ~kind:("resynth-" ^ kind ^ "-audit-violation")
        ~seed ~params (violation_strings vs));
  let scratch =
    match change with
    | R.Graph_arrival _ | R.Upgrade _ | R.Pe_failure _ ->
        Core.synthesize ~options spec lib
    | R.Graph_departure gs ->
        Core.synthesize ~options
          ~include_graph:(fun g -> not (List.mem g gs))
          spec lib
    | R.Exec_drift pct -> (
        match R.drift_spec spec pct with
        | Ok spec' -> Core.synthesize ~options spec' lib
        | Error _ as e -> e)
  in
  match scratch with
  | Error msg ->
      fail ~out ~kind:("resynth-" ^ kind ^ "-scratch-error") ~seed ~params [ msg ]
  | Ok s ->
      let warm = R.final_result rep <> None in
      if warm <> s.Core.deadlines_met then
        fail ~out
          ~kind:("resynth-" ^ kind ^ "-verdict-mismatch")
          ~seed ~params
          [
            Printf.sprintf "warm repair:  %s"
              (if warm then "feasible" else "infeasible");
            Printf.sprintf "from scratch: %s"
              (if s.Core.deadlines_met then "feasible" else "infeasible");
          ]

(* Serve axis (reconfig flavor only): the seed's spec DSL-printed and
   pushed through an in-process job server must produce exactly
   [Core.result_json] of the reference result — the whole
   parse/canonicalize/queue/pool/trace pipeline adds nothing and loses
   nothing — and an identical re-submission must be served from the
   result cache byte for byte, without a second synthesis. *)
module Serve = Crusade_serve.Server
module SHttp = Crusade_serve.Http
module SJson = Crusade_serve.Json

let serve_checks ~out ~seed ~params ~spec ~reference =
  let expected = Core.result_json reference in
  let server =
    Serve.create
      { Serve.max_in_flight = 1; queue_cap = 4; default_jobs = 1; lib;
        pre_run = None }
  in
  let call ?(body = "") meth path =
    Serve.handle server { SHttp.meth; path; query = []; headers = []; body }
  in
  let body =
    Printf.sprintf "{\"spec\":\"%s\"}"
      (SJson.escape (Crusade_taskgraph.Dsl.print spec))
  in
  let submit () =
    let resp = call ~body "POST" "/jobs" in
    if resp.SHttp.status <> 201 then
      fail ~out ~kind:"serve-submit-rejected" ~seed ~params [ resp.SHttp.body ];
    let field name =
      Option.bind
        (Result.to_option (SJson.parse resp.SHttp.body))
        (SJson.member name)
    in
    match field "id" with
    | Some (SJson.Str id) -> (id, field "cache_hit" = Some (SJson.Bool true))
    | _ -> fail ~out ~kind:"serve-no-id" ~seed ~params [ resp.SHttp.body ]
  in
  let wait_done id =
    let deadline = Unix.gettimeofday () +. 300. in
    let rec go () =
      let st = call "GET" ("/jobs/" ^ id) in
      let state =
        Option.bind
          (Option.bind
             (Result.to_option (SJson.parse st.SHttp.body))
             (SJson.member "state"))
          SJson.str
      in
      match state with
      | Some "done" -> ()
      | Some ("failed" | "cancelled") ->
          fail ~out ~kind:"serve-job-failed" ~seed ~params [ st.SHttp.body ]
      | _ ->
          if Unix.gettimeofday () > deadline then
            fail ~out ~kind:"serve-timeout" ~seed ~params [ st.SHttp.body ];
          Thread.yield ();
          go ()
    in
    go ()
  in
  let result_of id = (call "GET" ("/jobs/" ^ id ^ "/result")).SHttp.body in
  let id, hit = submit () in
  if hit then
    fail ~out ~kind:"serve-phantom-cache-hit" ~seed ~params
      [ "first submission claimed a cache hit" ];
  wait_done id;
  let fresh = result_of id in
  if fresh <> expected then
    fail ~out ~kind:"serve-result-mismatch" ~seed ~params
      [
        Printf.sprintf "direct flow: %s" expected;
        Printf.sprintf "via server:  %s" fresh;
      ];
  let id2, hit2 = submit () in
  if not hit2 then
    fail ~out ~kind:"serve-cache-miss" ~seed ~params
      [ "identical re-submission was not served from the cache" ];
  let cached = result_of id2 in
  if cached <> fresh then
    fail ~out ~kind:"serve-cache-divergence" ~seed ~params
      [
        Printf.sprintf "fresh run: %s" fresh;
        Printf.sprintf "cached:    %s" cached;
      ]

let run_seed ~out ~jobs_max ~with_ft seed =
  let params = params_of_seed seed in
  let spec = W.generate lib params in
  List.iter
    (fun reconfig ->
      let configs = configs_of ~jobs_max reconfig in
      let results =
        List.map
          (fun c ->
            match Core.synthesize ~options:(options_of c) spec lib with
            | Ok r -> (c, r)
            | Error msg ->
                fail ~out ~kind:"synthesis-error" ~seed ~params ~config:c [ msg ])
          configs
      in
      let (ref_config, reference), others =
        match results with r :: rest -> (r, rest) | [] -> assert false
      in
      let ref_sig = signature_of reference in
      List.iter
        (fun (c, r) ->
          let s = signature_of r in
          if s <> ref_sig then
            fail ~out ~kind:"differential-mismatch" ~seed ~params ~config:c
              [
                Printf.sprintf "reference (%s): %s" (describe_config ref_config)
                  ref_sig;
                Printf.sprintf "divergent (%s): %s" (describe_config c) s;
              ])
        others;
      (match Core.audit reference with
      | [] -> ()
      | vs ->
          fail ~out ~kind:"audit-violation" ~seed ~params ~config:ref_config
            (violation_strings vs));
      if reconfig then begin
        portfolio_checks ~out ~jobs_max ~seed ~params ~spec ~ref_sig reconfig;
        resynth_checks ~out ~seed ~params ~spec
          ~options:(options_of ref_config) ~reference;
        serve_checks ~out ~seed ~params ~spec ~reference
      end)
    [ true; false ];
  if with_ft then begin
    match Ft.synthesize ~options:Core.default_options spec lib with
    | Error msg ->
        fail ~out ~kind:"ft-synthesis-error" ~seed ~params [ msg ]
    | Ok fr -> (
        match Ft.audit fr with
        | [] -> ()
        | vs ->
            fail ~out ~kind:"ft-audit-violation" ~seed ~params
              (violation_strings vs))
  end

(* ------------------------------------------------------------------ *)
(* Auditor self-test: seeded corruption must always be caught          *)

(* Per-cluster activity intervals, used to steer the
   incompatible-sharing mutation toward cluster pairs that actually
   overlap in time (so the corruption is undetectable only if the
   auditor is broken). *)
let cluster_intervals (r : Core.result) =
  let n = Array.length r.Core.clustering.Clustering.clusters in
  let ivls = Array.make n [] in
  Array.iter
    (fun (i : Schedule.instance) ->
      if i.Schedule.finish > i.Schedule.start then begin
        let cid = r.Core.clustering.Clustering.of_task.(i.Schedule.i_task) in
        ivls.(cid) <- (i.Schedule.start, i.Schedule.finish) :: ivls.(cid)
      end)
    r.Core.schedule.Schedule.instances;
  ivls

let lists_overlap xs ys =
  List.exists (fun (s, f) -> List.exists (fun (s', f') -> s < f' && s' < f) ys) xs

let reported_of (r : Core.result) =
  {
    Audit.r_cost = r.Core.cost;
    r_n_pes = r.Core.n_pes;
    r_n_links = r.Core.n_links;
    r_n_modes = r.Core.n_modes;
  }

(* Outcome of one architecture mutation kind against one fixture. *)
let try_mutation (r : Core.result) kind =
  let m = Compat.matrix r.Core.spec r.Core.schedule in
  let ivls = cluster_intervals r in
  let overlaps c c' = lists_overlap ivls.(c) ivls.(c') in
  let arch = Arch.copy r.Core.arch in
  match
    Audit.Mutate.apply
      ~compat:(fun a b -> m.(a).(b))
      ~overlaps r.Core.spec r.Core.clustering arch (reported_of r) kind
  with
  | Error why -> `Inapplicable why
  | Ok rep ->
      let r' =
        {
          r with
          Core.arch;
          cost = rep.Audit.r_cost;
          n_pes = rep.Audit.r_n_pes;
          n_links = rep.Audit.r_n_links;
          n_modes = rep.Audit.r_n_modes;
        }
      in
      let vs = Core.audit r' in
      let expected = Audit.Mutate.expected_rule kind in
      if List.exists (fun (v : Audit.violation) -> v.Audit.rule = expected) vs then
        `Detected
      else `Missed (expected, vs)

(* Schedule-level tamperings, caught by the composed audit through the
   independent validator. *)
let schedule_mutations =
  [
    (* The victim must arrive strictly after time zero: the validator
       treats a negative start as "never scheduled", so rewinding an
       arrival-0 instance would hide it rather than violate the rule. *)
    ( "early-start",
      "arrival",
      (fun (i : Schedule.instance) -> i.Schedule.arrival > 0),
      fun (i : Schedule.instance) -> i.Schedule.start <- i.Schedule.arrival - 1 );
    ( "short-execution",
      "execution-time",
      (fun (_ : Schedule.instance) -> true),
      fun (i : Schedule.instance) -> i.Schedule.finish <- i.Schedule.start );
  ]

let try_schedule_mutation (r : Core.result) (name, expected, eligible, tamper) =
  let instances =
    Array.map
      (fun (i : Schedule.instance) ->
        {
          Schedule.i_task = i.Schedule.i_task;
          i_copy = i.Schedule.i_copy;
          arrival = i.Schedule.arrival;
          abs_deadline = i.Schedule.abs_deadline;
          start = i.Schedule.start;
          finish = i.Schedule.finish;
        })
      r.Core.schedule.Schedule.instances
  in
  let victim =
    Array.to_list instances
    |> List.find_opt (fun (i : Schedule.instance) ->
           i.Schedule.finish > i.Schedule.start && eligible i)
  in
  match victim with
  | None -> (name, `Inapplicable "no eligible executing instance")
  | Some i ->
      tamper i;
      let schedule = { r.Core.schedule with Schedule.instances = instances } in
      let vs = Core.audit { r with Core.schedule } in
      if List.exists (fun (v : Audit.violation) -> v.Audit.rule = expected) vs then
        (name, `Detected)
      else (name, `Missed (expected, vs))

let verdict_flip (r : Core.result) =
  let schedule =
    {
      r.Core.schedule with
      Schedule.deadlines_met = not r.Core.schedule.Schedule.deadlines_met;
    }
  in
  let vs = Core.audit { r with Core.schedule } in
  if
    List.exists
      (fun (v : Audit.violation) ->
        v.Audit.rule = "verdict" || v.Audit.rule = "verdict-consistency")
      vs
  then ("verdict-flip", `Detected)
  else ("verdict-flip", `Missed ("verdict", vs))

(* Replay-oracle self-test: corrupt a live recording and assert that a
   full-prefix replay against the unchanged architecture diverges from
   the fresh run.  Proves the differential check (fuzz axis
   incremental on/off) is able to fail — a replay bug that alters the
   schedule cannot hide behind an insensitive fingerprint. *)
let replay_corruption (r : Core.result) =
  let name = "replay-corruption" in
  let spec = r.Core.spec
  and clustering = r.Core.clustering
  and arch = r.Core.arch in
  match Schedule.Replay.record spec clustering arch with
  | Error why -> (name, `Inapplicable ("record failed: " ^ why))
  | Ok (fresh, recording) ->
      if not (Schedule.Replay.corrupt_for_selftest recording) then
        (name, `Inapplicable "recording has no steps to corrupt")
      else begin
        let prep = Schedule.Replay.prepare recording spec clustering arch in
        if Schedule.Replay.cut prep < Schedule.Replay.steps recording then
          ( name,
            `Missed
              ( "full-prefix replay",
                [
                  {
                    Audit.rule = "replay-cut";
                    detail =
                      Printf.sprintf
                        "identical architecture replays only %d of %d steps"
                        (Schedule.Replay.cut prep)
                        (Schedule.Replay.steps recording);
                  };
                ] ) )
        else begin
          match Schedule.Replay.replay_run prep with
          | Error _ ->
              (* Divergence surfaced as an outright failure: detected. *)
              (name, `Detected)
          | Ok replayed ->
              if schedule_fingerprint replayed <> schedule_fingerprint fresh
              then (name, `Detected)
              else
                ( name,
                  `Missed
                    ( "schedule-fingerprint divergence",
                      [
                        {
                          Audit.rule = "replay-fingerprint";
                          detail =
                            "corrupted recording replayed to the fresh run's \
                             schedule";
                        };
                      ] ) )
        end
      end

(* Merge-basis self-test: an in-place merge trial perturbs the
   architecture under a journal checkpoint and rolls back on rejection;
   the per-pass basis must then replay the full prefix bit-identically
   against the restored architecture — unless the basis itself is
   corrupted, which must surface as a diverging schedule.  Unlike
   [replay_corruption] (final step), this corrupts a step in the middle
   of the prefix, the region a warm merge basis actually adopts. *)
let merge_basis_corruption (r : Core.result) =
  let name = "merge-basis-corruption" in
  let spec = r.Core.spec
  and clustering = r.Core.clustering in
  let arch = Arch.copy r.Core.arch in
  match Schedule.Replay.record spec clustering arch with
  | Error why -> (name, `Inapplicable ("record failed: " ^ why))
  | Ok (fresh, recording) ->
      (* Journaled merge-style perturbation round-trip: unplace every
         cluster, then roll back, exactly as a rejected trial does. *)
      let ck = Arch.checkpoint arch in
      Array.iter
        (fun (c : Clustering.cluster) ->
          if Arch.site_of_cluster arch c.Clustering.cid <> None then
            Arch.unplace_cluster arch clustering c)
        clustering.Clustering.clusters;
      Arch.rollback arch ck;
      let steps = Schedule.Replay.steps recording in
      if steps < 2 then (name, `Inapplicable "recording too short")
      else if
        not (Schedule.Replay.corrupt_for_selftest ~step:(steps / 2) recording)
      then (name, `Inapplicable "corruption step out of range")
      else begin
        let prep = Schedule.Replay.prepare recording spec clustering arch in
        if Schedule.Replay.cut prep < steps then
          ( name,
            `Missed
              ( "full-prefix replay after rollback",
                [
                  {
                    Audit.rule = "merge-basis-cut";
                    detail =
                      Printf.sprintf
                        "rolled-back architecture replays only %d of %d steps"
                        (Schedule.Replay.cut prep) steps;
                  };
                ] ) )
        else begin
          match Schedule.Replay.replay_run prep with
          | Error _ -> (name, `Detected)
          | Ok replayed ->
              if schedule_fingerprint replayed <> schedule_fingerprint fresh
              then (name, `Detected)
              else
                ( name,
                  `Missed
                    ( "merge-basis fingerprint divergence",
                      [
                        {
                          Audit.rule = "merge-basis-fingerprint";
                          detail =
                            "corrupted merge basis replayed to the fresh \
                             run's schedule";
                        };
                      ] ) )
        end
      end

let selftest ~out =
  (* Two fixtures: a plain synthesis of a generated workload, and the
     core of its CRUSADE-FT synthesis (which guarantees exclusion pairs
     through duplicate-and-compare tasks). *)
  let params = params_of_seed 1 in
  let spec = W.generate lib params in
  let plain =
    match Core.synthesize ~options:Core.default_options spec lib with
    | Ok r -> r
    | Error msg -> fail ~out ~kind:"selftest-setup" ~params [ msg ]
  in
  let ft_core =
    match Ft.synthesize ~options:Core.default_options spec lib with
    | Ok fr -> fr.Ft.core
    | Error msg -> fail ~out ~kind:"selftest-setup" ~params [ msg ]
  in
  (match Core.audit plain with
  | [] -> ()
  | vs ->
      fail ~out ~kind:"selftest-setup" ~params
        ("clean fixture fails its own audit:" :: violation_strings vs));
  let detected = ref [] in
  let missed = ref [] in
  List.iter
    (fun kind ->
      let name = Audit.Mutate.name kind in
      (* A mutation inapplicable to the plain fixture gets a second
         chance on the FT core (and vice versa). *)
      let outcome =
        match try_mutation plain kind with
        | `Inapplicable _ -> try_mutation ft_core kind
        | o -> o
      in
      match outcome with
      | `Detected ->
          detected := name :: !detected;
          Printf.printf "  %-26s detected\n" name
      | `Inapplicable why -> Printf.printf "  %-26s inapplicable (%s)\n" name why
      | `Missed (expected, vs) ->
          missed := (name, expected, vs) :: !missed;
          Printf.printf "  %-26s MISSED (expected %s)\n" name expected)
    Audit.Mutate.all;
  List.iter
    (fun mutation ->
      match try_schedule_mutation plain mutation with
      | name, `Detected ->
          detected := name :: !detected;
          Printf.printf "  %-26s detected\n" name
      | name, `Inapplicable why ->
          Printf.printf "  %-26s inapplicable (%s)\n" name why
      | name, `Missed (expected, vs) ->
          missed := (name, expected, vs) :: !missed;
          Printf.printf "  %-26s MISSED (expected %s)\n" name expected)
    schedule_mutations;
  List.iter
    (fun outcome ->
      match outcome with
      | name, `Detected ->
          detected := name :: !detected;
          Printf.printf "  %-26s detected\n" name
      | name, `Missed (expected, vs) ->
          missed := (name, expected, vs) :: !missed;
          Printf.printf "  %-26s MISSED (expected %s)\n" name expected
      | name, `Inapplicable why ->
          Printf.printf "  %-26s inapplicable (%s)\n" name why)
    [ verdict_flip plain; replay_corruption plain; merge_basis_corruption plain ];
  (match !missed with
  | [] -> ()
  | (name, expected, vs) :: _ ->
      fail ~out ~kind:"selftest-missed" ~params
        (Printf.sprintf "mutation %s not flagged as %s" name expected
        :: violation_strings vs));
  if List.length !detected < 10 then
    fail ~out ~kind:"selftest-coverage" ~params
      [
        Printf.sprintf "only %d mutation kinds were applicable and detected: %s"
          (List.length !detected)
          (String.concat ", " (List.rev !detected));
      ];
  Printf.printf "selftest: %d mutation kinds detected, 0 missed\n%!"
    (List.length !detected)

(* ------------------------------------------------------------------ *)

let () =
  let a = parse_args () in
  if a.selftest then selftest ~out:a.out
  else begin
    let n = a.seed_hi - a.seed_lo + 1 in
    Printf.printf
      "fuzzing seeds %d..%d (%d seeds x 14 configurations + portfolio \
       {1,4}x{bound on,off} + resynth differential + serve round-trip, \
       jobs_max=%d)\n%!"
      a.seed_lo a.seed_hi n a.jobs_max;
    for seed = a.seed_lo to a.seed_hi do
      let with_ft = (seed - a.seed_lo) mod a.ft_every = 0 in
      run_seed ~out:a.out ~jobs_max:a.jobs_max ~with_ft seed;
      if (seed - a.seed_lo + 1) mod 10 = 0 || seed = a.seed_hi then
        Printf.printf "  %d/%d seeds clean\n%!" (seed - a.seed_lo + 1) n
    done;
    Printf.printf "ok: %d seeds, zero violations, zero cross-config diffs\n%!" n
  end
