(* Incremental rescheduling: the replay engine's exactness contract.

   Every test records a full scheduler run on a base architecture,
   perturbs the placement (the way candidate evaluation does: one
   cluster moves), and asserts that replaying the recording against the
   perturbed architecture is bit-identical — schedule and verdict — to
   a fresh [Schedule.run] on it.  Micro-specs pin the structurally
   interesting cases (single PE, a shared link, a mode-window boundary,
   the copy-cap extrapolation edge); a qcheck property sweeps random
   workloads under random single-cluster perturbations.  A second group
   pins cross-basis adoption: a recording taken under one clustering
   identity must serve as a partial replay basis for another clustering
   of the same spec — full prefix when the content is identical, cut
   region alone rescheduled when it is not — again bit-identically. *)

module Spec = Crusade_taskgraph.Spec
module Clustering = Crusade_cluster.Clustering
module Arch = Crusade_alloc.Arch
module Options = Crusade_alloc.Options
module Schedule = Crusade_sched.Schedule
module W = Crusade_workloads.Comm_system

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* First-fit placement: options are ordered by incremental cost, so
   non-overlapping clusters naturally share devices through new modes
   when reconfiguration-style placements are allowed. *)
let place_all spec clustering arch =
  Array.iter
    (fun (c : Clustering.cluster) ->
      let options =
        Options.enumerate arch spec clustering c ~allow_new_modes:true ()
      in
      let rec attempt = function
        | [] -> Alcotest.failf "cluster %d: no applicable option" c.Clustering.cid
        | o :: rest -> (
            match Options.apply arch spec clustering c o with
            | Ok () -> ()
            | Error _ -> attempt rest)
      in
      attempt options)
    clustering.Clustering.clusters

(* Move one cluster somewhere else: unplace it and apply the first
   applicable option that targets a different PE (a fresh instance if
   nothing else moves it).  Falls back to leaving it unplaced — also a
   legal candidate state for the scheduler. *)
let move_cluster spec clustering arch cid =
  let c = clustering.Clustering.clusters.(cid) in
  let old_pe =
    match Arch.site_of_cluster arch cid with
    | Some s -> s.Arch.s_pe
    | None -> -1
  in
  Arch.unplace_cluster arch clustering c;
  let moves (o : Options.t) =
    match o.Options.kind with
    | Options.Existing_site s -> s.Arch.s_pe <> old_pe
    | Options.New_mode pe_id -> pe_id <> old_pe
    | Options.New_pe _ -> true
  in
  let rec attempt = function
    | [] -> ()
    | o :: rest -> (
        match Options.apply arch spec clustering c o with
        | Ok () -> ()
        | Error _ -> attempt rest)
  in
  attempt
    (List.filter moves
       (Options.enumerate arch spec clustering c ~allow_new_modes:true ()))

let scheds_equal (a : Schedule.t) (b : Schedule.t) =
  a.Schedule.instances = b.Schedule.instances
  && a.Schedule.deadlines_met = b.Schedule.deadlines_met
  && a.Schedule.total_tardiness = b.Schedule.total_tardiness
  && a.Schedule.scheduled_tasks = b.Schedule.scheduled_tasks
  && a.Schedule.mode_switches = b.Schedule.mode_switches

(* The exactness check: replay of [recording] against [arch] must agree
   bit-for-bit with a fresh run — both the full schedule and the
   verdict-only path — including agreeing on failure. *)
let assert_replay_exact ?(copy_cap = Schedule.default_copy_cap) name spec
    clustering arch recording =
  if not (Schedule.Replay.compatible recording ~copy_cap spec clustering) then
    Alcotest.failf "%s: recording not compatible with its own inputs" name;
  let prep = Schedule.Replay.prepare recording spec clustering arch in
  match
    ( Schedule.run ~copy_cap spec clustering arch,
      Schedule.Replay.replay_run prep,
      Schedule.Replay.replay_verdict prep )
  with
  | Ok fresh, Ok replayed, Ok verdict ->
      check Alcotest.bool (name ^ ": schedule bit-identical") true
        (scheds_equal fresh replayed);
      check Alcotest.bool (name ^ ": verdict bit-identical") true
        (verdict.Schedule.v_tardiness = fresh.Schedule.total_tardiness
        && verdict.Schedule.v_met = fresh.Schedule.deadlines_met
        && verdict.Schedule.v_scheduled = fresh.Schedule.scheduled_tasks)
  | Error e_fresh, Error e_run, Error e_verdict ->
      check Alcotest.string (name ^ ": replay_run fails identically") e_fresh e_run;
      check Alcotest.string (name ^ ": replay_verdict fails identically") e_fresh e_verdict
  | Ok _, _, _ | Error _, _, _ ->
      Alcotest.failf "%s: replay and fresh run disagree on success" name

(* Record on the base placement, apply [perturb], check exactness on the
   perturbed architecture (and, first, on the unperturbed one: a cut at
   the full recording must still replay exactly). *)
let record_perturb_check ?(copy_cap = Schedule.default_copy_cap) name spec
    clustering arch perturb =
  let recording =
    match Schedule.Replay.record ~copy_cap spec clustering arch with
    | Ok (_, r) -> r
    | Error msg -> Alcotest.failf "%s: record failed: %s" name msg
  in
  assert_replay_exact ~copy_cap (name ^ " (identity)") spec clustering arch
    recording;
  perturb ();
  assert_replay_exact ~copy_cap name spec clustering arch recording

let clustering_of ?(max_cluster_size = 2) spec lib =
  Clustering.run ~max_cluster_size spec lib

(* --- Micro-spec: every task on one CPU ------------------------------- *)

let single_pe () =
  let lib = Helpers.small_lib in
  let spec, _ = Helpers.sw_chain ~lib 4 in
  let clustering = clustering_of spec lib in
  let arch = Arch.create lib in
  place_all spec clustering arch;
  record_perturb_check "single-pe" spec clustering arch (fun () ->
      move_cluster spec clustering arch
        clustering.Clustering.clusters.(0).Clustering.cid)

(* --- Micro-spec: two PEs communicating over a shared link ------------ *)

let shared_link () =
  let lib = Helpers.small_lib in
  let spec, _ = Helpers.sw_chain ~lib 4 in
  let clustering = clustering_of ~max_cluster_size:1 spec lib in
  let arch = Arch.create lib in
  place_all spec clustering arch;
  (* Split the chain across PEs so at least one edge crosses a link. *)
  let nc = Array.length clustering.Clustering.clusters in
  move_cluster spec clustering arch (nc - 1);
  record_perturb_check "shared-link" spec clustering arch (fun () ->
      move_cluster spec clustering arch (nc - 2))

(* --- Micro-spec: reconfiguration mode-window boundary ---------------- *)

let mode_window () =
  let lib = Helpers.small_lib in
  let spec, _, _ = Helpers.two_hw_graphs ~lib ~overlap:false () in
  let clustering = clustering_of spec lib in
  let arch = Arch.create lib in
  (* First-fit placement shares one programmable device through a second
     mode (the graphs do not overlap), so the recording carries a mode
     switch whose boot window the replay must reproduce exactly. *)
  place_all spec clustering arch;
  record_perturb_check "mode-window" spec clustering arch (fun () ->
      move_cluster spec clustering arch
        clustering.Clustering.clusters.(1).Clustering.cid)

(* --- Micro-spec: copy-cap extrapolation edge ------------------------- *)

let copy_cap_edge () =
  let lib = Helpers.small_lib in
  let b = Spec.Builder.create () in
  let fast = Spec.Builder.add_graph b ~name:"fast" ~period:2_000 ~deadline:1_800 () in
  let slow = Spec.Builder.add_graph b ~name:"slow" ~period:16_000 ~deadline:12_000 () in
  let f1 =
    Spec.Builder.add_task b ~graph:fast ~name:"f1" ~exec:(Helpers.cpu_exec ~lib 300) ()
  in
  let f2 =
    Spec.Builder.add_task b ~graph:fast ~name:"f2" ~exec:(Helpers.cpu_exec ~lib 300) ()
  in
  Spec.Builder.add_edge b ~src:f1 ~dst:f2 ~bytes:32;
  let s1 =
    Spec.Builder.add_task b ~graph:slow ~name:"s1" ~exec:(Helpers.cpu_exec ~lib 900) ()
  in
  let s2 =
    Spec.Builder.add_task b ~graph:slow ~name:"s2" ~exec:(Helpers.cpu_exec ~lib 900) ()
  in
  Spec.Builder.add_edge b ~src:s1 ~dst:s2 ~bytes:32;
  let spec = Spec.Builder.finish_exn b ~name:"copy-cap-edge" () in
  (* hyperperiod/period = 8 copies of the fast graph against a cap of 2:
     the recording covers only the explicit window and the verdict
     extrapolates the rest — the replay must land on the same numbers. *)
  let clustering = clustering_of spec lib in
  let arch = Arch.create lib in
  place_all spec clustering arch;
  record_perturb_check ~copy_cap:2 "copy-cap-edge" spec clustering arch
    (fun () ->
      move_cluster spec clustering arch
        clustering.Clustering.clusters.(0).Clustering.cid)

(* --- Property: random single-cluster perturbations ------------------- *)

let tiny_params seed =
  {
    W.name = Printf.sprintf "inc%d" seed;
    n_tasks = 40;
    seed;
    hw_fraction = 0.5;
    family_slots = 3;
    asic_fraction = 0.1;
    cpld_fraction = 0.1;
  }

let replay_exact_under_perturbation =
  QCheck.Test.make
    ~name:"replay is bit-identical under random single-cluster moves" ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let lib = Helpers.stock_lib in
      let spec = W.generate lib (tiny_params ((seed mod 997) + 1)) in
      let clustering = Clustering.run ~max_cluster_size:4 spec lib in
      let arch = Arch.create lib in
      place_all spec clustering arch;
      let recording =
        match Schedule.Replay.record spec clustering arch with
        | Ok (_, r) -> r
        | Error msg -> QCheck.Test.fail_reportf "record failed: %s" msg
      in
      let rng = Random.State.make [| seed |] in
      let nc = Array.length clustering.Clustering.clusters in
      (* A handful of successive moves against one recording: the diff
         is against the snapshot, so later moves exercise wider cuts. *)
      List.for_all
        (fun (_ : int) ->
          move_cluster spec clustering arch (Random.State.int rng nc);
          let prep = Schedule.Replay.prepare recording spec clustering arch in
          match
            (Schedule.run spec clustering arch, Schedule.Replay.replay_run prep)
          with
          | Ok fresh, Ok replayed -> scheds_equal fresh replayed
          | Error a, Error b -> a = b
          | Ok _, Error _ | Error _, Ok _ -> false)
        [ 1; 2; 3 ])

(* Keyed recording slots: a basis published under clustering A and one
   under clustering B must both be retained, exact keys must be
   preferred over adoption, and a *third* clustering identity of the
   same spec must still be served by replay — through cross-basis
   adoption of a retained recording rather than a cold rebuild.  This is
   what lets portfolio trajectories seed each other's bases. *)
let keyed_slots () =
  let module I = Crusade_sched.Incremental in
  let lib = Helpers.stock_lib in
  let spec = W.generate lib (tiny_params 3) in
  let cl_a = Clustering.run ~max_cluster_size:4 spec lib in
  let cl_b = Clustering.run ~max_cluster_size:2 spec lib in
  let arch_a = Arch.create lib in
  place_all spec cl_a arch_a;
  let arch_b = Arch.create lib in
  place_all spec cl_b arch_b;
  let eng = I.create () in
  let seed clustering arch =
    match I.record eng spec clustering arch with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "record failed: %s" msg
  in
  let expect what = function
    | `Ran (Ok _) when what = `Ran -> ()
    | `Replayed (Ok _) when what = `Replayed -> ()
    | `Ran (Error msg) | `Replayed (Error msg) ->
        Alcotest.failf "evaluation failed: %s" msg
    | `Ran (Ok _) -> Alcotest.fail "expected a replay, got a cold rebuild"
    | `Replayed (Ok _) -> Alcotest.fail "expected a rebuild, got a replay"
  in
  seed cl_a arch_a;
  seed cl_b arch_b;
  expect `Replayed (I.evaluate eng spec cl_a arch_a);
  expect `Replayed (I.evaluate eng spec cl_b arch_b);
  check Alcotest.int "exact keys replay without adoption" 0 (I.adoptions eng);
  check Alcotest.int "rebuilds" 2 (I.rebuilds eng);
  check Alcotest.int "replays" 2 (I.replays eng);
  (* A clustering identity the store has never seen: no exact key, but a
     same-spec basis is adopted instead of paying a cold rebuild. *)
  let cl_c = Clustering.run ~max_cluster_size:3 spec lib in
  let arch_c = Arch.create lib in
  place_all spec cl_c arch_c;
  expect `Replayed (I.evaluate eng spec cl_c arch_c);
  check Alcotest.int "third identity adopts a retained basis" 1
    (I.adoptions eng);
  check Alcotest.int "no extra rebuild" 2 (I.rebuilds eng)

(* --- Cross-basis adoption: content-identical clustering -------------- *)

(* A recording taken under clustering A seeds a replay under a
   physically distinct but content-identical clustering B.  The
   scheduler reads the clustering only through the task-indexed
   site/priority arrays, which are equal here, so nothing is dirty: the
   adopted prefix covers every step and the result is bit-identical. *)
let adoption_exact () =
  let lib = Helpers.stock_lib in
  let spec = W.generate lib (tiny_params 7) in
  let cl_a = Clustering.run ~max_cluster_size:4 spec lib in
  let cl_b = Clustering.run ~max_cluster_size:4 spec lib in
  check Alcotest.bool "clustering identities distinct" false (cl_a == cl_b);
  let arch = Arch.create lib in
  place_all spec cl_a arch;
  let recording =
    match Schedule.Replay.record spec cl_a arch with
    | Ok (_, r) -> r
    | Error msg -> Alcotest.failf "record failed: %s" msg
  in
  check Alcotest.bool "not an exact key for the other identity" false
    (Schedule.Replay.compatible recording spec cl_b);
  check Alcotest.bool "adoptable under the same spec" true
    (Schedule.Replay.adoptable recording spec);
  let prep = Schedule.Replay.prepare recording spec cl_b arch in
  check Alcotest.int "full prefix adopted"
    (Schedule.Replay.steps recording)
    (Schedule.Replay.cut prep);
  match (Schedule.run spec cl_b arch, Schedule.Replay.replay_run prep) with
  | Ok fresh, Ok replayed ->
      check Alcotest.bool "adopted replay bit-identical" true
        (scheds_equal fresh replayed)
  | Error a, Error b ->
      check Alcotest.string "fails identically" a b
  | Ok _, Error _ | Error _, Ok _ ->
      Alcotest.fail "adopted replay and fresh run disagree on success"

(* --- Cross-basis adoption: disjoint-subgraph perturbation ------------ *)

(* Two disjoint graphs; the early chain holds the tight deadline (so its
   pops lead the recording), the late chain is perturbed.  Adopting the
   basis under a distinct clustering identity must replay the early
   prefix untouched and reschedule only the cut region, landing
   bit-identically on the fresh run. *)
let adoption_perturbed () =
  let lib = Helpers.small_lib in
  let b = Spec.Builder.create () in
  let early =
    Spec.Builder.add_graph b ~name:"early" ~period:4_000 ~deadline:1_000 ()
  in
  let late =
    Spec.Builder.add_graph b ~name:"late" ~period:4_000 ~deadline:4_000 ()
  in
  let e1 =
    Spec.Builder.add_task b ~graph:early ~name:"e1"
      ~exec:(Helpers.cpu_exec ~lib 200) ()
  in
  let e2 =
    Spec.Builder.add_task b ~graph:early ~name:"e2"
      ~exec:(Helpers.cpu_exec ~lib 200) ()
  in
  Spec.Builder.add_edge b ~src:e1 ~dst:e2 ~bytes:32;
  let l1 =
    Spec.Builder.add_task b ~graph:late ~name:"l1"
      ~exec:(Helpers.cpu_exec ~lib 200) ()
  in
  let l2 =
    Spec.Builder.add_task b ~graph:late ~name:"l2"
      ~exec:(Helpers.cpu_exec ~lib 200) ()
  in
  Spec.Builder.add_edge b ~src:l1 ~dst:l2 ~bytes:32;
  let spec = Spec.Builder.finish_exn b ~name:"adoption-perturbed" () in
  let cl_a = clustering_of ~max_cluster_size:1 spec lib in
  let cl_b = clustering_of ~max_cluster_size:1 spec lib in
  let arch = Arch.create lib in
  place_all spec cl_a arch;
  let recording =
    match Schedule.Replay.record spec cl_a arch with
    | Ok (_, r) -> r
    | Error msg -> Alcotest.failf "record failed: %s" msg
  in
  (* Perturb only the late chain, then evaluate under the distinct
     clustering identity. *)
  move_cluster spec cl_b arch cl_b.Clustering.of_task.(l1);
  let prep = Schedule.Replay.prepare recording spec cl_b arch in
  let cut = Schedule.Replay.cut prep
  and steps = Schedule.Replay.steps recording in
  if not (0 < cut && cut < steps) then
    Alcotest.failf "expected a partial adopted prefix, got cut %d of %d" cut
      steps;
  match (Schedule.run spec cl_b arch, Schedule.Replay.replay_run prep) with
  | Ok fresh, Ok replayed ->
      check Alcotest.bool "cut-region reschedule bit-identical" true
        (scheds_equal fresh replayed)
  | Error a, Error b ->
      check Alcotest.string "fails identically" a b
  | Ok _, Error _ | Error _, Ok _ ->
      Alcotest.fail "adopted replay and fresh run disagree on success"

(* --- Property: adoption across random clustering handoffs ------------ *)

(* A basis recorded under one clustering of a random workload is adopted
   by a physically distinct clustering — same content on even seeds,
   different granularity on odd ones — whose architecture then drifts
   through random moves.  Every adopted replay must stay bit-identical
   to the fresh run, exactly the contract the shared portfolio store
   leans on. *)
let adoption_exact_under_perturbation =
  QCheck.Test.make
    ~name:"adopted replay is bit-identical under random clustering handoffs"
    ~count:25
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let lib = Helpers.stock_lib in
      let spec = W.generate lib (tiny_params ((seed mod 997) + 1)) in
      let cl_rec = Clustering.run ~max_cluster_size:4 spec lib in
      let cl_new =
        Clustering.run
          ~max_cluster_size:(if seed mod 2 = 0 then 4 else 3)
          spec lib
      in
      let arch_rec = Arch.create lib in
      place_all spec cl_rec arch_rec;
      let recording =
        match Schedule.Replay.record spec cl_rec arch_rec with
        | Ok (_, r) -> r
        | Error msg -> QCheck.Test.fail_reportf "record failed: %s" msg
      in
      if not (Schedule.Replay.adoptable recording spec) then
        QCheck.Test.fail_reportf "recording not adoptable under its own spec";
      let arch = Arch.create lib in
      place_all spec cl_new arch;
      let rng = Random.State.make [| seed |] in
      let nc = Array.length cl_new.Clustering.clusters in
      List.for_all
        (fun (_ : int) ->
          move_cluster spec cl_new arch (Random.State.int rng nc);
          let prep = Schedule.Replay.prepare recording spec cl_new arch in
          match
            (Schedule.run spec cl_new arch, Schedule.Replay.replay_run prep)
          with
          | Ok fresh, Ok replayed -> scheds_equal fresh replayed
          | Error a, Error b -> a = b
          | Ok _, Error _ | Error _, Ok _ -> false)
        [ 1; 2; 3 ])

let suite =
  [
    ("single PE", `Quick, single_pe);
    ("shared link", `Quick, shared_link);
    ("mode-window boundary", `Quick, mode_window);
    ("copy-cap extrapolation edge", `Quick, copy_cap_edge);
    ("keyed recording slots", `Quick, keyed_slots);
    ("adoption: content-identical clustering", `Quick, adoption_exact);
    ("adoption: disjoint-subgraph perturbation", `Quick, adoption_perturbed);
    qcheck replay_exact_under_perturbation;
    qcheck adoption_exact_under_perturbation;
  ]
