lib/util/intervals.ml: List
