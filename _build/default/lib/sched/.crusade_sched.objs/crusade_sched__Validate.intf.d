lib/sched/validate.mli: Crusade_alloc Crusade_cluster Crusade_taskgraph Format Schedule
